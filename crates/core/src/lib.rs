//! # SPLATONIC
//!
//! A full-system reproduction of *"SPLATONIC: Architectural Support for 3D
//! Gaussian Splatting SLAM via Sparse Processing"* (HPCA 2026): the adaptive
//! sparse pixel sampler, the pixel-based differentiable rendering pipeline
//! with preemptive α-checking, the SLAM stack it accelerates, and the
//! hardware models (mobile GPU, SPLATONIC accelerator, GSArch and GauSPU
//! baselines) that regenerate the paper's evaluation.
//!
//! ## Layout
//!
//! * [`splatonic_scene`] — Gaussians, cameras, frames, synthetic worlds.
//! * [`splatonic_render`] — tile-based & pixel-based differentiable
//!   rendering, sampling strategies, workload traces.
//! * [`splatonic_slam`] — tracking, mapping, the four algorithm presets,
//!   ATE/PSNR metrics.
//! * [`splatonic_gpusim`] — mobile-GPU timing/energy model.
//! * [`splatonic_accel`] — SPLATONIC accelerator + baseline models.
//! * [`harness`] / [`targets`] (this crate) — glue that measures
//!   representative training iterations and prices them on every hardware
//!   target, which is what the figure-regeneration binary consumes.
//!
//! ## Quickstart
//!
//! ```no_run
//! use splatonic::prelude::*;
//!
//! // Generate a Replica-like RGB-D sequence and run sparse SLAM on it.
//! let dataset = Dataset::replica_like("room0", 101, DatasetConfig::small());
//! let mut system = SlamSystem::new(SlamConfig::default(), dataset.intrinsics);
//! let result = system.run(&dataset);
//! println!("ATE {:.2} cm, PSNR {:.2} dB", result.ate_cm, result.psnr_db);
//!
//! // Price one tracking iteration on the SPLATONIC accelerator.
//! let m = splatonic::harness::measure_tracking_iteration(
//!     &splatonic::harness::TrackingScenario::prepare(&dataset, 6),
//!     Pipeline::PixelBased,
//!     SamplingStrategy::RandomPerTile { tile: 16 },
//!     0,
//! );
//! let cost = splatonic::targets::HardwareTarget::SplatonicHw.price(&m);
//! println!("{:.1} µs / iteration", cost.seconds * 1e6);
//! ```

pub mod harness;
pub mod targets;

pub use splatonic_accel as accel;
pub use splatonic_gpusim as gpusim;
pub use splatonic_math as math;
pub use splatonic_math::pool;
pub use splatonic_render as render;
pub use splatonic_scene as scene;
pub use splatonic_slam as slam;
pub use splatonic_telemetry as telemetry;

/// Common entry points.
pub mod prelude {
    pub use crate::harness::{IterationMeasurement, TrackingScenario};
    pub use crate::targets::{HardwareTarget, IterationCost};
    pub use splatonic_render::{Pipeline, SamplingStrategy};
    pub use splatonic_slam::prelude::*;
    pub use splatonic_telemetry::{AccuracySummary, RunReport, Telemetry};
}
