//! Hardware targets and iteration pricing (paper Sec. VI "Baselines" and
//! "Variants").
//!
//! | Target | Schedule | Hardware |
//! |---|---|---|
//! | `GpuTile` | tile-based | mobile GPU (Orin-like) |
//! | `GpuPixel` (SPLATONIC-SW) | pixel-based | mobile GPU |
//! | `SplatonicHw` | pixel-based | SPLATONIC accelerator |
//! | `GsArch` | tile-based | GSArch edge config |
//! | `GauSpu` | tile-based | GPU proj/sort + GauSPU accel |
//!
//! The "+S" variants of the paper are expressed by *what you measure*: feed
//! a sparse-sampled iteration to `GpuTile`/`GsArch`/`GauSpu` and you get
//! ORG.+S / GSArch+S / GauSPU+S.

use crate::harness::IterationMeasurement;
use splatonic_accel::{AccelEnergyModel, GauSpuModel, GsArchModel, SplatonicAccel};
use splatonic_gpusim::{GpuConfig, GpuEnergyModel};
use splatonic_render::Pipeline;

/// A hardware execution target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HardwareTarget {
    /// Mobile GPU running the tile-based schedule (the GPU baseline; with
    /// a sparse measurement this is ORG.+S).
    GpuTile,
    /// Mobile GPU running the pixel-based schedule (SPLATONIC-SW).
    GpuPixel,
    /// The SPLATONIC accelerator (SPLATONIC-HW).
    SplatonicHw,
    /// GSArch \[29] (with a sparse measurement: GSArch+S).
    GsArch,
    /// GauSPU \[77] (with a sparse measurement: GauSPU+S).
    GauSpu,
}

impl HardwareTarget {
    /// All targets in the paper's presentation order.
    pub fn all() -> [HardwareTarget; 5] {
        [
            HardwareTarget::GpuTile,
            HardwareTarget::GpuPixel,
            HardwareTarget::SplatonicHw,
            HardwareTarget::GsArch,
            HardwareTarget::GauSpu,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            HardwareTarget::GpuTile => "GPU (tile-based)",
            HardwareTarget::GpuPixel => "SPLATONIC-SW",
            HardwareTarget::SplatonicHw => "SPLATONIC-HW",
            HardwareTarget::GsArch => "GSArch",
            HardwareTarget::GauSpu => "GauSPU",
        }
    }

    /// The schedule this target expects its measurement to come from.
    pub fn expected_pipeline(&self) -> Pipeline {
        match self {
            HardwareTarget::GpuPixel | HardwareTarget::SplatonicHw => Pipeline::PixelBased,
            _ => Pipeline::TileBased,
        }
    }

    /// Prices one measured iteration on this target.
    ///
    /// # Panics
    ///
    /// Panics if the measurement's schedule does not match
    /// [`HardwareTarget::expected_pipeline`] — pricing a tile-based trace on
    /// the SPLATONIC accelerator (or vice versa) would be meaningless.
    pub fn price(&self, m: &IterationMeasurement) -> IterationCost {
        assert_eq!(
            m.pipeline,
            self.expected_pipeline(),
            "measurement schedule does not match target {}",
            self.name()
        );
        match self {
            HardwareTarget::GpuTile | HardwareTarget::GpuPixel => {
                let cfg = GpuConfig::orin_like();
                let report = cfg.price(&m.trace, m.pipeline);
                let energy = GpuEnergyModel::orin_like().price(&m.trace, &report);
                IterationCost {
                    seconds: report.total_seconds(),
                    joules: energy.total_j(),
                    forward_seconds: report.forward.total(),
                    backward_seconds: report.backward.total(),
                    detail: CostDetail::Gpu(report),
                }
            }
            HardwareTarget::SplatonicHw => {
                let accel = SplatonicAccel::paper();
                let report = accel.price(&m.workload);
                let energy = AccelEnergyModel::paper().price(&m.workload, &report);
                IterationCost {
                    seconds: report.total_seconds(),
                    joules: energy.total_j(),
                    forward_seconds: report.forward_cycles() / report.clock_hz,
                    backward_seconds: report.backward_cycles() / report.clock_hz,
                    detail: CostDetail::Accel(report),
                }
            }
            HardwareTarget::GsArch => {
                let r = GsArchModel::edge().price(&m.workload);
                IterationCost {
                    seconds: r.total_seconds(),
                    joules: r.energy_j,
                    forward_seconds: r.forward_s,
                    backward_seconds: r.backward_s,
                    detail: CostDetail::Baseline(r),
                }
            }
            HardwareTarget::GauSpu => {
                let r = GauSpuModel::paper().price(&m.workload, &m.trace);
                IterationCost {
                    seconds: r.total_seconds(),
                    joules: r.energy_j,
                    forward_seconds: r.forward_s,
                    backward_seconds: r.backward_s,
                    detail: CostDetail::Baseline(r),
                }
            }
        }
    }
}

/// Target-specific pricing detail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostDetail {
    /// GPU stage breakdown.
    Gpu(splatonic_gpusim::GpuReport),
    /// SPLATONIC accelerator stage breakdown.
    Accel(splatonic_accel::AccelReport),
    /// Baseline accelerator summary.
    Baseline(splatonic_accel::baselines::BaselineReport),
}

/// Priced cost of one training iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationCost {
    /// Seconds per iteration.
    pub seconds: f64,
    /// Joules per iteration.
    pub joules: f64,
    /// Forward-pass seconds.
    pub forward_seconds: f64,
    /// Backward-pass seconds.
    pub backward_seconds: f64,
    /// Stage-level detail.
    pub detail: CostDetail,
}

impl IterationCost {
    /// Frame cost given `iterations` per frame.
    pub fn per_frame(&self, iterations: usize) -> (f64, f64) {
        (
            self.seconds * iterations as f64,
            self.joules * iterations as f64,
        )
    }

    /// Exports the priced iteration as telemetry gauges under `prefix`
    /// (e.g. `hw/SPLATONIC-HW`), including the target-specific stage
    /// breakdown carried in [`CostDetail`].
    pub fn export_telemetry(&self, telemetry: &splatonic_telemetry::Telemetry, prefix: &str) {
        let IterationCost {
            seconds,
            joules,
            forward_seconds,
            backward_seconds,
            detail,
        } = self;
        let parts = [
            ("seconds", *seconds),
            ("joules", *joules),
            ("forward_seconds", *forward_seconds),
            ("backward_seconds", *backward_seconds),
        ];
        for (name, value) in parts {
            telemetry.gauge_set(&format!("{prefix}/{name}"), value);
        }
        match detail {
            CostDetail::Gpu(r) => r.export_telemetry(telemetry, prefix),
            CostDetail::Accel(r) => r.export_telemetry(telemetry, prefix),
            CostDetail::Baseline(r) => {
                telemetry.gauge_set(&format!("{prefix}/forward_s"), r.forward_s);
                telemetry.gauge_set(&format!("{prefix}/backward_s"), r.backward_s);
                telemetry.gauge_set(&format!("{prefix}/energy_j"), r.energy_j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{measure_dense_iteration, measure_tracking_iteration, TrackingScenario};
    use splatonic_render::SamplingStrategy;
    use splatonic_slam::dataset::{Dataset, DatasetConfig};

    fn scenario() -> TrackingScenario {
        let d = Dataset::replica_like(
            "targets",
            88,
            DatasetConfig {
                width: 64,
                height: 48,
                frames: 8,
                spacing: 0.3,
                fov: 1.25,
                furniture: 2,
                depth_dropout_coverage: 0.9,
            },
        );
        TrackingScenario::prepare(&d, 4)
    }

    #[test]
    fn splatonic_hw_beats_gpu_on_sparse() {
        let s = scenario();
        let sampling = SamplingStrategy::RandomPerTile { tile: 16 };
        let tile = measure_tracking_iteration(&s, Pipeline::TileBased, sampling, 1);
        let pixel = measure_tracking_iteration(&s, Pipeline::PixelBased, sampling, 1);
        let gpu = HardwareTarget::GpuTile.price(&tile);
        let hw = HardwareTarget::SplatonicHw.price(&pixel);
        assert!(
            hw.seconds < gpu.seconds,
            "accelerator {} s must beat GPU {} s",
            hw.seconds,
            gpu.seconds
        );
        assert!(hw.joules < gpu.joules);
    }

    #[test]
    fn dense_costs_more_than_sparse_everywhere() {
        let s = scenario();
        let dense = measure_dense_iteration(&s, Pipeline::TileBased);
        let sparse = measure_tracking_iteration(
            &s,
            Pipeline::TileBased,
            SamplingStrategy::RandomPerTile { tile: 16 },
            1,
        );
        for t in [HardwareTarget::GpuTile, HardwareTarget::GsArch] {
            let cd = t.price(&dense);
            let cs = t.price(&sparse);
            assert!(
                cd.seconds > cs.seconds,
                "{}: dense {} vs sparse {}",
                t.name(),
                cd.seconds,
                cs.seconds
            );
        }
    }

    #[test]
    #[should_panic(expected = "schedule does not match")]
    fn pipeline_mismatch_panics() {
        let s = scenario();
        let tile = measure_tracking_iteration(
            &s,
            Pipeline::TileBased,
            SamplingStrategy::RandomPerTile { tile: 16 },
            1,
        );
        let _ = HardwareTarget::SplatonicHw.price(&tile);
    }

    #[test]
    fn per_frame_scales() {
        let s = scenario();
        let m = measure_tracking_iteration(
            &s,
            Pipeline::PixelBased,
            SamplingStrategy::RandomPerTile { tile: 16 },
            1,
        );
        let c = HardwareTarget::SplatonicHw.price(&m);
        let (t, e) = c.per_frame(10);
        assert!((t - c.seconds * 10.0).abs() < 1e-15);
        assert!((e - c.joules * 10.0).abs() < 1e-15);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            HardwareTarget::all().iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), 5);
    }
}
