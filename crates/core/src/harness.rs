//! Measurement harness: runs representative training iterations and
//! extracts the traces/workloads the hardware models price.
//!
//! The paper's performance figures compare *the same workload* on different
//! schedules and hardware. This module builds that workload once — a
//! realistic mid-sequence SLAM state (seeded + mapped scene, tracked pose)
//! — and renders single training iterations under each schedule/sampling
//! combination, recording both the [`RenderTrace`] (for the GPU model) and
//! the [`FrameWorkload`] (for the accelerator simulators).

use splatonic_accel::FrameWorkload;
use splatonic_math::Pose;
use splatonic_render::sampling::{tracking_plan, MappingStrategy, SamplingPlan};
use splatonic_render::{
    loss, render_backward, render_forward, MappingSampler, Pipeline, PixelSet, RenderConfig,
    RenderTrace, SamplingStrategy,
};
use splatonic_scene::{Camera, Frame, GaussianScene, Intrinsics};
use splatonic_slam::algorithm::AlgorithmConfig;
use splatonic_slam::mapping::{map_scene, seed_scene_from_frame, Keyframe};
use splatonic_slam::Dataset;

/// A frozen mid-sequence SLAM state used as the measurement workload.
#[derive(Debug, Clone)]
pub struct TrackingScenario {
    /// The reconstructed scene at the measurement point.
    pub scene: GaussianScene,
    /// Camera intrinsics.
    pub intrinsics: Intrinsics,
    /// Pose at which the measured frame is rendered.
    pub pose: Pose,
    /// The reference frame being tracked/mapped against.
    pub frame: Frame,
}

impl TrackingScenario {
    /// Prepares a realistic scenario from `dataset`: seeds the map from
    /// frame 0, runs one mapping invocation, and measures at `frame_index`
    /// (ground-truth pose — pose error is irrelevant to workload shape).
    ///
    /// # Panics
    ///
    /// Panics if `frame_index` is out of range.
    pub fn prepare(dataset: &Dataset, frame_index: usize) -> TrackingScenario {
        assert!(frame_index < dataset.len(), "frame index out of range");
        let algo = AlgorithmConfig::default();
        let mut scene = seed_scene_from_frame(
            &dataset.frames[0],
            dataset.intrinsics,
            dataset.gt_poses[0],
            1,
        );
        let keyframes = vec![Keyframe {
            frame: dataset.frames[0].clone(),
            pose: dataset.gt_poses[0],
        }];
        let sampler = MappingSampler::new(4, MappingStrategy::Combined);
        map_scene(
            &mut scene,
            &keyframes,
            dataset.intrinsics,
            &sampler,
            &algo,
            Pipeline::PixelBased,
            &RenderConfig::default(),
            1,
        );
        TrackingScenario {
            scene,
            intrinsics: dataset.intrinsics,
            pose: dataset.gt_poses[frame_index],
            frame: dataset.frames[frame_index].clone(),
        }
    }
}

/// One measured training iteration: trace for the GPU model, workload for
/// the accelerator models.
#[derive(Debug, Clone)]
pub struct IterationMeasurement {
    /// Forward + backward trace (merged).
    pub trace: RenderTrace,
    /// Forward-only trace (for stage-level figures).
    pub forward_trace: RenderTrace,
    /// Backward-only trace.
    pub backward_trace: RenderTrace,
    /// Accelerator workload.
    pub workload: FrameWorkload,
    /// The schedule that produced it.
    pub pipeline: Pipeline,
    /// Pixels rendered.
    pub pixels: usize,
}

/// The reference render configuration used by the measurement harness.
///
/// Tile grouping and the sorted-list cache are pinned **off** so measured
/// traces/workloads reflect the conventional per-tile schedule regardless
/// of the runtime defaults — hardware gauges derived from the harness stay
/// comparable across releases, and ablation experiments switch schedules
/// explicitly via the `_with_config` variants.
pub fn reference_render_config() -> RenderConfig {
    RenderConfig {
        tile_grouping: false,
        sort_cache: false,
        ..RenderConfig::default()
    }
}

/// Renders one tracking iteration under the given schedule and sampling,
/// with a real loss/backward pass, and returns its measurement.
///
/// Uses [`reference_render_config`]; pass an explicit configuration via
/// [`measure_tracking_iteration_with_config`] for schedule ablations.
pub fn measure_tracking_iteration(
    scenario: &TrackingScenario,
    pipeline: Pipeline,
    sampling: SamplingStrategy,
    seed: u64,
) -> IterationMeasurement {
    measure_tracking_iteration_with_config(
        scenario,
        pipeline,
        sampling,
        seed,
        &reference_render_config(),
    )
}

/// [`measure_tracking_iteration`] with an explicit render configuration
/// (e.g. tile grouping on/off for the sort ablation).
pub fn measure_tracking_iteration_with_config(
    scenario: &TrackingScenario,
    pipeline: Pipeline,
    sampling: SamplingStrategy,
    seed: u64,
    config: &RenderConfig,
) -> IterationMeasurement {
    let plan = tracking_plan(sampling, &scenario.frame, seed, None);
    let (cam, pixels, frame_owned);
    let frame: &Frame = match plan {
        SamplingPlan::Pixels(p) => {
            cam = Camera::new(scenario.intrinsics, scenario.pose);
            pixels = p;
            &scenario.frame
        }
        SamplingPlan::LowRes { factor } => {
            let small = scenario.intrinsics.downscaled(factor);
            cam = Camera::new(small, scenario.pose);
            pixels = PixelSet::dense(small.width, small.height);
            frame_owned = splatonic_slam::tracking::downsample_frame(&scenario.frame, factor);
            &frame_owned
        }
    };
    measure_iteration(&scenario.scene, &cam, frame, &pixels, pipeline, config)
}

/// Renders one mapping iteration (the paper's `w_m`-tile combined sampler,
/// plus the unseen set from a dense Γ pass) and returns its measurement.
///
/// Uses [`reference_render_config`]; pass an explicit configuration via
/// [`measure_mapping_iteration_with_config`] for schedule ablations.
pub fn measure_mapping_iteration(
    scenario: &TrackingScenario,
    pipeline: Pipeline,
    mapping_tile: usize,
    seed: u64,
) -> IterationMeasurement {
    measure_mapping_iteration_with_config(
        scenario,
        pipeline,
        mapping_tile,
        seed,
        &reference_render_config(),
    )
}

/// [`measure_mapping_iteration`] with an explicit render configuration.
pub fn measure_mapping_iteration_with_config(
    scenario: &TrackingScenario,
    pipeline: Pipeline,
    mapping_tile: usize,
    seed: u64,
    config: &RenderConfig,
) -> IterationMeasurement {
    let cam = Camera::new(scenario.intrinsics, scenario.pose);
    // Dense Γ pass feeds the unseen classification (priced separately by
    // callers if desired; here it only shapes the pixel set).
    let dense = PixelSet::dense(scenario.intrinsics.width, scenario.intrinsics.height);
    let dense_out = render_forward(&scenario.scene, &cam, &dense, pipeline, config);
    let mut transmittance =
        splatonic_math::Image::filled(scenario.intrinsics.width, scenario.intrinsics.height, 1.0);
    for (i, p) in dense.iter_all().enumerate() {
        transmittance[(p.x as usize, p.y as usize)] = dense_out.final_transmittance[i];
    }
    let sampler = MappingSampler::new(mapping_tile, MappingStrategy::Combined);
    let pixels = sampler.build(&scenario.frame, &transmittance, seed);
    measure_iteration(
        &scenario.scene,
        &cam,
        &scenario.frame,
        &pixels,
        pipeline,
        config,
    )
}

/// Renders a dense iteration (the dense-mapping / dense-baseline case).
///
/// Uses [`reference_render_config`]; pass an explicit configuration via
/// [`measure_dense_iteration_with_config`] for schedule ablations.
pub fn measure_dense_iteration(
    scenario: &TrackingScenario,
    pipeline: Pipeline,
) -> IterationMeasurement {
    measure_dense_iteration_with_config(scenario, pipeline, &reference_render_config())
}

/// [`measure_dense_iteration`] with an explicit render configuration.
pub fn measure_dense_iteration_with_config(
    scenario: &TrackingScenario,
    pipeline: Pipeline,
    config: &RenderConfig,
) -> IterationMeasurement {
    let cam = Camera::new(scenario.intrinsics, scenario.pose);
    let pixels = PixelSet::dense(scenario.intrinsics.width, scenario.intrinsics.height);
    measure_iteration(
        &scenario.scene,
        &cam,
        &scenario.frame,
        &pixels,
        pipeline,
        config,
    )
}

fn measure_iteration(
    scene: &GaussianScene,
    cam: &Camera,
    frame: &Frame,
    pixels: &PixelSet,
    pipeline: Pipeline,
    cfg: &RenderConfig,
) -> IterationMeasurement {
    let out = render_forward(scene, cam, pixels, pipeline, cfg);
    let l = loss::evaluate_loss(
        &out,
        frame,
        pixels,
        &splatonic_render::LossConfig::default(),
    );
    let (_, _, bwd) = render_backward(scene, cam, pixels, &out, &l.grads, pipeline, cfg);
    let workload = FrameWorkload::from_render(&out, &bwd, pipeline);
    let mut trace = out.trace.clone();
    trace.merge(&bwd);
    IterationMeasurement {
        forward_trace: out.trace.clone(),
        backward_trace: bwd,
        trace,
        workload,
        pipeline,
        pixels: pixels.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatonic_slam::dataset::DatasetConfig;

    fn scenario() -> TrackingScenario {
        let d = Dataset::replica_like(
            "harness",
            77,
            DatasetConfig {
                width: 64,
                height: 48,
                frames: 8,
                spacing: 0.3,
                fov: 1.25,
                furniture: 2,
                depth_dropout_coverage: 0.9,
            },
        );
        TrackingScenario::prepare(&d, 4)
    }

    #[test]
    fn tracking_measurements_differ_by_schedule() {
        let s = scenario();
        let sampling = SamplingStrategy::RandomPerTile { tile: 16 };
        let tile = measure_tracking_iteration(&s, Pipeline::TileBased, sampling, 3);
        let pixel = measure_tracking_iteration(&s, Pipeline::PixelBased, sampling, 3);
        assert!(tile.trace.forward.tile_pairs > 0);
        assert_eq!(pixel.trace.forward.tile_pairs, 0);
        assert!(pixel.trace.forward.proj_alpha_checks > 0);
        assert_eq!(tile.pixels, pixel.pixels);
        // Same sampling seed → same pixels → same integrated pairs.
        assert_eq!(tile.workload.total_pairs(), pixel.workload.total_pairs());
    }

    #[test]
    fn dense_measurement_covers_image() {
        let s = scenario();
        let m = measure_dense_iteration(&s, Pipeline::TileBased);
        assert_eq!(m.pixels, 64 * 48);
        assert!(m.workload.total_grad_entries() > 0);
    }

    #[test]
    fn mapping_measurement_has_sparse_plus_unseen() {
        let s = scenario();
        let m = measure_mapping_iteration(&s, Pipeline::PixelBased, 4, 5);
        // One sample per 4×4 tile = 192 samples at 64×48, plus any unseen.
        assert!(m.pixels >= 192);
        assert!(m.pixels < 64 * 48);
    }

    #[test]
    fn grouping_ablation_changes_only_sort_counters() {
        let s = scenario();
        // Default harness calls pin the reference per-tile schedule…
        let reference = measure_dense_iteration(&s, Pipeline::TileBased);
        assert_eq!(reference.trace.forward.sort_group_reuse, 0);
        // …while the runtime default (grouping + sort cache on) is reached
        // through the explicit-config variant for ablation rows.
        let grouped =
            measure_dense_iteration_with_config(&s, Pipeline::TileBased, &RenderConfig::default());
        assert!(grouped.trace.forward.sort_group_reuse > 0);
        assert!(grouped.trace.forward.sort_elems < reference.trace.forward.sort_elems);
        assert!(grouped.trace.forward.sort_lists < reference.trace.forward.sort_lists);
        // The schedule change is sort-only: the tile lists (and hence every
        // downstream counter the baselines price) are bit-identical.
        assert_eq!(grouped.workload.tile_pairs, reference.workload.tile_pairs);
        assert_eq!(
            grouped.workload.total_pairs(),
            reference.workload.total_pairs()
        );
        assert_eq!(
            grouped.workload.tile_warp_steps,
            reference.workload.tile_warp_steps
        );
    }

    #[test]
    fn lowres_tracking_measurement() {
        let s = scenario();
        let m = measure_tracking_iteration(
            &s,
            Pipeline::TileBased,
            SamplingStrategy::LowRes { factor: 4 },
            1,
        );
        assert_eq!(m.pixels, 16 * 12);
    }
}
