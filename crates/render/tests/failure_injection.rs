//! Failure-injection tests: the renderer must stay finite and well-behaved
//! on degenerate inputs (DESIGN.md §7) — zero scales, behind-camera and
//! far-outside Gaussians, saturated opacities, empty pixel sets, zero-
//! texture frames, and non-finite parameters must never produce NaNs or
//! panics in either pipeline.

use splatonic_math::{Pose, Quat, Vec3};
use splatonic_render::prelude::*;
use splatonic_render::{loss, LossConfig};
use splatonic_scene::{Camera, Frame, Gaussian, GaussianScene, Intrinsics};

const W: usize = 48;
const H: usize = 36;

fn camera() -> Camera {
    Camera::new(Intrinsics::with_fov(W, H, 1.2), Pose::identity())
}

fn render_both(scene: &GaussianScene, pixels: &PixelSet) -> (ForwardResult, ForwardResult) {
    let cfg = RenderConfig::default();
    let cam = camera();
    (
        render_forward(scene, &cam, pixels, Pipeline::TileBased, &cfg),
        render_forward(scene, &cam, pixels, Pipeline::PixelBased, &cfg),
    )
}

fn assert_finite(out: &ForwardResult) {
    for c in &out.color {
        assert!(c.is_finite(), "non-finite color {c:?}");
    }
    for &d in &out.depth {
        assert!(d.is_finite());
    }
    for &t in &out.final_transmittance {
        assert!(t.is_finite() && (0.0..=1.0 + 1e-9).contains(&t));
    }
}

#[test]
fn zero_scale_gaussian_is_harmless() {
    let mut scene = GaussianScene::new();
    scene.push(Gaussian::new(
        Vec3::new(0.0, 0.0, 2.0),
        Vec3::splat(0.0), // clamped to the positive floor internally
        Quat::IDENTITY,
        0.9,
        Vec3::splat(0.5),
    ));
    let pixels = PixelSet::dense(W, H);
    let (a, b) = render_both(&scene, &pixels);
    assert_finite(&a);
    assert_finite(&b);
}

#[test]
fn behind_camera_gaussians_render_background() {
    let mut scene = GaussianScene::new();
    for z in [-5.0, -0.5, 0.0, 0.1] {
        scene.push(Gaussian::new(
            Vec3::new(0.0, 0.0, z),
            Vec3::splat(0.2),
            Quat::IDENTITY,
            0.9,
            Vec3::splat(1.0),
        ));
    }
    let pixels = PixelSet::dense(W, H);
    let (a, b) = render_both(&scene, &pixels);
    assert_finite(&a);
    assert_finite(&b);
    // Everything is behind the near plane (0.2): nothing renders.
    assert!(a.color.iter().all(|c| c.norm() == 0.0));
    assert!(b.total_contributions() == 0);
}

#[test]
fn extreme_scales_do_not_blow_up() {
    let mut scene = GaussianScene::new();
    // A giant fog blob and a microscopic speck.
    scene.push(Gaussian::new(
        Vec3::new(0.0, 0.0, 3.0),
        Vec3::splat(50.0),
        Quat::IDENTITY,
        0.5,
        Vec3::new(0.2, 0.4, 0.6),
    ));
    scene.push(Gaussian::new(
        Vec3::new(0.1, 0.1, 1.0),
        Vec3::splat(1e-9),
        Quat::IDENTITY,
        0.9,
        Vec3::splat(1.0),
    ));
    let pixels = PixelSet::dense(W, H);
    let (a, b) = render_both(&scene, &pixels);
    assert_finite(&a);
    assert_finite(&b);
}

#[test]
fn saturated_opacity_is_clamped() {
    let mut scene = GaussianScene::new();
    scene.push(Gaussian::new(
        Vec3::new(0.0, 0.0, 1.5),
        Vec3::splat(0.5),
        Quat::IDENTITY,
        5.0, // clamped into (0, 1) by the logit storage
        Vec3::splat(1.0),
    ));
    let pixels = PixelSet::dense(W, H);
    let (a, _) = render_both(&scene, &pixels);
    assert_finite(&a);
    for contribs in &a.contributions {
        for c in contribs {
            assert!(c.alpha <= RenderConfig::default().alpha_max + 1e-12);
        }
    }
}

#[test]
fn empty_pixel_set_renders_nothing() {
    let mut scene = GaussianScene::new();
    scene.push(Gaussian::new(
        Vec3::new(0.0, 0.0, 2.0),
        Vec3::splat(0.2),
        Quat::IDENTITY,
        0.9,
        Vec3::splat(0.5),
    ));
    let pixels = PixelSet::from_pixels(W, H, Vec::new());
    let (a, b) = render_both(&scene, &pixels);
    assert!(a.color.is_empty());
    assert!(b.color.is_empty());
}

#[test]
fn empty_scene_backward_is_empty() {
    let scene = GaussianScene::new();
    let cam = camera();
    let cfg = RenderConfig::default();
    let pixels = PixelSet::dense(W, H);
    let out = render_forward(&scene, &cam, &pixels, Pipeline::PixelBased, &cfg);
    let grads = vec![
        loss::LossGrad {
            d_color: Vec3::splat(1.0),
            d_depth: 1.0
        };
        pixels.len()
    ];
    let (sg, pg, trace) = render_backward(
        &scene,
        &cam,
        &pixels,
        &out,
        &grads,
        Pipeline::PixelBased,
        &cfg,
    );
    assert!(sg.is_empty());
    assert_eq!(pg.xi.norm(), 0.0);
    assert_eq!(trace.backward.pairs_grad, 0);
}

#[test]
fn zero_texture_frame_loss_is_well_defined() {
    // A pitch-black reference with no depth: loss must be finite and its
    // gradients defined (the paper's samplers must also survive this).
    let mut scene = GaussianScene::new();
    scene.push(Gaussian::new(
        Vec3::new(0.0, 0.0, 2.0),
        Vec3::splat(0.3),
        Quat::IDENTITY,
        0.9,
        Vec3::splat(0.7),
    ));
    let cam = camera();
    let cfg = RenderConfig::default();
    let pixels = PixelSet::dense(W, H);
    let out = render_forward(&scene, &cam, &pixels, Pipeline::TileBased, &cfg);
    let frame = Frame::new(
        splatonic_math::Image::filled(W, H, Vec3::ZERO),
        splatonic_math::Image::filled(W, H, 0.0),
        0,
    );
    let l = loss::evaluate_loss(&out, &frame, &pixels, &LossConfig::default());
    assert!(l.value.is_finite());
    assert!(l.grads.iter().all(|g| g.d_color.is_finite()));
    // Invalid depths disable every depth gradient.
    assert!(l.grads.iter().all(|g| g.d_depth == 0.0));
}

#[test]
fn zero_texture_frame_samplers_survive() {
    use splatonic_render::sampling::{tracking_plan, MappingStrategy, SamplingPlan};
    use splatonic_render::MappingSampler;
    let frame = Frame::new(
        splatonic_math::Image::filled(W, H, Vec3::splat(0.5)),
        splatonic_math::Image::filled(W, H, 1.0),
        0,
    );
    // Harris on a perfectly flat frame must fall back to random coverage.
    let plan = tracking_plan(SamplingStrategy::HarrisPerTile { tile: 8 }, &frame, 1, None);
    let SamplingPlan::Pixels(p) = plan else {
        panic!()
    };
    assert_eq!(p.len(), (W / 8) * (H.div_ceil(8)));
    // Weighted mapping sampling on zero gradients likewise.
    let sampler = MappingSampler::new(4, MappingStrategy::WeightedOnly);
    let t = splatonic_math::Image::filled(W, H, 0.0);
    let set = sampler.build(&frame, &t, 2);
    assert_eq!(set.sample_count(), (W / 4) * (H / 4));
}

#[test]
fn non_finite_gaussian_is_culled_not_propagated() {
    let mut scene = GaussianScene::new();
    scene.push(Gaussian {
        mean: Vec3::new(f64::NAN, 0.0, 2.0),
        log_scale: Vec3::splat(-2.0),
        rotation: Quat::IDENTITY,
        opacity_logit: 1.0,
        color: Vec3::splat(0.5),
    });
    scene.push(Gaussian::new(
        Vec3::new(0.0, 0.0, 2.0),
        Vec3::splat(0.2),
        Quat::IDENTITY,
        0.9,
        Vec3::splat(0.5),
    ));
    let pixels = PixelSet::dense(W, H);
    let (a, b) = render_both(&scene, &pixels);
    assert_finite(&a);
    assert_finite(&b);
    // The healthy Gaussian still renders.
    assert!(a.total_contributions() > 0);
}
