//! Finite-difference validation of the analytic backward pass.
//!
//! The loss is made smooth in the probed region by a large Huber delta, so
//! central differences of the full forward+loss pipeline must match the
//! analytic gradients from `render_backward` for every Gaussian parameter
//! and for the camera-pose translation. (Pose-rotation gradients drop the
//! covariance-orientation term by design — see DESIGN.md §5 — so they are
//! checked directionally, not to FD precision.)

use splatonic_math::{Pose, Quat, Se3, Vec3};
use splatonic_render::prelude::*;
use splatonic_render::{loss, LossConfig};
use splatonic_scene::{Camera, Frame, Gaussian, GaussianScene, Intrinsics};

const W: usize = 48;
const H: usize = 36;

fn test_scene() -> GaussianScene {
    let mut scene = GaussianScene::new();
    scene.push(Gaussian::new(
        Vec3::new(0.05, -0.02, 1.8),
        Vec3::new(0.22, 0.3, 0.18),
        Quat::from_axis_angle(Vec3::new(1.0, 0.5, 0.2), 0.4),
        0.7,
        Vec3::new(0.8, 0.3, 0.4),
    ));
    scene.push(Gaussian::new(
        Vec3::new(-0.15, 0.1, 2.6),
        Vec3::new(0.35, 0.28, 0.3),
        Quat::from_axis_angle(Vec3::new(0.0, 1.0, 0.3), -0.7),
        0.6,
        Vec3::new(0.2, 0.7, 0.5),
    ));
    scene.push(Gaussian::new(
        Vec3::new(0.2, 0.15, 3.4),
        Vec3::new(0.5, 0.4, 0.45),
        Quat::from_axis_angle(Vec3::new(0.3, 0.2, 1.0), 1.1),
        0.8,
        Vec3::new(0.4, 0.4, 0.9),
    ));
    scene
}

fn camera() -> Camera {
    Camera::new(Intrinsics::with_fov(W, H, 1.2), Pose::identity())
}

fn reference() -> Frame {
    // Render the reference from a slightly perturbed scene so residuals are
    // non-zero but small (inside the Huber region).
    let mut perturbed = test_scene();
    perturbed.update_each(|_, g| {
        g.mean += Vec3::new(0.01, -0.008, 0.012);
        g.color += Vec3::new(0.03, -0.02, 0.01);
    });
    let pixels = PixelSet::dense(W, H);
    let out = render_forward(
        &perturbed,
        &camera(),
        &pixels,
        Pipeline::TileBased,
        &RenderConfig::default(),
    );
    let mut color = splatonic_math::Image::filled(W, H, Vec3::ZERO);
    let mut depth = splatonic_math::Image::filled(W, H, 0.0);
    for (i, p) in pixels.iter_all().enumerate() {
        color[(p.x as usize, p.y as usize)] = out.color[i];
        depth[(p.x as usize, p.y as usize)] = out.depth[i];
    }
    Frame::new(color, depth, 0)
}

fn loss_cfg() -> LossConfig {
    LossConfig {
        color_weight: 0.7,
        depth_weight: 0.8,
        huber_delta: 10.0, // quadratic everywhere we probe
        huber_delta_depth: 10.0,
    }
}

fn scalar_loss(scene: &GaussianScene, cam: &Camera, reference: &Frame) -> f64 {
    let pixels = PixelSet::dense(W, H);
    let out = render_forward(
        scene,
        cam,
        &pixels,
        Pipeline::TileBased,
        &RenderConfig::default(),
    );
    loss::evaluate_loss(&out, reference, &pixels, &loss_cfg()).value
}

fn analytic_grads(
    scene: &GaussianScene,
    cam: &Camera,
    reference: &Frame,
    pipeline: Pipeline,
) -> (splatonic_render::SceneGrads, splatonic_render::PoseGrad) {
    let pixels = PixelSet::dense(W, H);
    let cfg = RenderConfig::default();
    let out = render_forward(scene, cam, &pixels, pipeline, &cfg);
    let l = loss::evaluate_loss(&out, reference, &pixels, &loss_cfg());
    let (sg, pg, _) = render_backward(scene, cam, &pixels, &out, &l.grads, pipeline, &cfg);
    (sg, pg)
}

/// Relative-error helper with an absolute floor for tiny gradients.
fn check(fd: f64, analytic: f64, label: &str) {
    let denom = fd.abs().max(analytic.abs()).max(1e-4);
    let rel = (fd - analytic).abs() / denom;
    assert!(
        rel < 0.08,
        "{label}: fd={fd:.6e} analytic={analytic:.6e} rel={rel:.3}"
    );
}

#[test]
fn mean_gradients_match_fd() {
    let scene = test_scene();
    let cam = camera();
    let r = reference();
    let (sg, _) = analytic_grads(&scene, &cam, &r, Pipeline::TileBased);
    let eps = 2e-5;
    for gid in 0..scene.len() {
        let g = sg.get(gid as u32).expect("gradient present");
        for k in 0..3 {
            let mut plus = scene.clone();
            plus.update(gid, |g| g.mean[k] += eps);
            let mut minus = scene.clone();
            minus.update(gid, |g| g.mean[k] -= eps);
            let fd = (scalar_loss(&plus, &cam, &r) - scalar_loss(&minus, &cam, &r)) / (2.0 * eps);
            check(fd, g.mean[k], &format!("gaussian {gid} mean[{k}]"));
        }
    }
}

#[test]
fn color_gradients_match_fd() {
    let scene = test_scene();
    let cam = camera();
    let r = reference();
    let (sg, _) = analytic_grads(&scene, &cam, &r, Pipeline::TileBased);
    let eps = 1e-5;
    for gid in 0..scene.len() {
        let g = sg.get(gid as u32).unwrap();
        for k in 0..3 {
            let mut plus = scene.clone();
            let mut minus = scene.clone();
            match k {
                0 => {
                    plus.update(gid, |g| g.color.x += eps);
                    minus.update(gid, |g| g.color.x -= eps);
                }
                1 => {
                    plus.update(gid, |g| g.color.y += eps);
                    minus.update(gid, |g| g.color.y -= eps);
                }
                _ => {
                    plus.update(gid, |g| g.color.z += eps);
                    minus.update(gid, |g| g.color.z -= eps);
                }
            }
            let fd = (scalar_loss(&plus, &cam, &r) - scalar_loss(&minus, &cam, &r)) / (2.0 * eps);
            let analytic = match k {
                0 => g.color.x,
                1 => g.color.y,
                _ => g.color.z,
            };
            check(fd, analytic, &format!("gaussian {gid} color[{k}]"));
        }
    }
}

#[test]
fn opacity_gradients_match_fd() {
    let scene = test_scene();
    let cam = camera();
    let r = reference();
    let (sg, _) = analytic_grads(&scene, &cam, &r, Pipeline::TileBased);
    let eps = 2e-5;
    for gid in 0..scene.len() {
        let g = sg.get(gid as u32).unwrap();
        let mut plus = scene.clone();
        plus.update(gid, |g| g.opacity_logit += eps);
        let mut minus = scene.clone();
        minus.update(gid, |g| g.opacity_logit -= eps);
        let fd = (scalar_loss(&plus, &cam, &r) - scalar_loss(&minus, &cam, &r)) / (2.0 * eps);
        check(
            fd,
            g.opacity_logit,
            &format!("gaussian {gid} opacity_logit"),
        );
    }
}

#[test]
fn scale_gradients_match_fd() {
    let scene = test_scene();
    let cam = camera();
    let r = reference();
    let (sg, _) = analytic_grads(&scene, &cam, &r, Pipeline::TileBased);
    let eps = 2e-5;
    for gid in 0..scene.len() {
        let g = sg.get(gid as u32).unwrap();
        for k in 0..3 {
            let mut plus = scene.clone();
            plus.update(gid, |g| g.log_scale[k] += eps);
            let mut minus = scene.clone();
            minus.update(gid, |g| g.log_scale[k] -= eps);
            let fd = (scalar_loss(&plus, &cam, &r) - scalar_loss(&minus, &cam, &r)) / (2.0 * eps);
            check(
                fd,
                g.log_scale[k],
                &format!("gaussian {gid} log_scale[{k}]"),
            );
        }
    }
}

#[test]
fn rotation_gradients_match_fd() {
    let scene = test_scene();
    let cam = camera();
    let r = reference();
    let (sg, _) = analytic_grads(&scene, &cam, &r, Pipeline::TileBased);
    let eps = 2e-5;
    for gid in 0..scene.len() {
        let g = sg.get(gid as u32).unwrap();
        for k in 0..4 {
            let mut plus = scene.clone();
            let mut minus = scene.clone();
            plus.update(gid, |g| {
                let mut q = g.rotation.to_array();
                q[k] += eps;
                g.rotation = Quat::from_array(q);
            });
            minus.update(gid, |g| {
                let mut q = g.rotation.to_array();
                q[k] -= eps;
                g.rotation = Quat::from_array(q);
            });
            let fd = (scalar_loss(&plus, &cam, &r) - scalar_loss(&minus, &cam, &r)) / (2.0 * eps);
            check(fd, g.rotation[k], &format!("gaussian {gid} rotation[{k}]"));
        }
    }
}

#[test]
fn pose_translation_gradients_match_fd() {
    let scene = test_scene();
    let cam = camera();
    let r = reference();
    let (_, pg) = analytic_grads(&scene, &cam, &r, Pipeline::TileBased);
    let eps = 2e-5;
    let analytic = pg.xi.to_array();
    for k in 0..3 {
        let mut xi_p = [0.0; 6];
        xi_p[k] = eps;
        let mut xi_m = [0.0; 6];
        xi_m[k] = -eps;
        let cam_p = Camera::new(cam.intrinsics, cam.pose.retract(Se3::from_array(xi_p)));
        let cam_m = Camera::new(cam.intrinsics, cam.pose.retract(Se3::from_array(xi_m)));
        let fd = (scalar_loss(&scene, &cam_p, &r) - scalar_loss(&scene, &cam_m, &r)) / (2.0 * eps);
        check(fd, analytic[k], &format!("pose rho[{k}]"));
    }
}

#[test]
fn pose_rotation_gradients_point_downhill() {
    // Rotation gradients omit the covariance-orientation term, so check the
    // descent property rather than FD equality: stepping along −grad must
    // reduce the loss.
    let scene = test_scene();
    let cam = camera();
    let r = reference();
    // Perturb the camera so the pose gradient is substantial.
    let cam = Camera::new(
        cam.intrinsics,
        cam.pose.retract(Se3::new(
            Vec3::new(0.01, -0.01, 0.005),
            Vec3::new(0.004, 0.006, -0.003),
        )),
    );
    let (_, pg) = analytic_grads(&scene, &cam, &r, Pipeline::TileBased);
    let g = pg.xi;
    assert!(g.norm() > 0.0);
    let base = scalar_loss(&scene, &cam, &r);
    let step = g * (-1e-4 / g.norm());
    let cam2 = Camera::new(cam.intrinsics, cam.pose.retract(step));
    let stepped = scalar_loss(&scene, &cam2, &r);
    assert!(
        stepped < base,
        "descent step must reduce loss: {base} -> {stepped}"
    );
}

#[test]
fn pipelines_agree_on_gradients() {
    let scene = test_scene();
    let cam = camera();
    let r = reference();
    let (sa, pa) = analytic_grads(&scene, &cam, &r, Pipeline::TileBased);
    let (sb, pb) = analytic_grads(&scene, &cam, &r, Pipeline::PixelBased);
    assert_eq!(sa.len(), sb.len());
    for (id, g) in &sa.entries {
        let h = sb.get(*id).unwrap();
        assert!((g.mean - h.mean).norm() < 1e-8);
        assert!((g.log_scale - h.log_scale).norm() < 1e-8);
        assert!((g.color - h.color).norm() < 1e-8);
    }
    assert!((pa.xi.rho - pb.xi.rho).norm() < 1e-8);
    assert!((pa.xi.phi - pb.xi.phi).norm() < 1e-8);
}
