//! Cross-thread-count golden tests.
//!
//! The worker pool's contract (`splatonic_math::pool`) is that chunk
//! boundaries and merge order never depend on the worker count, so forward
//! images, backward gradients, and the full workload trace must be
//! **bit-identical** for 1, 2, and 8 workers. These tests pin that contract
//! on a seeded random scene for both pipelines.

use splatonic_math::{Rng64, Vec3};
use splatonic_render::loss::LossGrad;
use splatonic_render::pixelset::{PixelCoord, PixelSet};
use splatonic_render::{render_backward, render_forward, Pipeline, RenderConfig};
use splatonic_scene::{Camera, Gaussian, GaussianScene, Intrinsics};

const THREAD_COUNTS: [usize; 2] = [2, 8];

fn random_scene(seed: u64, n: usize) -> GaussianScene {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut scene = GaussianScene::new();
    for _ in 0..n {
        scene.push(Gaussian::new(
            Vec3::new(
                rng.gen_range(-1.5..1.5),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(1.0..4.0),
            ),
            Vec3::new(
                rng.gen_range(0.05..0.3),
                rng.gen_range(0.05..0.3),
                rng.gen_range(0.05..0.3),
            ),
            splatonic_math::Quat::IDENTITY,
            rng.gen_range(0.2..0.95),
            Vec3::new(
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
            ),
        ));
    }
    scene
}

fn camera() -> Camera {
    Camera::look_at(
        Intrinsics::with_fov(96, 72, 1.2),
        Vec3::new(0.3, -0.2, -0.5),
        Vec3::new(0.0, 0.0, 2.0),
        Vec3::Y,
    )
}

fn sparse_set() -> PixelSet {
    let mut set = PixelSet::from_tile_chooser(96, 72, 8, |_, _, x0, y0, tw, th| {
        Some(PixelCoord::new((x0 + tw / 2) as u16, (y0 + th / 2) as u16))
    });
    set.add_extra([PixelCoord::new(10, 11), PixelCoord::new(70, 45)]);
    set
}

fn loss_grads(n: usize) -> Vec<LossGrad> {
    (0..n)
        .map(|i| LossGrad {
            d_color: Vec3::new(0.2, -0.1, 0.15) * ((i % 7) as f64 - 3.0),
            d_depth: 0.03 * ((i % 5) as f64 - 2.0),
        })
        .collect()
}

fn cfg(threads: usize) -> RenderConfig {
    RenderConfig {
        threads,
        ..RenderConfig::default()
    }
}

fn assert_forward_bit_identical(pipeline: Pipeline, pixels: &PixelSet) {
    let scene = random_scene(31, 400);
    let cam = camera();
    let base = render_forward(&scene, &cam, pixels, pipeline, &cfg(1));
    for threads in THREAD_COUNTS {
        let out = render_forward(&scene, &cam, pixels, pipeline, &cfg(threads));
        assert_eq!(
            base.color, out.color,
            "{pipeline:?} color, {threads} workers"
        );
        assert_eq!(
            base.depth, out.depth,
            "{pipeline:?} depth, {threads} workers"
        );
        assert_eq!(
            base.final_transmittance, out.final_transmittance,
            "{pipeline:?} Γ_final, {threads} workers"
        );
        assert_eq!(
            base.contributions, out.contributions,
            "{pipeline:?} contributions, {threads} workers"
        );
        assert_eq!(
            base.trace, out.trace,
            "{pipeline:?} trace, {threads} workers"
        );
    }
}

fn assert_backward_bit_identical(pipeline: Pipeline, pixels: &PixelSet) {
    let scene = random_scene(57, 400);
    let cam = camera();
    let lg = loss_grads(pixels.len());
    let fwd = render_forward(&scene, &cam, pixels, pipeline, &cfg(1));
    let (g1, p1, t1) = render_backward(&scene, &cam, pixels, &fwd, &lg, pipeline, &cfg(1));
    for threads in THREAD_COUNTS {
        let (g, p, t) = render_backward(&scene, &cam, pixels, &fwd, &lg, pipeline, &cfg(threads));
        assert_eq!(g1, g, "{pipeline:?} scene grads, {threads} workers");
        assert_eq!(p1, p, "{pipeline:?} pose grad, {threads} workers");
        assert_eq!(t1, t, "{pipeline:?} backward trace, {threads} workers");
    }
}

#[test]
fn pixel_forward_is_thread_count_invariant_sparse() {
    assert_forward_bit_identical(Pipeline::PixelBased, &sparse_set());
}

#[test]
fn pixel_forward_is_thread_count_invariant_dense() {
    assert_forward_bit_identical(Pipeline::PixelBased, &PixelSet::dense(96, 72));
}

#[test]
fn tile_forward_is_thread_count_invariant_sparse() {
    assert_forward_bit_identical(Pipeline::TileBased, &sparse_set());
}

#[test]
fn tile_forward_is_thread_count_invariant_dense() {
    assert_forward_bit_identical(Pipeline::TileBased, &PixelSet::dense(96, 72));
}

#[test]
fn pixel_backward_is_thread_count_invariant() {
    assert_backward_bit_identical(Pipeline::PixelBased, &sparse_set());
}

#[test]
fn tile_backward_is_thread_count_invariant() {
    assert_backward_bit_identical(Pipeline::TileBased, &PixelSet::dense(96, 72));
}

/// Widths for the binned/cached equality tests: 1, a fixed multi-worker
/// width, and the session default (0 = `SPLATONIC_THREADS` / host).
const EQUALITY_WIDTHS: [usize; 3] = [1, 4, 0];

/// Asserts a binning+cache-enabled render is bit-identical to the
/// exhaustive uncached path on `pixels`, at every equality width.
///
/// The traces must match too, except for `bin_candidates` (the one counter
/// the bin walk adds), which is zeroed before comparison.
fn assert_binned_matches_exhaustive(pixels: &PixelSet, expect_bin_walk: bool) {
    let scene = random_scene(77, 400);
    let cam = camera();
    for threads in EQUALITY_WIDTHS {
        let on = cfg(threads);
        let off = RenderConfig {
            binning: false,
            cache: false,
            ..cfg(threads)
        };
        let a = render_forward(&scene, &cam, pixels, Pipeline::PixelBased, &on);
        let b = render_forward(&scene, &cam, pixels, Pipeline::PixelBased, &off);
        assert_eq!(a.color, b.color, "color, {threads} workers");
        assert_eq!(a.depth, b.depth, "depth, {threads} workers");
        assert_eq!(
            a.final_transmittance, b.final_transmittance,
            "Γ_final, {threads} workers"
        );
        assert_eq!(
            a.contributions, b.contributions,
            "contribs, {threads} workers"
        );
        if expect_bin_walk {
            assert!(
                a.trace.forward.bin_candidates > 0,
                "bin walk must actually run on this set"
            );
        } else {
            assert_eq!(
                a.trace.forward.bin_candidates, 0,
                "dense sets stay exhaustive"
            );
        }
        assert_eq!(b.trace.forward.bin_candidates, 0);
        let mut ta = a.trace.clone();
        ta.forward.bin_candidates = 0;
        assert_eq!(
            ta, b.trace,
            "trace (bin_candidates zeroed), {threads} workers"
        );
    }
}

#[test]
fn binned_forward_matches_exhaustive_sparse() {
    assert_binned_matches_exhaustive(&sparse_set(), true);
}

#[test]
fn binned_forward_matches_exhaustive_pixel_list() {
    // A tile-less set (`from_pixels`): the exhaustive path scans every
    // sample per Gaussian, the binned path prunes by bin — same output.
    let mut rng = Rng64::seed_from_u64(9);
    let pts: Vec<PixelCoord> = (0..150)
        .map(|_| {
            PixelCoord::new(
                rng.gen_range(0.0..96.0) as u16,
                rng.gen_range(0.0..72.0) as u16,
            )
        })
        .collect();
    assert_binned_matches_exhaustive(&PixelSet::from_pixels(96, 72, pts), true);
}

#[test]
fn binned_forward_matches_exhaustive_dense() {
    // Dense sets route to the exhaustive walk even with binning enabled
    // (the bin walk would visit strictly more candidates), so the traces
    // match with bin_candidates = 0 on both sides.
    assert_binned_matches_exhaustive(&PixelSet::dense(96, 72), false);
}

#[test]
fn bin_size_does_not_change_output() {
    let scene = random_scene(83, 400);
    let cam = camera();
    let pixels = sparse_set();
    let base = render_forward(&scene, &cam, &pixels, Pipeline::PixelBased, &cfg(1));
    for bin_size in [4usize, 8, 32] {
        let c = RenderConfig { bin_size, ..cfg(1) };
        let out = render_forward(&scene, &cam, &pixels, Pipeline::PixelBased, &c);
        assert_eq!(base.color, out.color, "bin_size {bin_size}");
        assert_eq!(base.contributions, out.contributions, "bin_size {bin_size}");
        let mut t = out.trace.clone();
        t.forward.bin_candidates = base.trace.forward.bin_candidates;
        assert_eq!(base.trace, t, "bin_size {bin_size} trace");
    }
}

#[test]
fn cached_render_sequence_matches_uncached() {
    // A tracking-shaped sequence — forward and backward at pose A (the
    // backward is a guaranteed cache hit), then forward at pose B (pose
    // delta, invalidation) — must be bit-identical to the same sequence
    // with the cache disabled, at every equality width and both pipelines.
    let scene = random_scene(91, 400);
    let cam_a = camera();
    let cam_b = Camera::look_at(
        Intrinsics::with_fov(96, 72, 1.2),
        Vec3::new(0.35, -0.2, -0.5),
        Vec3::new(0.0, 0.0, 2.0),
        Vec3::Y,
    );
    let pixels = sparse_set();
    let lg = loss_grads(pixels.len());
    for pipeline in [Pipeline::PixelBased, Pipeline::TileBased] {
        for threads in EQUALITY_WIDTHS {
            splatonic_render::projcache::clear();
            splatonic_render::tilesort::clear();
            let on = cfg(threads);
            let off = RenderConfig {
                cache: false,
                sort_cache: false,
                ..cfg(threads)
            };
            let run = |c: &RenderConfig| {
                let f = render_forward(&scene, &cam_a, &pixels, pipeline, c);
                let bwd = render_backward(&scene, &cam_a, &pixels, &f, &lg, pipeline, c);
                let f2 = render_forward(&scene, &cam_b, &pixels, pipeline, c);
                (f, bwd, f2)
            };
            let (fa, ba, fa2) = run(&on);
            match pipeline {
                Pipeline::PixelBased => {
                    // The pixel pipeline reuses projections directly.
                    let stats = splatonic_render::projcache::stats();
                    assert!(stats.hits >= 1, "{pipeline:?}: backward must hit the cache");
                    assert!(
                        stats.invalidations >= 1,
                        "{pipeline:?}: the pose step must invalidate"
                    );
                }
                Pipeline::TileBased => {
                    // The tile pipeline reuses whole sorted tile lists: the
                    // backward pass is an exact hit, the pose step at B a
                    // coherent re-merge of the pose-A order.
                    let stats = splatonic_render::tilesort::stats();
                    assert!(
                        stats.hits >= 1,
                        "{pipeline:?}: backward must hit the sort cache"
                    );
                    assert!(
                        stats.merges >= 1,
                        "{pipeline:?}: the pose step must re-merge"
                    );
                }
            }
            splatonic_render::projcache::clear();
            splatonic_render::tilesort::clear();
            let (fb, bb, fb2) = run(&off);
            assert_eq!(
                fa.color, fb.color,
                "{pipeline:?} fwd color, {threads} workers"
            );
            assert_eq!(
                fa.trace, fb.trace,
                "{pipeline:?} fwd trace, {threads} workers"
            );
            assert_eq!(ba.0, bb.0, "{pipeline:?} scene grads, {threads} workers");
            assert_eq!(ba.1, bb.1, "{pipeline:?} pose grad, {threads} workers");
            assert_eq!(ba.2, bb.2, "{pipeline:?} bwd trace, {threads} workers");
            assert_eq!(
                fa2.color, fb2.color,
                "{pipeline:?} moved fwd, {threads} workers"
            );
            assert_eq!(
                fa2.trace, fb2.trace,
                "{pipeline:?} moved trace, {threads} workers"
            );
        }
    }
    splatonic_render::projcache::clear();
    splatonic_render::tilesort::clear();
}

/// Runs the tile pipeline forward+backward under `c` and returns every
/// output that must be bit-stable across sort-schedule knobs.
fn tile_round(
    scene: &GaussianScene,
    cam: &Camera,
    pixels: &PixelSet,
    lg: &[LossGrad],
    c: &RenderConfig,
) -> (
    splatonic_render::ForwardResult,
    (
        splatonic_render::SceneGrads,
        splatonic_render::PoseGrad,
        splatonic_render::RenderTrace,
    ),
) {
    splatonic_render::projcache::clear();
    splatonic_render::tilesort::clear();
    let f = render_forward(scene, cam, pixels, Pipeline::TileBased, c);
    let b = render_backward(scene, cam, pixels, &f, lg, Pipeline::TileBased, c);
    (f, b)
}

/// Zeroes the sorting-schedule counters, which legitimately differ between
/// grouped and ungrouped runs (the same pattern as `bin_candidates`).
fn zero_sort_counters(t: &mut splatonic_render::RenderTrace) {
    t.forward.sort_lists = 0;
    t.forward.sort_elems = 0;
    t.forward.sort_group_reuse = 0;
}

#[test]
fn grouped_sort_matches_per_tile_oracle() {
    // The default grouped schedule (shared sort per 2×2-tile group, masked
    // per-tile lists) must be bit-identical to the per-tile oracle —
    // images, contributions, gradients, and the trace up to the sort
    // counters — at every width, for forward and backward passes.
    let scene = random_scene(113, 400);
    let cam = camera();
    for pixels in [PixelSet::dense(96, 72), sparse_set()] {
        let lg = loss_grads(pixels.len());
        for threads in EQUALITY_WIDTHS {
            let grouped = RenderConfig {
                tile_grouping: true,
                sort_cache: false,
                ..cfg(threads)
            };
            let oracle = RenderConfig {
                tile_grouping: false,
                sort_cache: false,
                ..cfg(threads)
            };
            let (fg, bg) = tile_round(&scene, &cam, &pixels, &lg, &grouped);
            let (fo, bo) = tile_round(&scene, &cam, &pixels, &lg, &oracle);
            assert_eq!(fg.color, fo.color, "color, {threads} workers");
            assert_eq!(fg.depth, fo.depth, "depth, {threads} workers");
            assert_eq!(
                fg.final_transmittance, fo.final_transmittance,
                "Γ_final, {threads} workers"
            );
            assert_eq!(fg.contributions, fo.contributions, "contribs, {threads}");
            assert!(
                fg.trace.forward.sort_elems < fo.trace.forward.sort_elems,
                "grouping must shrink the sorted-element stream"
            );
            assert!(fg.trace.forward.sort_group_reuse > 0);
            assert_eq!(fo.trace.forward.sort_group_reuse, 0);
            let (mut tg, mut to) = (fg.trace.clone(), fo.trace.clone());
            zero_sort_counters(&mut tg);
            zero_sort_counters(&mut to);
            assert_eq!(tg, to, "trace (sort counters zeroed), {threads} workers");
            assert_eq!(bg.0, bo.0, "scene grads, {threads} workers");
            assert_eq!(bg.1, bo.1, "pose grad, {threads} workers");
            assert_eq!(bg.2, bo.2, "backward trace, {threads} workers");
        }
    }
    splatonic_render::projcache::clear();
    splatonic_render::tilesort::clear();
}

#[test]
fn cached_sort_matches_cold_sort() {
    // A tracking-shaped pose walk (A, A-backward, then three small pose
    // steps exercising the coherent re-merge) with the sort cache on must
    // be bit-identical — outputs *and* traces — to the same walk built
    // cold, at every width.
    let scene = random_scene(127, 400);
    let pixels = PixelSet::dense(96, 72);
    let lg = loss_grads(pixels.len());
    let poses: Vec<Camera> = (0..4)
        .map(|i| {
            Camera::look_at(
                Intrinsics::with_fov(96, 72, 1.2),
                Vec3::new(0.3 + 0.01 * i as f64, -0.2, -0.5),
                Vec3::new(0.0, 0.0, 2.0),
                Vec3::Y,
            )
        })
        .collect();
    for threads in EQUALITY_WIDTHS {
        let walk = |c: &RenderConfig| {
            splatonic_render::projcache::clear();
            splatonic_render::tilesort::clear();
            let mut outs = Vec::new();
            for cam in &poses {
                let f = render_forward(&scene, cam, &pixels, Pipeline::TileBased, c);
                let b = render_backward(&scene, cam, &pixels, &f, &lg, Pipeline::TileBased, c);
                outs.push((f, b));
            }
            outs
        };
        let cached = walk(&cfg(threads));
        let stats = splatonic_render::tilesort::stats();
        assert_eq!(stats.misses, 1, "only the first pose builds cold");
        assert_eq!(stats.merges as usize, poses.len() - 1, "pose steps merge");
        assert_eq!(stats.hits as usize, poses.len(), "every backward hits");
        let cold = walk(&RenderConfig {
            cache: false,
            sort_cache: false,
            ..cfg(threads)
        });
        for (i, ((fc, bc), (fx, bx))) in cached.iter().zip(&cold).enumerate() {
            assert_eq!(fc.color, fx.color, "pose {i} color, {threads} workers");
            assert_eq!(
                fc.contributions, fx.contributions,
                "pose {i} contribs, {threads} workers"
            );
            assert_eq!(fc.trace, fx.trace, "pose {i} trace, {threads} workers");
            assert_eq!(bc.0, bx.0, "pose {i} scene grads, {threads} workers");
            assert_eq!(bc.1, bx.1, "pose {i} pose grad, {threads} workers");
            assert_eq!(bc.2, bx.2, "pose {i} bwd trace, {threads} workers");
        }
    }
    splatonic_render::projcache::clear();
    splatonic_render::tilesort::clear();
}

#[test]
fn group_size_does_not_change_output() {
    let scene = random_scene(131, 400);
    let cam = camera();
    let pixels = sparse_set();
    let base = render_forward(&scene, &cam, &pixels, Pipeline::TileBased, &cfg(1));
    for group_size in [1usize, 3, 4, 8] {
        let c = RenderConfig {
            group_size,
            ..cfg(1)
        };
        let out = render_forward(&scene, &cam, &pixels, Pipeline::TileBased, &c);
        assert_eq!(base.color, out.color, "group_size {group_size}");
        assert_eq!(
            base.contributions, out.contributions,
            "group_size {group_size}"
        );
        let mut t = out.trace.clone();
        zero_sort_counters(&mut t);
        let mut tb = base.trace.clone();
        zero_sort_counters(&mut tb);
        assert_eq!(tb, t, "group_size {group_size} trace");
    }
    splatonic_render::projcache::clear();
    splatonic_render::tilesort::clear();
}

#[test]
fn merged_traces_are_thread_count_invariant() {
    // Traces merged across several renders (the SLAM accumulation pattern)
    // stay bit-identical too.
    let scene = random_scene(101, 300);
    let cam = camera();
    let pixels = sparse_set();
    let run = |threads: usize| {
        let mut merged = splatonic_render::RenderTrace::new();
        for pipeline in [Pipeline::PixelBased, Pipeline::TileBased] {
            let out = render_forward(&scene, &cam, &pixels, pipeline, &cfg(threads));
            merged.merge(&out.trace);
        }
        merged
    };
    let base = run(1);
    for threads in THREAD_COUNTS {
        assert_eq!(base, run(threads), "merged trace, {threads} workers");
    }
}
