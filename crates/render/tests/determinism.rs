//! Cross-thread-count golden tests.
//!
//! The worker pool's contract (`splatonic_math::pool`) is that chunk
//! boundaries and merge order never depend on the worker count, so forward
//! images, backward gradients, and the full workload trace must be
//! **bit-identical** for 1, 2, and 8 workers. These tests pin that contract
//! on a seeded random scene for both pipelines.

use splatonic_math::{Rng64, Vec3};
use splatonic_render::loss::LossGrad;
use splatonic_render::pixelset::{PixelCoord, PixelSet};
use splatonic_render::{render_backward, render_forward, Pipeline, RenderConfig};
use splatonic_scene::{Camera, Gaussian, GaussianScene, Intrinsics};

const THREAD_COUNTS: [usize; 2] = [2, 8];

fn random_scene(seed: u64, n: usize) -> GaussianScene {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut scene = GaussianScene::new();
    for _ in 0..n {
        scene.push(Gaussian::new(
            Vec3::new(
                rng.gen_range(-1.5..1.5),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(1.0..4.0),
            ),
            Vec3::new(
                rng.gen_range(0.05..0.3),
                rng.gen_range(0.05..0.3),
                rng.gen_range(0.05..0.3),
            ),
            splatonic_math::Quat::IDENTITY,
            rng.gen_range(0.2..0.95),
            Vec3::new(
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
            ),
        ));
    }
    scene
}

fn camera() -> Camera {
    Camera::look_at(
        Intrinsics::with_fov(96, 72, 1.2),
        Vec3::new(0.3, -0.2, -0.5),
        Vec3::new(0.0, 0.0, 2.0),
        Vec3::Y,
    )
}

fn sparse_set() -> PixelSet {
    let mut set = PixelSet::from_tile_chooser(96, 72, 8, |_, _, x0, y0, tw, th| {
        Some(PixelCoord::new((x0 + tw / 2) as u16, (y0 + th / 2) as u16))
    });
    set.add_extra([PixelCoord::new(10, 11), PixelCoord::new(70, 45)]);
    set
}

fn loss_grads(n: usize) -> Vec<LossGrad> {
    (0..n)
        .map(|i| LossGrad {
            d_color: Vec3::new(0.2, -0.1, 0.15) * ((i % 7) as f64 - 3.0),
            d_depth: 0.03 * ((i % 5) as f64 - 2.0),
        })
        .collect()
}

fn cfg(threads: usize) -> RenderConfig {
    RenderConfig {
        threads,
        ..RenderConfig::default()
    }
}

fn assert_forward_bit_identical(pipeline: Pipeline, pixels: &PixelSet) {
    let scene = random_scene(31, 400);
    let cam = camera();
    let base = render_forward(&scene, &cam, pixels, pipeline, &cfg(1));
    for threads in THREAD_COUNTS {
        let out = render_forward(&scene, &cam, pixels, pipeline, &cfg(threads));
        assert_eq!(base.color, out.color, "{pipeline:?} color, {threads} workers");
        assert_eq!(base.depth, out.depth, "{pipeline:?} depth, {threads} workers");
        assert_eq!(
            base.final_transmittance, out.final_transmittance,
            "{pipeline:?} Γ_final, {threads} workers"
        );
        assert_eq!(
            base.contributions, out.contributions,
            "{pipeline:?} contributions, {threads} workers"
        );
        assert_eq!(base.trace, out.trace, "{pipeline:?} trace, {threads} workers");
    }
}

fn assert_backward_bit_identical(pipeline: Pipeline, pixels: &PixelSet) {
    let scene = random_scene(57, 400);
    let cam = camera();
    let lg = loss_grads(pixels.len());
    let fwd = render_forward(&scene, &cam, pixels, pipeline, &cfg(1));
    let (g1, p1, t1) = render_backward(&scene, &cam, pixels, &fwd, &lg, pipeline, &cfg(1));
    for threads in THREAD_COUNTS {
        let (g, p, t) = render_backward(&scene, &cam, pixels, &fwd, &lg, pipeline, &cfg(threads));
        assert_eq!(g1, g, "{pipeline:?} scene grads, {threads} workers");
        assert_eq!(p1, p, "{pipeline:?} pose grad, {threads} workers");
        assert_eq!(t1, t, "{pipeline:?} backward trace, {threads} workers");
    }
}

#[test]
fn pixel_forward_is_thread_count_invariant_sparse() {
    assert_forward_bit_identical(Pipeline::PixelBased, &sparse_set());
}

#[test]
fn pixel_forward_is_thread_count_invariant_dense() {
    assert_forward_bit_identical(Pipeline::PixelBased, &PixelSet::dense(96, 72));
}

#[test]
fn tile_forward_is_thread_count_invariant_sparse() {
    assert_forward_bit_identical(Pipeline::TileBased, &sparse_set());
}

#[test]
fn tile_forward_is_thread_count_invariant_dense() {
    assert_forward_bit_identical(Pipeline::TileBased, &PixelSet::dense(96, 72));
}

#[test]
fn pixel_backward_is_thread_count_invariant() {
    assert_backward_bit_identical(Pipeline::PixelBased, &sparse_set());
}

#[test]
fn tile_backward_is_thread_count_invariant() {
    assert_backward_bit_identical(Pipeline::TileBased, &PixelSet::dense(96, 72));
}

#[test]
fn merged_traces_are_thread_count_invariant() {
    // Traces merged across several renders (the SLAM accumulation pattern)
    // stay bit-identical too.
    let scene = random_scene(101, 300);
    let cam = camera();
    let pixels = sparse_set();
    let run = |threads: usize| {
        let mut merged = splatonic_render::RenderTrace::new();
        for pipeline in [Pipeline::PixelBased, Pipeline::TileBased] {
            let out = render_forward(&scene, &cam, &pixels, pipeline, &cfg(threads));
            merged.merge(&out.trace);
        }
        merged
    };
    let base = run(1);
    for threads in THREAD_COUNTS {
        assert_eq!(base, run(threads), "merged trace, {threads} workers");
    }
}
