//! Runtime-detected SIMD implementations of the hot kernels, with the
//! scalar code as the bit-exactness oracle.
//!
//! The four hot kernels — projection (`project_chunk`), preemptive
//! α-checking (`alpha_batch_gaussian` / `alpha_batch_pixel`), compositing
//! (`composite_pixel`), and per-pixel gradient accumulation
//! (`pixel_backward_simd`) — get explicit vector paths here. Every shipped
//! lane replicates the scalar operation *order* exactly (same adds in the
//! same association, `exp` evaluated scalar per lane, IEEE min/max with the
//! never-NaN operand second), so SIMD output is **bit-identical** to the
//! scalar oracle on every input. The determinism suite asserts this
//! directly; [`KernelMode`] remains as the A/B harness for future lanes
//! (e.g. a vectorized polynomial `exp`) that would relax the contract.
//!
//! Backend selection is per-architecture at compile time and per-CPU at
//! runtime:
//!
//! * `x86_64`: AVX2 (`__m256d`, four `f64` lanes), detected once via
//!   `is_x86_feature_detected!` and cached,
//! * `aarch64`: NEON (two `float64x2_t` halves; baseline feature, no
//!   runtime check),
//! * elsewhere: a portable `[f64; 4]` mirror, with [`lanes`] reporting 1 so
//!   the pipelines keep the plain scalar path.
//!
//! See DESIGN.md §13 for the layout and performance model.

use crate::grad::{CamGradAccumulator, PixelBackwardCounts, GRAD_COMPONENTS};
use crate::kernel::{
    alpha_at, project_from_cam, project_gaussian, ProjectedGaussian, RenderConfig,
};
use crate::Contribution;
use splatonic_math::{Vec2, Vec3};
use splatonic_scene::{Camera, GaussianScene};

/// Kernel implementation selector carried by
/// [`RenderConfig::kernels`](crate::RenderConfig).
///
/// Both modes produce bit-identical output (the SIMD lanes replicate the
/// scalar operation order exactly); the flag is the A/B harness demanded of
/// any future lane that relaxes that contract, and the switch the `kernels`
/// bench bin drives via `--scalar` / `--simd`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelMode {
    /// Always use the scalar oracle kernels.
    Scalar,
    /// Use the vector kernels where the CPU supports them (default).
    /// Falls back to scalar automatically when [`lanes`] reports 1.
    #[default]
    Simd,
}

impl KernelMode {
    /// `true` when this mode selects the vector kernels *and* the CPU has a
    /// usable vector unit ([`lanes`] > 1).
    #[inline]
    pub fn simd_active(self) -> bool {
        self == KernelMode::Simd && lanes() > 1
    }

    /// Stable label for telemetry and bench reports.
    pub fn label(self) -> &'static str {
        match self {
            KernelMode::Scalar => "scalar",
            KernelMode::Simd => "simd",
        }
    }
}

/// Hardware `f64` lane width available to the vector kernels: 4 on x86-64
/// with AVX2, 2 on aarch64 (NEON), 1 elsewhere (scalar fallback).
///
/// Detected once per process; also exported as the `render/simd_lanes`
/// counter so bench baselines pin the CI vector width.
#[cfg(target_arch = "x86_64")]
pub fn lanes() -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static LANES: AtomicUsize = AtomicUsize::new(0);
    match LANES.load(Ordering::Relaxed) {
        0 => {
            let l = if is_x86_feature_detected!("avx2") {
                4
            } else {
                1
            };
            LANES.store(l, Ordering::Relaxed);
            l
        }
        l => l,
    }
}

/// Hardware `f64` lane width (NEON baseline on aarch64).
#[cfg(target_arch = "aarch64")]
pub fn lanes() -> usize {
    2
}

/// Hardware `f64` lane width (no vector backend on this architecture).
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub fn lanes() -> usize {
    1
}

#[cfg(target_arch = "x86_64")]
mod arch {
    //! AVX2 backend: one `__m256d` carries the four-element batch.
    //!
    //! Methods are `#[inline(always)]` so they fold into the
    //! `#[target_feature(enable = "avx2")]` kernel bodies. The intrinsic
    //! calls are sound because the kernels assert `lanes() > 1` (runtime
    //! AVX2 detection) before entering vector code.
    use core::arch::x86_64::*;

    #[derive(Clone, Copy)]
    pub(super) struct F4(__m256d);

    impl F4 {
        #[inline(always)]
        pub(super) fn splat(v: f64) -> Self {
            unsafe { F4(_mm256_set1_pd(v)) }
        }
        #[inline(always)]
        pub(super) fn new(a: f64, b: f64, c: f64, d: f64) -> Self {
            unsafe { F4(_mm256_setr_pd(a, b, c, d)) }
        }
        #[inline(always)]
        pub(super) fn load(p: &[f64; 4]) -> Self {
            unsafe { F4(_mm256_loadu_pd(p.as_ptr())) }
        }
        #[inline(always)]
        pub(super) fn add(self, r: Self) -> Self {
            unsafe { F4(_mm256_add_pd(self.0, r.0)) }
        }
        #[inline(always)]
        pub(super) fn sub(self, r: Self) -> Self {
            unsafe { F4(_mm256_sub_pd(self.0, r.0)) }
        }
        #[inline(always)]
        pub(super) fn mul(self, r: Self) -> Self {
            unsafe { F4(_mm256_mul_pd(self.0, r.0)) }
        }
        #[inline(always)]
        pub(super) fn div(self, r: Self) -> Self {
            unsafe { F4(_mm256_div_pd(self.0, r.0)) }
        }
        /// Lanewise max matching `f64::max` under the kernel precondition
        /// that `r` is never NaN (`vmaxpd` returns the second operand on
        /// NaN, which is `f64::max`'s answer for a NaN first operand).
        #[inline(always)]
        pub(super) fn max(self, r: Self) -> Self {
            unsafe { F4(_mm256_max_pd(self.0, r.0)) }
        }
        #[inline(always)]
        pub(super) fn to_array(self) -> [f64; 4] {
            let mut out = [0.0; 4];
            unsafe { _mm256_storeu_pd(out.as_mut_ptr(), self.0) };
            out
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod arch {
    //! NEON backend: two `float64x2_t` halves carry the four-element batch.
    #![allow(unused_unsafe)]
    use core::arch::aarch64::*;

    #[derive(Clone, Copy)]
    pub(super) struct F4(float64x2_t, float64x2_t);

    impl F4 {
        #[inline(always)]
        pub(super) fn splat(v: f64) -> Self {
            unsafe { F4(vdupq_n_f64(v), vdupq_n_f64(v)) }
        }
        #[inline(always)]
        pub(super) fn new(a: f64, b: f64, c: f64, d: f64) -> Self {
            Self::load(&[a, b, c, d])
        }
        #[inline(always)]
        pub(super) fn load(p: &[f64; 4]) -> Self {
            unsafe { F4(vld1q_f64(p.as_ptr()), vld1q_f64(p.as_ptr().add(2))) }
        }
        #[inline(always)]
        pub(super) fn add(self, r: Self) -> Self {
            unsafe { F4(vaddq_f64(self.0, r.0), vaddq_f64(self.1, r.1)) }
        }
        #[inline(always)]
        pub(super) fn sub(self, r: Self) -> Self {
            unsafe { F4(vsubq_f64(self.0, r.0), vsubq_f64(self.1, r.1)) }
        }
        #[inline(always)]
        pub(super) fn mul(self, r: Self) -> Self {
            unsafe { F4(vmulq_f64(self.0, r.0), vmulq_f64(self.1, r.1)) }
        }
        #[inline(always)]
        pub(super) fn div(self, r: Self) -> Self {
            unsafe { F4(vdivq_f64(self.0, r.0), vdivq_f64(self.1, r.1)) }
        }
        /// `fmaxnm` has `f64::max`'s NaN-ignoring (maxNum) semantics.
        #[inline(always)]
        pub(super) fn max(self, r: Self) -> Self {
            unsafe { F4(vmaxnmq_f64(self.0, r.0), vmaxnmq_f64(self.1, r.1)) }
        }
        #[inline(always)]
        pub(super) fn to_array(self) -> [f64; 4] {
            let mut out = [0.0; 4];
            unsafe {
                vst1q_f64(out.as_mut_ptr(), self.0);
                vst1q_f64(out.as_mut_ptr().add(2), self.1);
            }
            out
        }
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
mod arch {
    //! Portable mirror so the kernels compile everywhere. `lanes()` is 1 on
    //! these targets, so the pipelines never dispatch here; the bodies
    //! remain exact scalar replicas regardless.
    #[derive(Clone, Copy)]
    pub(super) struct F4([f64; 4]);

    impl F4 {
        #[inline(always)]
        pub(super) fn splat(v: f64) -> Self {
            F4([v; 4])
        }
        #[inline(always)]
        pub(super) fn new(a: f64, b: f64, c: f64, d: f64) -> Self {
            F4([a, b, c, d])
        }
        #[inline(always)]
        pub(super) fn load(p: &[f64; 4]) -> Self {
            F4(*p)
        }
        #[inline(always)]
        pub(super) fn add(self, r: Self) -> Self {
            F4(std::array::from_fn(|i| self.0[i] + r.0[i]))
        }
        #[inline(always)]
        pub(super) fn sub(self, r: Self) -> Self {
            F4(std::array::from_fn(|i| self.0[i] - r.0[i]))
        }
        #[inline(always)]
        pub(super) fn mul(self, r: Self) -> Self {
            F4(std::array::from_fn(|i| self.0[i] * r.0[i]))
        }
        #[inline(always)]
        pub(super) fn div(self, r: Self) -> Self {
            F4(std::array::from_fn(|i| self.0[i] / r.0[i]))
        }
        #[inline(always)]
        pub(super) fn max(self, r: Self) -> Self {
            F4(std::array::from_fn(|i| self.0[i].max(r.0[i])))
        }
        #[inline(always)]
        pub(super) fn to_array(self) -> [f64; 4] {
            self.0
        }
    }
}

use arch::F4;

/// Structure-of-arrays view of a projected-Gaussian list, gathered once per
/// forward/backward pass so the vector kernels load only the attributes
/// they touch (instead of copying whole [`ProjectedGaussian`] records).
///
/// `colorz` packs `[r, g, b, depth]` contiguously per splat: compositing
/// and the backward pass accumulate those four channels in one lane batch.
#[derive(Debug, Clone, Default)]
pub struct ProjectedSoA {
    mx: Vec<f64>,
    my: Vec<f64>,
    c00: Vec<f64>,
    c01: Vec<f64>,
    c10: Vec<f64>,
    c11: Vec<f64>,
    opacity: Vec<f64>,
    colorz: Vec<[f64; 4]>,
    id: Vec<u32>,
}

impl ProjectedSoA {
    /// Scatters an AoS projection list into per-attribute arrays. The f64
    /// values are copied verbatim, so kernels reading either layout see
    /// identical bits.
    pub fn build(projected: &[ProjectedGaussian]) -> Self {
        let n = projected.len();
        let mut s = ProjectedSoA {
            mx: Vec::with_capacity(n),
            my: Vec::with_capacity(n),
            c00: Vec::with_capacity(n),
            c01: Vec::with_capacity(n),
            c10: Vec::with_capacity(n),
            c11: Vec::with_capacity(n),
            opacity: Vec::with_capacity(n),
            colorz: Vec::with_capacity(n),
            id: Vec::with_capacity(n),
        };
        for pg in projected {
            s.mx.push(pg.mean2d.x);
            s.my.push(pg.mean2d.y);
            s.c00.push(pg.conic.m[0]);
            s.c01.push(pg.conic.m[1]);
            s.c10.push(pg.conic.m[2]);
            s.c11.push(pg.conic.m[3]);
            s.opacity.push(pg.opacity);
            s.colorz
                .push([pg.color.x, pg.color.y, pg.color.z, pg.depth]);
            s.id.push(pg.id);
        }
        s
    }

    /// Number of projected Gaussians.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// Returns `true` when no Gaussian was projected.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }
}

/// Pixels-per-projected-splat ratio below which gathering a
/// [`ProjectedSoA`] costs more than the vector kernels save.
const SOA_AMORTIZE: usize = 8;

/// Whether a pass over `pixel_count` pixels amortizes the O(projected) SoA
/// gather. The scalar oracle and the vector kernels produce bit-identical
/// output, so this heuristic moves wall-clock only — never results. Sparse
/// tracking passes (tens of pixels against thousands of projected splats)
/// stay on the scalar path; dense and mapping passes vectorize.
#[inline]
pub fn soa_pays_off(pixel_count: usize, projected_count: usize) -> bool {
    pixel_count.saturating_mul(SOA_AMORTIZE) >= projected_count
}

/// Asserts the vector backend is usable before entering `unsafe` kernel
/// code; turns an API misuse on a non-AVX2 x86 into a panic instead of UB.
#[inline]
fn assert_vector_unit() {
    assert!(
        lanes() > 1,
        "SIMD kernel invoked without a vector unit; gate calls on KernelMode::simd_active()"
    );
}

/// α-check of one projected Gaussian against a batch of pixel centers
/// (`px[k]`, `py[k]`), appending each α to `out`.
///
/// Bit-identical to pushing `alpha_at(pg, (px[k], py[k]), config).0` per
/// element: the quadratic form replicates `Vec2::dot`'s `0.0 + x·x' + y·y'`
/// association per lane, and `exp` stays scalar per lane.
///
/// # Panics
///
/// Panics when called without a vector unit ([`lanes`] == 1).
pub fn alpha_batch_gaussian(
    pg: &ProjectedGaussian,
    px: &[f64],
    py: &[f64],
    config: &RenderConfig,
    out: &mut Vec<f64>,
) {
    assert_vector_unit();
    debug_assert_eq!(px.len(), py.len());
    // SAFETY: `assert_vector_unit` confirmed the target feature at runtime.
    unsafe { alpha_batch_gaussian_impl(pg, px, py, config, out) }
}

#[cfg_attr(target_arch = "x86_64", target_feature(enable = "avx2"))]
unsafe fn alpha_batch_gaussian_impl(
    pg: &ProjectedGaussian,
    px: &[f64],
    py: &[f64],
    config: &RenderConfig,
    out: &mut Vec<f64>,
) {
    let n = px.len();
    out.reserve(n);
    let mx = F4::splat(pg.mean2d.x);
    let my = F4::splat(pg.mean2d.y);
    let c00 = F4::splat(pg.conic.m[0]);
    let c01 = F4::splat(pg.conic.m[1]);
    let c10 = F4::splat(pg.conic.m[2]);
    let c11 = F4::splat(pg.conic.m[3]);
    let zero = F4::splat(0.0);
    let mut i = 0;
    while i + 4 <= n {
        let pxv = F4::new(px[i], px[i + 1], px[i + 2], px[i + 3]);
        let pyv = F4::new(py[i], py[i + 1], py[i + 2], py[i + 3]);
        let dx = pxv.sub(mx);
        let dy = pyv.sub(my);
        // u = conic·d, rows (m0·dx + m1·dy, m2·dx + m3·dy).
        let ux = c00.mul(dx).add(c01.mul(dy));
        let uy = c10.mul(dx).add(c11.mul(dy));
        // q = u·d via the oracle's `0.0 + ux·dx + uy·dy`, clamped at 0.
        let q = zero.add(ux.mul(dx)).add(uy.mul(dy)).max(zero).to_array();
        for &qk in &q {
            out.push((pg.opacity * (-0.5 * qk).exp()).min(config.alpha_max));
        }
        i += 4;
    }
    while i < n {
        out.push(alpha_at(pg, Vec2::new(px[i], py[i]), config).0);
        i += 1;
    }
}

/// α-check of one pixel against a batch of projected-Gaussian candidates
/// (indices into `soa` / `projected`), appending each α to `out`.
///
/// Bit-identical to `alpha_at(&projected[c], pixel, config).0` per
/// candidate; `projected` backs the scalar tail for partial batches.
///
/// # Panics
///
/// Panics when called without a vector unit ([`lanes`] == 1).
pub fn alpha_batch_pixel(
    soa: &ProjectedSoA,
    projected: &[ProjectedGaussian],
    cands: &[u32],
    pixel: Vec2,
    config: &RenderConfig,
    out: &mut Vec<f64>,
) {
    assert_vector_unit();
    debug_assert_eq!(soa.len(), projected.len());
    // SAFETY: `assert_vector_unit` confirmed the target feature at runtime.
    unsafe { alpha_batch_pixel_impl(soa, projected, cands, pixel, config, out) }
}

#[cfg_attr(target_arch = "x86_64", target_feature(enable = "avx2"))]
unsafe fn alpha_batch_pixel_impl(
    soa: &ProjectedSoA,
    projected: &[ProjectedGaussian],
    cands: &[u32],
    pixel: Vec2,
    config: &RenderConfig,
    out: &mut Vec<f64>,
) {
    let n = cands.len();
    out.reserve(n);
    let pxv = F4::splat(pixel.x);
    let pyv = F4::splat(pixel.y);
    let zero = F4::splat(0.0);
    let gather =
        |v: &[f64], a: usize, b: usize, c: usize, d: usize| F4::new(v[a], v[b], v[c], v[d]);
    let mut i = 0;
    while i + 4 <= n {
        let (a, b, c, d) = (
            cands[i] as usize,
            cands[i + 1] as usize,
            cands[i + 2] as usize,
            cands[i + 3] as usize,
        );
        let dx = pxv.sub(gather(&soa.mx, a, b, c, d));
        let dy = pyv.sub(gather(&soa.my, a, b, c, d));
        let ux = gather(&soa.c00, a, b, c, d)
            .mul(dx)
            .add(gather(&soa.c01, a, b, c, d).mul(dy));
        let uy = gather(&soa.c10, a, b, c, d)
            .mul(dx)
            .add(gather(&soa.c11, a, b, c, d).mul(dy));
        let q = zero.add(ux.mul(dx)).add(uy.mul(dy)).max(zero).to_array();
        for (k, &ci) in [a, b, c, d].iter().enumerate() {
            out.push((soa.opacity[ci] * (-0.5 * q[k]).exp()).min(config.alpha_max));
        }
        i += 4;
    }
    while i < n {
        out.push(alpha_at(&projected[cands[i] as usize], pixel, config).0);
        i += 1;
    }
}

/// Front-to-back compositing of one pixel's depth-sorted candidate list
/// (parallel `projs` / `alphas` arrays — the SoA form of the per-pixel
/// entry list).
///
/// The four color/depth channels `[r, g, b, z]` ride one lane batch through
/// `acc += colorz[proj] · (Γ·α)`; the transmittance recurrence stays
/// scalar (it is serial by definition). Returns
/// `([r, g, b, depth], final transmittance, pairs integrated)` — bitwise
/// the scalar raster loop's sums — and pushes one [`Contribution`] per
/// integrated pair.
///
/// # Panics
///
/// Panics when called without a vector unit ([`lanes`] == 1).
pub fn composite_pixel(
    projs: &[u32],
    alphas: &[f64],
    soa: &ProjectedSoA,
    transmittance_min: f64,
    contribs: &mut Vec<Contribution>,
) -> ([f64; 4], f64, usize) {
    assert_vector_unit();
    debug_assert_eq!(projs.len(), alphas.len());
    // SAFETY: `assert_vector_unit` confirmed the target feature at runtime.
    unsafe { composite_pixel_impl(projs, alphas, soa, transmittance_min, contribs) }
}

#[cfg_attr(target_arch = "x86_64", target_feature(enable = "avx2"))]
unsafe fn composite_pixel_impl(
    projs: &[u32],
    alphas: &[f64],
    soa: &ProjectedSoA,
    transmittance_min: f64,
    contribs: &mut Vec<Contribution>,
) -> ([f64; 4], f64, usize) {
    let mut t = 1.0;
    let mut acc = F4::splat(0.0);
    let mut used = 0usize;
    for (&proj, &alpha) in projs.iter().zip(alphas) {
        if t < transmittance_min {
            break;
        }
        let proj = proj as usize;
        let w = t * alpha;
        acc = acc.add(F4::load(&soa.colorz[proj]).mul(F4::splat(w)));
        contribs.push(Contribution {
            gaussian: soa.id[proj],
            alpha,
            transmittance: t,
        });
        t *= 1.0 - alpha;
        used += 1;
    }
    (acc.to_array(), t, used)
}

/// Reverse color integration for one pixel — the vector twin of
/// [`pixel_backward`](crate::grad::pixel_backward), reading gathered SoA
/// attributes instead of copying whole projection records.
///
/// Lane batch: `[r, g, b, z]` channels share one vector for the direct
/// gradients (`∂L/∂color`, `∂L/∂z`), the α chain (`∂C/∂α`, `∂D/∂α`), and
/// the suffix sums. Lane 3 of the background term carries `-0.0` so the
/// depth suffix picks up no bias (`x + -0.0 == x` bitwise for every `x`).
/// The `∂L/∂α` reduction extracts the four products and sums them in the
/// oracle's association `((0 + p₀) + p₁ + p₂) + p₃`, so the result is
/// bit-identical.
///
/// # Panics
///
/// Panics when called without a vector unit ([`lanes`] == 1).
#[allow(clippy::too_many_arguments)]
pub fn pixel_backward_simd(
    pixel: Vec2,
    contribs: &[Contribution],
    soa: &ProjectedSoA,
    proj_of_id: &[u32],
    dl_dc: Vec3,
    dl_dd: f64,
    config: &RenderConfig,
    background: Vec3,
    accum: &mut CamGradAccumulator,
) -> PixelBackwardCounts {
    assert_vector_unit();
    // SAFETY: `assert_vector_unit` confirmed the target feature at runtime.
    unsafe {
        pixel_backward_impl(
            pixel, contribs, soa, proj_of_id, dl_dc, dl_dd, config, background, accum,
        )
    }
}

#[cfg_attr(target_arch = "x86_64", target_feature(enable = "avx2"))]
#[allow(clippy::too_many_arguments)]
unsafe fn pixel_backward_impl(
    pixel: Vec2,
    contribs: &[Contribution],
    soa: &ProjectedSoA,
    proj_of_id: &[u32],
    dl_dc: Vec3,
    dl_dd: f64,
    config: &RenderConfig,
    background: Vec3,
    accum: &mut CamGradAccumulator,
) -> PixelBackwardCounts {
    let mut counts = PixelBackwardCounts::default();
    if contribs.is_empty() {
        return counts;
    }
    let mut t_final = 1.0;
    for c in contribs {
        t_final *= 1.0 - c.alpha;
    }
    let dldc4 = F4::new(dl_dc.x, dl_dc.y, dl_dc.z, dl_dd);
    // Lane 3 carries -0.0: the depth channel has no background term, and
    // `suffix_z + -0.0` is bitwise `suffix_z` for every value.
    let bgterm = F4::new(
        background.x * t_final,
        background.y * t_final,
        background.z * t_final,
        -0.0,
    );
    let mut sfx = F4::splat(0.0);
    for c in contribs.iter().rev() {
        let proj = proj_of_id[c.gaussian as usize] as usize;
        let colorz = F4::load(&soa.colorz[proj]);
        let w = c.transmittance * c.alpha;
        let dl4 = dldc4.mul(F4::splat(w)); // [∂L/∂color · w, ∂L/∂z · w]
        let one_minus = (1.0 - c.alpha).max(1e-6);
        let dalpha4 = colorz
            .mul(F4::splat(c.transmittance))
            .sub(sfx.add(bgterm).div(F4::splat(one_minus)));
        let p = dldc4.mul(dalpha4).to_array();
        // Oracle order: dl_dc.dot(dc_dalpha) + dl_dd * dd_dalpha.
        let dl_dalpha = ((0.0 + p[0]) + p[1] + p[2]) + p[3];
        let opacity = soa.opacity[proj];
        let g_val = c.alpha / opacity;
        let clamped = c.alpha >= config.alpha_max - 1e-12;
        let (dl_do, dl_dg) = if clamped {
            (0.0, 0.0)
        } else {
            (g_val * dl_dalpha, opacity * dl_dalpha)
        };
        let dl_dq = -0.5 * g_val * dl_dg;
        let dx = pixel.x - soa.mx[proj];
        let dy = pixel.y - soa.my[proj];
        let ux = soa.c00[proj] * dx + soa.c01[proj] * dy;
        let uy = soa.c10[proj] * dx + soa.c11[proj] * dy;
        let dl_dcov = [-dl_dq * ux * ux, -dl_dq * ux * uy, -dl_dq * uy * uy];
        let dla = dl4.to_array();
        let e = accum.entry(c.gaussian);
        e.mean2d += Vec2::new(-2.0 * dl_dq * ux, -2.0 * dl_dq * uy);
        e.cov2d[0] += dl_dcov[0];
        e.cov2d[1] += dl_dcov[1];
        e.cov2d[2] += dl_dcov[2];
        e.depth += dla[3];
        e.color += Vec3::new(dla[0], dla[1], dla[2]);
        e.opacity += dl_do;
        e.count += 1;
        counts.pairs += 1;
        counts.atomic_adds += GRAD_COMPONENTS;
        sfx = sfx.add(colorz.mul(F4::splat(w)));
    }
    counts
}

/// Projects `len` scene Gaussians starting at `offset`, appending the
/// survivors to `out` in index order — bitwise the same records
/// `project_gaussian` emits for each index.
///
/// The camera transform and pinhole projection run four Gaussians per lane
/// batch; surviving lanes finish through the shared scalar covariance tail
/// (`project_from_cam`). Vectorizing that tail (quaternion → Σ' →
/// conic/eigenvalues) is the documented future lane in DESIGN.md §13.
///
/// # Panics
///
/// Panics when called without a vector unit ([`lanes`] == 1), or when
/// `offset + len` exceeds the scene.
pub fn project_chunk(
    scene: &GaussianScene,
    offset: usize,
    len: usize,
    camera: &Camera,
    config: &RenderConfig,
    out: &mut Vec<ProjectedGaussian>,
) {
    assert_vector_unit();
    // SAFETY: `assert_vector_unit` confirmed the target feature at runtime.
    unsafe { project_chunk_impl(scene, offset, len, camera, config, out) }
}

#[cfg_attr(target_arch = "x86_64", target_feature(enable = "avx2"))]
unsafe fn project_chunk_impl(
    scene: &GaussianScene,
    offset: usize,
    len: usize,
    camera: &Camera,
    config: &RenderConfig,
    out: &mut Vec<ProjectedGaussian>,
) {
    let means = &scene.means()[offset..offset + len];
    let r = camera.pose.rotation.m;
    let tr = camera.pose.translation;
    let intr = &camera.intrinsics;
    let rv: [F4; 9] = std::array::from_fn(|i| F4::splat(r[i]));
    let (tx, ty, tz) = (F4::splat(tr.x), F4::splat(tr.y), F4::splat(tr.z));
    let (fx, fy) = (F4::splat(intr.fx), F4::splat(intr.fy));
    let (cx, cy) = (F4::splat(intr.cx), F4::splat(intr.cy));
    let mut i = 0;
    while i + 4 <= len {
        let m = &means[i..i + 4];
        let xs = F4::new(m[0].x, m[1].x, m[2].x, m[3].x);
        let ys = F4::new(m[0].y, m[1].y, m[2].y, m[3].y);
        let zs = F4::new(m[0].z, m[1].z, m[2].z, m[3].z);
        // p_cam = R·p + t, row-major rows in the oracle's association
        // ((m₀x + m₁y) + m₂z) + tᵢ.
        let px = rv[0].mul(xs).add(rv[1].mul(ys)).add(rv[2].mul(zs)).add(tx);
        let py = rv[3].mul(xs).add(rv[4].mul(ys)).add(rv[5].mul(zs)).add(ty);
        let pz = rv[6].mul(xs).add(rv[7].mul(ys)).add(rv[8].mul(zs)).add(tz);
        // Pinhole: ((f·p)/z) + c, matching the scalar expression order.
        let mx = fx.mul(px).div(pz).add(cx).to_array();
        let my = fy.mul(py).div(pz).add(cy).to_array();
        let (pxa, pya, pza) = (px.to_array(), py.to_array(), pz.to_array());
        for k in 0..4 {
            if pza[k] <= config.near {
                continue;
            }
            let gi = offset + i + k;
            let g = scene.gaussian(gi);
            if let Some(pg) = project_from_cam(
                &g,
                gi as u32,
                Vec3::new(pxa[k], pya[k], pza[k]),
                Vec2::new(mx[k], my[k]),
                camera,
                config,
            ) {
                out.push(pg);
            }
        }
        i += 4;
    }
    while i < len {
        let gi = offset + i;
        let g = scene.gaussian(gi);
        if let Some(pg) = project_gaussian(&g, gi as u32, camera, config) {
            out.push(pg);
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatonic_math::{Pose, Quat};
    use splatonic_scene::{Gaussian, Intrinsics};

    fn scene() -> GaussianScene {
        let mut s = GaussianScene::new();
        for i in 0..23 {
            let f = i as f64;
            s.push(Gaussian::new(
                Vec3::new(0.17 * f - 1.5, 0.09 * (f - 7.0), 2.0 + 0.21 * f),
                Vec3::new(0.05 + 0.003 * f, 0.06, 0.04),
                Quat::from_axis_angle(Vec3::new(0.3, 1.0, -0.2), 0.17 * f),
                0.1 + 0.035 * f,
                Vec3::new(0.04 * f, 1.0 - 0.04 * f, 0.5),
            ));
        }
        s
    }

    fn camera() -> Camera {
        Camera::new(
            Intrinsics::with_fov(64, 48, 1.2),
            Pose::new(
                Quat::from_axis_angle(Vec3::Y, 0.1).to_rotation_matrix(),
                Vec3::new(0.05, -0.02, 0.1),
            ),
        )
    }

    #[test]
    fn lanes_is_stable_and_positive() {
        let l = lanes();
        assert!(l >= 1);
        assert_eq!(l, lanes());
    }

    #[test]
    fn simd_active_requires_simd_mode() {
        assert!(!KernelMode::Scalar.simd_active());
        assert_eq!(KernelMode::Simd.simd_active(), lanes() > 1);
        assert_eq!(KernelMode::default(), KernelMode::Simd);
    }

    #[test]
    fn soa_mirrors_projection_list() {
        let cfg = RenderConfig::default();
        let (projected, _) = crate::kernel::project_scene(&scene(), &camera(), &cfg);
        assert!(!projected.is_empty());
        let soa = ProjectedSoA::build(&projected);
        assert_eq!(soa.len(), projected.len());
        for (i, pg) in projected.iter().enumerate() {
            assert_eq!(soa.mx[i].to_bits(), pg.mean2d.x.to_bits());
            assert_eq!(soa.c01[i].to_bits(), pg.conic.m[1].to_bits());
            assert_eq!(soa.colorz[i][3].to_bits(), pg.depth.to_bits());
            assert_eq!(soa.id[i], pg.id);
        }
    }

    #[test]
    fn project_chunk_matches_scalar_bitwise() {
        if lanes() == 1 {
            return;
        }
        let s = scene();
        let cam = camera();
        let cfg = RenderConfig::default();
        let mut simd_out = Vec::new();
        project_chunk(&s, 0, s.len(), &cam, &cfg, &mut simd_out);
        let mut scalar_out = Vec::new();
        for i in 0..s.len() {
            if let Some(pg) = project_gaussian(&s.gaussian(i), i as u32, &cam, &cfg) {
                scalar_out.push(pg);
            }
        }
        assert_eq!(simd_out.len(), scalar_out.len());
        for (a, b) in simd_out.iter().zip(&scalar_out) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.mean2d.x.to_bits(), b.mean2d.x.to_bits());
            assert_eq!(a.mean2d.y.to_bits(), b.mean2d.y.to_bits());
            assert_eq!(a.conic.m[0].to_bits(), b.conic.m[0].to_bits());
            assert_eq!(a.depth.to_bits(), b.depth.to_bits());
        }
    }

    #[test]
    fn alpha_batches_match_scalar_bitwise() {
        if lanes() == 1 {
            return;
        }
        let cfg = RenderConfig::default();
        let (projected, _) = crate::kernel::project_scene(&scene(), &camera(), &cfg);
        let soa = ProjectedSoA::build(&projected);
        // Odd-length batches exercise the scalar tails too.
        let pts: Vec<Vec2> = (0..13)
            .map(|k| Vec2::new(3.0 + 4.7 * k as f64, 2.0 + 3.1 * k as f64))
            .collect();
        let px: Vec<f64> = pts.iter().map(|p| p.x).collect();
        let py: Vec<f64> = pts.iter().map(|p| p.y).collect();
        for pg in &projected {
            let mut batched = Vec::new();
            alpha_batch_gaussian(pg, &px, &py, &cfg, &mut batched);
            for (k, p) in pts.iter().enumerate() {
                assert_eq!(batched[k].to_bits(), alpha_at(pg, *p, &cfg).0.to_bits());
            }
        }
        let cands: Vec<u32> = (0..projected.len() as u32).collect();
        for p in &pts {
            let mut batched = Vec::new();
            alpha_batch_pixel(&soa, &projected, &cands, *p, &cfg, &mut batched);
            for (k, pg) in projected.iter().enumerate() {
                assert_eq!(batched[k].to_bits(), alpha_at(pg, *p, &cfg).0.to_bits());
            }
        }
    }

    #[test]
    fn composite_matches_scalar_bitwise() {
        if lanes() == 1 {
            return;
        }
        let cfg = RenderConfig::default();
        let (projected, _) = crate::kernel::project_scene(&scene(), &camera(), &cfg);
        let soa = ProjectedSoA::build(&projected);
        let projs: Vec<u32> = (0..projected.len() as u32).collect();
        let alphas: Vec<f64> = projected
            .iter()
            .enumerate()
            .map(|(i, _)| 0.05 + 0.11 * (i % 9) as f64)
            .collect();
        let mut contribs = Vec::new();
        let (acc, t, used) =
            composite_pixel(&projs, &alphas, &soa, cfg.transmittance_min, &mut contribs);
        // Scalar oracle (the pixel.rs raster loop).
        let mut st = 1.0;
        let mut c = Vec3::ZERO;
        let mut d = 0.0;
        let mut sused = 0;
        let mut scontribs = Vec::new();
        for (e, &alpha) in projs.iter().zip(&alphas) {
            if st < cfg.transmittance_min {
                break;
            }
            let pg = &projected[*e as usize];
            let w = st * alpha;
            c += pg.color * w;
            d += pg.depth * w;
            scontribs.push(Contribution {
                gaussian: pg.id,
                alpha,
                transmittance: st,
            });
            st *= 1.0 - alpha;
            sused += 1;
        }
        assert_eq!(used, sused);
        assert_eq!(t.to_bits(), st.to_bits());
        assert_eq!(acc[0].to_bits(), c.x.to_bits());
        assert_eq!(acc[1].to_bits(), c.y.to_bits());
        assert_eq!(acc[2].to_bits(), c.z.to_bits());
        assert_eq!(acc[3].to_bits(), d.to_bits());
        assert_eq!(contribs.len(), scontribs.len());
        for (a, b) in contribs.iter().zip(&scontribs) {
            assert_eq!(a.gaussian, b.gaussian);
            assert_eq!(a.transmittance.to_bits(), b.transmittance.to_bits());
        }
    }

    #[test]
    fn backward_matches_scalar_bitwise() {
        if lanes() == 1 {
            return;
        }
        let cfg = RenderConfig::default();
        let s = scene();
        let (projected, _) = crate::kernel::project_scene(&s, &camera(), &cfg);
        let soa = ProjectedSoA::build(&projected);
        let mut proj_of_id = vec![u32::MAX; s.len()];
        for (pi, pg) in projected.iter().enumerate() {
            proj_of_id[pg.id as usize] = pi as u32;
        }
        let lookup = |id: u32| projected[proj_of_id[id as usize] as usize];
        let mut t = 1.0;
        let contribs: Vec<Contribution> = projected
            .iter()
            .enumerate()
            .map(|(i, pg)| {
                let alpha = (0.03 + 0.09 * (i % 10) as f64).min(pg.opacity);
                let c = Contribution {
                    gaussian: pg.id,
                    alpha,
                    transmittance: t,
                };
                t *= 1.0 - alpha;
                c
            })
            .collect();
        let pixel = Vec2::new(31.5, 23.5);
        let dl_dc = Vec3::new(0.4, -0.3, 0.2);
        let dl_dd = 0.07;
        let bg = Vec3::new(0.1, 0.2, 0.3);
        let mut acc_simd = CamGradAccumulator::new(s.len());
        acc_simd.reset(s.len());
        let counts_simd = pixel_backward_simd(
            pixel,
            &contribs,
            &soa,
            &proj_of_id,
            dl_dc,
            dl_dd,
            &cfg,
            bg,
            &mut acc_simd,
        );
        let mut acc_scalar = CamGradAccumulator::new(s.len());
        acc_scalar.reset(s.len());
        let counts_scalar = crate::grad::pixel_backward(
            pixel,
            &contribs,
            &lookup,
            dl_dc,
            dl_dd,
            &cfg,
            bg,
            &mut acc_scalar,
        );
        assert_eq!(counts_simd, counts_scalar);
        assert_eq!(acc_simd.touched(), acc_scalar.touched());
        for &id in acc_scalar.touched() {
            let a = acc_simd.get(id);
            let b = acc_scalar.get(id);
            assert_eq!(a.mean2d.x.to_bits(), b.mean2d.x.to_bits());
            assert_eq!(a.mean2d.y.to_bits(), b.mean2d.y.to_bits());
            for k in 0..3 {
                assert_eq!(a.cov2d[k].to_bits(), b.cov2d[k].to_bits());
            }
            assert_eq!(a.depth.to_bits(), b.depth.to_bits());
            assert_eq!(a.color.x.to_bits(), b.color.x.to_bits());
            assert_eq!(a.color.y.to_bits(), b.color.y.to_bits());
            assert_eq!(a.color.z.to_bits(), b.color.z.to_bits());
            assert_eq!(a.opacity.to_bits(), b.opacity.to_bits());
            assert_eq!(a.count, b.count);
        }
    }
}
