//! Workload statistics recorded during rendering.
//!
//! The hardware models in `splatonic-gpusim` and `splatonic-accel` do not
//! re-run the renderer; they consume a [`RenderTrace`] — counts of the exact
//! operations each stage performed on the *real* workload (α-checks,
//! integrated pairs, warp occupancy, atomic collisions, bytes moved). This is
//! what lets warp divergence and aggregation contention come out of measured
//! distributions rather than assumed ones (DESIGN.md §5).

use splatonic_math::stats::Summary;

/// Forward-pass stage counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ForwardStats {
    /// Gaussians fed into projection.
    pub gaussians_input: u64,
    /// Gaussians culled by frustum / degeneracy tests.
    pub gaussians_culled: u64,
    /// Gaussians surviving projection.
    pub gaussians_projected: u64,
    /// Tile-based: tile–Gaussian intersection pairs written to the table.
    pub tile_pairs: u64,
    /// Pixel-based: candidate pixel–Gaussian pairs α-checked at projection
    /// (preemptive α-checking, paper Sec. IV-B).
    pub proj_alpha_checks: u64,
    /// Pixel-based: candidate visits made through the screen-space bin
    /// index ([`crate::binning`]) before the exhaustive predicate filters
    /// them. Zero when the exhaustive Gaussian-major discovery ran instead
    /// (binning disabled, or the pixel set is dense enough that the bin
    /// walk would visit more pairs than direct indexing).
    pub bin_candidates: u64,
    /// Pixel-based: candidate pairs that passed preemptive α-checking.
    pub proj_pairs_kept: u64,
    /// Total elements passed through sorting (sum of list lengths). For the
    /// tile pipeline this reflects the schedule that actually ran: per-tile
    /// list lengths when tile grouping is off, shared group-union list
    /// lengths when it is on (see `RenderConfig::tile_grouping`).
    pub sort_elems: u64,
    /// Number of sorted lists (tiles, tile groups, or pixels).
    pub sort_lists: u64,
    /// Tile-based with grouping: tiles whose depth-sorted list was derived
    /// by masking a shared group sort instead of being sorted independently
    /// (the per-tile sorts avoided by GS-TG-style grouping). Zero when
    /// grouping is disabled and for the pixel pipeline.
    pub sort_group_reuse: u64,
    /// α-checks performed inside rasterization (tile-based only; the
    /// pixel-based pipeline has none by construction).
    pub raster_alpha_checks: u64,
    /// Pixel–Gaussian pairs actually integrated into a pixel.
    pub pairs_integrated: u64,
    /// Pixels shaded.
    pub pixels_shaded: u64,
    /// Exponential evaluations (SFU ops) across all stages.
    pub exp_evals: u64,
    /// Warp-steps issued during rasterization (one step = one Gaussian
    /// broadcast to a 32-thread warp).
    pub warp_steps: u64,
    /// Sum of active threads over all warp-steps (≤ 32 · warp_steps).
    pub warp_active: u64,
    /// Distribution of per-pixel contributing-list lengths.
    pub pixel_list_len: Summary,
    /// Approximate DRAM bytes read by the forward pass.
    pub bytes_read: u64,
    /// Approximate DRAM bytes written by the forward pass.
    pub bytes_written: u64,
}

impl ForwardStats {
    /// Thread utilization during rasterization in `[0, 1]`
    /// (paper Fig. 7 reports ≈ 28% for tile-based rendering).
    pub fn warp_utilization(&self) -> f64 {
        if self.warp_steps == 0 {
            0.0
        } else {
            self.warp_active as f64 / (self.warp_steps * 32) as f64
        }
    }
}

/// Backward-pass stage counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BackwardStats {
    /// α-checks re-performed during reverse rasterization (tile-based).
    pub alpha_checks: u64,
    /// Pixel–Gaussian pairs whose partial gradients were computed.
    pub pairs_grad: u64,
    /// Cross-thread reduction operations (pixel-based Γ reduction +
    /// gradient reductions).
    pub reduction_ops: u64,
    /// Scalar atomic adds issued during aggregation.
    pub atomic_adds: u64,
    /// Exponential evaluations in the backward pass.
    pub exp_evals: u64,
    /// Warp-steps issued during reverse rasterization.
    pub warp_steps: u64,
    /// Sum of active threads over those warp-steps.
    pub warp_active: u64,
    /// Distribution of per-Gaussian gradient-contribution counts
    /// (the aggregation-contention driver).
    pub gaussian_touches: Summary,
    /// Number of distinct Gaussians receiving gradients.
    pub gaussians_touched: u64,
    /// Re-projection operations (one per touched Gaussian).
    pub reprojections: u64,
    /// Approximate DRAM bytes read by the backward pass.
    pub bytes_read: u64,
    /// Approximate DRAM bytes written by the backward pass.
    pub bytes_written: u64,
}

impl BackwardStats {
    /// Thread utilization during reverse rasterization in `[0, 1]`.
    pub fn warp_utilization(&self) -> f64 {
        if self.warp_steps == 0 {
            0.0
        } else {
            self.warp_active as f64 / (self.warp_steps * 32) as f64
        }
    }

    /// Mean number of pixels contributing to each touched Gaussian; the
    /// expected `atomicAdd` collision depth during aggregation.
    pub fn mean_contention(&self) -> f64 {
        self.gaussian_touches.mean()
    }
}

/// Complete workload trace of one forward(+backward) render.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RenderTrace {
    /// Forward-pass counters.
    pub forward: ForwardStats,
    /// Backward-pass counters (default-empty until a backward pass runs).
    pub backward: BackwardStats,
    /// Per-pixel contributing-list lengths (for the cycle-level simulators).
    pub pixel_lists: Vec<u32>,
    /// Per-Gaussian candidate-pixel counts at projection (pixel-based).
    pub proj_candidates: Vec<u32>,
}

impl RenderTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        RenderTrace::default()
    }

    /// Merges another trace's counters into this one (summing counts).
    ///
    /// The destructuring below is deliberately exhaustive (no `..`): adding
    /// a counter to [`ForwardStats`], [`BackwardStats`], or [`RenderTrace`]
    /// fails compilation here until the merge handles it, so a new counter
    /// can never be silently dropped when traces are aggregated.
    pub fn merge(&mut self, other: &RenderTrace) {
        let RenderTrace {
            forward,
            backward,
            pixel_lists,
            proj_candidates,
        } = other;
        let f = &mut self.forward;
        let ForwardStats {
            gaussians_input,
            gaussians_culled,
            gaussians_projected,
            tile_pairs,
            proj_alpha_checks,
            bin_candidates,
            proj_pairs_kept,
            sort_elems,
            sort_lists,
            sort_group_reuse,
            raster_alpha_checks,
            pairs_integrated,
            pixels_shaded,
            exp_evals,
            warp_steps,
            warp_active,
            pixel_list_len,
            bytes_read,
            bytes_written,
        } = forward;
        f.gaussians_input += gaussians_input;
        f.gaussians_culled += gaussians_culled;
        f.gaussians_projected += gaussians_projected;
        f.tile_pairs += tile_pairs;
        f.proj_alpha_checks += proj_alpha_checks;
        f.bin_candidates += bin_candidates;
        f.proj_pairs_kept += proj_pairs_kept;
        f.sort_elems += sort_elems;
        f.sort_lists += sort_lists;
        f.sort_group_reuse += sort_group_reuse;
        f.raster_alpha_checks += raster_alpha_checks;
        f.pairs_integrated += pairs_integrated;
        f.pixels_shaded += pixels_shaded;
        f.exp_evals += exp_evals;
        f.warp_steps += warp_steps;
        f.warp_active += warp_active;
        f.pixel_list_len.merge(pixel_list_len);
        f.bytes_read += bytes_read;
        f.bytes_written += bytes_written;
        let b = &mut self.backward;
        let BackwardStats {
            alpha_checks,
            pairs_grad,
            reduction_ops,
            atomic_adds,
            exp_evals,
            warp_steps,
            warp_active,
            gaussian_touches,
            gaussians_touched,
            reprojections,
            bytes_read,
            bytes_written,
        } = backward;
        b.alpha_checks += alpha_checks;
        b.pairs_grad += pairs_grad;
        b.reduction_ops += reduction_ops;
        b.atomic_adds += atomic_adds;
        b.exp_evals += exp_evals;
        b.warp_steps += warp_steps;
        b.warp_active += warp_active;
        b.gaussian_touches.merge(gaussian_touches);
        b.gaussians_touched += gaussians_touched;
        b.reprojections += reprojections;
        b.bytes_read += bytes_read;
        b.bytes_written += bytes_written;
        self.pixel_lists.extend_from_slice(pixel_lists);
        self.proj_candidates.extend_from_slice(proj_candidates);
    }
}

/// Approximate per-record byte sizes used for DRAM-traffic accounting.
///
/// A Gaussian record is mean (12B) + quaternion (16B) + scale (12B) +
/// opacity (4B) + color (12B) ≈ 56B, padded to 64. A projected record is
/// mean2d (8) + conic (12) + depth (4) + color (12) + opacity (4) ≈ 40,
/// padded to 48. A gradient record covers the 11 scalar gradient components.
pub mod bytes {
    /// Bytes per Gaussian parameter record.
    pub const GAUSSIAN: u64 = 64;
    /// Bytes per projected-Gaussian record.
    pub const PROJECTED: u64 = 48;
    /// Bytes per pixel–Gaussian pair entry (id + α + depth).
    pub const PAIR_ENTRY: u64 = 12;
    /// Bytes per gradient record (11 f32 components, padded).
    pub const GRADIENT: u64 = 48;
    /// Bytes per shaded pixel result (color + depth + transmittance).
    pub const PIXEL_OUT: u64 = 20;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_bounds() {
        let mut f = ForwardStats::default();
        assert_eq!(f.warp_utilization(), 0.0);
        f.warp_steps = 10;
        f.warp_active = 320;
        assert!((f.warp_utilization() - 1.0).abs() < 1e-12);
        f.warp_active = 32;
        assert!((f.warp_utilization() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn backward_contention() {
        let mut b = BackwardStats::default();
        b.gaussian_touches.push(4.0);
        b.gaussian_touches.push(6.0);
        assert!((b.mean_contention() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = RenderTrace::new();
        a.forward.pairs_integrated = 10;
        a.backward.atomic_adds = 5;
        a.pixel_lists.push(3);
        let mut b = RenderTrace::new();
        b.forward.pairs_integrated = 7;
        b.backward.atomic_adds = 2;
        b.pixel_lists.push(4);
        a.merge(&b);
        assert_eq!(a.forward.pairs_integrated, 17);
        assert_eq!(a.backward.atomic_adds, 7);
        assert_eq!(a.pixel_lists, vec![3, 4]);
    }
}
