//! Cross-iteration projection cache (thread-local, small keyed LRU).
//!
//! Tracking and mapping call the renderer many times per frame — one
//! forward and one backward pass per Adam iteration — and every call starts
//! by projecting the whole scene ([`crate::kernel::project_scene`]). Within
//! one iteration the backward pass projects at *exactly* the pose the
//! forward pass just used, so half of all projection work is verbatim
//! recomputation. This module caches recent projection results (projected
//! means, conics, depths, and the α-filter cull verdicts — culled Gaussians
//! are simply absent from the list) and replays one when the next render is
//! provably identical.
//!
//! # Why more than one entry
//!
//! The cache held a single entry through PR 7, which is exactly right for
//! one SLAM session: renders alternate forward/backward at one pose. But a
//! multi-session manager interleaves K sessions on the *same* thread, and
//! with one slot every session switch evicted the previous session's entry
//! — K interleaved sessions drove the hit rate to zero while K sequential
//! runs enjoyed ~50%. The cache is therefore a small LRU
//! ([`CACHE_CAPACITY`] entries, most-recent-first) keyed by scene revision
//! plus pose bits: each session's scene has a distinct revision, so K ≤
//! [`CACHE_CAPACITY`] interleaved sessions each keep their own entry and
//! the per-session hit pattern matches the sequential run exactly (the
//! cross-session thrash regression test below pins this down).
//!
//! # Invalidation bound
//!
//! Reuse must keep the output **bit-identical** to the uncached path, so
//! the pose-delta bound under which a cached projection may be reused is
//! the only conservative choice that needs no error analysis:
//! [`POSE_REUSE_BOUND`]` = 0.0` — the pose (all nine rotation entries and
//! all three translation entries) must match *bitwise*. Any nonzero pose
//! delta invalidates the entry; that event is what the
//! `cache_invalidations` statistic counts. The remaining key fields guard
//! everything else projection reads: the scene contents (via
//! [`GaussianScene::revision`], which changes on every mutation), the
//! intrinsics, and the numeric knobs (`near`, `screen_blur`, `bbox_sigma`).
//!
//! # Determinism
//!
//! A hit returns the identical `Vec<ProjectedGaussian>` (shared via `Rc`)
//! that a fresh projection would produce, so downstream work — and
//! therefore the [`crate::RenderTrace`] — is unchanged. Hit/miss
//! *statistics* are intentionally kept out of the trace: whether a render
//! hits depends on which render ran before it on this thread (telemetry's
//! extra PSNR renders, for example, change the sequence without changing
//! any output), so the statistics live here and are exported to telemetry
//! as side-band counters instead.
//!
//! The cache is thread-local and entries are keyed on process-unique
//! revisions, so worker threads never observe each other's entries and
//! results stay bit-identical at every `SPLATONIC_THREADS` width (renders
//! are issued from the caller's thread; the pool only fans out *inside*
//! one projection).

use crate::kernel::{project_scene, ProjectedGaussian, RenderConfig};
use splatonic_scene::{Camera, GaussianScene};
use std::cell::RefCell;
use std::rc::Rc;

/// Maximum pose delta (any rotation or translation component, bitwise)
/// under which a cached projection may be reused. Zero: reuse requires
/// bitwise pose equality, which is what keeps the cached path bit-identical
/// to the uncached one with no approximation-error analysis.
pub const POSE_REUSE_BOUND: f64 = 0.0;

/// Everything [`crate::kernel::project_gaussian`] reads besides the
/// Gaussian itself, as bit patterns (f64 compared by `to_bits` so that the
/// key is `Eq` and NaN-safe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Key {
    scene_revision: u64,
    scene_len: usize,
    rotation: [u64; 9],
    translation: [u64; 3],
    fx: u64,
    fy: u64,
    cx: u64,
    cy: u64,
    width: usize,
    height: usize,
    near: u64,
    screen_blur: u64,
    bbox_sigma: u64,
}

impl Key {
    pub(crate) fn new(scene: &GaussianScene, camera: &Camera, config: &RenderConfig) -> Key {
        let mut rotation = [0u64; 9];
        for (i, slot) in rotation.iter_mut().enumerate() {
            *slot = camera.pose.rotation.m[i].to_bits();
        }
        let t = camera.pose.translation;
        let intr = &camera.intrinsics;
        Key {
            scene_revision: scene.revision(),
            scene_len: scene.len(),
            rotation,
            translation: [t.x.to_bits(), t.y.to_bits(), t.z.to_bits()],
            fx: intr.fx.to_bits(),
            fy: intr.fy.to_bits(),
            cx: intr.cx.to_bits(),
            cy: intr.cy.to_bits(),
            width: intr.width,
            height: intr.height,
            near: config.near.to_bits(),
            screen_blur: config.screen_blur.to_bits(),
            bbox_sigma: config.bbox_sigma.to_bits(),
        }
    }

    /// True when the two keys differ *only* in the pose — the signature of
    /// an iteration-to-iteration pose step (tracking) as opposed to a scene
    /// edit or a camera/config swap.
    pub(crate) fn pose_only_delta(&self, other: &Key) -> bool {
        self.scene_revision == other.scene_revision
            && self.scene_len == other.scene_len
            && self.fx == other.fx
            && self.fy == other.fy
            && self.cx == other.cx
            && self.cy == other.cy
            && self.width == other.width
            && self.height == other.height
            && self.near == other.near
            && self.screen_blur == other.screen_blur
            && self.bbox_sigma == other.bbox_sigma
            && (self.rotation != other.rotation || self.translation != other.translation)
    }
}

/// Cache effectiveness counters (thread-local, process lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Renders served from the cached projection.
    pub hits: u64,
    /// Renders that had to project from scratch (includes invalidations).
    pub misses: u64,
    /// Misses caused by a pose delta alone — the entry was discarded
    /// because the camera moved past [`POSE_REUSE_BOUND`] while everything
    /// else still matched.
    pub invalidations: u64,
}

impl CacheStats {
    /// Counter-wise difference `self − earlier` (for per-frame deltas).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            invalidations: self.invalidations - earlier.invalidations,
        }
    }

    /// Counter-wise accumulation `self += delta` — the inverse of
    /// [`CacheStats::since`], used by session accounting that sums many
    /// bracketed windows into one per-session total.
    pub fn add(&mut self, delta: &CacheStats) {
        self.hits += delta.hits;
        self.misses += delta.misses;
        self.invalidations += delta.invalidations;
    }
}

/// Entries retained per thread. Sized for a small fleet of interleaved
/// sessions (each live session occupies one slot via its unique scene
/// revision); deliberately tiny because each entry pins a full projection
/// list (`Rc<Vec<ProjectedGaussian>>`).
pub const CACHE_CAPACITY: usize = 8;

struct Entry {
    key: Key,
    projected: Rc<Vec<ProjectedGaussian>>,
    culled: u64,
}

#[derive(Default)]
struct CacheState {
    /// Most-recently-used first, at most [`CACHE_CAPACITY`] entries.
    entries: Vec<Entry>,
    stats: CacheStats,
}

thread_local! {
    static CACHE: RefCell<CacheState> = RefCell::new(CacheState::default());
}

/// Projects the scene through the cache: returns the shared projection
/// list (ordered by scene index, culled Gaussians absent) and the culled
/// count, replaying the previous result when the key matches bitwise.
///
/// With `config.cache == false` this is a plain [`project_scene`] call —
/// no lookup, no store, no statistics.
pub fn project_scene_cached(
    scene: &GaussianScene,
    camera: &Camera,
    config: &RenderConfig,
) -> (Rc<Vec<ProjectedGaussian>>, u64) {
    if !config.cache {
        let _p = crate::phase::begin("render/project");
        let (projected, culled) = project_scene(scene, camera, config);
        return (Rc::new(projected), culled);
    }
    let key = Key::new(scene, camera, config);
    CACHE.with(|cell| {
        let mut state = cell.borrow_mut();
        if let Some(pos) = state.entries.iter().position(|e| e.key == key) {
            let _p = crate::phase::begin("render/projcache_hit");
            state.stats.hits += 1;
            let entry = state.entries.remove(pos);
            let projected = Rc::clone(&entry.projected);
            let culled = entry.culled;
            state.entries.insert(0, entry);
            return (projected, culled);
        }
        // A pose-only delta supersedes its entry in place: at most one
        // entry per non-pose context ever exists, so single-session stats
        // are identical to the old single-slot cache (one invalidation per
        // pose step) and a stale pose can never pad the LRU.
        let pose_slot = state
            .entries
            .iter()
            .position(|e| e.key.pose_only_delta(&key));
        if pose_slot.is_some() {
            state.stats.invalidations += 1;
        }
        state.stats.misses += 1;
        let _p = crate::phase::begin("render/project");
        let (projected, culled) = project_scene(scene, camera, config);
        let projected = Rc::new(projected);
        if let Some(pos) = pose_slot {
            state.entries.remove(pos);
        }
        state.entries.insert(
            0,
            Entry {
                key,
                projected: Rc::clone(&projected),
                culled,
            },
        );
        state.entries.truncate(CACHE_CAPACITY);
        (projected, culled)
    })
}

/// Snapshot of this thread's cache statistics.
pub fn stats() -> CacheStats {
    CACHE.with(|cell| cell.borrow().stats)
}

/// Drops all cached entries and zeroes the statistics (tests and
/// benchmarks).
pub fn clear() {
    CACHE.with(|cell| {
        let mut state = cell.borrow_mut();
        state.entries.clear();
        state.stats = CacheStats::default();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatonic_math::{Pose, Vec3};
    use splatonic_scene::{Intrinsics, WorldBuilder};

    fn setup() -> (GaussianScene, Camera) {
        let world = WorldBuilder::new(7)
            .gaussian_spacing(0.4)
            .furniture(2)
            .build();
        let cam = Camera::new(Intrinsics::with_fov(64, 48, 1.2), Pose::identity());
        (world.scene, cam)
    }

    #[test]
    fn repeat_projection_hits_and_matches_uncached() {
        clear();
        let (scene, cam) = setup();
        let cfg = RenderConfig::default();
        let (a, culled_a) = project_scene_cached(&scene, &cam, &cfg);
        let (b, culled_b) = project_scene_cached(&scene, &cam, &cfg);
        let s = stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.invalidations, 0);
        let (fresh, culled_fresh) = project_scene(&scene, &cam, &cfg);
        assert_eq!(*a, fresh);
        assert_eq!(*b, fresh);
        assert_eq!(culled_a, culled_fresh);
        assert_eq!(culled_b, culled_fresh);
        clear();
    }

    #[test]
    fn pose_delta_invalidates_and_reprojects() {
        clear();
        let (scene, cam) = setup();
        let cfg = RenderConfig::default();
        let _ = project_scene_cached(&scene, &cam, &cfg);
        // A large pose delta: translate the camera a full unit sideways.
        let moved = Camera::new(
            cam.intrinsics,
            Pose {
                rotation: cam.pose.rotation,
                translation: cam.pose.translation + Vec3::new(1.0, 0.0, 0.0),
            },
        );
        let (cached, culled) = project_scene_cached(&scene, &moved, &cfg);
        let s = stats();
        assert_eq!(s.misses, 2, "pose delta must force a reprojection");
        assert_eq!(s.invalidations, 1, "pose-only delta counts as invalidation");
        assert_eq!(s.hits, 0);
        let (fresh, culled_fresh) = project_scene(&scene, &moved, &cfg);
        assert_eq!(*cached, fresh, "reprojection matches the uncached path");
        assert_eq!(culled, culled_fresh);
        clear();
    }

    #[test]
    fn scene_mutation_misses_without_counting_invalidation() {
        clear();
        let (mut scene, cam) = setup();
        let cfg = RenderConfig::default();
        let _ = project_scene_cached(&scene, &cam, &cfg);
        scene.update(0, |g| g.opacity_logit += 0.25);
        let (cached, _) = project_scene_cached(&scene, &cam, &cfg);
        let s = stats();
        assert_eq!(s.misses, 2);
        assert_eq!(
            s.invalidations, 0,
            "scene edit is a miss, not a pose invalidation"
        );
        let (fresh, _) = project_scene(&scene, &cam, &cfg);
        assert_eq!(*cached, fresh);
        clear();
    }

    #[test]
    fn disabled_cache_bypasses_lookup_and_stats() {
        clear();
        let (scene, cam) = setup();
        let cfg = RenderConfig {
            cache: false,
            ..RenderConfig::default()
        };
        let (a, _) = project_scene_cached(&scene, &cam, &cfg);
        let (b, _) = project_scene_cached(&scene, &cam, &cfg);
        assert_eq!(stats(), CacheStats::default());
        assert_eq!(*a, *b);
        clear();
    }

    #[test]
    fn interleaved_sessions_do_not_thrash() {
        // Regression for the single-slot cache: two "sessions" (distinct
        // scenes, so distinct revisions) alternating on one thread used to
        // evict each other on every switch, driving hits to zero. The LRU
        // must serve both: after each session's first projection, every
        // repeat is a hit — 2N renders → 2N − 2 hits, and crucially zero
        // invalidations (a session switch is not a pose step).
        clear();
        let (scene_a, cam_a) = setup();
        let world_b = WorldBuilder::new(21)
            .gaussian_spacing(0.4)
            .furniture(2)
            .build();
        let scene_b = world_b.scene;
        let cam_b = Camera::new(Intrinsics::with_fov(64, 48, 1.2), Pose::identity());
        let cfg = RenderConfig::default();

        let n = 5u64;
        for _ in 0..n {
            let (got_a, _) = project_scene_cached(&scene_a, &cam_a, &cfg);
            let (got_b, _) = project_scene_cached(&scene_b, &cam_b, &cfg);
            let (fresh_a, _) = project_scene(&scene_a, &cam_a, &cfg);
            let (fresh_b, _) = project_scene(&scene_b, &cam_b, &cfg);
            assert_eq!(*got_a, fresh_a);
            assert_eq!(*got_b, fresh_b);
        }
        let s = stats();
        assert_eq!(s.misses, 2, "one cold miss per session");
        assert_eq!(s.hits, 2 * n - 2, "every later render is a hit");
        assert_eq!(s.invalidations, 0, "session switches are not pose steps");
        clear();
    }

    #[test]
    fn lru_evicts_the_oldest_entry_past_capacity() {
        clear();
        let (mut scene, cam) = setup();
        let cfg = RenderConfig::default();
        // Fill past capacity with distinct scene revisions.
        for _ in 0..=CACHE_CAPACITY {
            scene.update(0, |g| g.opacity_logit += 0.01);
            let _ = project_scene_cached(&scene, &cam, &cfg);
        }
        let full = stats();
        assert_eq!(full.misses as usize, CACHE_CAPACITY + 1);
        // The newest revision is still cached ...
        let _ = project_scene_cached(&scene, &cam, &cfg);
        assert_eq!(stats().hits, full.hits + 1);
        clear();
    }

    #[test]
    fn stats_since_subtracts() {
        let early = CacheStats {
            hits: 2,
            misses: 3,
            invalidations: 1,
        };
        let late = CacheStats {
            hits: 10,
            misses: 7,
            invalidations: 2,
        };
        let d = late.since(&early);
        assert_eq!(d.hits, 8);
        assert_eq!(d.misses, 4);
        assert_eq!(d.invalidations, 1);
        // add() inverts since(): early + d == late.
        let mut roundtrip = early;
        roundtrip.add(&d);
        assert_eq!(roundtrip, late);
    }
}
