//! The paper's **pixel-based** rendering pipeline (Sec. IV-B, Fig. 13).
//!
//! Forward:
//! 1. *Pixel-level projection with preemptive α-checking* — each projected
//!    Gaussian direct-indexes the sampled-pixel grid via its bounding-box
//!    corners (paper Sec. V-C) and α-checks each candidate; only passing
//!    pairs enter the per-pixel intersection lists.
//! 2. *Per-pixel sorting* — each pixel's list is depth-sorted.
//! 3. *Gaussian-parallel rasterization* — a 32-thread warp co-renders one
//!    pixel: Gaussians are distributed across lanes with no divergence
//!    (every list entry is known to contribute), followed by a color
//!    reduction.
//!
//! Backward re-uses the per-pixel sorted lists: a first cross-thread
//! reduction recovers `Γ_i`, per-pair gradients are computed in parallel,
//! and a second reduction aggregates them per Gaussian.

use crate::binning::{self, BinIndex};
use crate::grad::{pixel_backward, reproject, CamGradAccumulator, PoseGrad, SceneGrads};
use crate::kernel::{alpha_at, ProjectedGaussian, RenderConfig};
use crate::loss::LossGrad;
use crate::pixelset::{PixelCoord, PixelSet};
use crate::projcache::project_scene_cached;
use crate::simd::{self, ProjectedSoA};
use crate::trace::{bytes, RenderTrace};
use crate::{Contribution, ForwardResult};
use splatonic_math::{pool, Vec2, Vec3};
use splatonic_scene::{Camera, GaussianScene};
use std::sync::Mutex;

/// GPU warp width in threads (Gaussian-parallel lanes).
pub const WARP: usize = 32;

/// Fixed fan-out granularities (thread-count independent; see
/// `splatonic_math::pool` for why this matters for determinism).
const PROJ_CHECK_CHUNK: usize = 256;
const BIN_CHUNK: usize = 128;
const RASTER_CHUNK: usize = 128;
const BACKWARD_CHUNK: usize = 128;

/// Cell edge (pixels) of the transient grid bucketing the *extra* (unseen)
/// pixels; paper Sec. V-C stores those indices separately.
const EXTRA_CELL: usize = 8;

/// A per-pixel intersection entry produced by preemptive α-checking.
#[derive(Debug, Clone, Copy)]
struct PixelEntry {
    proj: u32,
    alpha: f64,
    depth: f64,
}

/// Spatial hash over the extra pixels (outside the one-per-tile structure).
struct ExtraGrid {
    cells_x: usize,
    cells_y: usize,
    cells: Vec<Vec<(usize, PixelCoord)>>,
}

impl ExtraGrid {
    fn build(pixels: &PixelSet) -> ExtraGrid {
        let cells_x = pixels.width().div_ceil(EXTRA_CELL).max(1);
        let cells_y = pixels.height().div_ceil(EXTRA_CELL).max(1);
        let mut cells: Vec<Vec<(usize, PixelCoord)>> = vec![Vec::new(); cells_x * cells_y];
        let base = pixels.sample_count();
        for (k, p) in pixels.extra().enumerate() {
            let cx = p.x as usize / EXTRA_CELL;
            let cy = p.y as usize / EXTRA_CELL;
            cells[cy * cells_x + cx].push((base + k, p));
        }
        ExtraGrid {
            cells_x,
            cells_y,
            cells,
        }
    }

    fn visit_bbox(&self, lo: Vec2, hi: Vec2, mut visit: impl FnMut(usize, PixelCoord)) {
        if self.cells.iter().all(Vec::is_empty) {
            return;
        }
        let cx0 = ((lo.x.floor() as isize) / EXTRA_CELL as isize)
            .clamp(0, self.cells_x as isize - 1) as usize;
        let cy0 = ((lo.y.floor() as isize) / EXTRA_CELL as isize)
            .clamp(0, self.cells_y as isize - 1) as usize;
        let cx1 = ((hi.x.ceil() as isize) / EXTRA_CELL as isize).clamp(0, self.cells_x as isize - 1)
            as usize;
        let cy1 = ((hi.y.ceil() as isize) / EXTRA_CELL as isize).clamp(0, self.cells_y as isize - 1)
            as usize;
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                for &(idx, p) in &self.cells[cy * self.cells_x + cx] {
                    let c = p.center();
                    if c.x >= lo.x && c.x <= hi.x && c.y >= lo.y && c.y <= hi.y {
                        visit(idx, p);
                    }
                }
            }
        }
    }
}

/// Decides whether candidate discovery should walk the screen-space bin
/// index pixel-major instead of the exhaustive Gaussian-major walk.
///
/// Tile-less pixel sets are discovered by a linear scan over every sample
/// per Gaussian, which the bin walk strictly prunes. Tile-indexed sets
/// already direct-index their bbox tiles, and the bin walk visits roughly
/// `sampling_rate · bin²` candidates per exhaustive visit — so the loop is
/// only inverted while that ratio stays near break-even (sparse sets such
/// as the one-pixel-per-tile tracking plans), never for dense renders.
/// The decision is a pure function of the pixel set and the config, so it
/// is identical at every thread count.
fn use_bin_walk(pixels: &PixelSet, config: &RenderConfig) -> bool {
    if !config.binning {
        return false;
    }
    if !pixels.has_tile_index() {
        return true;
    }
    let bin = if config.bin_size == 0 {
        binning::DEFAULT_BIN_SIZE
    } else {
        config.bin_size
    };
    pixels.len() * bin * bin <= pixels.width() * pixels.height() * 8
}

/// Forward pass of the pixel-based pipeline.
pub fn forward(
    scene: &GaussianScene,
    camera: &Camera,
    pixels: &PixelSet,
    config: &RenderConfig,
) -> ForwardResult {
    let _pass = crate::phase::begin("render/pixel_forward");
    let mut trace = RenderTrace::new();
    let f = &mut trace.forward;
    f.gaussians_input = scene.len() as u64;
    f.bytes_read += scene.len() as u64 * bytes::GAUSSIAN;

    let (projected_shared, culled) = project_scene_cached(scene, camera, config);
    let projected: &[ProjectedGaussian] = &projected_shared;
    f.gaussians_culled = culled;
    f.gaussians_projected = projected.len() as u64;

    let n_out = pixels.len();
    let mut lists: Vec<Vec<PixelEntry>> = vec![Vec::new(); n_out];
    let threads = pool::resolve_threads(config.threads);
    // SoA view for the vector kernels, gathered once per pass. The SIMD
    // paths below are bit-identical to the scalar ones (see `simd`), so the
    // dispatch never changes output — only the instruction mix.
    let soa = (config.kernels.simd_active()
        && crate::simd::soa_pays_off(pixels.len(), projected.len()))
    .then(|| {
        let _p = crate::phase::begin("render/soa_build");
        ProjectedSoA::build(projected)
    });
    let soa = soa.as_ref();
    let simd = soa.is_some();

    if use_bin_walk(pixels, config) {
        // Pixel-major discovery through the screen-space bin index: the
        // index is built once per render, then each sampled pixel visits
        // only its bin's candidates (fanned out over fixed pixel chunks).
        // Candidates are filtered by the *exact* predicate the exhaustive
        // walk uses (clamped tile range for tile-indexed samples, center
        // containment for extras and tile-less sets) before any α math, so
        // the surviving pairs — per-pixel, in the same ascending projected
        // order — and every pre-existing counter are identical to the
        // Gaussian-major walk. Only `bin_candidates` (visits the index
        // allowed) is new.
        let index = {
            let _p = crate::phase::begin("render/bin_index");
            BinIndex::build(projected, pixels, config.bin_size)
        };
        let _discover = crate::phase::begin("render/discover_binned");
        let all_pixels: Vec<(usize, PixelCoord)> = pixels.iter_all().enumerate().collect();
        let sample_count = pixels.sample_count();
        let has_tiles = pixels.has_tile_index();
        let tile = pixels.tile_size();
        let (tiles_x, tiles_y) = pixels.tile_dims();
        struct BinPartial {
            entries: Vec<(usize, PixelEntry)>,
            candidates: Vec<u32>,
            bin_candidates: u64,
            alpha_checks: u64,
            pairs_kept: u64,
        }
        let partials = pool::par_chunks_indexed(threads, &all_pixels, BIN_CHUNK, |_, _, chunk| {
            let mut part = BinPartial {
                entries: Vec::new(),
                candidates: vec![0u32; projected.len()],
                bin_candidates: 0,
                alpha_checks: 0,
                pairs_kept: 0,
            };
            // Scratch for the SIMD two-phase walk: collect the candidates
            // passing the exact geometric predicate, then α-check them in
            // lane batches. Same predicate, same candidate order, same
            // counters as the interleaved scalar walk.
            let mut cand_scratch: Vec<u32> = Vec::new();
            let mut alpha_scratch: Vec<f64> = Vec::new();
            for &(out_idx, p) in chunk {
                cand_scratch.clear();
                for &pi in index.candidates(p) {
                    part.bin_candidates += 1;
                    let pg = &projected[pi as usize];
                    let (lo, hi) = pg.bbox();
                    let visited = if out_idx < sample_count && has_tiles {
                        binning::sample_tile_overlaps(p, lo, hi, tile, tiles_x, tiles_y)
                    } else {
                        binning::center_in_bbox(p, lo, hi)
                    };
                    if !visited {
                        continue;
                    }
                    part.candidates[pi as usize] += 1;
                    part.alpha_checks += 1;
                    if soa.is_some() {
                        cand_scratch.push(pi);
                        continue;
                    }
                    let (alpha, _) = alpha_at(pg, p.center(), config);
                    if alpha >= config.alpha_threshold {
                        part.pairs_kept += 1;
                        part.entries.push((
                            out_idx,
                            PixelEntry {
                                proj: pi,
                                alpha,
                                depth: pg.depth,
                            },
                        ));
                    }
                }
                if let Some(soa) = soa {
                    alpha_scratch.clear();
                    simd::alpha_batch_pixel(
                        soa,
                        projected,
                        &cand_scratch,
                        p.center(),
                        config,
                        &mut alpha_scratch,
                    );
                    for (&pi, &alpha) in cand_scratch.iter().zip(&alpha_scratch) {
                        if alpha >= config.alpha_threshold {
                            part.pairs_kept += 1;
                            part.entries.push((
                                out_idx,
                                PixelEntry {
                                    proj: pi,
                                    alpha,
                                    depth: projected[pi as usize].depth,
                                },
                            ));
                        }
                    }
                }
            }
            part
        });
        // Merge in chunk order. Every pixel lives in exactly one chunk and
        // walks its candidates ascending, so each per-pixel list arrives
        // already in the exhaustive path's push order; the per-Gaussian
        // candidate counts sum elementwise across chunks.
        let mut candidates = vec![0u32; projected.len()];
        for part in partials {
            f.proj_alpha_checks += part.alpha_checks;
            f.exp_evals += part.alpha_checks;
            f.bin_candidates += part.bin_candidates;
            f.proj_pairs_kept += part.pairs_kept;
            for (out_idx, e) in part.entries {
                lists[out_idx].push(e);
            }
            for (total, c) in candidates.iter_mut().zip(part.candidates) {
                *total += c;
            }
        }
        trace.proj_candidates.extend(candidates);
    } else {
        // Exhaustive Gaussian-major discovery: pixel-level projection +
        // preemptive α-checking, fanned out over fixed chunks of projected
        // Gaussians. Each chunk emits its passing (pixel, entry) pairs and
        // counter partials; the merge below applies them in chunk order,
        // which reproduces the sequential push order.
        let _discover = crate::phase::begin("render/discover_exhaustive");
        let extra_grid = ExtraGrid::build(pixels);
        struct ProjCheckPartial {
            entries: Vec<(usize, PixelEntry)>,
            candidates: Vec<u32>,
            alpha_checks: u64,
            pairs_kept: u64,
        }
        let proj_partials =
            pool::par_chunks_indexed(threads, projected, PROJ_CHECK_CHUNK, |_, offset, chunk| {
                let mut part = ProjCheckPartial {
                    entries: Vec::new(),
                    candidates: Vec::with_capacity(chunk.len()),
                    alpha_checks: 0,
                    pairs_kept: 0,
                };
                // SIMD scratch: candidate pixel indices and centers per
                // Gaussian, α-checked in lane batches after collection.
                let mut idx_scratch: Vec<usize> = Vec::new();
                let mut px_scratch: Vec<f64> = Vec::new();
                let mut py_scratch: Vec<f64> = Vec::new();
                let mut alpha_scratch: Vec<f64> = Vec::new();
                for (k, pg) in chunk.iter().enumerate() {
                    let pi = offset + k;
                    let (lo, hi) = pg.bbox();
                    let mut candidates = 0u32;
                    if simd {
                        idx_scratch.clear();
                        px_scratch.clear();
                        py_scratch.clear();
                        let mut collect = |out_idx: usize, p: PixelCoord| {
                            candidates += 1;
                            part.alpha_checks += 1;
                            idx_scratch.push(out_idx);
                            let c = p.center();
                            px_scratch.push(c.x);
                            py_scratch.push(c.y);
                        };
                        pixels.samples_in_bbox(lo, hi, &mut collect);
                        extra_grid.visit_bbox(lo, hi, &mut collect);
                        alpha_scratch.clear();
                        simd::alpha_batch_gaussian(
                            pg,
                            &px_scratch,
                            &py_scratch,
                            config,
                            &mut alpha_scratch,
                        );
                        for (j, &alpha) in alpha_scratch.iter().enumerate() {
                            if alpha >= config.alpha_threshold {
                                part.pairs_kept += 1;
                                part.entries.push((
                                    idx_scratch[j],
                                    PixelEntry {
                                        proj: pi as u32,
                                        alpha,
                                        depth: pg.depth,
                                    },
                                ));
                            }
                        }
                    } else {
                        let mut check = |out_idx: usize, p: PixelCoord| {
                            candidates += 1;
                            part.alpha_checks += 1;
                            let (alpha, _) = alpha_at(pg, p.center(), config);
                            if alpha >= config.alpha_threshold {
                                part.pairs_kept += 1;
                                part.entries.push((
                                    out_idx,
                                    PixelEntry {
                                        proj: pi as u32,
                                        alpha,
                                        depth: pg.depth,
                                    },
                                ));
                            }
                        };
                        pixels.samples_in_bbox(lo, hi, &mut check);
                        extra_grid.visit_bbox(lo, hi, &mut check);
                    }
                    part.candidates.push(candidates);
                }
                part
            });
        for part in proj_partials {
            f.proj_alpha_checks += part.alpha_checks;
            f.exp_evals += part.alpha_checks;
            f.proj_pairs_kept += part.pairs_kept;
            for (out_idx, e) in part.entries {
                lists[out_idx].push(e);
            }
            trace.proj_candidates.extend(part.candidates);
        }
    }
    f.bytes_written += f.proj_pairs_kept * bytes::PAIR_ENTRY;
    f.bytes_read += f.proj_pairs_kept * bytes::PAIR_ENTRY;

    // Per-pixel depth sort + Gaussian-parallel rasterization, fanned out
    // over fixed chunks of pixels. A warp co-renders each pixel; all lanes
    // do useful work (no α-checking left, no divergence). Each chunk sorts
    // a scratch copy of its lists and shades its pixels; partial outputs
    // are concatenated in chunk order (= pixel order).
    struct RasterPartial {
        color: Vec<Vec3>,
        depth: Vec<f64>,
        t_final: Vec<f64>,
        contribs: Vec<Vec<Contribution>>,
        sort_lists: u64,
        sort_elems: u64,
        pairs_integrated: u64,
        warp_steps: u64,
        warp_active: u64,
        bytes_read: u64,
        bytes_written: u64,
    }
    let _raster = crate::phase::begin("render/sort_raster");
    let raster_partials = pool::par_chunks_indexed(threads, &lists, RASTER_CHUNK, |_, _, chunk| {
        let mut part = RasterPartial {
            color: Vec::with_capacity(chunk.len()),
            depth: Vec::with_capacity(chunk.len()),
            t_final: Vec::with_capacity(chunk.len()),
            contribs: Vec::with_capacity(chunk.len()),
            sort_lists: 0,
            sort_elems: 0,
            pairs_integrated: 0,
            warp_steps: 0,
            warp_active: 0,
            bytes_read: 0,
            bytes_written: 0,
        };
        let mut sorted: Vec<PixelEntry> = Vec::new();
        // SoA scratch for the vector composite: the sorted entry list split
        // into parallel projection-index / α arrays.
        let mut proj_scratch: Vec<u32> = Vec::new();
        let mut alpha_scratch: Vec<f64> = Vec::new();
        for list in chunk {
            sorted.clear();
            sorted.extend_from_slice(list);
            if !sorted.is_empty() {
                part.sort_lists += 1;
                part.sort_elems += sorted.len() as u64;
                // Tie-break equal depths by projection index (ascending
                // scene id), matching the tile pipeline's global sort order.
                sorted.sort_by(|a, b| {
                    a.depth
                        .partial_cmp(&b.depth)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.proj.cmp(&b.proj))
                });
            }
            let mut contribs = Vec::new();
            let (c, d, t, used) = if let Some(soa) = soa {
                proj_scratch.clear();
                alpha_scratch.clear();
                for e in &sorted {
                    proj_scratch.push(e.proj);
                    alpha_scratch.push(e.alpha);
                }
                let (acc, t, used) = simd::composite_pixel(
                    &proj_scratch,
                    &alpha_scratch,
                    soa,
                    config.transmittance_min,
                    &mut contribs,
                );
                (Vec3::new(acc[0], acc[1], acc[2]), acc[3], t, used)
            } else {
                let mut t = 1.0;
                let mut c = Vec3::ZERO;
                let mut d = 0.0;
                let mut used = 0usize;
                for e in &sorted {
                    if t < config.transmittance_min {
                        break;
                    }
                    let pg = &projected[e.proj as usize];
                    let w = t * e.alpha;
                    c += pg.color * w;
                    d += pg.depth * w;
                    contribs.push(Contribution {
                        gaussian: pg.id,
                        alpha: e.alpha,
                        transmittance: t,
                    });
                    t *= 1.0 - e.alpha;
                    used += 1;
                }
                (c, d, t, used)
            };
            part.color.push(c + config.background * t);
            part.depth.push(d);
            part.t_final.push(t);
            part.pairs_integrated += used as u64;
            // Warp accounting: ceil(used/32) integration steps with every
            // resident lane doing useful work, plus one reduction step per
            // warp of lanes (the color/depth tree reduction) — the same
            // two-pass model the backward trace uses.
            let steps = 2 * used.div_ceil(WARP);
            part.warp_steps += steps as u64;
            part.warp_active += 2 * used as u64;
            part.bytes_read += used as u64 * bytes::PROJECTED;
            part.bytes_written += bytes::PIXEL_OUT;
            part.contribs.push(contribs);
        }
        part
    });

    let mut color = Vec::with_capacity(n_out);
    let mut depth = Vec::with_capacity(n_out);
    let mut t_final = Vec::with_capacity(n_out);
    let mut contributions: Vec<Vec<Contribution>> = Vec::with_capacity(n_out);
    for part in raster_partials {
        f.sort_lists += part.sort_lists;
        f.sort_elems += part.sort_elems;
        f.pairs_integrated += part.pairs_integrated;
        f.pixels_shaded += part.color.len() as u64;
        f.warp_steps += part.warp_steps;
        f.warp_active += part.warp_active;
        f.bytes_read += part.bytes_read;
        f.bytes_written += part.bytes_written;
        for contribs in &part.contribs {
            f.pixel_list_len.push(contribs.len() as f64);
            trace.pixel_lists.push(contribs.len() as u32);
        }
        color.extend(part.color);
        depth.extend(part.depth);
        t_final.extend(part.t_final);
        contributions.extend(part.contribs);
    }

    ForwardResult {
        color,
        depth,
        final_transmittance: t_final,
        contributions,
        trace,
    }
}

/// Backward pass of the pixel-based pipeline.
///
/// Re-uses the per-pixel sorted lists from the forward pass. The first
/// cross-thread reduction (recovering `Γ_i` per Gaussian) is charged to the
/// trace; the partial-gradient computation is lane-parallel; the second
/// reduction is the aggregation stage.
pub fn backward(
    scene: &GaussianScene,
    camera: &Camera,
    pixels: &PixelSet,
    forward_result: &ForwardResult,
    loss_grads: &[LossGrad],
    config: &RenderConfig,
) -> (SceneGrads, PoseGrad, RenderTrace) {
    assert_eq!(
        loss_grads.len(),
        pixels.len(),
        "loss gradients must cover the pixel set"
    );
    let _pass = crate::phase::begin("render/pixel_backward");
    let mut trace = RenderTrace::new();
    let (projected_shared, _) = project_scene_cached(scene, camera, config);
    let projected: &[ProjectedGaussian] = &projected_shared;
    let mut proj_of_id: Vec<u32> = vec![u32::MAX; scene.len()];
    for (pi, pg) in projected.iter().enumerate() {
        proj_of_id[pg.id as usize] = pi as u32;
    }
    let lookup = |id: u32| projected[proj_of_id[id as usize] as usize];
    // SoA view for the vector backward kernel (bit-identical to `lookup` +
    // `pixel_backward`; see `simd`).
    let soa = (config.kernels.simd_active()
        && crate::simd::soa_pays_off(pixels.len(), projected.len()))
    .then(|| {
        let _p = crate::phase::begin("render/soa_build");
        ProjectedSoA::build(projected)
    });
    let soa = soa.as_ref();

    // Per-pair gradients, fanned out over fixed chunks of pixels. Each
    // chunk accumulates into a private accumulator (recycled through a
    // small pool) and extracts its per-Gaussian partials in first-touch
    // order; the merge below folds them into the shared accumulator in
    // chunk order, so the aggregation is identical for every worker count.
    let threads = pool::resolve_threads(config.threads);
    let all_pixels: Vec<PixelCoord> = pixels.iter_all().collect();
    let acc_pool: Mutex<Vec<CamGradAccumulator>> = Mutex::new(Vec::new());
    #[derive(Default)]
    struct BackwardPartial {
        entries: Vec<(u32, crate::grad::CamGrad)>,
        exp_evals: u64,
        reduction_ops: u64,
        warp_steps: u64,
        warp_active: u64,
        pairs_grad: u64,
        atomic_adds: u64,
        bytes_read: u64,
        bytes_written: u64,
    }
    let _accum = crate::phase::begin("render/backward_accum");
    let partials =
        pool::par_chunks_indexed(threads, &all_pixels, BACKWARD_CHUNK, |_, offset, chunk| {
            let mut acc = acc_pool
                .lock()
                .unwrap()
                .pop()
                .unwrap_or_else(|| CamGradAccumulator::new(scene.len()));
            acc.reset(scene.len());
            let mut part = BackwardPartial::default();
            for (k, p) in chunk.iter().enumerate() {
                let out_idx = offset + k;
                let contribs = &forward_result.contributions[out_idx];
                if contribs.is_empty() {
                    continue;
                }
                let n = contribs.len() as u64;
                // Recompute α_i per lane (exp), then the Γ reduction (first
                // cross-thread reduction introduced by pixel-based rendering).
                part.exp_evals += n;
                part.reduction_ops += n;
                // Lane-parallel gradient computation: all lanes active.
                let steps = (contribs.len().div_ceil(WARP)) as u64;
                part.warp_steps += 2 * steps; // α/Γ pass + gradient pass
                part.warp_active += 2 * n;
                part.bytes_read += n * (bytes::PAIR_ENTRY + bytes::PROJECTED);
                let counts = if let Some(soa) = soa {
                    simd::pixel_backward_simd(
                        p.center(),
                        contribs,
                        soa,
                        &proj_of_id,
                        loss_grads[out_idx].d_color,
                        loss_grads[out_idx].d_depth,
                        config,
                        config.background,
                        &mut acc,
                    )
                } else {
                    pixel_backward(
                        p.center(),
                        contribs,
                        &lookup,
                        loss_grads[out_idx].d_color,
                        loss_grads[out_idx].d_depth,
                        config,
                        config.background,
                        &mut acc,
                    )
                };
                part.pairs_grad += counts.pairs;
                part.atomic_adds += counts.atomic_adds;
                // Second reduction: aggregation of partial gradients.
                part.reduction_ops += counts.pairs;
                part.bytes_written += counts.pairs * bytes::GRADIENT;
            }
            part.entries = acc.touched().iter().map(|&id| (id, acc.get(id))).collect();
            acc_pool.lock().unwrap().push(acc);
            part
        });

    let mut accum = CamGradAccumulator::new(scene.len());
    accum.reset(scene.len());
    {
        let b = &mut trace.backward;
        for part in partials {
            b.exp_evals += part.exp_evals;
            b.reduction_ops += part.reduction_ops;
            b.warp_steps += part.warp_steps;
            b.warp_active += part.warp_active;
            b.pairs_grad += part.pairs_grad;
            b.atomic_adds += part.atomic_adds;
            b.bytes_read += part.bytes_read;
            b.bytes_written += part.bytes_written;
            for (id, cg) in &part.entries {
                accum.merge_entry(*id, cg);
            }
        }
    }

    {
        let b = &mut trace.backward;
        for &id in accum.touched() {
            b.gaussian_touches.push(accum.get(id).count as f64);
        }
        b.gaussians_touched = accum.touched().len() as u64;
        b.reprojections = accum.touched().len() as u64;
        b.bytes_read += b.gaussians_touched * bytes::GRADIENT;
        b.bytes_written += b.gaussians_touched * bytes::GRADIENT;
    }

    drop(_accum);
    let (grads, pose) = {
        let _p = crate::phase::begin("render/reproject");
        reproject(scene, camera, &accum, true)
    };
    (grads, pose, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile;
    use splatonic_math::{Pose, Quat};
    use splatonic_scene::{Gaussian, Intrinsics, WorldBuilder};

    fn test_world() -> (GaussianScene, Camera) {
        let world = WorldBuilder::new(11)
            .gaussian_spacing(0.35)
            .furniture(2)
            .build();
        let cam = Camera::look_at(
            Intrinsics::with_fov(96, 72, 1.2),
            Vec3::new(0.4, -0.1, -0.6),
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::Y,
        );
        (world.scene, cam)
    }

    fn sparse_set(w: usize, h: usize, tile: usize) -> PixelSet {
        PixelSet::from_tile_chooser(w, h, tile, |_, _, x0, y0, tw, th| {
            Some(PixelCoord::new((x0 + tw / 2) as u16, (y0 + th / 2) as u16))
        })
    }

    #[test]
    fn matches_tile_pipeline_dense() {
        let (scene, cam) = test_world();
        let cfg = RenderConfig::default();
        let pixels = PixelSet::dense(96, 72);
        let a = tile::forward(&scene, &cam, &pixels, &cfg);
        let b = forward(&scene, &cam, &pixels, &cfg);
        let mut max_err: f64 = 0.0;
        for (ca, cb) in a.color.iter().zip(b.color.iter()) {
            max_err = max_err.max((*ca - *cb).abs().max_component());
        }
        assert!(
            max_err < 1e-6,
            "pipelines must produce the same image; max err {max_err}"
        );
        for (da, db) in a.depth.iter().zip(b.depth.iter()) {
            assert!((da - db).abs() < 1e-6);
        }
    }

    #[test]
    fn matches_tile_pipeline_sparse() {
        let (scene, cam) = test_world();
        let cfg = RenderConfig::default();
        let pixels = sparse_set(96, 72, 16);
        let a = tile::forward(&scene, &cam, &pixels, &cfg);
        let b = forward(&scene, &cam, &pixels, &cfg);
        for (ca, cb) in a.color.iter().zip(b.color.iter()) {
            assert!((*ca - *cb).abs().max_component() < 1e-6);
        }
    }

    #[test]
    fn no_raster_alpha_checks() {
        let (scene, cam) = test_world();
        let out = forward(
            &scene,
            &cam,
            &sparse_set(96, 72, 16),
            &RenderConfig::default(),
        );
        assert_eq!(out.trace.forward.raster_alpha_checks, 0);
        assert!(out.trace.forward.proj_alpha_checks > 0);
    }

    #[test]
    fn bottleneck_shifts_to_projection() {
        // Preemptive α-checking moves the exp work into projection: the
        // sorted lists and rasterization shrink, while projection grows —
        // the bottleneck shift of paper Sec. IV-C / Fig. 14.
        let (scene, cam) = test_world();
        let cfg = RenderConfig::default();
        let pixels = sparse_set(96, 72, 16);
        let t = tile::forward(&scene, &cam, &pixels, &cfg);
        let p = forward(&scene, &cam, &pixels, &cfg);
        assert!(
            p.trace.forward.sort_elems < t.trace.forward.sort_elems,
            "per-pixel sorts ({}) must be smaller than per-tile sorts ({})",
            p.trace.forward.sort_elems,
            t.trace.forward.sort_elems
        );
        assert!(p.trace.forward.proj_alpha_checks > 0);
        assert_eq!(p.trace.forward.raster_alpha_checks, 0);
    }

    #[test]
    fn fewer_warp_steps_than_tile_sparse() {
        // Gaussian-parallel rasterization issues far fewer warp-steps than
        // the sparse tile-based schedule, at higher per-step occupancy.
        let (scene, cam) = test_world();
        let cfg = RenderConfig::default();
        let pixels = sparse_set(96, 72, 16);
        let t = tile::forward(&scene, &cam, &pixels, &cfg);
        let p = forward(&scene, &cam, &pixels, &cfg);
        assert!(
            p.trace.forward.warp_steps * 4 < t.trace.forward.warp_steps,
            "pixel-based {} vs tile-based {} warp-steps",
            p.trace.forward.warp_steps,
            t.trace.forward.warp_steps
        );
        assert!(
            p.trace.forward.warp_utilization() > t.trace.forward.warp_utilization(),
            "occupancy must improve: {} vs {}",
            p.trace.forward.warp_utilization(),
            t.trace.forward.warp_utilization()
        );
    }

    #[test]
    fn warp_accounting_charges_integration_and_reduction() {
        // Each shaded pixel charges ceil(used/32) integration steps plus
        // one reduction step per warp of lanes — both passes fully
        // occupied. Cross-check totals against the tile pipeline on the
        // dense set, where both schedules integrate the same pairs.
        let (scene, cam) = test_world();
        let cfg = RenderConfig::default();
        let pixels = PixelSet::dense(96, 72);
        let t = tile::forward(&scene, &cam, &pixels, &cfg);
        let p = forward(&scene, &cam, &pixels, &cfg);
        assert_eq!(
            p.trace.forward.pairs_integrated, t.trace.forward.pairs_integrated,
            "dense renders must integrate identical pair counts"
        );
        assert_eq!(
            p.trace.forward.warp_active,
            2 * p.trace.forward.pairs_integrated,
            "every integrated pair is active in both passes"
        );
        let expected_steps: u64 = p
            .contributions
            .iter()
            .map(|c| 2 * c.len().div_ceil(WARP) as u64)
            .sum();
        assert_eq!(p.trace.forward.warp_steps, expected_steps);
    }

    #[test]
    fn extras_are_rendered() {
        let (scene, cam) = test_world();
        let cfg = RenderConfig::default();
        let mut with_extra = sparse_set(96, 72, 16);
        with_extra.add_extra([PixelCoord::new(48, 36)]);
        let out = forward(&scene, &cam, &with_extra, &cfg);
        // Compare the extra pixel against a dense render.
        let dense = forward(&scene, &cam, &PixelSet::dense(96, 72), &cfg);
        let extra_color = out.color[with_extra.len() - 1];
        let dense_color = dense.color[36 * 96 + 48];
        assert!((extra_color - dense_color).abs().max_component() < 1e-6);
    }

    #[test]
    fn backward_matches_tile_backward() {
        let (scene, cam) = test_world();
        let cfg = RenderConfig::default();
        let pixels = sparse_set(96, 72, 8);
        let fa = tile::forward(&scene, &cam, &pixels, &cfg);
        let fb = forward(&scene, &cam, &pixels, &cfg);
        let lg: Vec<LossGrad> = (0..pixels.len())
            .map(|i| LossGrad {
                d_color: Vec3::new(0.1, -0.2, 0.3) * ((i % 5) as f64 - 2.0),
                d_depth: 0.05 * ((i % 3) as f64 - 1.0),
            })
            .collect();
        let (ga, pa, _) = tile::backward(&scene, &cam, &pixels, &fa, &lg, &cfg);
        let (gb, pb, _) = backward(&scene, &cam, &pixels, &fb, &lg, &cfg);
        assert_eq!(ga.len(), gb.len());
        // Pose gradients must agree across schedules.
        let d = (pa.xi.rho - pb.xi.rho).norm() + (pa.xi.phi - pb.xi.phi).norm();
        assert!(d < 1e-9, "pose grads differ by {d}");
        for (id, g) in &ga.entries {
            let h = gb.get(*id).expect("gaussian missing from pixel backward");
            assert!((g.mean - h.mean).norm() < 1e-9);
            assert!((g.color - h.color).norm() < 1e-9);
            assert!((g.opacity_logit - h.opacity_logit).abs() < 1e-9);
        }
    }

    #[test]
    fn first_reduction_counted() {
        let (scene, cam) = test_world();
        let cfg = RenderConfig::default();
        let pixels = sparse_set(96, 72, 16);
        let f = forward(&scene, &cam, &pixels, &cfg);
        let lg = vec![
            LossGrad {
                d_color: Vec3::splat(1.0),
                d_depth: 0.0
            };
            pixels.len()
        ];
        let (_, _, trace) = backward(&scene, &cam, &pixels, &f, &lg, &cfg);
        assert!(trace.backward.reduction_ops > 0);
        assert!(
            trace.backward.alpha_checks == 0,
            "no α-checks in reverse rasterization"
        );
    }

    #[test]
    fn single_gaussian_center_alpha() {
        // Sanity: one Gaussian straight ahead gives α ≈ opacity at center.
        let mut scene = GaussianScene::new();
        scene.push(Gaussian::new(
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::splat(0.2),
            Quat::IDENTITY,
            0.9,
            Vec3::new(1.0, 1.0, 1.0),
        ));
        let cam = Camera::new(Intrinsics::with_fov(33, 33, 1.0), Pose::identity());
        let pixels = PixelSet::from_pixels(33, 33, vec![PixelCoord::new(16, 16)]);
        let out = forward(&scene, &cam, &pixels, &RenderConfig::default());
        assert_eq!(out.contributions[0].len(), 1);
        assert!((out.contributions[0][0].alpha - 0.9).abs() < 0.01);
        assert!((out.color[0].x - 0.9).abs() < 0.02);
    }
}
