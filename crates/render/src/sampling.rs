//! Adaptive sparse pixel sampling (paper Sec. IV-A) and the baselines it is
//! compared against in Fig. 10 and Fig. 24.
//!
//! **Tracking** samples one pixel per `w_t × w_t` tile:
//! * [`SamplingStrategy::RandomPerTile`] — the paper's choice: uniform random
//!   within each tile (global coverage, no redundancy).
//! * [`SamplingStrategy::HarrisPerTile`] — per-tile Harris-response argmax.
//! * [`SamplingStrategy::LowRes`] — render a downscaled image instead.
//! * [`SamplingStrategy::LossGuidedTiles`] — GauSPU-style \[77] selection of
//!   whole 16×16 tiles by previous loss (no global coverage).
//!
//! **Mapping** ([`MappingSampler`]) samples the union of
//! * *unseen* pixels: `Γ_final(p) > 0.5` (Eq. 2), stored separately so they
//!   do not disturb the projection unit's direct indexing, and
//! * one texture-weighted pixel per `w_m × w_m` tile with probability
//!   `P(p) = w_R(p)·r`, `w_R = √(Gx²+Gy²)` from Sobel filters (Eq. 3).

use crate::pixelset::{PixelCoord, PixelSet};
use splatonic_math::image::{harris_response, sobel_magnitude};
use splatonic_math::rng::{mix_seed, Rng64};
use splatonic_math::Image;
use splatonic_scene::Frame;

/// Per-tile RNG for the one-pixel-per-tile choosers.
///
/// Each tile draws from its own generator, seeded from the caller's seed and
/// the tile coordinates, so a tile's pick depends only on `(seed, tx, ty)` —
/// never on how many tiles were visited before it or in what order. That
/// keeps sampling stable when the frame size changes and safe to evaluate
/// tile-parallel.
fn tile_rng(seed: u64, tx: usize, ty: usize) -> Rng64 {
    Rng64::seed_from_u64(mix_seed(seed, ((ty as u64) << 32) | tx as u64))
}

/// Tracking-time sampling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SamplingStrategy {
    /// Process every pixel (the dense baseline).
    Dense,
    /// One uniformly random pixel per `tile × tile` tile (the paper's).
    RandomPerTile {
        /// Tile edge `w_t` in pixels.
        tile: usize,
    },
    /// One pixel per tile, chosen by maximal Harris corner response.
    HarrisPerTile {
        /// Tile edge `w_t` in pixels.
        tile: usize,
    },
    /// Render a `factor×` downscaled image ("Low-Res." baseline).
    LowRes {
        /// Downscale factor per axis.
        factor: usize,
    },
    /// GauSPU-style: select whole 16×16 tiles by previous loss, matching the
    /// pixel budget of one-per-`tile×tile` sampling.
    LossGuidedTiles {
        /// Equivalent per-pixel tile edge `w_t` (sets the budget).
        tile: usize,
    },
}

impl SamplingStrategy {
    /// Fraction of pixels this strategy processes on a `width × height`
    /// frame, from the *realized* plan budget — not the nominal
    /// `1/(tile·tile)`.
    ///
    /// The distinction matters for every variant once frames stop dividing
    /// evenly: per-tile choosers pick one pixel per (possibly clipped) tile
    /// of a `⌈w/tile⌉ × ⌈h/tile⌉` grid, low-res renders
    /// `max(1, w/f) × max(1, h/f)` pixels, and loss-guided sampling rounds
    /// its budget up to whole 16×16 GPU tiles — on a 64×48 frame with
    /// `tile = 16` that is 256 pixels, more than 20× the 12 the nominal
    /// rate suggests. Exact realized counts for a concrete plan come from
    /// [`SamplingPlan::pixel_count`].
    pub fn sampling_rate(&self, width: usize, height: usize) -> f64 {
        let total = width * height;
        if total == 0 {
            return 0.0;
        }
        match *self {
            SamplingStrategy::Dense => 1.0,
            SamplingStrategy::RandomPerTile { tile } | SamplingStrategy::HarrisPerTile { tile } => {
                (width.div_ceil(tile) * height.div_ceil(tile)) as f64 / total as f64
            }
            SamplingStrategy::LowRes { factor } => {
                let f = factor.max(1);
                ((width / f).max(1) * (height / f).max(1)) as f64 / total as f64
            }
            SamplingStrategy::LossGuidedTiles { tile } => {
                loss_guided_budget(width, height, tile) as f64 / total as f64
            }
        }
    }
}

/// Pixel budget the loss-guided (GauSPU-style) baseline realizes on a
/// `width × height` frame: the nominal one-per-`tile×tile` budget rounded up
/// to whole 16×16 GPU tiles, capped at the frame (tiles are distinct, and
/// edge tiles are clipped to the frame).
fn loss_guided_budget(width: usize, height: usize, tile: usize) -> usize {
    let budget_pixels = (width * height).div_ceil(tile * tile);
    let n_tiles = budget_pixels.div_ceil(LOSS_TILE * LOSS_TILE).max(1);
    (n_tiles * LOSS_TILE * LOSS_TILE).min(width * height)
}

/// A realized sampling decision for one tracking iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplingPlan {
    /// Render these pixels at full resolution.
    Pixels(PixelSet),
    /// Render a dense image at `1/factor` resolution (Low-Res. baseline).
    LowRes {
        /// Downscale factor per axis.
        factor: usize,
    },
}

impl SamplingPlan {
    /// Exact number of pixels this plan renders on a `width × height`
    /// frame. This is the count that feeds traces and run reports — unlike
    /// a nominal per-strategy rate it reflects budget rounding (loss-guided
    /// whole-tile selection) and edge clipping.
    pub fn pixel_count(&self, width: usize, height: usize) -> usize {
        match self {
            SamplingPlan::Pixels(set) => set.len(),
            SamplingPlan::LowRes { factor } => {
                let f = (*factor).max(1);
                (width / f).max(1) * (height / f).max(1)
            }
        }
    }

    /// Realized sampling rate: [`Self::pixel_count`] over the frame area.
    pub fn realized_rate(&self, width: usize, height: usize) -> f64 {
        if width * height == 0 {
            return 0.0;
        }
        self.pixel_count(width, height) as f64 / (width * height) as f64
    }
}

/// GPU tile edge used by the loss-guided (GauSPU-style) baseline.
const LOSS_TILE: usize = 16;

/// Builds the tracking pixel set for `strategy`.
///
/// `reference` is the current reference frame (needed by Harris),
/// `prev_tile_loss` is the per-16×16-tile loss map from the previous
/// iteration (needed by loss-guided sampling; pass `None` on the first
/// iteration to fall back to random tiles).
pub fn tracking_plan(
    strategy: SamplingStrategy,
    reference: &Frame,
    seed: u64,
    prev_tile_loss: Option<&[f64]>,
) -> SamplingPlan {
    let w = reference.width();
    let h = reference.height();
    match strategy {
        SamplingStrategy::Dense => SamplingPlan::Pixels(PixelSet::dense(w, h)),
        SamplingStrategy::LowRes { factor } => SamplingPlan::LowRes { factor },
        SamplingStrategy::RandomPerTile { tile } => SamplingPlan::Pixels(
            PixelSet::from_tile_chooser(w, h, tile, |tx, ty, x0, y0, tw, th| {
                let mut rng = tile_rng(seed, tx, ty);
                Some(PixelCoord::new(
                    (x0 + rng.gen_range(0..tw)) as u16,
                    (y0 + rng.gen_range(0..th)) as u16,
                ))
            }),
        ),
        SamplingStrategy::HarrisPerTile { tile } => {
            let lum = reference.luminance();
            let harris = harris_response(&lum);
            SamplingPlan::Pixels(PixelSet::from_tile_chooser(
                w,
                h,
                tile,
                |tx, ty, x0, y0, tw, th| {
                    let mut best = f64::NEG_INFINITY;
                    let mut pick = (x0, y0);
                    for dy in 0..th {
                        for dx in 0..tw {
                            let v = harris[(x0 + dx, y0 + dy)];
                            if v > best {
                                best = v;
                                pick = (x0 + dx, y0 + dy);
                            }
                        }
                    }
                    // Flat tiles (all-zero response) fall back to random so
                    // coverage never collapses onto tile corners.
                    if best <= 0.0 {
                        let mut rng = tile_rng(seed, tx, ty);
                        pick = (x0 + rng.gen_range(0..tw), y0 + rng.gen_range(0..th));
                    }
                    Some(PixelCoord::new(pick.0 as u16, pick.1 as u16))
                },
            ))
        }
        SamplingStrategy::LossGuidedTiles { tile } => {
            let budget_pixels = (w * h).div_ceil(tile * tile);
            let n_tiles_needed = budget_pixels.div_ceil(LOSS_TILE * LOSS_TILE).max(1);
            let tiles_x = w.div_ceil(LOSS_TILE);
            let tiles_y = h.div_ceil(LOSS_TILE);
            let total_tiles = tiles_x * tiles_y;
            let chosen: Vec<usize> = match prev_tile_loss {
                Some(losses) if losses.len() == total_tiles => {
                    let mut idx: Vec<usize> = (0..total_tiles).collect();
                    idx.sort_by(|&a, &b| {
                        losses[b]
                            .partial_cmp(&losses[a])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    idx.truncate(n_tiles_needed);
                    idx
                }
                _ => {
                    let mut rng = Rng64::seed_from_u64(seed);
                    let mut idx: Vec<usize> = (0..total_tiles).collect();
                    for i in (1..idx.len()).rev() {
                        idx.swap(i, rng.gen_range(0..=i));
                    }
                    idx.truncate(n_tiles_needed);
                    idx
                }
            };
            let mut pixels = Vec::with_capacity(n_tiles_needed * LOSS_TILE * LOSS_TILE);
            for t in chosen {
                let x0 = (t % tiles_x) * LOSS_TILE;
                let y0 = (t / tiles_x) * LOSS_TILE;
                for dy in 0..LOSS_TILE.min(h - y0) {
                    for dx in 0..LOSS_TILE.min(w - x0) {
                        pixels.push(PixelCoord::new((x0 + dx) as u16, (y0 + dy) as u16));
                    }
                }
            }
            SamplingPlan::Pixels(PixelSet::from_pixels(w, h, pixels))
        }
    }
}

/// Mapping-time strategy variants (paper Fig. 24 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingStrategy {
    /// Unseen pixels only (Eq. 2).
    UnseenOnly,
    /// Texture-weighted per-tile sampling only (Eq. 3).
    WeightedOnly,
    /// Both — the paper's choice ("Comb").
    Combined,
    /// Uniform random per tile (coverage control for the ablation).
    RandomOnly,
}

/// The mapping sampler (paper Sec. IV-A, Fig. 12).
///
/// # Examples
///
/// ```
/// use splatonic_render::{MappingSampler, sampling::MappingStrategy};
/// let sampler = MappingSampler::new(4, MappingStrategy::Combined);
/// assert_eq!(sampler.tile(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingSampler {
    tile: usize,
    strategy: MappingStrategy,
    unseen_threshold: f64,
}

impl MappingSampler {
    /// Creates a sampler with tile edge `w_m` and the given strategy.
    ///
    /// # Panics
    ///
    /// Panics if `tile == 0`.
    pub fn new(tile: usize, strategy: MappingStrategy) -> Self {
        assert!(tile > 0, "mapping tile size must be positive");
        MappingSampler {
            tile,
            strategy,
            unseen_threshold: 0.5,
        }
    }

    /// Tile edge `w_m`.
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// The strategy variant.
    pub fn strategy(&self) -> MappingStrategy {
        self.strategy
    }

    /// Builds the mapping pixel set.
    ///
    /// `transmittance` is the dense `Γ_final` map from the first forward
    /// pass of this mapping invocation (Eq. 2 input); pixels with
    /// `Γ_final > 0.5` are classified unseen.
    pub fn build(&self, reference: &Frame, transmittance: &Image<f64>, seed: u64) -> PixelSet {
        let w = reference.width();
        let h = reference.height();
        assert_eq!(
            (transmittance.width(), transmittance.height()),
            (w, h),
            "transmittance map must match the frame"
        );
        let mut set = match self.strategy {
            MappingStrategy::UnseenOnly => PixelSet::from_pixels(w, h, Vec::new()),
            MappingStrategy::RandomOnly => {
                PixelSet::from_tile_chooser(w, h, self.tile, |tx, ty, x0, y0, tw, th| {
                    let mut rng = tile_rng(seed, tx, ty);
                    Some(PixelCoord::new(
                        (x0 + rng.gen_range(0..tw)) as u16,
                        (y0 + rng.gen_range(0..th)) as u16,
                    ))
                })
            }
            MappingStrategy::WeightedOnly | MappingStrategy::Combined => {
                let lum = reference.luminance();
                let weight = sobel_magnitude(&lum);
                PixelSet::from_tile_chooser(w, h, self.tile, |tx, ty, x0, y0, tw, th| {
                    let mut rng = tile_rng(seed, tx, ty);
                    // P(p) = w_R(p) · r: draw r per pixel, keep the argmax.
                    let mut best = -1.0;
                    let mut pick = (x0, y0);
                    let mut all_flat = true;
                    for dy in 0..th {
                        for dx in 0..tw {
                            let wr = weight[(x0 + dx, y0 + dy)];
                            if wr > 0.0 {
                                all_flat = false;
                            }
                            let p = wr * rng.gen_range(0.0..1.0f64);
                            if p > best {
                                best = p;
                                pick = (x0 + dx, y0 + dy);
                            }
                        }
                    }
                    if all_flat {
                        pick = (x0 + rng.gen_range(0..tw), y0 + rng.gen_range(0..th));
                    }
                    Some(PixelCoord::new(pick.0 as u16, pick.1 as u16))
                })
            }
        };
        if matches!(
            self.strategy,
            MappingStrategy::UnseenOnly | MappingStrategy::Combined
        ) {
            let chosen: std::collections::HashSet<PixelCoord> = set.samples().collect();
            let mut extras = Vec::new();
            for (x, y, &t) in transmittance.iter_pixels() {
                if t > self.unseen_threshold {
                    let p = PixelCoord::new(x as u16, y as u16);
                    if !chosen.contains(&p) {
                        extras.push(p);
                    }
                }
            }
            set.add_extra(extras);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatonic_math::Vec3;

    fn frame(w: usize, h: usize) -> Frame {
        // Left half flat, right half checkered (texture-rich).
        let color = Image::from_fn(w, h, |x, y| {
            if x < w / 2 {
                Vec3::splat(0.5)
            } else if (x / 2 + y / 2) % 2 == 0 {
                Vec3::splat(0.9)
            } else {
                Vec3::splat(0.1)
            }
        });
        Frame::new(color, Image::filled(w, h, 1.0), 0)
    }

    #[test]
    fn random_per_tile_budget() {
        let f = frame(64, 64);
        let plan = tracking_plan(SamplingStrategy::RandomPerTile { tile: 16 }, &f, 1, None);
        match plan {
            SamplingPlan::Pixels(p) => {
                assert_eq!(p.len(), 16);
                assert!((p.sampling_rate() - 1.0 / 256.0).abs() < 1e-12);
            }
            _ => panic!("expected pixels"),
        }
    }

    #[test]
    fn random_per_tile_is_deterministic_per_seed() {
        let f = frame(64, 64);
        let a = tracking_plan(SamplingStrategy::RandomPerTile { tile: 8 }, &f, 7, None);
        let b = tracking_plan(SamplingStrategy::RandomPerTile { tile: 8 }, &f, 7, None);
        let c = tracking_plan(SamplingStrategy::RandomPerTile { tile: 8 }, &f, 8, None);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn per_tile_picks_are_traversal_order_independent() {
        // A tile's pick depends only on (seed, tx, ty): growing the frame
        // adds tiles without disturbing the picks of tiles that already
        // existed, which a shared sequentially-drawn RNG cannot guarantee.
        let small = frame(64, 64);
        let large = frame(128, 64);
        let strategy = SamplingStrategy::RandomPerTile { tile: 16 };
        let SamplingPlan::Pixels(a) = tracking_plan(strategy, &small, 9, None) else {
            panic!()
        };
        let SamplingPlan::Pixels(b) = tracking_plan(strategy, &large, 9, None) else {
            panic!()
        };
        let a_set: std::collections::HashSet<_> = a.samples().collect();
        for p in b.samples().filter(|p| (p.x as usize) < 64) {
            assert!(a_set.contains(&p), "pick {p:?} changed when the frame grew");
        }
    }

    #[test]
    fn harris_prefers_textured_half() {
        let f = frame(64, 64);
        let plan = tracking_plan(SamplingStrategy::HarrisPerTile { tile: 32 }, &f, 1, None);
        let SamplingPlan::Pixels(p) = plan else {
            panic!()
        };
        // Tiles fully inside the textured right half must pick a corner-ish
        // pixel; in the flat half, the fallback keeps coverage.
        assert_eq!(p.len(), 4);
        for s in p.samples() {
            assert!((s.x as usize) < 64 && (s.y as usize) < 64);
        }
    }

    #[test]
    fn lowres_plan_passes_factor() {
        let f = frame(64, 64);
        match tracking_plan(SamplingStrategy::LowRes { factor: 4 }, &f, 0, None) {
            SamplingPlan::LowRes { factor } => assert_eq!(factor, 4),
            _ => panic!("expected low-res plan"),
        }
    }

    #[test]
    fn loss_guided_selects_top_tiles() {
        let f = frame(64, 64);
        // 4x4 grid of 16px tiles; make tile 5 the lossiest.
        let mut losses = vec![0.0; 16];
        losses[5] = 10.0;
        let plan = tracking_plan(
            SamplingStrategy::LossGuidedTiles { tile: 16 },
            &f,
            1,
            Some(&losses),
        );
        let SamplingPlan::Pixels(p) = plan else {
            panic!()
        };
        // Budget: 4096/256 = 16 pixels → 1 tile of 256 pixels... budget is
        // ceil(16/256)=1 tile → 256 pixels from tile 5.
        assert_eq!(p.len(), 256);
        let tx = 5 % 4;
        let ty = 5 / 4;
        for s in p.samples() {
            assert!((s.x as usize) / 16 == tx && (s.y as usize) / 16 == ty);
        }
    }

    #[test]
    fn loss_guided_without_history_is_random_but_budgeted() {
        let f = frame(64, 64);
        let plan = tracking_plan(SamplingStrategy::LossGuidedTiles { tile: 16 }, &f, 3, None);
        let SamplingPlan::Pixels(p) = plan else {
            panic!()
        };
        assert_eq!(p.len(), 256);
    }

    #[test]
    fn sampling_rates() {
        assert_eq!(SamplingStrategy::Dense.sampling_rate(64, 64), 1.0);
        assert!(
            (SamplingStrategy::RandomPerTile { tile: 16 }.sampling_rate(64, 64) - 1.0 / 256.0)
                .abs()
                < 1e-12
        );
        assert!(
            (SamplingStrategy::LowRes { factor: 16 }.sampling_rate(64, 64) - 1.0 / 256.0).abs()
                < 1e-12
        );
        // Non-divisible frames: one pick per clipped tile, so the rate is
        // tiles/area, not 1/tile².
        let r = SamplingStrategy::RandomPerTile { tile: 16 }.sampling_rate(70, 50);
        assert!((r - (5.0 * 4.0) / 3500.0).abs() < 1e-12);
        assert_eq!(SamplingStrategy::Dense.sampling_rate(0, 0), 0.0);
    }

    #[test]
    fn loss_guided_rate_reflects_whole_tile_rounding() {
        // satellite of PR 5: the realized plan rounds its budget up to whole
        // 16×16 tiles. 64×48 @ tile=16: nominal budget 12 px, realized 256.
        let strategy = SamplingStrategy::LossGuidedTiles { tile: 16 };
        let rate = strategy.sampling_rate(64, 48);
        assert!((rate - 256.0 / 3072.0).abs() < 1e-12, "rate {rate}");
        // And it matches the plan actually built for that frame.
        let f = frame(64, 48);
        let plan = tracking_plan(strategy, &f, 1, None);
        assert_eq!(plan.pixel_count(64, 48), 256);
        assert!((plan.realized_rate(64, 48) - rate).abs() < 1e-12);
    }

    #[test]
    fn plan_pixel_counts_match_realized_sets() {
        let f = frame(64, 48);
        for strategy in [
            SamplingStrategy::Dense,
            SamplingStrategy::RandomPerTile { tile: 16 },
            SamplingStrategy::HarrisPerTile { tile: 16 },
            SamplingStrategy::LossGuidedTiles { tile: 16 },
        ] {
            let plan = tracking_plan(strategy, &f, 3, None);
            let SamplingPlan::Pixels(ref p) = plan else {
                panic!()
            };
            assert_eq!(plan.pixel_count(64, 48), p.len(), "{strategy:?}");
            // The strategy-level rate agrees with the realized plan for
            // frames where clipping cannot bite (all dims divisible).
            assert!(
                (strategy.sampling_rate(64, 48) - plan.realized_rate(64, 48)).abs() < 1e-12,
                "{strategy:?}"
            );
        }
        // Low-res plans report the downscaled render's pixel count.
        let plan = tracking_plan(SamplingStrategy::LowRes { factor: 4 }, &f, 0, None);
        assert_eq!(plan.pixel_count(64, 48), 16 * 12);
    }

    #[test]
    fn mapping_combined_includes_unseen_extras() {
        let f = frame(32, 32);
        // Mark a block as unseen.
        let t = Image::from_fn(32, 32, |x, y| if x < 8 && y < 8 { 0.9 } else { 0.1 });
        let sampler = MappingSampler::new(4, MappingStrategy::Combined);
        let set = sampler.build(&f, &t, 1);
        assert_eq!(set.sample_count(), 64); // 8x8 tiles
        assert!(set.extra_count() > 0);
        for e in set.extra() {
            assert!((e.x as usize) < 8 && (e.y as usize) < 8);
        }
    }

    #[test]
    fn mapping_unseen_only_has_no_samples() {
        let f = frame(32, 32);
        let t = Image::from_fn(32, 32, |x, _| if x == 0 { 0.9 } else { 0.0 });
        let sampler = MappingSampler::new(4, MappingStrategy::UnseenOnly);
        let set = sampler.build(&f, &t, 1);
        assert_eq!(set.sample_count(), 0);
        assert_eq!(set.extra_count(), 32);
    }

    #[test]
    fn mapping_weighted_prefers_texture() {
        let f = frame(64, 64);
        let t = Image::filled(64, 64, 0.0);
        let sampler = MappingSampler::new(8, MappingStrategy::WeightedOnly);
        let set = sampler.build(&f, &t, 5);
        assert_eq!(set.sample_count(), 64);
        assert_eq!(set.extra_count(), 0);
        // In tiles straddling the texture boundary, the picked pixel should
        // lie in the textured part more often than not.
        let boundary_samples: Vec<_> = set
            .samples()
            .filter(|p| (p.x as usize) >= 24 && (p.x as usize) < 40)
            .collect();
        let textured = boundary_samples
            .iter()
            .filter(|p| (p.x as usize) >= 32)
            .count();
        assert!(
            textured * 2 >= boundary_samples.len(),
            "weighted sampling should lean textured: {textured}/{}",
            boundary_samples.len()
        );
    }

    #[test]
    fn mapping_random_only_covers_tiles() {
        let f = frame(16, 16);
        let t = Image::filled(16, 16, 0.0);
        let sampler = MappingSampler::new(4, MappingStrategy::RandomOnly);
        let set = sampler.build(&f, &t, 2);
        assert_eq!(set.sample_count(), 16);
        assert_eq!(set.extra_count(), 0);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_transmittance_panics() {
        let f = frame(16, 16);
        let t = Image::filled(8, 8, 0.0);
        MappingSampler::new(4, MappingStrategy::Combined).build(&f, &t, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tile_panics() {
        let _ = MappingSampler::new(0, MappingStrategy::Combined);
    }
}
