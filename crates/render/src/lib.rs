//! Differentiable 3D-Gaussian-splatting rendering for SPLATONIC.
//!
//! This crate implements the paper's two rendering schedules over one shared
//! set of math kernels, so accuracy is schedule-independent and performance
//! experiments compare *schedules*, exactly as the paper frames it:
//!
//! * [`tile`] — the conventional **tile-based** pipeline (paper Sec. II-B,
//!   Fig. 3): tile-granular projection and sorting amortize work across the
//!   pixels of a 16×16 tile; rasterization α-checks every pixel–Gaussian
//!   pair, causing warp divergence under sparse sampling.
//! * [`pixel`] — the paper's **pixel-based** pipeline (Sec. IV-B, Fig. 13):
//!   per-pixel projection with *preemptive α-checking*, per-pixel depth
//!   sorting, and Gaussian-parallel rasterization.
//!
//! Supporting modules:
//!
//! * [`kernel`] — EWA projection, α evaluation, and the analytic Jacobians,
//! * [`binning`] — the screen-space bin index that prunes per-pixel
//!   candidate discovery on sparse pixel sets (bit-identical output),
//! * [`projcache`] — the cross-iteration projection cache reusing
//!   per-Gaussian projection results across Adam iterations,
//! * [`tilesort`] — GS-TG-style tile grouping (one shared depth sort per
//!   tile group, per-tile lists derived by masking) plus the frame-coherent
//!   sorted-list cache keyed like `projcache` (bit-identical output),
//! * [`phase`] — gated side-band phase tracing feeding the Chrome trace
//!   export (trace-only; never perturbs reports),
//! * [`sampling`] — the adaptive sparse pixel samplers of Sec. IV-A plus the
//!   baselines of Fig. 10 (Low-Res., Loss-guided, Harris),
//! * [`loss`] — L1 color+depth losses and their gradients,
//! * [`grad`] — gradient containers and the re-projection stage,
//! * [`trace`] — per-stage workload statistics consumed by the hardware
//!   models in `splatonic-gpusim` and `splatonic-accel`.
//!
//! # Examples
//!
//! ```
//! use splatonic_render::prelude::*;
//! use splatonic_scene::{Camera, Intrinsics, WorldBuilder};
//!
//! let world = WorldBuilder::new(1).gaussian_spacing(0.5).build();
//! let cam = Camera::look_at(
//!     Intrinsics::with_fov(64, 48, 1.2),
//!     [0.0, 0.0, 0.0].into(),
//!     [0.0, 0.0, 2.0].into(),
//!     splatonic_math::Vec3::Y,
//! );
//! let pixels = PixelSet::dense(64, 48);
//! let out = render_forward(&world.scene, &cam, &pixels, Pipeline::TileBased, &RenderConfig::default());
//! assert_eq!(out.color.len(), pixels.len());
//! ```

// Every public item must carry a doc comment; config knobs additionally
// document their default and bit-exactness contract (DESIGN.md §13).
#![warn(missing_docs)]

pub mod binning;
pub mod grad;
pub mod kernel;
pub mod loss;
pub mod phase;
pub mod pixel;
pub mod pixelset;
pub mod projcache;
pub mod sampling;
pub mod simd;
pub mod tile;
pub mod tilesort;
pub mod trace;

pub use binning::BinIndex;
pub use grad::{PoseGrad, SceneGrads};
pub use kernel::{ProjectedGaussian, RenderConfig};
pub use loss::{LossConfig, LossGrad};
pub use pixelset::PixelSet;
pub use sampling::{MappingSampler, SamplingStrategy};
pub use simd::KernelMode;
pub use trace::RenderTrace;

use splatonic_math::Vec3;
use splatonic_scene::{Camera, GaussianScene};

/// Which rendering schedule to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pipeline {
    /// Conventional tile-based rendering (baseline, paper Fig. 3).
    TileBased,
    /// The paper's pixel-based rendering (Fig. 13).
    PixelBased,
}

/// One Gaussian's contribution to one pixel, kept for the backward pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Contribution {
    /// Index of the Gaussian in the scene.
    pub gaussian: u32,
    /// Evaluated transparency α_i at this pixel.
    pub alpha: f64,
    /// Transmittance Γ_i *before* this Gaussian (Eq. 1 prefix product).
    pub transmittance: f64,
}

/// Output of a forward render over a pixel set.
///
/// Per-pixel vectors are indexed in the same order as
/// [`PixelSet::iter_all`] yields pixels.
#[derive(Debug, Clone)]
pub struct ForwardResult {
    /// Composited color per sampled pixel.
    pub color: Vec<Vec3>,
    /// Expected depth per sampled pixel.
    pub depth: Vec<f64>,
    /// Final transmittance Γ_final per sampled pixel (Eq. 2 input).
    pub final_transmittance: Vec<f64>,
    /// Contributing (Gaussian, α, Γ) list per sampled pixel, depth-ordered.
    pub contributions: Vec<Vec<Contribution>>,
    /// Workload statistics recorded during the render.
    pub trace: RenderTrace,
}

impl ForwardResult {
    /// Total number of pixel–Gaussian contributions across all pixels.
    pub fn total_contributions(&self) -> usize {
        self.contributions.iter().map(Vec::len).sum()
    }
}

/// Renders the scene at `camera` over the pixels in `pixels` using the
/// requested `pipeline`.
///
/// Both pipelines produce the same image up to floating-point noise; they
/// differ in schedule and therefore in the recorded [`RenderTrace`].
pub fn render_forward(
    scene: &GaussianScene,
    camera: &Camera,
    pixels: &PixelSet,
    pipeline: Pipeline,
    config: &RenderConfig,
) -> ForwardResult {
    match pipeline {
        Pipeline::TileBased => tile::forward(scene, camera, pixels, config),
        Pipeline::PixelBased => pixel::forward(scene, camera, pixels, config),
    }
}

/// Runs the backward pass for a prior [`render_forward`] call.
///
/// `loss_grads` supplies `∂L/∂color` and `∂L/∂depth` per sampled pixel (in
/// pixel-set order). Returns per-Gaussian gradients, the camera-pose
/// gradient, and the backward-stage trace.
pub fn render_backward(
    scene: &GaussianScene,
    camera: &Camera,
    pixels: &PixelSet,
    forward: &ForwardResult,
    loss_grads: &[LossGrad],
    pipeline: Pipeline,
    config: &RenderConfig,
) -> (SceneGrads, PoseGrad, RenderTrace) {
    match pipeline {
        Pipeline::TileBased => tile::backward(scene, camera, pixels, forward, loss_grads, config),
        Pipeline::PixelBased => pixel::backward(scene, camera, pixels, forward, loss_grads, config),
    }
}

/// Convenience prelude re-exporting the common entry points.
pub mod prelude {
    pub use crate::kernel::RenderConfig;
    pub use crate::pixelset::PixelSet;
    pub use crate::sampling::SamplingStrategy;
    pub use crate::{render_backward, render_forward, ForwardResult, Pipeline};
}
