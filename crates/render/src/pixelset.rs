//! The set of pixels selected for a render.
//!
//! A [`PixelSet`] holds the sparse samples (at most one per tile, supporting
//! the projection unit's *direct indexing*, paper Sec. V-C) plus the
//! separately-stored *unseen* pixels of the mapping sampler ("the unseen
//! pixel indices are stored separately, so that \[they] do not interrupt our
//! indexing strategy").

use splatonic_math::Vec2;

/// Sentinel marking a tile without a sample.
const NO_SAMPLE: u32 = u32::MAX;

/// A selected pixel (integer coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PixelCoord {
    /// Column.
    pub x: u16,
    /// Row.
    pub y: u16,
}

impl PixelCoord {
    /// Creates a coordinate.
    #[inline]
    pub fn new(x: u16, y: u16) -> Self {
        PixelCoord { x, y }
    }

    /// Pixel-center position in continuous image coordinates.
    #[inline]
    pub fn center(self) -> Vec2 {
        Vec2::new(self.x as f64 + 0.5, self.y as f64 + 0.5)
    }
}

/// The pixels a render pass processes.
///
/// # Examples
///
/// ```
/// use splatonic_render::PixelSet;
/// let dense = PixelSet::dense(8, 4);
/// assert_eq!(dense.len(), 32);
/// assert_eq!(dense.tile_size(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PixelSet {
    width: usize,
    height: usize,
    tile: usize,
    /// One sample per tile (tile-grid order where present).
    samples: Vec<PixelCoord>,
    /// tile index → index into `samples`, or `NO_SAMPLE`.
    tile_grid: Vec<u32>,
    /// Extra pixels outside the per-tile structure (mapping's unseen set).
    extra: Vec<PixelCoord>,
}

impl PixelSet {
    /// Builds a dense set covering every pixel (tile size 1).
    pub fn dense(width: usize, height: usize) -> Self {
        let mut samples = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                samples.push(PixelCoord::new(x as u16, y as u16));
            }
        }
        let tile_grid = (0..samples.len() as u32).collect();
        PixelSet {
            width,
            height,
            tile: 1,
            samples,
            tile_grid,
            extra: Vec::new(),
        }
    }

    /// Builds a sparse set from one chosen pixel per `tile × tile` tile.
    ///
    /// `chooser(tx, ty, x0, y0, w, h)` returns the chosen pixel within the
    /// tile spanning `[x0, x0+w) × [y0, y0+h)`, or `None` to leave the tile
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `tile == 0`.
    pub fn from_tile_chooser(
        width: usize,
        height: usize,
        tile: usize,
        mut chooser: impl FnMut(usize, usize, usize, usize, usize, usize) -> Option<PixelCoord>,
    ) -> Self {
        assert!(tile > 0, "tile size must be positive");
        let tiles_x = width.div_ceil(tile);
        let tiles_y = height.div_ceil(tile);
        let mut samples = Vec::with_capacity(tiles_x * tiles_y);
        let mut tile_grid = vec![NO_SAMPLE; tiles_x * tiles_y];
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                let x0 = tx * tile;
                let y0 = ty * tile;
                let w = tile.min(width - x0);
                let h = tile.min(height - y0);
                if let Some(p) = chooser(tx, ty, x0, y0, w, h) {
                    debug_assert!(
                        (p.x as usize) >= x0
                            && (p.x as usize) < x0 + w
                            && (p.y as usize) >= y0
                            && (p.y as usize) < y0 + h,
                        "chooser returned a pixel outside its tile"
                    );
                    tile_grid[ty * tiles_x + tx] = samples.len() as u32;
                    samples.push(p);
                }
            }
        }
        PixelSet {
            width,
            height,
            tile,
            samples,
            tile_grid,
            extra: Vec::new(),
        }
    }

    /// Builds a set from an explicit pixel list (tile structure degenerate).
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<PixelCoord>) -> Self {
        PixelSet {
            width,
            height,
            tile: 1,
            tile_grid: Vec::new(),
            samples: pixels,
            extra: Vec::new(),
        }
    }

    /// Appends extra (unseen) pixels stored outside the tile structure.
    pub fn add_extra(&mut self, pixels: impl IntoIterator<Item = PixelCoord>) {
        self.extra.extend(pixels);
    }

    /// Image width.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Sampling tile size (1 for dense sets).
    #[inline]
    pub fn tile_size(&self) -> usize {
        self.tile
    }

    /// Total number of selected pixels (samples + extras).
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len() + self.extra.len()
    }

    /// Returns `true` when no pixels are selected.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty() && self.extra.is_empty()
    }

    /// Number of tile-structured samples (excluding extras).
    #[inline]
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// The tile-structured samples.
    #[inline]
    pub fn samples(&self) -> &[PixelCoord] {
        &self.samples
    }

    /// The extra (unseen) pixels.
    #[inline]
    pub fn extra(&self) -> &[PixelCoord] {
        &self.extra
    }

    /// Iterates over all selected pixels: samples first, then extras.
    ///
    /// Per-pixel vectors in `ForwardResult` follow this order.
    pub fn iter_all(&self) -> impl Iterator<Item = PixelCoord> + '_ {
        self.samples.iter().chain(self.extra.iter()).copied()
    }

    /// Effective sampling rate: selected pixels / total pixels.
    pub fn sampling_rate(&self) -> f64 {
        if self.width * self.height == 0 {
            return 0.0;
        }
        self.len() as f64 / (self.width * self.height) as f64
    }

    /// Direct indexing (paper Sec. V-C): all tile-structured samples whose
    /// tile overlaps the pixel-space bounding box `[min, max]`.
    ///
    /// Returns `(sample_index, coord)` pairs; extras are *not* included —
    /// iterate [`PixelSet::extra`] separately, offset by
    /// [`PixelSet::sample_count`].
    pub fn samples_in_bbox(&self, min: Vec2, max: Vec2, mut visit: impl FnMut(usize, PixelCoord)) {
        if self.tile_grid.is_empty() {
            // Degenerate structure: scan all samples.
            for (i, p) in self.samples.iter().enumerate() {
                let c = p.center();
                if c.x >= min.x && c.x <= max.x && c.y >= min.y && c.y <= max.y {
                    visit(i, *p);
                }
            }
            return;
        }
        let tiles_x = self.width.div_ceil(self.tile);
        let tiles_y = self.height.div_ceil(self.tile);
        let tx0 =
            ((min.x.floor() as isize) / self.tile as isize).clamp(0, tiles_x as isize - 1) as usize;
        let ty0 =
            ((min.y.floor() as isize) / self.tile as isize).clamp(0, tiles_y as isize - 1) as usize;
        let tx1 =
            ((max.x.ceil() as isize) / self.tile as isize).clamp(0, tiles_x as isize - 1) as usize;
        let ty1 =
            ((max.y.ceil() as isize) / self.tile as isize).clamp(0, tiles_y as isize - 1) as usize;
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                let slot = self.tile_grid[ty * tiles_x + tx];
                if slot != NO_SAMPLE {
                    let p = self.samples[slot as usize];
                    visit(slot as usize, p);
                }
            }
        }
    }

    /// Whether the set carries a tile index ([`PixelSet::samples_in_bbox`]
    /// uses direct indexing rather than a linear center-containment scan).
    #[inline]
    pub fn has_tile_index(&self) -> bool {
        !self.tile_grid.is_empty()
    }

    /// Tile-space dimensions `(tiles_x, tiles_y)`.
    pub fn tile_dims(&self) -> (usize, usize) {
        (
            self.width.div_ceil(self.tile),
            self.height.div_ceil(self.tile),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_covers_everything() {
        let s = PixelSet::dense(4, 3);
        assert_eq!(s.len(), 12);
        assert_eq!(s.sampling_rate(), 1.0);
        assert_eq!(s.iter_all().count(), 12);
    }

    #[test]
    fn tile_chooser_one_per_tile() {
        let s = PixelSet::from_tile_chooser(32, 32, 16, |_, _, x0, y0, _, _| {
            Some(PixelCoord::new(x0 as u16, y0 as u16))
        });
        assert_eq!(s.len(), 4);
        assert!((s.sampling_rate() - 4.0 / 1024.0).abs() < 1e-12);
        assert_eq!(s.tile_size(), 16);
    }

    #[test]
    fn tile_chooser_handles_partial_tiles() {
        // 20x20 with 16-tiles → 2x2 tile grid with ragged edges.
        let s = PixelSet::from_tile_chooser(20, 20, 16, |_, _, x0, y0, w, h| {
            Some(PixelCoord::new((x0 + w - 1) as u16, (y0 + h - 1) as u16))
        });
        assert_eq!(s.len(), 4);
        for p in s.samples() {
            assert!((p.x as usize) < 20 && (p.y as usize) < 20);
        }
    }

    #[test]
    fn chooser_may_skip_tiles() {
        let s = PixelSet::from_tile_chooser(32, 32, 16, |tx, ty, x0, y0, _, _| {
            if tx == 0 && ty == 0 {
                None
            } else {
                Some(PixelCoord::new(x0 as u16, y0 as u16))
            }
        });
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn extras_are_appended_after_samples() {
        let mut s = PixelSet::from_tile_chooser(16, 16, 16, |_, _, x0, y0, _, _| {
            Some(PixelCoord::new(x0 as u16, y0 as u16))
        });
        s.add_extra([PixelCoord::new(5, 5), PixelCoord::new(6, 6)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.sample_count(), 1);
        let all: Vec<_> = s.iter_all().collect();
        assert_eq!(all[0], PixelCoord::new(0, 0));
        assert_eq!(all[2], PixelCoord::new(6, 6));
    }

    #[test]
    fn bbox_direct_indexing_finds_only_overlapping_tiles() {
        let s = PixelSet::from_tile_chooser(64, 64, 16, |_, _, x0, y0, _, _| {
            Some(PixelCoord::new((x0 + 8) as u16, (y0 + 8) as u16))
        });
        let mut hits = Vec::new();
        // Bbox covering only the top-left tile.
        s.samples_in_bbox(Vec2::new(0.0, 0.0), Vec2::new(10.0, 10.0), |i, p| {
            hits.push((i, p))
        });
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, PixelCoord::new(8, 8));
        // Bbox spanning all tiles.
        let mut all = 0;
        s.samples_in_bbox(Vec2::new(0.0, 0.0), Vec2::new(63.0, 63.0), |_, _| all += 1);
        assert_eq!(all, 16);
    }

    #[test]
    fn bbox_clamps_out_of_range() {
        let s = PixelSet::from_tile_chooser(32, 32, 16, |_, _, x0, y0, _, _| {
            Some(PixelCoord::new(x0 as u16, y0 as u16))
        });
        let mut n = 0;
        s.samples_in_bbox(
            Vec2::new(-100.0, -100.0),
            Vec2::new(-50.0, -50.0),
            |_, _| n += 1,
        );
        // Clamped to the nearest tile; the candidate is then α-checked by
        // the caller, so over-approximation is safe.
        assert!(n <= 1);
    }

    #[test]
    fn from_pixels_scans_linearly() {
        let s = PixelSet::from_pixels(16, 16, vec![PixelCoord::new(1, 1), PixelCoord::new(10, 10)]);
        let mut hits = Vec::new();
        s.samples_in_bbox(Vec2::new(0.0, 0.0), Vec2::new(4.0, 4.0), |i, _| {
            hits.push(i)
        });
        assert_eq!(hits, vec![0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tile_panics() {
        let _ = PixelSet::from_tile_chooser(8, 8, 0, |_, _, _, _, _, _| None);
    }

    #[test]
    fn pixel_center() {
        assert_eq!(PixelCoord::new(3, 4).center(), Vec2::new(3.5, 4.5));
    }
}
