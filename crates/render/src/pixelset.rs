//! The set of pixels selected for a render.
//!
//! A [`PixelSet`] holds the sparse samples (at most one per tile, supporting
//! the projection unit's *direct indexing*, paper Sec. V-C) plus the
//! separately-stored *unseen* pixels of the mapping sampler ("the unseen
//! pixel indices are stored separately, so that \[they] do not interrupt our
//! indexing strategy").
//!
//! Storage is structure-of-arrays: sample and extra coordinates live in
//! parallel `Vec<u16>` columns (`x` and `y` separately) so the SIMD kernels
//! in [`crate::simd`] can load contiguous coordinate lanes without gathering
//! through an array-of-structs layout. [`PixelCoord`] remains the by-value
//! exchange type at every API boundary.

use splatonic_math::Vec2;

/// Sentinel marking a tile without a sample.
const NO_SAMPLE: u32 = u32::MAX;

/// A selected pixel (integer coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PixelCoord {
    /// Column.
    pub x: u16,
    /// Row.
    pub y: u16,
}

impl PixelCoord {
    /// Creates a coordinate.
    #[inline]
    pub fn new(x: u16, y: u16) -> Self {
        PixelCoord { x, y }
    }

    /// Pixel-center position in continuous image coordinates.
    #[inline]
    pub fn center(self) -> Vec2 {
        Vec2::new(self.x as f64 + 0.5, self.y as f64 + 0.5)
    }
}

/// The pixels a render pass processes.
///
/// # Examples
///
/// ```
/// use splatonic_render::PixelSet;
/// let dense = PixelSet::dense(8, 4);
/// assert_eq!(dense.len(), 32);
/// assert_eq!(dense.tile_size(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PixelSet {
    width: usize,
    height: usize,
    tile: usize,
    /// Sample columns, one entry per tile-structured sample (SoA with
    /// `sample_ys`).
    sample_xs: Vec<u16>,
    /// Sample rows (SoA with `sample_xs`).
    sample_ys: Vec<u16>,
    /// tile index → index into the sample columns, or `NO_SAMPLE`.
    tile_grid: Vec<u32>,
    /// Extra-pixel columns (mapping's unseen set), outside the per-tile
    /// structure (SoA with `extra_ys`).
    extra_xs: Vec<u16>,
    /// Extra-pixel rows (SoA with `extra_xs`).
    extra_ys: Vec<u16>,
}

impl PixelSet {
    /// Builds a dense set covering every pixel (tile size 1).
    pub fn dense(width: usize, height: usize) -> Self {
        let mut sample_xs = Vec::with_capacity(width * height);
        let mut sample_ys = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                sample_xs.push(x as u16);
                sample_ys.push(y as u16);
            }
        }
        let tile_grid = (0..sample_xs.len() as u32).collect();
        PixelSet {
            width,
            height,
            tile: 1,
            sample_xs,
            sample_ys,
            tile_grid,
            extra_xs: Vec::new(),
            extra_ys: Vec::new(),
        }
    }

    /// Builds a sparse set from one chosen pixel per `tile × tile` tile.
    ///
    /// `chooser(tx, ty, x0, y0, w, h)` returns the chosen pixel within the
    /// tile spanning `[x0, x0+w) × [y0, y0+h)`, or `None` to leave the tile
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `tile == 0`.
    pub fn from_tile_chooser(
        width: usize,
        height: usize,
        tile: usize,
        mut chooser: impl FnMut(usize, usize, usize, usize, usize, usize) -> Option<PixelCoord>,
    ) -> Self {
        assert!(tile > 0, "tile size must be positive");
        let tiles_x = width.div_ceil(tile);
        let tiles_y = height.div_ceil(tile);
        let mut sample_xs = Vec::with_capacity(tiles_x * tiles_y);
        let mut sample_ys = Vec::with_capacity(tiles_x * tiles_y);
        let mut tile_grid = vec![NO_SAMPLE; tiles_x * tiles_y];
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                let x0 = tx * tile;
                let y0 = ty * tile;
                let w = tile.min(width - x0);
                let h = tile.min(height - y0);
                if let Some(p) = chooser(tx, ty, x0, y0, w, h) {
                    debug_assert!(
                        (p.x as usize) >= x0
                            && (p.x as usize) < x0 + w
                            && (p.y as usize) >= y0
                            && (p.y as usize) < y0 + h,
                        "chooser returned a pixel outside its tile"
                    );
                    tile_grid[ty * tiles_x + tx] = sample_xs.len() as u32;
                    sample_xs.push(p.x);
                    sample_ys.push(p.y);
                }
            }
        }
        PixelSet {
            width,
            height,
            tile,
            sample_xs,
            sample_ys,
            tile_grid,
            extra_xs: Vec::new(),
            extra_ys: Vec::new(),
        }
    }

    /// Builds a set from an explicit pixel list (tile structure degenerate).
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<PixelCoord>) -> Self {
        let sample_xs = pixels.iter().map(|p| p.x).collect();
        let sample_ys = pixels.iter().map(|p| p.y).collect();
        PixelSet {
            width,
            height,
            tile: 1,
            tile_grid: Vec::new(),
            sample_xs,
            sample_ys,
            extra_xs: Vec::new(),
            extra_ys: Vec::new(),
        }
    }

    /// Appends extra (unseen) pixels stored outside the tile structure.
    pub fn add_extra(&mut self, pixels: impl IntoIterator<Item = PixelCoord>) {
        for p in pixels {
            self.extra_xs.push(p.x);
            self.extra_ys.push(p.y);
        }
    }

    /// Image width.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Sampling tile size (1 for dense sets).
    #[inline]
    pub fn tile_size(&self) -> usize {
        self.tile
    }

    /// Total number of selected pixels (samples + extras).
    #[inline]
    pub fn len(&self) -> usize {
        self.sample_xs.len() + self.extra_xs.len()
    }

    /// Returns `true` when no pixels are selected.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sample_xs.is_empty() && self.extra_xs.is_empty()
    }

    /// Number of tile-structured samples (excluding extras).
    #[inline]
    pub fn sample_count(&self) -> usize {
        self.sample_xs.len()
    }

    /// Number of extra (unseen) pixels.
    #[inline]
    pub fn extra_count(&self) -> usize {
        self.extra_xs.len()
    }

    /// The tile-structured sample at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.sample_count()`.
    #[inline]
    pub fn sample(&self, i: usize) -> PixelCoord {
        PixelCoord::new(self.sample_xs[i], self.sample_ys[i])
    }

    /// The tile-structured samples, by value.
    #[inline]
    pub fn samples(&self) -> impl ExactSizeIterator<Item = PixelCoord> + '_ {
        self.sample_xs
            .iter()
            .zip(&self.sample_ys)
            .map(|(&x, &y)| PixelCoord::new(x, y))
    }

    /// Sample columns (`x` coordinates), SoA order matching
    /// [`PixelSet::sample_ys`].
    #[inline]
    pub fn sample_xs(&self) -> &[u16] {
        &self.sample_xs
    }

    /// Sample rows (`y` coordinates), SoA order matching
    /// [`PixelSet::sample_xs`].
    #[inline]
    pub fn sample_ys(&self) -> &[u16] {
        &self.sample_ys
    }

    /// The extra (unseen) pixels, by value.
    #[inline]
    pub fn extra(&self) -> impl ExactSizeIterator<Item = PixelCoord> + '_ {
        self.extra_xs
            .iter()
            .zip(&self.extra_ys)
            .map(|(&x, &y)| PixelCoord::new(x, y))
    }

    /// Iterates over all selected pixels: samples first, then extras.
    ///
    /// Per-pixel vectors in `ForwardResult` follow this order.
    pub fn iter_all(&self) -> impl Iterator<Item = PixelCoord> + '_ {
        self.samples().chain(self.extra())
    }

    /// Effective sampling rate: selected pixels / total pixels.
    pub fn sampling_rate(&self) -> f64 {
        if self.width * self.height == 0 {
            return 0.0;
        }
        self.len() as f64 / (self.width * self.height) as f64
    }

    /// Direct indexing (paper Sec. V-C): all tile-structured samples whose
    /// tile overlaps the pixel-space bounding box `[min, max]`.
    ///
    /// Returns `(sample_index, coord)` pairs; extras are *not* included —
    /// iterate [`PixelSet::extra`] separately, offset by
    /// [`PixelSet::sample_count`].
    pub fn samples_in_bbox(&self, min: Vec2, max: Vec2, mut visit: impl FnMut(usize, PixelCoord)) {
        if self.tile_grid.is_empty() {
            // Degenerate structure: scan all samples.
            for (i, p) in self.samples().enumerate() {
                let c = p.center();
                if c.x >= min.x && c.x <= max.x && c.y >= min.y && c.y <= max.y {
                    visit(i, p);
                }
            }
            return;
        }
        let tiles_x = self.width.div_ceil(self.tile);
        let tiles_y = self.height.div_ceil(self.tile);
        let tx0 =
            ((min.x.floor() as isize) / self.tile as isize).clamp(0, tiles_x as isize - 1) as usize;
        let ty0 =
            ((min.y.floor() as isize) / self.tile as isize).clamp(0, tiles_y as isize - 1) as usize;
        let tx1 =
            ((max.x.ceil() as isize) / self.tile as isize).clamp(0, tiles_x as isize - 1) as usize;
        let ty1 =
            ((max.y.ceil() as isize) / self.tile as isize).clamp(0, tiles_y as isize - 1) as usize;
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                let slot = self.tile_grid[ty * tiles_x + tx];
                if slot != NO_SAMPLE {
                    visit(slot as usize, self.sample(slot as usize));
                }
            }
        }
    }

    /// Whether the set carries a tile index ([`PixelSet::samples_in_bbox`]
    /// uses direct indexing rather than a linear center-containment scan).
    #[inline]
    pub fn has_tile_index(&self) -> bool {
        !self.tile_grid.is_empty()
    }

    /// Tile-space dimensions `(tiles_x, tiles_y)`.
    pub fn tile_dims(&self) -> (usize, usize) {
        (
            self.width.div_ceil(self.tile),
            self.height.div_ceil(self.tile),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_covers_everything() {
        let s = PixelSet::dense(4, 3);
        assert_eq!(s.len(), 12);
        assert_eq!(s.sampling_rate(), 1.0);
        assert_eq!(s.iter_all().count(), 12);
    }

    #[test]
    fn tile_chooser_one_per_tile() {
        let s = PixelSet::from_tile_chooser(32, 32, 16, |_, _, x0, y0, _, _| {
            Some(PixelCoord::new(x0 as u16, y0 as u16))
        });
        assert_eq!(s.len(), 4);
        assert!((s.sampling_rate() - 4.0 / 1024.0).abs() < 1e-12);
        assert_eq!(s.tile_size(), 16);
    }

    #[test]
    fn tile_chooser_handles_partial_tiles() {
        // 20x20 with 16-tiles → 2x2 tile grid with ragged edges.
        let s = PixelSet::from_tile_chooser(20, 20, 16, |_, _, x0, y0, w, h| {
            Some(PixelCoord::new((x0 + w - 1) as u16, (y0 + h - 1) as u16))
        });
        assert_eq!(s.len(), 4);
        for p in s.samples() {
            assert!((p.x as usize) < 20 && (p.y as usize) < 20);
        }
    }

    #[test]
    fn chooser_may_skip_tiles() {
        let s = PixelSet::from_tile_chooser(32, 32, 16, |tx, ty, x0, y0, _, _| {
            if tx == 0 && ty == 0 {
                None
            } else {
                Some(PixelCoord::new(x0 as u16, y0 as u16))
            }
        });
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn extras_are_appended_after_samples() {
        let mut s = PixelSet::from_tile_chooser(16, 16, 16, |_, _, x0, y0, _, _| {
            Some(PixelCoord::new(x0 as u16, y0 as u16))
        });
        s.add_extra([PixelCoord::new(5, 5), PixelCoord::new(6, 6)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.sample_count(), 1);
        assert_eq!(s.extra_count(), 2);
        let all: Vec<_> = s.iter_all().collect();
        assert_eq!(all[0], PixelCoord::new(0, 0));
        assert_eq!(all[2], PixelCoord::new(6, 6));
    }

    #[test]
    fn soa_columns_mirror_coords() {
        let mut s = PixelSet::from_tile_chooser(32, 32, 16, |_, _, x0, y0, _, _| {
            Some(PixelCoord::new((x0 + 1) as u16, (y0 + 2) as u16))
        });
        s.add_extra([PixelCoord::new(30, 31)]);
        assert_eq!(s.sample_xs().len(), s.sample_count());
        assert_eq!(s.sample_ys().len(), s.sample_count());
        for (i, p) in s.samples().enumerate() {
            assert_eq!(s.sample_xs()[i], p.x);
            assert_eq!(s.sample_ys()[i], p.y);
            assert_eq!(s.sample(i), p);
        }
        let extras: Vec<_> = s.extra().collect();
        assert_eq!(extras, vec![PixelCoord::new(30, 31)]);
    }

    #[test]
    fn bbox_direct_indexing_finds_only_overlapping_tiles() {
        let s = PixelSet::from_tile_chooser(64, 64, 16, |_, _, x0, y0, _, _| {
            Some(PixelCoord::new((x0 + 8) as u16, (y0 + 8) as u16))
        });
        let mut hits = Vec::new();
        // Bbox covering only the top-left tile.
        s.samples_in_bbox(Vec2::new(0.0, 0.0), Vec2::new(10.0, 10.0), |i, p| {
            hits.push((i, p))
        });
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, PixelCoord::new(8, 8));
        // Bbox spanning all tiles.
        let mut all = 0;
        s.samples_in_bbox(Vec2::new(0.0, 0.0), Vec2::new(63.0, 63.0), |_, _| all += 1);
        assert_eq!(all, 16);
    }

    #[test]
    fn bbox_clamps_out_of_range() {
        let s = PixelSet::from_tile_chooser(32, 32, 16, |_, _, x0, y0, _, _| {
            Some(PixelCoord::new(x0 as u16, y0 as u16))
        });
        let mut n = 0;
        s.samples_in_bbox(
            Vec2::new(-100.0, -100.0),
            Vec2::new(-50.0, -50.0),
            |_, _| n += 1,
        );
        // Clamped to the nearest tile; the candidate is then α-checked by
        // the caller, so over-approximation is safe.
        assert!(n <= 1);
    }

    #[test]
    fn from_pixels_scans_linearly() {
        let s = PixelSet::from_pixels(16, 16, vec![PixelCoord::new(1, 1), PixelCoord::new(10, 10)]);
        let mut hits = Vec::new();
        s.samples_in_bbox(Vec2::new(0.0, 0.0), Vec2::new(4.0, 4.0), |i, _| {
            hits.push(i)
        });
        assert_eq!(hits, vec![0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tile_panics() {
        let _ = PixelSet::from_tile_chooser(8, 8, 0, |_, _, _, _, _, _| None);
    }

    #[test]
    fn pixel_center() {
        assert_eq!(PixelCoord::new(3, 4).center(), Vec2::new(3.5, 4.5));
    }
}
