//! Screen-space bin index for the sparse pixel-based hot path.
//!
//! The exhaustive pixel pipeline discovers pixel–Gaussian candidates
//! Gaussian-major: every projected Gaussian enumerates the sampled-pixel
//! tiles its 3σ bounding box overlaps. That cost scales with the number of
//! *Gaussians* even when only a handful of pixels is sampled. The bin index
//! inverts the loop: projected Gaussians are bucketed once per render into a
//! coarse screen grid ([`crate::RenderConfig::bin_size`] pixels per bin), and each
//! sampled pixel then visits only the candidates of its own bin — the
//! GS-TG / SeeLe-style coarse grouping that prunes non-overlapping Gaussians
//! before any α math runs.
//!
//! # Exactness contract
//!
//! The binned path must be **bit-identical** to the exhaustive path, so bin
//! membership is *conservative with respect to the exhaustive candidate
//! predicate*, not merely with respect to geometry: a Gaussian is inserted
//! into every bin that could contain a pixel the exhaustive path would have
//! visited. Concretely the insertion span is the union of
//!
//! * the pixel span of the clamped tile range that
//!   [`PixelSet::samples_in_bbox`] would enumerate (replicating its
//!   truncation-toward-zero and edge-clamp semantics exactly), and
//! * the bounding box itself, widened by one pixel, which covers the
//!   center-containment predicate used for extra pixels and for pixel sets
//!   without a tile structure.
//!
//! Per-pixel filtering then applies the *same* predicate the exhaustive
//! path applies, so the surviving pairs — and therefore the per-pixel
//! entry lists, in the same ascending projected-index order — are
//! identical. Over-approximation only ever adds `bin_candidates` visits
//! that the predicate rejects; it can never change the rendered output.

use crate::kernel::ProjectedGaussian;
use crate::pixelset::{PixelCoord, PixelSet};
use splatonic_math::Vec2;

/// Default bin edge length in pixels (matches the rasterizer tile size).
pub const DEFAULT_BIN_SIZE: usize = 16;

/// A screen-space bin grid holding per-bin candidate lists of projected
/// Gaussian indices (ascending, since insertion scans the projected set in
/// order).
#[derive(Debug, Clone)]
pub struct BinIndex {
    bin: usize,
    bins_x: usize,
    bins_y: usize,
    lists: Vec<Vec<u32>>,
    /// Total list entries (Σ over bins), for trace accounting.
    entries: u64,
}

/// Replicates the clamped tile range of [`PixelSet::samples_in_bbox`]:
/// `floor(lo)` / `ceil(hi)` with isize division (truncation toward zero)
/// and clamping into `[0, n-1]`.
#[inline]
pub(crate) fn clamped_range(lo: f64, hi: f64, cell: usize, n: usize) -> (usize, usize) {
    let a = ((lo.floor() as isize) / cell as isize).clamp(0, n as isize - 1) as usize;
    let b = ((hi.ceil() as isize) / cell as isize).clamp(0, n as isize - 1) as usize;
    (a, b)
}

impl BinIndex {
    /// Builds the index for `projected` over the screen of `pixels`,
    /// with `bin_size`-pixel bins (0 falls back to [`DEFAULT_BIN_SIZE`]).
    pub fn build(projected: &[ProjectedGaussian], pixels: &PixelSet, bin_size: usize) -> BinIndex {
        let bin = if bin_size == 0 {
            DEFAULT_BIN_SIZE
        } else {
            bin_size
        };
        let width = pixels.width().max(1);
        let height = pixels.height().max(1);
        let bins_x = width.div_ceil(bin);
        let bins_y = height.div_ceil(bin);
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); bins_x * bins_y];
        let mut entries = 0u64;
        let tile = pixels.tile_size();
        let has_tiles = pixels.has_tile_index();
        let (tiles_x, tiles_y) = pixels.tile_dims();
        for (pi, pg) in projected.iter().enumerate() {
            let (lo, hi) = pg.bbox();
            // Pixel span of the center-containment predicate (extras and
            // tile-less sets), widened by one pixel on each side.
            let mut x_lo = (lo.x - 1.0).floor() as isize;
            let mut x_hi = (hi.x + 1.0).ceil() as isize;
            let mut y_lo = (lo.y - 1.0).floor() as isize;
            let mut y_hi = (hi.y + 1.0).ceil() as isize;
            if has_tiles {
                // Union with the pixel span of the clamped tile range the
                // exhaustive direct-indexing walk would visit.
                let (tx0, tx1) = clamped_range(lo.x, hi.x, tile, tiles_x);
                let (ty0, ty1) = clamped_range(lo.y, hi.y, tile, tiles_y);
                x_lo = x_lo.min((tx0 * tile) as isize);
                x_hi = x_hi.max(((tx1 + 1) * tile) as isize - 1);
                y_lo = y_lo.min((ty0 * tile) as isize);
                y_hi = y_hi.max(((ty1 + 1) * tile) as isize - 1);
            }
            let x_lo = x_lo.clamp(0, width as isize - 1) as usize;
            let x_hi = x_hi.clamp(0, width as isize - 1) as usize;
            let y_lo = y_lo.clamp(0, height as isize - 1) as usize;
            let y_hi = y_hi.clamp(0, height as isize - 1) as usize;
            if x_lo > x_hi || y_lo > y_hi {
                continue;
            }
            for by in (y_lo / bin)..=(y_hi / bin) {
                for bx in (x_lo / bin)..=(x_hi / bin) {
                    lists[by * bins_x + bx].push(pi as u32);
                    entries += 1;
                }
            }
        }
        BinIndex {
            bin,
            bins_x,
            bins_y,
            lists,
            entries,
        }
    }

    /// Candidate projected-Gaussian indices for the bin containing `p`
    /// (ascending projected index).
    #[inline]
    pub fn candidates(&self, p: PixelCoord) -> &[u32] {
        let bx = (p.x as usize / self.bin).min(self.bins_x - 1);
        let by = (p.y as usize / self.bin).min(self.bins_y - 1);
        &self.lists[by * self.bins_x + bx]
    }

    /// Bin edge length in pixels.
    #[inline]
    pub fn bin_size(&self) -> usize {
        self.bin
    }

    /// Grid dimensions `(bins_x, bins_y)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.bins_x, self.bins_y)
    }

    /// Total candidate entries across all bins.
    pub fn total_entries(&self) -> u64 {
        self.entries
    }
}

/// The exhaustive candidate predicate for a tile-structured sample: the
/// sample's pixel-set tile lies inside the clamped tile range that
/// [`PixelSet::samples_in_bbox`] enumerates for `(lo, hi)`.
#[inline]
pub(crate) fn sample_tile_overlaps(
    p: PixelCoord,
    lo: Vec2,
    hi: Vec2,
    tile: usize,
    tiles_x: usize,
    tiles_y: usize,
) -> bool {
    let (tx0, tx1) = clamped_range(lo.x, hi.x, tile, tiles_x);
    let (ty0, ty1) = clamped_range(lo.y, hi.y, tile, tiles_y);
    let tx = p.x as usize / tile;
    let ty = p.y as usize / tile;
    tx >= tx0 && tx <= tx1 && ty >= ty0 && ty <= ty1
}

/// The exhaustive candidate predicate for extra pixels and tile-less sets:
/// the pixel center is inside the bounding box (inclusive).
#[inline]
pub(crate) fn center_in_bbox(p: PixelCoord, lo: Vec2, hi: Vec2) -> bool {
    let c = p.center();
    c.x >= lo.x && c.x <= hi.x && c.y >= lo.y && c.y <= hi.y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{project_scene, RenderConfig};
    use splatonic_math::Vec3;
    use splatonic_scene::{Camera, Intrinsics, WorldBuilder};

    fn setup() -> (Vec<ProjectedGaussian>, PixelSet) {
        let world = WorldBuilder::new(3)
            .gaussian_spacing(0.4)
            .furniture(2)
            .build();
        let cam = Camera::look_at(
            Intrinsics::with_fov(96, 72, 1.2),
            Vec3::new(0.3, -0.1, -0.5),
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::Y,
        );
        let (projected, _) = project_scene(&world.scene, &cam, &RenderConfig::default());
        let pixels = PixelSet::from_tile_chooser(96, 72, 16, |_, _, x0, y0, tw, th| {
            Some(PixelCoord::new((x0 + tw / 2) as u16, (y0 + th / 2) as u16))
        });
        (projected, pixels)
    }

    #[test]
    fn bins_cover_every_exhaustive_candidate() {
        let (projected, pixels) = setup();
        let index = BinIndex::build(&projected, &pixels, 16);
        // Re-run the exhaustive discovery and assert each visited pair's
        // Gaussian appears in the pixel's bin list.
        for (pi, pg) in projected.iter().enumerate() {
            let (lo, hi) = pg.bbox();
            pixels.samples_in_bbox(lo, hi, |_, p| {
                assert!(
                    index.candidates(p).contains(&(pi as u32)),
                    "gaussian {pi} missing from bin of pixel {p:?}"
                );
            });
        }
    }

    #[test]
    fn candidate_lists_are_ascending() {
        let (projected, pixels) = setup();
        let index = BinIndex::build(&projected, &pixels, 8);
        for p in pixels.iter_all() {
            let c = index.candidates(p);
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(index.total_entries() > 0);
        assert_eq!(index.bin_size(), 8);
    }

    #[test]
    fn zero_bin_size_uses_default() {
        let (projected, pixels) = setup();
        let index = BinIndex::build(&projected, &pixels, 0);
        assert_eq!(index.bin_size(), DEFAULT_BIN_SIZE);
        let (bx, by) = index.dims();
        assert_eq!(bx, 96usize.div_ceil(DEFAULT_BIN_SIZE));
        assert_eq!(by, 72usize.div_ceil(DEFAULT_BIN_SIZE));
    }
}
