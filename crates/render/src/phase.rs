//! Side-band phase tracing for the render hot path.
//!
//! The renderer cannot take a `&Telemetry` handle — `splatonic-telemetry`
//! depends on this crate (it exports [`crate::trace::RenderTrace`]
//! counters), so the dependency would be circular, and the telemetry handle
//! is `!Sync` anyway. Instead the pipelines record *phase events* into a
//! gated process-global buffer on the shared
//! [`splatonic_math::timebase`] clock; the telemetry crate's Chrome trace
//! export drains the buffer by cursor and merges the phases onto the same
//! timeline as the spans and the pool lanes.
//!
//! Phases are trace-export-only: they never enter the span aggregate table
//! of a `RunReport`, so enabling tracing cannot perturb the
//! `scripts/bench_baseline.json` comparison. When the gate is off (the
//! default) a [`PhaseGuard`] costs one relaxed atomic load.

use splatonic_math::timebase;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// One recorded render phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseEvent {
    /// Static phase name, `render/`-prefixed (e.g. `render/discover`).
    pub name: &'static str,
    /// Trace lane of the recording thread.
    pub lane: u32,
    /// Run/session id ambient on the recording thread when the phase ended
    /// ([`timebase::run_id`]; 0 when no session scope is active).
    pub run: u32,
    /// Start, nanoseconds on [`timebase::monotonic_ns`].
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Upper bound on buffered events; past it new phases are dropped so
/// tracing cannot grow memory without bound.
const MAX_PHASE_EVENTS: usize = 1 << 20;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EVENTS: Mutex<Vec<PhaseEvent>> = Mutex::new(Vec::new());

/// Enables or disables phase capture (process-global).
pub fn enable(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether phase capture is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Current buffer length; bracket a window with a cursor and
/// [`events_since`] to read only your events.
pub fn cursor() -> usize {
    EVENTS.lock().expect("phase trace lock").len()
}

/// Copies the events recorded since `cursor` (a prior [`cursor`] call).
pub fn events_since(cursor: usize) -> Vec<PhaseEvent> {
    let events = EVENTS.lock().expect("phase trace lock");
    events.get(cursor..).map_or_else(Vec::new, <[_]>::to_vec)
}

/// Like [`events_since`], but keeps only events attributed to `run`
/// ([`PhaseEvent::run`]). Concurrent sessions sharing the process-global
/// buffer use this so one session's drain cannot steal another's phases.
pub fn events_since_for_run(cursor: usize, run: u32) -> Vec<PhaseEvent> {
    let events = EVENTS.lock().expect("phase trace lock");
    events.get(cursor..).map_or_else(Vec::new, |tail| {
        tail.iter().filter(|e| e.run == run).copied().collect()
    })
}

/// Starts a phase; the returned guard records on drop. No-op (one atomic
/// load) while capture is disabled.
#[must_use = "dropping the guard immediately records a ~0 ns phase"]
pub fn begin(name: &'static str) -> PhaseGuard {
    if enabled() {
        PhaseGuard {
            live: Some((name, timebase::monotonic_ns())),
        }
    } else {
        PhaseGuard { live: None }
    }
}

/// RAII guard recording one [`PhaseEvent`] on drop.
pub struct PhaseGuard {
    live: Option<(&'static str, u64)>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some((name, start_ns)) = self.live.take() {
            let dur_ns = timebase::monotonic_ns().saturating_sub(start_ns);
            let mut events = EVENTS.lock().expect("phase trace lock");
            if events.len() < MAX_PHASE_EVENTS {
                events.push(PhaseEvent {
                    name,
                    lane: timebase::lane_id(),
                    run: timebase::run_id(),
                    start_ns,
                    dur_ns,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that toggle the process-global capture gate.
    static GATE_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn guard_records_only_while_enabled() {
        let _serial = GATE_TEST_LOCK.lock().unwrap();
        // Disabled path: guard must be free and record nothing from here.
        {
            let _g = begin("render/unit_disabled");
        }
        assert!(
            !events_since(0)
                .iter()
                .any(|e| e.name == "render/unit_disabled"),
            "disabled guard must not record"
        );

        enable(true);
        let cursor = cursor();
        {
            let _g = begin("render/unit_enabled");
        }
        let events = events_since(cursor);
        enable(false);
        let e = events
            .iter()
            .find(|e| e.name == "render/unit_enabled")
            .expect("enabled guard records");
        assert!(e.lane >= 1);
    }

    #[test]
    fn scoped_drain_filters_by_run_id() {
        let _serial = GATE_TEST_LOCK.lock().unwrap();
        enable(true);
        let cursor = cursor();
        {
            let _scope = timebase::run_scope(8801);
            let _g = begin("render/unit_run_a");
        }
        {
            let _scope = timebase::run_scope(8802);
            let _g = begin("render/unit_run_b");
        }
        let only_a = events_since_for_run(cursor, 8801);
        let only_b = events_since_for_run(cursor, 8802);
        enable(false);

        assert!(only_a.iter().any(|e| e.name == "render/unit_run_a"));
        assert!(only_a.iter().all(|e| e.run == 8801));
        assert!(only_b.iter().any(|e| e.name == "render/unit_run_b"));
        assert!(only_b.iter().all(|e| e.run == 8802));
    }
}
