//! Tile grouping + frame-coherent sorted-list cache for the tile pipeline.
//!
//! The tile pipeline used to depth-sort the full projected set from scratch
//! on every pass (forward *and* backward, every Adam iteration). This module
//! replaces that with the two sort-avoidance mechanisms of GS-TG-style
//! hierarchical sorting:
//!
//! 1. **Tile grouping.** The 16×16 tiles are partitioned into
//!    `group_size`×`group_size` groups ([`RenderConfig::tile_grouping`] /
//!    [`RenderConfig::group_size`]). One shared depth sort runs per group
//!    over the union candidate list; each member tile's list is then derived
//!    by *masking* — walking the shared order and keeping the elements whose
//!    bbox covers the tile. Neighbouring tiles overlap heavily in candidates
//!    (a splat's bbox usually spans several tiles), so the union is much
//!    smaller than the sum of per-tile lists and the redundant per-tile
//!    sorts disappear.
//! 2. **Frame-coherent reuse.** Sorted group lists are cached behind the
//!    same key discipline as [`crate::projcache`] (scene-revision counter +
//!    bitwise pose/intrinsics/knobs, extended with the tile-grid and
//!    grouping context). An exact key match — e.g. the backward pass at the
//!    pose the forward just used — replays the lists outright. A *pose-only*
//!    delta (the tracking iteration signature) re-derives candidates at the
//!    new pose but reorders them by the previous frame's sorted order first,
//!    so the final adaptive sort runs on nearly-sorted input instead of
//!    cold ([`RenderConfig::sort_cache`]).
//!
//! # Bit-exactness
//!
//! The depth comparator ([`crate::kernel::sort_by_depth`]: depth ascending,
//! Gaussian-id tie-break) is a **total order over unique ids**, so the
//! sorted sequence for any candidate set is *unique* — independent of the
//! algorithm that produced it. Grouped-union-sort-then-mask, per-tile
//! sorting, and coherent re-merge therefore all yield byte-identical
//! per-tile lists, and the rendered output is bit-identical across every
//! knob combination (enforced against the per-tile oracle by the
//! determinism suite).
//!
//! # Accounting
//!
//! The `sort_lists` / `sort_elems` / `sort_group_reuse` trace counters
//! describe the sorting schedule that *ran* (per-group union lists when
//! grouping is on, per-tile lists when off). They are fully determined by
//! (scene, camera, grid, grouping knobs) and never by cache state: an exact
//! cache hit replays the stored counters, which equal what a cold build
//! would have produced. Realized cache effectiveness (hits / merges /
//! cold-vs-merged element counts) is order-dependent — it depends on which
//! render ran before this one — so it lives in the side-band [`SortStats`]
//! (exported as `render/sort_*` counters), exactly like
//! [`crate::projcache::CacheStats`].

use crate::kernel::{ProjectedGaussian, RenderConfig};
use crate::tile::TILE;
use splatonic_scene::{Camera, GaussianScene};
use std::cell::RefCell;
use std::rc::Rc;

/// Default tile-group edge length in tiles (2×2 tiles = one 32×32-pixel
/// group, the GS-TG sweet spot between union size and mask selectivity).
pub const DEFAULT_GROUP_SIZE: usize = 2;

/// Resolves the configured group size (`0` → [`DEFAULT_GROUP_SIZE`]).
pub fn resolve_group_size(group_size: usize) -> usize {
    if group_size == 0 {
        DEFAULT_GROUP_SIZE
    } else {
        group_size
    }
}

/// Sorted tile lists plus everything the tile passes need alongside them.
///
/// Produced once by [`prepare_tiles`] and shared (via `Rc`) between the
/// forward and backward passes of the same iteration through the cache.
pub(crate) struct PreparedTiles {
    /// Projected Gaussians in **scene-index order** (the projcache list,
    /// shared — never cloned or globally re-sorted). Tile lists below hold
    /// indices into this vector.
    pub(crate) projected: Rc<Vec<ProjectedGaussian>>,
    /// Gaussians culled at projection.
    pub(crate) culled: u64,
    /// Tile-grid width in tiles.
    pub(crate) tiles_x: usize,
    /// Tile-grid height in tiles.
    pub(crate) tiles_y: usize,
    /// Per-tile candidate lists (indices into `projected`), depth-ordered.
    pub(crate) tile_lists: Vec<Vec<u32>>,
    /// Total tile–Gaussian pairs (sum of tile-list lengths).
    pub(crate) tile_pairs: u64,
    /// Sorting-schedule counter: lists sorted (groups or tiles).
    pub(crate) sort_lists: u64,
    /// Sorting-schedule counter: elements through sorting (union lengths).
    pub(crate) sort_elems: u64,
    /// Sorting-schedule counter: per-tile sorts avoided by group masking.
    pub(crate) sort_group_reuse: u64,
    /// Per-unit sorted Gaussian *ids* — the reuse hint a pose-only merge
    /// reorders by. Only populated when the sort cache is enabled.
    unit_orders: Vec<Vec<u32>>,
}

/// Realized sorted-list cache statistics (thread-local, process lifetime).
///
/// Side-band by design — see the module docs: these depend on render
/// *order*, so they are exported as `render/sort_*` telemetry counters and
/// never folded into the [`crate::RenderTrace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SortStats {
    /// Renders whose sorted lists were replayed from an exact key match.
    pub hits: u64,
    /// Renders that built their lists cold (no reusable entry).
    pub misses: u64,
    /// Renders that re-merged a pose-only-stale entry's nearly-sorted
    /// order instead of sorting cold.
    pub merges: u64,
    /// Elements sorted cold (sum of union-list lengths on misses).
    pub cold_elems: u64,
    /// Elements re-merged from a previous order (sum of union-list lengths
    /// on merges).
    pub merged_elems: u64,
}

impl SortStats {
    /// Counter-wise difference `self − earlier` (for per-frame deltas).
    pub fn since(&self, earlier: &SortStats) -> SortStats {
        SortStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            merges: self.merges - earlier.merges,
            cold_elems: self.cold_elems - earlier.cold_elems,
            merged_elems: self.merged_elems - earlier.merged_elems,
        }
    }

    /// Counter-wise accumulation `self += delta` — the inverse of
    /// [`SortStats::since`], used by per-frame bracket-and-accumulate
    /// session accounting.
    pub fn add(&mut self, delta: &SortStats) {
        self.hits += delta.hits;
        self.misses += delta.misses;
        self.merges += delta.merges;
        self.cold_elems += delta.cold_elems;
        self.merged_elems += delta.merged_elems;
    }
}

/// Everything the sorted lists depend on: the projection key (scene
/// revision, pose bits, intrinsics, projection knobs) extended with the
/// tile-grid and grouping context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SortKey {
    proj: crate::projcache::Key,
    grid_w: usize,
    grid_h: usize,
    tile_grouping: bool,
    group_size: usize,
}

impl SortKey {
    fn new(
        scene: &GaussianScene,
        camera: &Camera,
        width: usize,
        height: usize,
        config: &RenderConfig,
    ) -> SortKey {
        SortKey {
            proj: crate::projcache::Key::new(scene, camera, config),
            grid_w: width,
            grid_h: height,
            tile_grouping: config.tile_grouping,
            group_size: resolve_group_size(config.group_size),
        }
    }

    /// True when the two keys differ only in the camera pose — the
    /// signature of a tracking iteration, where the previous frame's
    /// sorted order is a near-perfect hint for the new one.
    fn pose_only_delta(&self, other: &SortKey) -> bool {
        self.grid_w == other.grid_w
            && self.grid_h == other.grid_h
            && self.tile_grouping == other.tile_grouping
            && self.group_size == other.group_size
            && self.proj.pose_only_delta(&other.proj)
    }
}

struct Entry {
    key: SortKey,
    prepared: Rc<PreparedTiles>,
}

#[derive(Default)]
struct CacheState {
    /// Most-recently-used first, at most [`crate::projcache::CACHE_CAPACITY`]
    /// entries (one per interleaved session, same sizing argument).
    entries: Vec<Entry>,
    stats: SortStats,
}

thread_local! {
    static CACHE: RefCell<CacheState> = RefCell::new(CacheState::default());
}

/// The exact bbox→tile-range arithmetic of the original tile binning
/// (truncating `isize` division then clamp — kept verbatim so grouped and
/// ungrouped builds select identical candidate sets).
#[inline]
fn tile_range(
    pg: &ProjectedGaussian,
    tiles_x: usize,
    tiles_y: usize,
) -> (usize, usize, usize, usize) {
    let (lo, hi) = pg.bbox();
    let tx0 = ((lo.x.floor() as isize) / TILE as isize).clamp(0, tiles_x as isize - 1) as usize;
    let ty0 = ((lo.y.floor() as isize) / TILE as isize).clamp(0, tiles_y as isize - 1) as usize;
    let tx1 = ((hi.x.ceil() as isize) / TILE as isize).clamp(0, tiles_x as isize - 1) as usize;
    let ty1 = ((hi.y.ceil() as isize) / TILE as isize).clamp(0, tiles_y as isize - 1) as usize;
    (tx0, ty0, tx1, ty1)
}

/// Depth comparator over indices into `projected` — the same total order as
/// [`crate::kernel::sort_by_depth`] (depth ascending, id tie-break), which
/// is what makes every sorted list unique and every build path bit-equal.
#[inline]
fn depth_cmp(projected: &[ProjectedGaussian], a: u32, b: u32) -> std::cmp::Ordering {
    let (pa, pb) = (&projected[a as usize], &projected[b as usize]);
    pa.depth
        .partial_cmp(&pb.depth)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(pa.id.cmp(&pb.id))
}

/// Unit grid: groups when grouping is on, individual tiles when off.
struct UnitGrid {
    units_x: usize,
    units_y: usize,
    /// Group edge in tiles (1 when grouping is off).
    gs: usize,
}

impl UnitGrid {
    fn new(tiles_x: usize, tiles_y: usize, config: &RenderConfig) -> UnitGrid {
        let gs = if config.tile_grouping {
            resolve_group_size(config.group_size)
        } else {
            1
        };
        UnitGrid {
            units_x: tiles_x.div_ceil(gs),
            units_y: tiles_y.div_ceil(gs),
            gs,
        }
    }

    fn len(&self) -> usize {
        self.units_x * self.units_y
    }
}

/// Builds raw (unsorted, scene-index-order) per-unit candidate lists plus
/// the total tile-pair count.
fn build_raw_unit_lists(
    projected: &[ProjectedGaussian],
    tiles_x: usize,
    tiles_y: usize,
    grid: &UnitGrid,
) -> (Vec<Vec<u32>>, u64) {
    let mut lists: Vec<Vec<u32>> = vec![Vec::new(); grid.len()];
    let mut tile_pairs = 0u64;
    for (pi, pg) in projected.iter().enumerate() {
        let (tx0, ty0, tx1, ty1) = tile_range(pg, tiles_x, tiles_y);
        tile_pairs += ((tx1 - tx0 + 1) * (ty1 - ty0 + 1)) as u64;
        for uy in (ty0 / grid.gs)..=(ty1 / grid.gs) {
            for ux in (tx0 / grid.gs)..=(tx1 / grid.gs) {
                lists[uy * grid.units_x + ux].push(pi as u32);
            }
        }
    }
    (lists, tile_pairs)
}

/// Derives the per-tile lists from depth-sorted unit lists, plus the
/// sorting-schedule counters. With grouping this is the masking stage: each
/// group's shared order is walked once and every element is appended to the
/// member tiles its bbox covers (appending in walk order preserves the
/// depth order, so no per-tile sort happens). Without grouping the unit
/// lists *are* the tile lists.
fn finalize(
    projected: &[ProjectedGaussian],
    tiles_x: usize,
    tiles_y: usize,
    grid: &UnitGrid,
    unit_lists: Vec<Vec<u32>>,
    keep_orders: bool,
) -> (Vec<Vec<u32>>, u64, u64, u64, Vec<Vec<u32>>) {
    let mut sort_lists = 0u64;
    let mut sort_elems = 0u64;
    for list in &unit_lists {
        if !list.is_empty() {
            sort_lists += 1;
            sort_elems += list.len() as u64;
        }
    }
    let unit_orders = if keep_orders {
        unit_lists
            .iter()
            .map(|l| l.iter().map(|&pi| projected[pi as usize].id).collect())
            .collect()
    } else {
        Vec::new()
    };
    if grid.gs == 1 {
        return (unit_lists, sort_lists, sort_elems, 0, unit_orders);
    }
    let mut tile_lists: Vec<Vec<u32>> = vec![Vec::new(); tiles_x * tiles_y];
    for (u, list) in unit_lists.iter().enumerate() {
        let ux = u % grid.units_x;
        let uy = u / grid.units_x;
        let span_x0 = ux * grid.gs;
        let span_x1 = ((ux + 1) * grid.gs - 1).min(tiles_x - 1);
        let span_y0 = uy * grid.gs;
        let span_y1 = ((uy + 1) * grid.gs - 1).min(tiles_y - 1);
        for &pi in list {
            let (tx0, ty0, tx1, ty1) = tile_range(&projected[pi as usize], tiles_x, tiles_y);
            for ty in ty0.max(span_y0)..=ty1.min(span_y1) {
                for tx in tx0.max(span_x0)..=tx1.min(span_x1) {
                    tile_lists[ty * tiles_x + tx].push(pi);
                }
            }
        }
    }
    // Per-tile sorts avoided: every non-empty tile was masked, not sorted;
    // the schedule sorted one list per non-empty unit instead.
    let nonempty_tiles = tile_lists.iter().filter(|l| !l.is_empty()).count() as u64;
    let sort_group_reuse = nonempty_tiles - sort_lists;
    (
        tile_lists,
        sort_lists,
        sort_elems,
        sort_group_reuse,
        unit_orders,
    )
}

/// Cold build: one global argsort by (depth, id) over the projected set,
/// then a single walk in that order scatters each element into its covered
/// units — every unit list comes out depth-sorted with no per-unit sort.
fn build_cold(
    projected: Rc<Vec<ProjectedGaussian>>,
    culled: u64,
    width: usize,
    height: usize,
    config: &RenderConfig,
    keep_orders: bool,
) -> (PreparedTiles, u64) {
    let _p = crate::phase::begin("render/tile_sort");
    let tiles_x = width.div_ceil(TILE);
    let tiles_y = height.div_ceil(TILE);
    let grid = UnitGrid::new(tiles_x, tiles_y, config);
    let mut order: Vec<u32> = (0..projected.len() as u32).collect();
    order.sort_by(|&a, &b| depth_cmp(&projected, a, b));
    let mut unit_lists: Vec<Vec<u32>> = vec![Vec::new(); grid.len()];
    let mut tile_pairs = 0u64;
    for &pi in &order {
        let (tx0, ty0, tx1, ty1) = tile_range(&projected[pi as usize], tiles_x, tiles_y);
        tile_pairs += ((tx1 - tx0 + 1) * (ty1 - ty0 + 1)) as u64;
        for uy in (ty0 / grid.gs)..=(ty1 / grid.gs) {
            for ux in (tx0 / grid.gs)..=(tx1 / grid.gs) {
                unit_lists[uy * grid.units_x + ux].push(pi);
            }
        }
    }
    let (tile_lists, sort_lists, sort_elems, sort_group_reuse, unit_orders) =
        finalize(&projected, tiles_x, tiles_y, &grid, unit_lists, keep_orders);
    (
        PreparedTiles {
            projected,
            culled,
            tiles_x,
            tiles_y,
            tile_lists,
            tile_pairs,
            sort_lists,
            sort_elems,
            sort_group_reuse,
            unit_orders,
        },
        sort_elems,
    )
}

/// Coherent rebuild after a pose-only delta: re-derive candidates at the
/// new pose, reorder each unit by the previous frame's sorted id order, and
/// finish with the adaptive stable sort — nearly-sorted input makes that
/// close to a linear merge, and the total order guarantees the result is
/// identical to a cold sort.
fn build_merged(
    projected: Rc<Vec<ProjectedGaussian>>,
    culled: u64,
    width: usize,
    height: usize,
    config: &RenderConfig,
    prev: &PreparedTiles,
    scene_len: usize,
) -> (PreparedTiles, u64) {
    let _p = crate::phase::begin("render/tilesort_merge");
    let tiles_x = width.div_ceil(TILE);
    let tiles_y = height.div_ceil(TILE);
    let grid = UnitGrid::new(tiles_x, tiles_y, config);
    let (mut unit_lists, tile_pairs) = build_raw_unit_lists(&projected, tiles_x, tiles_y, &grid);
    // Scratch id→(index+1) map, zeroed between units by consuming marks.
    let mut mark: Vec<u32> = vec![0; scene_len];
    for (u, list) in unit_lists.iter_mut().enumerate() {
        if list.is_empty() {
            continue;
        }
        if let Some(prev_order) = prev.unit_orders.get(u) {
            let mut reordered: Vec<u32> = Vec::with_capacity(list.len());
            for &pi in list.iter() {
                mark[projected[pi as usize].id as usize] = pi + 1;
            }
            for &id in prev_order {
                let slot = &mut mark[id as usize];
                if *slot != 0 {
                    reordered.push(*slot - 1);
                    *slot = 0;
                }
            }
            for &pi in list.iter() {
                let slot = &mut mark[projected[pi as usize].id as usize];
                if *slot != 0 {
                    reordered.push(*slot - 1);
                    *slot = 0;
                }
            }
            *list = reordered;
        }
        list.sort_by(|&a, &b| depth_cmp(&projected, a, b));
    }
    let (tile_lists, sort_lists, sort_elems, sort_group_reuse, unit_orders) =
        finalize(&projected, tiles_x, tiles_y, &grid, unit_lists, true);
    (
        PreparedTiles {
            projected,
            culled,
            tiles_x,
            tiles_y,
            tile_lists,
            tile_pairs,
            sort_lists,
            sort_elems,
            sort_group_reuse,
            unit_orders,
        },
        sort_elems,
    )
}

/// Projects the scene (through [`crate::projcache`]) and builds the
/// depth-sorted per-tile lists, serving both from the sorted-list cache
/// when the key allows it. The shared entry point of the tile forward and
/// backward passes.
///
/// With `config.sort_cache == false` every call builds cold — no lookup,
/// no store, no statistics (the grouping knob still applies).
pub(crate) fn prepare_tiles(
    scene: &GaussianScene,
    camera: &Camera,
    width: usize,
    height: usize,
    config: &RenderConfig,
) -> Rc<PreparedTiles> {
    if !config.sort_cache {
        let (projected, culled) = crate::projcache::project_scene_cached(scene, camera, config);
        let (prepared, _) = build_cold(projected, culled, width, height, config, false);
        return Rc::new(prepared);
    }
    let key = SortKey::new(scene, camera, width, height, config);
    CACHE.with(|cell| {
        let mut state = cell.borrow_mut();
        if let Some(pos) = state.entries.iter().position(|e| e.key == key) {
            let _p = crate::phase::begin("render/tilesort_hit");
            state.stats.hits += 1;
            let entry = state.entries.remove(pos);
            let prepared = Rc::clone(&entry.prepared);
            state.entries.insert(0, entry);
            return prepared;
        }
        let (projected, culled) = crate::projcache::project_scene_cached(scene, camera, config);
        // A pose-only delta supersedes its entry in place (one entry per
        // non-pose context, exactly like projcache) and seeds the merge.
        let pose_slot = state
            .entries
            .iter()
            .position(|e| e.key.pose_only_delta(&key));
        let prepared = match pose_slot {
            Some(pos) => {
                let prev = Rc::clone(&state.entries[pos].prepared);
                let (prepared, elems) =
                    build_merged(projected, culled, width, height, config, &prev, scene.len());
                state.stats.merges += 1;
                state.stats.merged_elems += elems;
                state.entries.remove(pos);
                prepared
            }
            None => {
                let (prepared, elems) = build_cold(projected, culled, width, height, config, true);
                state.stats.misses += 1;
                state.stats.cold_elems += elems;
                prepared
            }
        };
        let prepared = Rc::new(prepared);
        state.entries.insert(
            0,
            Entry {
                key,
                prepared: Rc::clone(&prepared),
            },
        );
        state.entries.truncate(crate::projcache::CACHE_CAPACITY);
        prepared
    })
}

/// Snapshot of this thread's sorted-list cache statistics.
pub fn stats() -> SortStats {
    CACHE.with(|cell| cell.borrow().stats)
}

/// Drops all cached entries and zeroes the statistics (tests and
/// benchmarks).
pub fn clear() {
    CACHE.with(|cell| {
        let mut state = cell.borrow_mut();
        state.entries.clear();
        state.stats = SortStats::default();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatonic_math::{Pose, Vec3};
    use splatonic_scene::{Intrinsics, WorldBuilder};

    fn setup() -> (GaussianScene, Camera) {
        let world = WorldBuilder::new(11)
            .gaussian_spacing(0.4)
            .furniture(2)
            .build();
        let cam = Camera::new(Intrinsics::with_fov(64, 48, 1.2), Pose::identity());
        (world.scene, cam)
    }

    /// Reference build: independent per-tile sorts (the oracle).
    fn oracle_tile_lists(
        projected: &[ProjectedGaussian],
        width: usize,
        height: usize,
    ) -> Vec<Vec<u32>> {
        let tiles_x = width.div_ceil(TILE);
        let tiles_y = height.div_ceil(TILE);
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); tiles_x * tiles_y];
        for (pi, pg) in projected.iter().enumerate() {
            let (tx0, ty0, tx1, ty1) = tile_range(pg, tiles_x, tiles_y);
            for ty in ty0..=ty1 {
                for tx in tx0..=tx1 {
                    lists[ty * tiles_x + tx].push(pi as u32);
                }
            }
        }
        for list in &mut lists {
            list.sort_by(|&a, &b| depth_cmp(projected, a, b));
        }
        lists
    }

    fn cfg(grouping: bool, cache: bool) -> RenderConfig {
        RenderConfig {
            tile_grouping: grouping,
            sort_cache: cache,
            ..RenderConfig::default()
        }
    }

    #[test]
    fn grouped_lists_match_per_tile_oracle() {
        clear();
        crate::projcache::clear();
        let (scene, cam) = setup();
        for grouping in [false, true] {
            let config = cfg(grouping, false);
            let prepared = prepare_tiles(&scene, &cam, 64, 48, &config);
            let oracle = oracle_tile_lists(&prepared.projected, 64, 48);
            assert_eq!(prepared.tile_lists, oracle, "grouping={grouping}");
            assert_eq!(
                prepared.tile_pairs,
                oracle.iter().map(|l| l.len() as u64).sum::<u64>()
            );
        }
        clear();
        crate::projcache::clear();
    }

    #[test]
    fn larger_groups_still_match_oracle() {
        clear();
        crate::projcache::clear();
        let (scene, cam) = setup();
        for gs in [1usize, 2, 3, 4, 16] {
            let config = RenderConfig {
                group_size: gs,
                sort_cache: false,
                ..RenderConfig::default()
            };
            let prepared = prepare_tiles(&scene, &cam, 64, 48, &config);
            let oracle = oracle_tile_lists(&prepared.projected, 64, 48);
            assert_eq!(prepared.tile_lists, oracle, "group_size={gs}");
        }
        clear();
        crate::projcache::clear();
    }

    #[test]
    fn grouping_reduces_sort_elems() {
        clear();
        crate::projcache::clear();
        let (scene, cam) = setup();
        let ungrouped = prepare_tiles(&scene, &cam, 64, 48, &cfg(false, false));
        let grouped = prepare_tiles(&scene, &cam, 64, 48, &cfg(true, false));
        assert_eq!(ungrouped.sort_elems, ungrouped.tile_pairs);
        assert!(
            grouped.sort_elems < ungrouped.sort_elems,
            "union sort ({}) must beat per-tile sort ({})",
            grouped.sort_elems,
            ungrouped.sort_elems
        );
        assert!(grouped.sort_lists < ungrouped.sort_lists);
        assert!(grouped.sort_group_reuse > 0);
        assert_eq!(ungrouped.sort_group_reuse, 0);
        // Masking reconstructs every pair: tile_pairs is grouping-invariant.
        assert_eq!(grouped.tile_pairs, ungrouped.tile_pairs);
        clear();
        crate::projcache::clear();
    }

    #[test]
    fn exact_repeat_hits_and_replays_counters() {
        clear();
        crate::projcache::clear();
        let (scene, cam) = setup();
        let config = cfg(true, true);
        let a = prepare_tiles(&scene, &cam, 64, 48, &config);
        let b = prepare_tiles(&scene, &cam, 64, 48, &config);
        let s = stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.merges, 0);
        assert!(Rc::ptr_eq(&a, &b), "hit must replay the shared entry");
        assert_eq!(a.sort_elems, b.sort_elems);
        assert_eq!(s.cold_elems, a.sort_elems);
        clear();
        crate::projcache::clear();
    }

    #[test]
    fn pose_delta_merges_and_matches_cold() {
        clear();
        crate::projcache::clear();
        let (scene, cam) = setup();
        let config = cfg(true, true);
        let _ = prepare_tiles(&scene, &cam, 64, 48, &config);
        let moved = Camera::new(
            cam.intrinsics,
            Pose {
                rotation: cam.pose.rotation,
                translation: cam.pose.translation + Vec3::new(0.03, -0.01, 0.02),
            },
        );
        let merged = prepare_tiles(&scene, &moved, 64, 48, &config);
        let s = stats();
        assert_eq!(s.merges, 1, "pose-only delta must take the merge path");
        assert_eq!(s.misses, 1);
        // The merged result must equal a cold (uncached) build bitwise.
        let cold = prepare_tiles(&scene, &moved, 64, 48, &cfg(true, false));
        assert_eq!(merged.tile_lists, cold.tile_lists);
        assert_eq!(merged.tile_pairs, cold.tile_pairs);
        assert_eq!(merged.sort_lists, cold.sort_lists);
        assert_eq!(merged.sort_elems, cold.sort_elems);
        assert_eq!(merged.sort_group_reuse, cold.sort_group_reuse);
        clear();
        crate::projcache::clear();
    }

    #[test]
    fn scene_mutation_misses_not_merges() {
        clear();
        crate::projcache::clear();
        let (mut scene, cam) = setup();
        let config = cfg(true, true);
        let _ = prepare_tiles(&scene, &cam, 64, 48, &config);
        scene.update(0, |g| g.opacity_logit += 0.25);
        let _ = prepare_tiles(&scene, &cam, 64, 48, &config);
        let s = stats();
        assert_eq!(s.misses, 2, "scene edit is a cold miss");
        assert_eq!(s.merges, 0);
        clear();
        crate::projcache::clear();
    }

    #[test]
    fn disabled_cache_bypasses_lookup_and_stats() {
        clear();
        crate::projcache::clear();
        let (scene, cam) = setup();
        let config = cfg(true, false);
        let a = prepare_tiles(&scene, &cam, 64, 48, &config);
        let b = prepare_tiles(&scene, &cam, 64, 48, &config);
        assert_eq!(stats(), SortStats::default());
        assert_eq!(a.tile_lists, b.tile_lists);
        clear();
        crate::projcache::clear();
    }

    #[test]
    fn grouping_knobs_key_separate_entries() {
        clear();
        crate::projcache::clear();
        let (scene, cam) = setup();
        let _ = prepare_tiles(&scene, &cam, 64, 48, &cfg(true, true));
        let _ = prepare_tiles(&scene, &cam, 64, 48, &cfg(false, true));
        let s = stats();
        assert_eq!(s.misses, 2, "grouping flag is part of the key");
        assert_eq!(s.merges, 0, "a knob change is not a pose step");
        clear();
        crate::projcache::clear();
    }

    #[test]
    fn stats_since_add_roundtrip() {
        let early = SortStats {
            hits: 2,
            misses: 3,
            merges: 1,
            cold_elems: 100,
            merged_elems: 40,
        };
        let late = SortStats {
            hits: 7,
            misses: 4,
            merges: 3,
            cold_elems: 130,
            merged_elems: 90,
        };
        let d = late.since(&early);
        let mut roundtrip = early;
        roundtrip.add(&d);
        assert_eq!(roundtrip, late);
    }
}
