//! The conventional **tile-based** rendering pipeline (paper Sec. II-B).
//!
//! Forward: projection and sorting run at *tile* granularity (16×16 pixels)
//! to amortize cost across pixels; rasterization then walks each tile's
//! depth-sorted Gaussian list per pixel, α-checking every pixel–Gaussian
//! pair. The warp model mirrors the GPU mapping (one thread per pixel, 32
//! threads per warp): at each list step a warp is occupied for every resident
//! pixel, but only pixels whose α-check passes do useful work — the warp
//! divergence of paper Fig. 6.
//!
//! Backward: reverse rasterization re-walks the cached tile lists per pixel,
//! re-α-checking, then aggregates partial gradients per Gaussian (the
//! `atomicAdd` stage) and re-projects them to world space.

use crate::grad::{pixel_backward, reproject, CamGradAccumulator, PoseGrad, SceneGrads};
use crate::kernel::{alpha_at, ProjectedGaussian, RenderConfig};
use crate::loss::LossGrad;
use crate::pixelset::{PixelCoord, PixelSet};
use crate::trace::{bytes, RenderTrace};
use crate::{Contribution, ForwardResult};
use splatonic_math::{pool, Vec3};
use splatonic_scene::{Camera, GaussianScene};
use std::sync::Mutex;

/// Tile edge length in pixels (the standard 16×16 of reference 3DGS).
pub const TILE: usize = 16;
/// GPU warp width in threads.
pub const WARP: usize = 32;

/// Tiles per pool chunk (fixed fan-out granularity; independent of the
/// worker count, see `splatonic_math::pool`).
const TILE_CHUNK: usize = 4;

/// Groups the requested pixels by tile, keeping their output indices.
fn group_pixels_by_tile(
    pixels: &PixelSet,
    tiles_x: usize,
    tiles_y: usize,
) -> Vec<Vec<(PixelCoord, usize)>> {
    let mut groups: Vec<Vec<(PixelCoord, usize)>> = vec![Vec::new(); tiles_x * tiles_y];
    for (out_idx, p) in pixels.iter_all().enumerate() {
        let tx = (p.x as usize / TILE).min(tiles_x - 1);
        let ty = (p.y as usize / TILE).min(tiles_y - 1);
        groups[ty * tiles_x + tx].push((p, out_idx));
    }
    groups
}

/// Forward pass of the tile-based pipeline.
pub fn forward(
    scene: &GaussianScene,
    camera: &Camera,
    pixels: &PixelSet,
    config: &RenderConfig,
) -> ForwardResult {
    let _pass = crate::phase::begin("render/tile_forward");
    let width = pixels.width();
    let height = pixels.height();
    let mut trace = RenderTrace::new();
    let f = &mut trace.forward;
    f.gaussians_input = scene.len() as u64;
    f.bytes_read += scene.len() as u64 * bytes::GAUSSIAN;

    // Projection (tile granularity: one projection per Gaussian, shared by
    // all pixels of every covered tile) plus depth-sorted tile lists, both
    // served through the caches in `projcache`/`tilesort`: one shared sort
    // per tile group, per-tile lists derived by masking, reused across the
    // forward/backward pair of each iteration. The lists hold indices into
    // the shared scene-index-ordered projection — no clone, no global sort.
    let prepared = crate::tilesort::prepare_tiles(scene, camera, width, height, config);
    f.gaussians_culled = prepared.culled;
    f.gaussians_projected = prepared.projected.len() as u64;
    f.bytes_written += prepared.projected.len() as u64 * bytes::PROJECTED;
    f.tile_pairs = prepared.tile_pairs;
    f.bytes_written += prepared.tile_pairs * bytes::PAIR_ENTRY;
    f.sort_lists = prepared.sort_lists;
    f.sort_elems = prepared.sort_elems;
    f.sort_group_reuse = prepared.sort_group_reuse;
    f.bytes_read += prepared.tile_pairs * bytes::PAIR_ENTRY;
    let tiles_x = prepared.tiles_x;
    let tiles_y = prepared.tiles_y;
    // Plain slices for the pool closure (`PreparedTiles` holds an `Rc` and
    // is not `Sync`; the slices are).
    let projected: &[ProjectedGaussian] = &prepared.projected;
    let tile_lists: &[Vec<u32>] = &prepared.tile_lists;

    // Rasterization, warp by warp, fanned out over fixed chunks of tiles.
    // Each chunk shades its tiles into scatter lists applied in chunk order
    // below; every output index belongs to exactly one tile, so the merge
    // is write-once and identical for every worker count.
    let n_out = pixels.len();
    let mut color = vec![Vec3::ZERO; n_out];
    let mut depth = vec![0.0; n_out];
    let mut t_final = vec![1.0; n_out];
    let mut contributions: Vec<Vec<Contribution>> = vec![Vec::new(); n_out];
    let groups = group_pixels_by_tile(pixels, tiles_x, tiles_y);
    let threads = pool::resolve_threads(config.threads);

    #[derive(Default)]
    struct TilePartial {
        outputs: Vec<(usize, Vec3, f64, f64)>,
        contribs: Vec<(usize, Vec<Contribution>)>,
        bytes_read: u64,
        bytes_written: u64,
        warp_steps: u64,
        warp_active: u64,
        raster_alpha_checks: u64,
        exp_evals: u64,
        pairs_integrated: u64,
        pixels_shaded: u64,
    }
    let tile_partials =
        pool::par_chunks_indexed(threads, &groups, TILE_CHUNK, |_, offset, chunk| {
            let mut part = TilePartial::default();
            for (k, group) in chunk.iter().enumerate() {
                let tile_idx = offset + k;
                if group.is_empty() {
                    continue;
                }
                let list = &tile_lists[tile_idx];
                if list.is_empty() {
                    for &(_, out_idx) in group {
                        part.pixels_shaded += 1;
                        part.outputs.push((out_idx, config.background, 0.0, 1.0));
                    }
                    continue;
                }
                part.bytes_read += list.len() as u64 * bytes::PROJECTED;
                // Warp assignment: pixels of the tile in row-major order, 32
                // lanes per warp. Only warps containing a requested pixel
                // execute; within them, every resident requested pixel
                // occupies a lane.
                let tx = tile_idx % tiles_x;
                let ty = tile_idx / tiles_x;
                let x0 = tx * TILE;
                let y0 = ty * TILE;
                let lane_of = |p: PixelCoord| -> usize {
                    let lx = p.x as usize - x0;
                    let ly = p.y as usize - y0;
                    ly * TILE + lx
                };
                // Bucket requested pixels into warps.
                let warps_per_tile = (TILE * TILE).div_ceil(WARP);
                let mut warp_members: Vec<Vec<(PixelCoord, usize)>> =
                    vec![Vec::new(); warps_per_tile];
                for &(p, out_idx) in group {
                    warp_members[lane_of(p) / WARP].push((p, out_idx));
                }
                for members in warp_members.iter().filter(|m| !m.is_empty()) {
                    // Per-member compositing state.
                    let mut state: Vec<(Vec3, f64, f64)> =
                        vec![(Vec3::ZERO, 0.0, 1.0); members.len()]; // (color, depth, T)
                    let mut member_contribs: Vec<Vec<Contribution>> =
                        vec![Vec::new(); members.len()];
                    let mut live = members.len();
                    for &pi in list.iter() {
                        if live == 0 {
                            break;
                        }
                        part.warp_steps += 1;
                        let pg = &projected[pi as usize];
                        let mut active_this_step = 0u64;
                        for (mi, &(p, _)) in members.iter().enumerate() {
                            let (c, d, t) = state[mi];
                            if t < config.transmittance_min {
                                continue;
                            }
                            // α-checking for this pixel–Gaussian pair.
                            part.raster_alpha_checks += 1;
                            part.exp_evals += 1;
                            let (alpha, _) = alpha_at(pg, p.center(), config);
                            if alpha < config.alpha_threshold {
                                continue;
                            }
                            active_this_step += 1;
                            let w = t * alpha;
                            let nc = c + pg.color * w;
                            let nd = d + pg.depth * w;
                            let nt = t * (1.0 - alpha);
                            member_contribs[mi].push(Contribution {
                                gaussian: pg.id,
                                alpha,
                                transmittance: t,
                            });
                            part.pairs_integrated += 1;
                            state[mi] = (nc, nd, nt);
                            if nt < config.transmittance_min {
                                live -= 1;
                            }
                        }
                        part.warp_active += active_this_step;
                    }
                    for (mi, &(_, out_idx)) in members.iter().enumerate() {
                        let (c, d, t) = state[mi];
                        part.outputs
                            .push((out_idx, c + config.background * t, d, t));
                        part.pixels_shaded += 1;
                        part.bytes_written += bytes::PIXEL_OUT;
                        part.contribs
                            .push((out_idx, std::mem::take(&mut member_contribs[mi])));
                    }
                }
            }
            part
        });
    for part in tile_partials {
        f.bytes_read += part.bytes_read;
        f.bytes_written += part.bytes_written;
        f.warp_steps += part.warp_steps;
        f.warp_active += part.warp_active;
        f.raster_alpha_checks += part.raster_alpha_checks;
        f.exp_evals += part.exp_evals;
        f.pairs_integrated += part.pairs_integrated;
        f.pixels_shaded += part.pixels_shaded;
        for (out_idx, c, d, t) in part.outputs {
            color[out_idx] = c;
            depth[out_idx] = d;
            t_final[out_idx] = t;
        }
        for (out_idx, contribs) in part.contribs {
            contributions[out_idx] = contribs;
        }
    }

    for contribs in &contributions {
        f.pixel_list_len.push(contribs.len() as f64);
        trace.pixel_lists.push(contribs.len() as u32);
    }

    ForwardResult {
        color,
        depth,
        final_transmittance: t_final,
        contributions,
        trace,
    }
}

/// Backward pass of the tile-based pipeline.
///
/// Re-uses the cached tile–Gaussian sorted lists (modelled by re-projecting,
/// which is deterministic) and the per-pixel contributions from `forward`.
pub fn backward(
    scene: &GaussianScene,
    camera: &Camera,
    pixels: &PixelSet,
    forward_result: &ForwardResult,
    loss_grads: &[LossGrad],
    config: &RenderConfig,
) -> (SceneGrads, PoseGrad, RenderTrace) {
    assert_eq!(
        loss_grads.len(),
        pixels.len(),
        "loss gradients must cover the pixel set"
    );
    let _pass = crate::phase::begin("render/tile_backward");
    let width = pixels.width();
    let height = pixels.height();
    let mut trace = RenderTrace::new();

    // The projected set and sorted tile lists, read back from the forward
    // pass: the backward pass runs at the exact pose the forward just
    // used, so this is a guaranteed hit in both the projection and the
    // sorted-list cache whenever they are enabled.
    let prepared = crate::tilesort::prepare_tiles(scene, camera, width, height, config);
    let projected: &[ProjectedGaussian] = &prepared.projected;
    let tile_lists: &[Vec<u32>] = &prepared.tile_lists;
    let tile_pairs = prepared.tile_pairs;
    let mut proj_of_id: Vec<u32> = vec![u32::MAX; scene.len()];
    for (pi, pg) in projected.iter().enumerate() {
        proj_of_id[pg.id as usize] = pi as u32;
    }
    let tiles_x = prepared.tiles_x;
    let tiles_y = prepared.tiles_y;

    {
        let b = &mut trace.backward;
        b.bytes_read += tile_pairs * bytes::PAIR_ENTRY;
        b.bytes_read += projected.len() as u64 * bytes::PROJECTED;
    }

    // Reverse rasterization with the same warp shape as the forward pass:
    // every pixel re-walks its tile list, α-checking each pair. Fanned out
    // over fixed chunks of tiles; each chunk aggregates into a private
    // accumulator (recycled through a small pool) whose per-Gaussian
    // partials are merged in chunk order below, so the aggregation is
    // identical for every worker count.
    let groups = group_pixels_by_tile(pixels, tiles_x, tiles_y);
    let lookup = |id: u32| projected[proj_of_id[id as usize] as usize];
    // SoA view for the vector backward kernel (bit-identical to `lookup` +
    // `pixel_backward`; see `simd`).
    let soa = (config.kernels.simd_active()
        && crate::simd::soa_pays_off(pixels.len(), projected.len()))
    .then(|| crate::simd::ProjectedSoA::build(projected));
    let soa = soa.as_ref();
    let threads = pool::resolve_threads(config.threads);
    let acc_pool: Mutex<Vec<CamGradAccumulator>> = Mutex::new(Vec::new());

    #[derive(Default)]
    struct TileBackwardPartial {
        entries: Vec<(u32, crate::grad::CamGrad)>,
        warp_steps: u64,
        warp_active: u64,
        alpha_checks: u64,
        exp_evals: u64,
        pairs_grad: u64,
        atomic_adds: u64,
        bytes_written: u64,
    }
    let partials = pool::par_chunks_indexed(threads, &groups, TILE_CHUNK, |_, offset, chunk| {
        let mut acc = acc_pool
            .lock()
            .unwrap()
            .pop()
            .unwrap_or_else(|| CamGradAccumulator::new(scene.len()));
        acc.reset(scene.len());
        let mut part = TileBackwardPartial::default();
        for (k, group) in chunk.iter().enumerate() {
            let tile_idx = offset + k;
            if group.is_empty() {
                continue;
            }
            let list = &tile_lists[tile_idx];
            if list.is_empty() {
                continue;
            }
            let tx = tile_idx % tiles_x;
            let ty = tile_idx / tiles_x;
            let x0 = tx * TILE;
            let y0 = ty * TILE;
            let warps_per_tile = (TILE * TILE).div_ceil(WARP);
            let mut warp_members: Vec<Vec<(PixelCoord, usize)>> = vec![Vec::new(); warps_per_tile];
            for &(p, out_idx) in group {
                let lane = (p.y as usize - y0) * TILE + (p.x as usize - x0);
                warp_members[lane / WARP].push((p, out_idx));
            }
            for members in warp_members.iter().filter(|m| !m.is_empty()) {
                // Each member keeps a cursor into its contribution list; the
                // warp walks the tile list and a lane is active on the steps
                // where its pixel's next contribution matches.
                let mut cursors = vec![0usize; members.len()];
                for &pi in list.iter() {
                    let pg = &projected[pi as usize];
                    part.warp_steps += 1;
                    let mut active = 0u64;
                    for (mi, &(_, out_idx)) in members.iter().enumerate() {
                        let contribs = &forward_result.contributions[out_idx];
                        if cursors[mi] >= contribs.len() {
                            continue;
                        }
                        // α re-check for this pair (exp on the SFU).
                        part.alpha_checks += 1;
                        part.exp_evals += 1;
                        if contribs[cursors[mi]].gaussian == pg.id {
                            active += 1;
                            cursors[mi] += 1;
                        }
                    }
                    part.warp_active += active;
                }
            }
            // The gradient math itself (schedule-independent).
            for &(p, out_idx) in group {
                let counts = if let Some(soa) = soa {
                    crate::simd::pixel_backward_simd(
                        p.center(),
                        &forward_result.contributions[out_idx],
                        soa,
                        &proj_of_id,
                        loss_grads[out_idx].d_color,
                        loss_grads[out_idx].d_depth,
                        config,
                        config.background,
                        &mut acc,
                    )
                } else {
                    pixel_backward(
                        p.center(),
                        &forward_result.contributions[out_idx],
                        &lookup,
                        loss_grads[out_idx].d_color,
                        loss_grads[out_idx].d_depth,
                        config,
                        config.background,
                        &mut acc,
                    )
                };
                part.pairs_grad += counts.pairs;
                part.atomic_adds += counts.atomic_adds;
                part.bytes_written += counts.pairs * bytes::GRADIENT;
            }
        }
        part.entries = acc.touched().iter().map(|&id| (id, acc.get(id))).collect();
        acc_pool.lock().unwrap().push(acc);
        part
    });

    let mut accum = CamGradAccumulator::new(scene.len());
    accum.reset(scene.len());
    {
        let b = &mut trace.backward;
        for part in partials {
            b.warp_steps += part.warp_steps;
            b.warp_active += part.warp_active;
            b.alpha_checks += part.alpha_checks;
            b.exp_evals += part.exp_evals;
            b.pairs_grad += part.pairs_grad;
            b.atomic_adds += part.atomic_adds;
            b.bytes_written += part.bytes_written;
            for (id, cg) in &part.entries {
                accum.merge_entry(*id, cg);
            }
        }
    }

    // Aggregation statistics.
    {
        let b = &mut trace.backward;
        for &id in accum.touched() {
            b.gaussian_touches.push(accum.get(id).count as f64);
        }
        b.gaussians_touched = accum.touched().len() as u64;
        b.reprojections = accum.touched().len() as u64;
        b.bytes_read += b.gaussians_touched * bytes::GRADIENT;
        b.bytes_written += b.gaussians_touched * bytes::GRADIENT;
    }

    let (grads, pose) = reproject(scene, camera, &accum, true);
    (grads, pose, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::project_scene;
    use splatonic_math::{Pose, Quat, Vec2};
    use splatonic_scene::{Gaussian, Intrinsics};

    fn small_scene() -> (GaussianScene, Camera) {
        let mut scene = GaussianScene::new();
        scene.push(Gaussian::new(
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::splat(0.15),
            Quat::IDENTITY,
            0.9,
            Vec3::new(1.0, 0.2, 0.1),
        ));
        scene.push(Gaussian::new(
            Vec3::new(0.3, 0.1, 3.0),
            Vec3::splat(0.2),
            Quat::IDENTITY,
            0.8,
            Vec3::new(0.1, 0.9, 0.2),
        ));
        let cam = Camera::new(Intrinsics::with_fov(64, 48, 1.2), Pose::identity());
        (scene, cam)
    }

    #[test]
    fn dense_forward_shades_all_pixels() {
        let (scene, cam) = small_scene();
        let pixels = PixelSet::dense(64, 48);
        let out = forward(&scene, &cam, &pixels, &RenderConfig::default());
        assert_eq!(out.color.len(), 64 * 48);
        assert_eq!(out.trace.forward.pixels_shaded, 64 * 48);
        // The center pixel must have been hit by the front Gaussian.
        let center = 24 * 64 + 32;
        assert!(out.color[center].x > 0.1, "center {:?}", out.color[center]);
        assert!(out.final_transmittance[center] < 1.0);
    }

    #[test]
    fn empty_scene_renders_background() {
        let cam = Camera::new(Intrinsics::with_fov(32, 32, 1.0), Pose::identity());
        let cfg = RenderConfig {
            background: Vec3::new(0.3, 0.3, 0.3),
            ..RenderConfig::default()
        };
        let pixels = PixelSet::dense(32, 32);
        let out = forward(&GaussianScene::new(), &cam, &pixels, &cfg);
        assert!(out.color.iter().all(|c| (c.x - 0.3).abs() < 1e-12));
        assert!(out.final_transmittance.iter().all(|&t| t == 1.0));
    }

    #[test]
    fn contributions_are_depth_ordered() {
        let (scene, cam) = small_scene();
        let pixels = PixelSet::dense(64, 48);
        let out = forward(&scene, &cam, &pixels, &RenderConfig::default());
        for contribs in &out.contributions {
            for w in contribs.windows(2) {
                // Transmittance decreases along the list (front-to-back).
                assert!(w[1].transmittance <= w[0].transmittance + 1e-12);
            }
        }
    }

    #[test]
    fn sparse_pixels_shade_subset() {
        let (scene, cam) = small_scene();
        let pixels = PixelSet::from_tile_chooser(64, 48, 16, |_, _, x0, y0, w, h| {
            Some(crate::pixelset::PixelCoord::new(
                (x0 + w / 2) as u16,
                (y0 + h / 2) as u16,
            ))
        });
        let out = forward(&scene, &cam, &pixels, &RenderConfig::default());
        assert_eq!(out.color.len(), pixels.len());
        assert!(out.trace.forward.pixels_shaded as usize == pixels.len());
        // Tile work is unchanged by sparsity (that is the point).
        assert!(out.trace.forward.tile_pairs > 0);
    }

    #[test]
    fn sparse_warp_utilization_lower_than_dense() {
        let (scene, cam) = small_scene();
        let dense = forward(
            &scene,
            &cam,
            &PixelSet::dense(64, 48),
            &RenderConfig::default(),
        );
        let sparse_set = PixelSet::from_tile_chooser(64, 48, 16, |_, _, x0, y0, _, _| {
            Some(crate::pixelset::PixelCoord::new(x0 as u16, y0 as u16))
        });
        let sparse = forward(&scene, &cam, &sparse_set, &RenderConfig::default());
        let ud = dense.trace.forward.warp_utilization();
        let us = sparse.trace.forward.warp_utilization();
        assert!(
            us < ud,
            "sparse utilization {us} should be below dense {ud}"
        );
        // A single resident pixel caps utilization at 1/32.
        assert!(us <= 1.0 / 32.0 + 1e-9);
    }

    #[test]
    fn backward_produces_gradients() {
        let (scene, cam) = small_scene();
        let pixels = PixelSet::dense(64, 48);
        let cfg = RenderConfig::default();
        let out = forward(&scene, &cam, &pixels, &cfg);
        let grads: Vec<LossGrad> = out
            .color
            .iter()
            .map(|_| LossGrad {
                d_color: Vec3::splat(1.0),
                d_depth: 0.1,
            })
            .collect();
        let (sg, pg, trace) = backward(&scene, &cam, &pixels, &out, &grads, &cfg);
        assert!(!sg.is_empty());
        assert!(pg.xi.norm() > 0.0);
        assert!(trace.backward.pairs_grad > 0);
        assert!(trace.backward.atomic_adds >= trace.backward.pairs_grad);
        assert_eq!(trace.backward.reprojections, sg.len() as u64);
    }

    #[test]
    fn backward_zero_loss_zero_grad() {
        let (scene, cam) = small_scene();
        let pixels = PixelSet::dense(32, 32);
        let cfg = RenderConfig::default();
        let out = forward(&scene, &cam, &pixels, &cfg);
        let grads = vec![LossGrad::default(); pixels.len()];
        let (sg, pg, _) = backward(&scene, &cam, &pixels, &out, &grads, &cfg);
        for (_, g) in &sg.entries {
            assert!(g.mean.norm() < 1e-12);
            assert!(g.color.norm() < 1e-12);
        }
        assert!(pg.xi.norm() < 1e-12);
    }

    #[test]
    fn bbox_to_tiles_covers_projection() {
        let (scene, cam) = small_scene();
        let cfg = RenderConfig {
            sort_cache: false,
            ..RenderConfig::default()
        };
        let prepared = crate::tilesort::prepare_tiles(&scene, &cam, 64, 48, &cfg);
        assert_eq!(
            prepared.tile_pairs,
            prepared
                .tile_lists
                .iter()
                .map(|l| l.len() as u64)
                .sum::<u64>()
        );
        // The tile containing each Gaussian's center must list it (the
        // prepared projection is in scene-index order, so enumeration
        // indices are the list entries).
        for (pi, pg) in prepared.projected.iter().enumerate() {
            let tx = (pg.mean2d.x as usize / TILE).min(64usize.div_ceil(TILE) - 1);
            let ty = (pg.mean2d.y as usize / TILE).min(48usize.div_ceil(TILE) - 1);
            assert!(prepared.tile_lists[ty * 64usize.div_ceil(TILE) + tx].contains(&(pi as u32)));
        }
    }

    #[test]
    fn early_termination_limits_list() {
        // Stack many opaque Gaussians; the pixel should terminate early.
        let mut scene = GaussianScene::new();
        for i in 0..50 {
            scene.push(Gaussian::new(
                Vec3::new(0.0, 0.0, 1.0 + i as f64 * 0.1),
                Vec3::splat(0.3),
                Quat::IDENTITY,
                0.95,
                Vec3::splat(0.5),
            ));
        }
        let cam = Camera::new(Intrinsics::with_fov(32, 32, 1.0), Pose::identity());
        let pixels = PixelSet::from_pixels(32, 32, vec![PixelCoord::new(16, 16)]);
        let out = forward(&scene, &cam, &pixels, &RenderConfig::default());
        assert!(
            out.contributions[0].len() < 10,
            "opaque stack should terminate after a few Gaussians, got {}",
            out.contributions[0].len()
        );
        assert!(out.final_transmittance[0] < 1e-3);
    }

    #[test]
    fn alpha_checks_exceed_integrations() {
        let (scene, cam) = small_scene();
        let pixels = PixelSet::dense(64, 48);
        let out = forward(&scene, &cam, &pixels, &RenderConfig::default());
        let f = &out.trace.forward;
        assert!(f.raster_alpha_checks >= f.pairs_integrated);
        assert!(f.exp_evals >= f.raster_alpha_checks);
    }

    #[test]
    fn projected_center_matches_camera_projection() {
        let (scene, cam) = small_scene();
        let cfg = RenderConfig::default();
        let (projected, _) = project_scene(&scene, &cam, &cfg);
        for pg in &projected {
            let expect = cam.project_point(scene.means()[pg.id as usize]).unwrap();
            assert!((pg.mean2d - Vec2::new(expect.x, expect.y)).norm() < 1e-9);
        }
    }
}
