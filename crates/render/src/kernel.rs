//! Shared projection and compositing kernels (EWA splatting).
//!
//! Both pipelines project 3D Gaussians to screen space the same way:
//!
//! * transform the mean into the camera frame, cull behind-camera points,
//! * project the mean through the pinhole model,
//! * push the 3D covariance through the local affine approximation
//!   `Σ' = J W Σ Wᵀ Jᵀ + b·I` (the classic EWA splatting Jacobian `J`),
//! * invert `Σ'` (the "conic") for α evaluation.
//!
//! The transparency of Gaussian `i` at pixel `p` is
//! `α_i = min(α_max, o_i · exp(-½ dᵀ Σ'⁻¹ d))` with `d = p − μ'` — exactly
//! the quantity the paper's α-checking thresholds against `α*`.

use splatonic_math::{pool, Mat2, Mat3, Vec2, Vec3};
use splatonic_scene::{Camera, Gaussian};

/// Numeric configuration shared by both pipelines.
///
/// # Examples
///
/// ```
/// use splatonic_render::RenderConfig;
/// let cfg = RenderConfig::default();
/// assert!(cfg.alpha_threshold > 0.0 && cfg.alpha_threshold < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderConfig {
    /// α* — Gaussians with `α < alpha_threshold` at a pixel are skipped
    /// (default `1/255`). Output-affecting: part of the rendering
    /// definition, covered by the `SlamConfig` fingerprint.
    pub alpha_threshold: f64,
    /// Upper clamp on α (default `0.99`, the reference implementation's
    /// value). Output-affecting.
    pub alpha_max: f64,
    /// Early-termination transmittance: stop compositing once `Γ < t_min`
    /// (default `1e-4`). Output-affecting.
    pub transmittance_min: f64,
    /// Screen-space blur added to the projected covariance diagonal
    /// (default `0.3`). Output-affecting.
    pub screen_blur: f64,
    /// Bounding-box extent in standard deviations (default `3.5`). 3.5σ
    /// guarantees that any pixel outside the box has `α < 1/255` even at
    /// full opacity (`exp(−3.5²/2)·0.99 ≈ 0.0022 < 1/255`), so bbox-based
    /// candidate discovery (pixel pipeline) and threshold-only α-checking
    /// (tile pipeline) select exactly the same pixel–Gaussian pairs.
    /// Output-affecting.
    pub bbox_sigma: f64,
    /// Near-plane distance for frustum culling (default `0.2`).
    /// Output-affecting.
    pub near: f64,
    /// Background color composited where transmittance remains (default
    /// black). Output-affecting.
    pub background: Vec3,
    /// Screen-space bin index for the pixel-based pipeline: sampled pixels
    /// visit only the Gaussians binned to their bin instead of being
    /// discovered Gaussian-major (default `true`). Output is bit-identical
    /// either way; the `bin_candidates` trace counter records the pruning
    /// achieved.
    pub binning: bool,
    /// Bin edge length in pixels for the bin index (default 16; `0` also
    /// resolves to 16). Output-transparent: any bin size yields bit-identical
    /// renders.
    pub bin_size: usize,
    /// Cross-iteration projection cache: reuse per-Gaussian projection
    /// results across renders that share the exact camera and unchanged
    /// Gaussian parameters (default `true`; invalidated by any pose delta,
    /// see `projcache`). Output is bit-identical either way.
    pub cache: bool,
    /// Worker threads for the parallel render/backward paths (default `0` =
    /// auto: the `SPLATONIC_THREADS` environment variable, falling back to
    /// `available_parallelism()`). Results are bit-identical for every
    /// value (see `splatonic_math::pool`).
    pub threads: usize,
    /// GS-TG-style tile grouping for the tile pipeline (default `true`):
    /// 16×16 tiles are partitioned into `group_size`×`group_size` groups,
    /// one shared depth sort runs per group over the union candidate list,
    /// and each tile's list is derived by masking the shared order. Because
    /// the depth comparator (`depth` ascending, id tie-break) is a total
    /// order over unique ids, the masked per-tile lists are bit-identical
    /// to independently sorted ones — enforced against the per-tile oracle
    /// by the determinism suite. The `sort_lists`/`sort_elems`/
    /// `sort_group_reuse` trace counters record the schedule that ran.
    pub tile_grouping: bool,
    /// Tile-group edge length in tiles (default `2`, i.e. 2×2 tiles = one
    /// 32×32-pixel group; `0` also resolves to 2). Output-transparent: any
    /// group size yields bit-identical renders, only the sort accounting
    /// changes.
    pub group_size: usize,
    /// Frame-coherent sorted-list cache (default `true`): sorted tile/group
    /// lists are keyed on the scene-revision counter + pose bits (the
    /// `projcache` key extended with the grid/grouping context). An exact
    /// key match replays the previous lists; a pose-only delta re-merges
    /// the nearly-sorted previous order instead of sorting cold. Output is
    /// bit-identical either way (the comparator's total order makes the
    /// sorted result unique); realized hit/merge statistics are exported as
    /// side-band `render/sort_*` counters, never through the trace.
    pub sort_cache: bool,
    /// Kernel implementation selector (default [`crate::simd::KernelMode::Simd`]).
    ///
    /// `Simd` uses the runtime-detected vector paths in [`crate::simd`] and
    /// falls back to scalar automatically when no vector unit is detected.
    /// Every shipped SIMD lane replicates the scalar operation order exactly,
    /// so outputs are bit-identical across modes (enforced by the
    /// determinism suite); the flag exists as the A/B harness for future
    /// lanes that relax that contract. Excluded from the `SlamConfig`
    /// fingerprint, like the other output-transparent execution knobs.
    pub kernels: crate::simd::KernelMode,
}

impl Default for RenderConfig {
    fn default() -> Self {
        RenderConfig {
            alpha_threshold: 1.0 / 255.0,
            alpha_max: 0.99,
            transmittance_min: 1e-4,
            screen_blur: 0.3,
            bbox_sigma: 3.5,
            near: 0.2,
            background: Vec3::ZERO,
            binning: true,
            bin_size: crate::binning::DEFAULT_BIN_SIZE,
            cache: true,
            tile_grouping: true,
            group_size: crate::tilesort::DEFAULT_GROUP_SIZE,
            sort_cache: true,
            threads: 0,
            kernels: crate::simd::KernelMode::Simd,
        }
    }
}

/// A Gaussian projected to screen space, ready for rasterization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectedGaussian {
    /// Index of the source Gaussian in the scene.
    pub id: u32,
    /// Projected 2D mean μ' in pixel coordinates.
    pub mean2d: Vec2,
    /// Inverse of the projected 2D covariance (the "conic").
    pub conic: Mat2,
    /// Camera-frame depth (z).
    pub depth: f64,
    /// Camera-frame mean (needed by the backward pass).
    pub mean_cam: Vec3,
    /// Opacity `o_i` (natural, in (0,1)).
    pub opacity: f64,
    /// Color, clamped into \[0, 1].
    pub color: Vec3,
    /// Bounding-box half-extent in pixels (per axis, from `bbox_sigma`).
    pub radius: Vec2,
}

impl ProjectedGaussian {
    /// Screen-space bounding box `(min, max)` inclusive.
    pub fn bbox(&self) -> (Vec2, Vec2) {
        (self.mean2d - self.radius, self.mean2d + self.radius)
    }
}

/// The projection Jacobian `J` (2×3 stored as rows) for camera point `p`.
///
/// `J = [[fx/z, 0, −fx·x/z²], [0, fy/z, −fy·y/z²]]`.
#[inline]
pub fn projection_jacobian(fx: f64, fy: f64, p_cam: Vec3) -> [Vec3; 2] {
    let inv_z = 1.0 / p_cam.z;
    let inv_z2 = inv_z * inv_z;
    [
        Vec3::new(fx * inv_z, 0.0, -fx * p_cam.x * inv_z2),
        Vec3::new(0.0, fy * inv_z, -fy * p_cam.y * inv_z2),
    ]
}

/// Projects one Gaussian; returns `None` if culled (behind camera, outside
/// the image, or degenerate covariance).
pub fn project_gaussian(
    g: &Gaussian,
    id: u32,
    camera: &Camera,
    config: &RenderConfig,
) -> Option<ProjectedGaussian> {
    let p_cam = camera.to_camera(g.mean);
    if p_cam.z <= config.near {
        return None;
    }
    let intr = &camera.intrinsics;
    let mean2d = Vec2::new(
        intr.fx * p_cam.x / p_cam.z + intr.cx,
        intr.fy * p_cam.y / p_cam.z + intr.cy,
    );
    project_from_cam(g, id, p_cam, mean2d, camera, config)
}

/// Covariance/conic/culling tail of [`project_gaussian`], starting from a
/// precomputed camera-frame mean and projected 2D mean. The SIMD projection
/// path vectorizes the transform + pinhole head and finishes each surviving
/// lane here, so both paths share one covariance pipeline bit-for-bit.
pub(crate) fn project_from_cam(
    g: &Gaussian,
    id: u32,
    p_cam: Vec3,
    mean2d: Vec2,
    camera: &Camera,
    config: &RenderConfig,
) -> Option<ProjectedGaussian> {
    let intr = &camera.intrinsics;
    // 2D covariance: Σ' = J W Σ Wᵀ Jᵀ + blur·I.
    let w = camera.pose.rotation;
    let sigma_cam = w * g.covariance() * w.transpose();
    let j = projection_jacobian(intr.fx, intr.fy, p_cam);
    let js0 = sigma_cam * j[0];
    let js1 = sigma_cam * j[1];
    let mut cov2d = Mat2::new(
        j[0].dot(js0) + config.screen_blur,
        j[0].dot(js1),
        j[1].dot(js0),
        j[1].dot(js1) + config.screen_blur,
    );
    // Symmetrize against floating-point drift.
    let off = 0.5 * (cov2d.m[1] + cov2d.m[2]);
    cov2d.m[1] = off;
    cov2d.m[2] = off;
    let conic = cov2d.inverse()?;
    let (l1, l2) = cov2d.symmetric_eigenvalues();
    if l1 <= 0.0 || l2 <= 0.0 {
        return None;
    }
    let r = config.bbox_sigma * l1.sqrt();
    let radius = Vec2::new(r, r);
    // Frustum culling. The margin is capped: near the image plane the
    // affine (EWA) approximation blows the projected radius up for
    // far-off-axis Gaussians, and an uncapped bbox margin would let those
    // degenerate splats cover the whole screen as phantom surfaces. The
    // reference implementation culls on the *mean* position in NDC with a
    // modest guard band for the same reason.
    let margin = r.min(0.3 * intr.width.max(intr.height) as f64);
    if !intr.in_bounds(mean2d, margin) {
        return None;
    }
    Some(ProjectedGaussian {
        id,
        mean2d,
        conic,
        depth: p_cam.z,
        mean_cam: p_cam,
        opacity: g.opacity(),
        color: g.color.clamp(0.0, 1.0),
        radius,
    })
}

/// Fixed fan-out granularity for projection (thread-count independent, so
/// the concatenation order of per-chunk outputs never changes).
const PROJECT_CHUNK: usize = 512;

/// Projects the whole scene, returning visible Gaussians (ordered by scene
/// index) and the number culled.
///
/// Each Gaussian projects independently, so this fans out over the worker
/// pool; per-chunk outputs are concatenated in chunk order, making the
/// result identical to a sequential pass for every thread count.
pub fn project_scene(
    scene: &splatonic_scene::GaussianScene,
    camera: &Camera,
    config: &RenderConfig,
) -> (Vec<ProjectedGaussian>, u64) {
    let threads = pool::resolve_threads(config.threads);
    let simd = config.kernels.simd_active();
    let chunks =
        pool::par_chunks_indexed(threads, scene.means(), PROJECT_CHUNK, |_, offset, means| {
            let mut out = Vec::with_capacity(means.len());
            let mut culled = 0u64;
            if simd {
                crate::simd::project_chunk(scene, offset, means.len(), camera, config, &mut out);
                culled += (means.len() - out.len()) as u64;
            } else {
                for k in 0..means.len() {
                    let i = offset + k;
                    let g = scene.gaussian(i);
                    match project_gaussian(&g, i as u32, camera, config) {
                        Some(pg) => out.push(pg),
                        None => culled += 1,
                    }
                }
            }
            (out, culled)
        });
    let mut out = Vec::with_capacity(scene.len());
    let mut culled = 0u64;
    for (chunk_out, chunk_culled) in chunks {
        out.extend(chunk_out);
        culled += chunk_culled;
    }
    (out, culled)
}

/// Evaluates the Mahalanobis power `q = dᵀ conic d ≥ 0` at `pixel`.
#[inline]
pub fn power_at(pg: &ProjectedGaussian, pixel: Vec2) -> f64 {
    let d = pixel - pg.mean2d;
    (pg.conic * d).dot(d).max(0.0)
}

/// Evaluates α at `pixel`: `min(α_max, o·exp(−q/2))`.
///
/// Returns `(alpha, power)`; α-checking compares `alpha` against
/// `config.alpha_threshold`.
#[inline]
pub fn alpha_at(pg: &ProjectedGaussian, pixel: Vec2, config: &RenderConfig) -> (f64, f64) {
    let q = power_at(pg, pixel);
    let alpha = (pg.opacity * (-0.5 * q).exp()).min(config.alpha_max);
    (alpha, q)
}

/// Composites a depth-sorted contribution list into color, depth, and final
/// transmittance (Eq. 1). `contribs` must be front-to-back.
pub fn composite(
    contribs: &[(f64, Vec3, f64)], // (alpha, color, z) front-to-back
    background: Vec3,
) -> (Vec3, f64, f64) {
    let mut t = 1.0;
    let mut color = Vec3::ZERO;
    let mut depth = 0.0;
    for &(alpha, c, z) in contribs {
        let w = t * alpha;
        color += c * w;
        depth += z * w;
        t *= 1.0 - alpha;
    }
    (color + background * t, depth, t)
}

/// Sort of projected Gaussians by ascending depth, tie-broken by Gaussian
/// id so both pipelines composite equal-depth splats in the same order.
pub fn sort_by_depth(list: &mut [ProjectedGaussian]) {
    list.sort_by(|a, b| {
        a.depth
            .partial_cmp(&b.depth)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
}

/// Camera-frame covariance `W Σ Wᵀ` (exposed for the backward pass).
pub fn covariance_cam(g: &Gaussian, rotation: Mat3) -> Mat3 {
    rotation * g.covariance() * rotation.transpose()
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatonic_math::{Pose, Quat};
    use splatonic_scene::Intrinsics;

    fn camera() -> Camera {
        Camera::new(Intrinsics::with_fov(128, 96, 1.2), Pose::identity())
    }

    fn gaussian_at(z: f64) -> Gaussian {
        Gaussian::new(
            Vec3::new(0.0, 0.0, z),
            Vec3::splat(0.05),
            Quat::IDENTITY,
            0.9,
            Vec3::new(1.0, 0.0, 0.0),
        )
    }

    #[test]
    fn project_center_gaussian() {
        let cam = camera();
        let pg = project_gaussian(&gaussian_at(2.0), 0, &cam, &RenderConfig::default()).unwrap();
        assert!((pg.mean2d.x - cam.intrinsics.cx).abs() < 1e-9);
        assert!((pg.mean2d.y - cam.intrinsics.cy).abs() < 1e-9);
        assert!((pg.depth - 2.0).abs() < 1e-12);
    }

    #[test]
    fn behind_camera_culled() {
        let cam = camera();
        assert!(project_gaussian(&gaussian_at(-1.0), 0, &cam, &RenderConfig::default()).is_none());
    }

    #[test]
    fn far_off_screen_culled() {
        let cam = camera();
        let g = Gaussian::new(
            Vec3::new(100.0, 0.0, 2.0),
            Vec3::splat(0.05),
            Quat::IDENTITY,
            0.9,
            Vec3::ZERO,
        );
        assert!(project_gaussian(&g, 0, &cam, &RenderConfig::default()).is_none());
    }

    #[test]
    fn alpha_peaks_at_mean() {
        let cam = camera();
        let cfg = RenderConfig::default();
        let pg = project_gaussian(&gaussian_at(2.0), 0, &cam, &cfg).unwrap();
        let (a_center, q_center) = alpha_at(&pg, pg.mean2d, &cfg);
        let (a_off, _) = alpha_at(&pg, pg.mean2d + Vec2::new(5.0, 0.0), &cfg);
        assert!(q_center.abs() < 1e-12);
        assert!(a_center > a_off);
        assert!(
            (a_center - 0.9).abs() < 1e-9,
            "alpha at mean equals opacity"
        );
    }

    #[test]
    fn alpha_clamped_at_max() {
        let cam = camera();
        let cfg = RenderConfig::default();
        let g = Gaussian::new(
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::splat(0.05),
            Quat::IDENTITY,
            0.9999,
            Vec3::ZERO,
        );
        let pg = project_gaussian(&g, 0, &cam, &cfg).unwrap();
        let (a, _) = alpha_at(&pg, pg.mean2d, &cfg);
        assert!(a <= cfg.alpha_max + 1e-12);
    }

    #[test]
    fn projected_covariance_grows_with_scale() {
        let cam = camera();
        let cfg = RenderConfig::default();
        let small = project_gaussian(&gaussian_at(2.0), 0, &cam, &cfg).unwrap();
        let big_g = Gaussian::new(
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::splat(0.2),
            Quat::IDENTITY,
            0.9,
            Vec3::ZERO,
        );
        let big = project_gaussian(&big_g, 0, &cam, &cfg).unwrap();
        assert!(big.radius.x > small.radius.x * 2.0);
    }

    #[test]
    fn closer_gaussian_projects_larger() {
        let cam = camera();
        let cfg = RenderConfig::default();
        let near = project_gaussian(&gaussian_at(1.0), 0, &cam, &cfg).unwrap();
        let far = project_gaussian(&gaussian_at(4.0), 0, &cam, &cfg).unwrap();
        assert!(near.radius.x > far.radius.x);
    }

    #[test]
    fn composite_single_opaque() {
        let c = Vec3::new(0.2, 0.4, 0.6);
        let (color, depth, t) = composite(&[(0.99, c, 2.0)], Vec3::ZERO);
        assert!((color - c * 0.99).norm() < 1e-12);
        assert!((depth - 1.98).abs() < 1e-12);
        assert!((t - 0.01).abs() < 1e-12);
    }

    #[test]
    fn composite_order_matters() {
        let red = (0.8, Vec3::new(1.0, 0.0, 0.0), 1.0);
        let blue = (0.8, Vec3::new(0.0, 0.0, 1.0), 2.0);
        let (front_red, _, _) = composite(&[red, blue], Vec3::ZERO);
        let (front_blue, _, _) = composite(&[blue, red], Vec3::ZERO);
        assert!(front_red.x > front_red.z);
        assert!(front_blue.z > front_blue.x);
    }

    #[test]
    fn composite_transmittance_product() {
        let items = [(0.5, Vec3::ZERO, 1.0), (0.25, Vec3::ZERO, 1.0)];
        let (_, _, t) = composite(&items, Vec3::ZERO);
        assert!((t - 0.5 * 0.75).abs() < 1e-12);
    }

    #[test]
    fn background_fills_remaining_transmittance() {
        let bg = Vec3::new(1.0, 1.0, 1.0);
        let (color, _, t) = composite(&[], bg);
        assert_eq!(t, 1.0);
        assert_eq!(color, bg);
    }

    #[test]
    fn sort_by_depth_orders_ascending() {
        let cam = camera();
        let cfg = RenderConfig::default();
        let mut list: Vec<ProjectedGaussian> = [3.0, 1.0, 2.0]
            .iter()
            .map(|&z| project_gaussian(&gaussian_at(z), 0, &cam, &cfg).unwrap())
            .collect();
        sort_by_depth(&mut list);
        assert!(list[0].depth < list[1].depth && list[1].depth < list[2].depth);
    }

    #[test]
    fn projection_jacobian_matches_finite_difference() {
        let (fx, fy) = (100.0, 110.0);
        let p = Vec3::new(0.3, -0.4, 2.0);
        let j = projection_jacobian(fx, fy, p);
        let proj = |p: Vec3| Vec2::new(fx * p.x / p.z, fy * p.y / p.z);
        let eps = 1e-7;
        for k in 0..3 {
            let mut dp = p;
            dp[k] += eps;
            let fd = (proj(dp) - proj(p)) / eps;
            assert!((fd.x - j[0][k]).abs() < 1e-4, "row0 col{k}");
            assert!((fd.y - j[1][k]).abs() < 1e-4, "row1 col{k}");
        }
    }

    #[test]
    fn project_scene_counts_culled() {
        let cam = camera();
        let mut scene = splatonic_scene::GaussianScene::new();
        scene.push(gaussian_at(2.0));
        scene.push(gaussian_at(-2.0));
        let (vis, culled) = project_scene(&scene, &cam, &RenderConfig::default());
        assert_eq!(vis.len(), 1);
        assert_eq!(culled, 1);
    }
}
