//! Gradient computation shared by both backward pipelines.
//!
//! Following the paper's decomposition (Fig. 3), the backward pass is:
//!
//! 1. **Reverse rasterization** — per pixel–Gaussian pair, compute the
//!    partial gradients of the loss w.r.t. the pair's screen-space
//!    quantities (projected mean, projected covariance, depth, color,
//!    opacity); implemented by [`pixel_backward`].
//! 2. **Aggregation** — sum the partial gradients into per-Gaussian
//!    accumulators (the `atomicAdd` stage on GPUs); implemented by
//!    [`CamGradAccumulator`].
//! 3. **Re-projection** — transform the accumulated camera-space gradients
//!    into world-space parameter gradients (and, for tracking, into the
//!    camera-pose tangent); implemented by [`reproject`].
//!
//! Tracking pose gradients flow through the projected means and depths
//! (`∂p_cam/∂ξ = [I | −[p_cam]×]` for a left-multiplicative update); the
//! covariance-orientation dependence on pose is dropped (standard
//! SplaTAM-style approximation; see DESIGN.md §5).

use crate::kernel::{projection_jacobian, ProjectedGaussian, RenderConfig};
use crate::Contribution;
use splatonic_math::{Mat2, Mat3, Se3, Vec2, Vec3};
use splatonic_scene::{Camera, Gaussian, GaussianScene};

/// Gradient of the loss w.r.t. one Gaussian's trainable parameters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GaussianParamGrad {
    /// ∂L/∂mean (world).
    pub mean: Vec3,
    /// ∂L/∂log_scale.
    pub log_scale: Vec3,
    /// ∂L/∂rotation (raw quaternion storage, `[w, x, y, z]`).
    pub rotation: [f64; 4],
    /// ∂L/∂opacity_logit.
    pub opacity_logit: f64,
    /// ∂L/∂color.
    pub color: Vec3,
}

/// Per-Gaussian gradients for the touched subset of the scene.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SceneGrads {
    /// `(gaussian index, gradient)` pairs, unordered.
    pub entries: Vec<(u32, GaussianParamGrad)>,
}

impl SceneGrads {
    /// Number of Gaussians with gradients.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no Gaussian received a gradient.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the gradient for Gaussian `id` (linear scan; test helper).
    pub fn get(&self, id: u32) -> Option<&GaussianParamGrad> {
        self.entries.iter().find(|(i, _)| *i == id).map(|(_, g)| g)
    }
}

/// Gradient of the loss w.r.t. the camera pose, in the left tangent space.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PoseGrad {
    /// ∂L/∂ξ for the update `pose ← exp(−η·ξ̂) ∘ pose`.
    pub xi: Se3,
}

/// Accumulated camera-space gradients for one Gaussian (pre-re-projection).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CamGrad {
    /// ∂L/∂μ' (projected 2D mean).
    pub mean2d: Vec2,
    /// ∂L/∂Σ' upper triangle `[xx, xy, yy]` (symmetric).
    pub cov2d: [f64; 3],
    /// ∂L/∂z from depth compositing.
    pub depth: f64,
    /// ∂L/∂color.
    pub color: Vec3,
    /// ∂L/∂opacity (natural opacity, chained to logit at re-projection).
    pub opacity: f64,
    /// Number of pixel contributions aggregated.
    pub count: u32,
}

/// Dense accumulator over Gaussian ids with an epoch-based lazy reset, so
/// repeated backward passes reuse the allocation.
#[derive(Debug, Clone, Default)]
pub struct CamGradAccumulator {
    slots: Vec<CamGrad>,
    epoch: Vec<u32>,
    current: u32,
    touched: Vec<u32>,
}

impl CamGradAccumulator {
    /// Creates an accumulator sized for `n` Gaussians.
    pub fn new(n: usize) -> Self {
        CamGradAccumulator {
            slots: vec![CamGrad::default(); n],
            epoch: vec![0; n],
            current: 1,
            touched: Vec::new(),
        }
    }

    /// Clears all accumulated gradients (O(1) amortized).
    pub fn reset(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize(n, CamGrad::default());
            self.epoch.resize(n, 0);
        }
        self.current = self.current.wrapping_add(1);
        if self.current == 0 {
            // Epoch wrapped: do a real clear.
            self.epoch.fill(0);
            self.current = 1;
        }
        self.touched.clear();
    }

    /// Mutable access to Gaussian `id`'s accumulator, zeroing it on first
    /// touch this epoch.
    pub fn entry(&mut self, id: u32) -> &mut CamGrad {
        let i = id as usize;
        if self.epoch[i] != self.current {
            self.epoch[i] = self.current;
            self.slots[i] = CamGrad::default();
            self.touched.push(id);
        }
        &mut self.slots[i]
    }

    /// Ids touched this epoch, in first-touch order.
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// Read-only access (zero if untouched this epoch).
    pub fn get(&self, id: u32) -> CamGrad {
        let i = id as usize;
        if i < self.slots.len() && self.epoch[i] == self.current {
            self.slots[i]
        } else {
            CamGrad::default()
        }
    }

    /// Adds another accumulator's entry for `id` into this one.
    ///
    /// Used by the parallel backward passes: each pool chunk accumulates
    /// into a private accumulator, and the partials are merged in chunk
    /// order so the final sums are identical for every worker count. The
    /// destructuring is exhaustive (no `..`) so a new [`CamGrad`] field
    /// cannot be silently dropped from the merge.
    pub fn merge_entry(&mut self, id: u32, other: &CamGrad) {
        let CamGrad {
            mean2d,
            cov2d,
            depth,
            color,
            opacity,
            count,
        } = *other;
        let e = self.entry(id);
        e.mean2d += mean2d;
        e.cov2d[0] += cov2d[0];
        e.cov2d[1] += cov2d[1];
        e.cov2d[2] += cov2d[2];
        e.depth += depth;
        e.color += color;
        e.opacity += opacity;
        e.count += count;
    }
}

/// Statistics returned by [`pixel_backward`] for trace accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PixelBackwardCounts {
    /// Pairs whose gradients were computed.
    pub pairs: u64,
    /// Scalar atomic adds the aggregation would issue (one per gradient
    /// component per pair: 2 mean + 3 cov + 1 depth + 3 color + 1 opacity).
    pub atomic_adds: u64,
}

/// Scalar gradient components accumulated per pair (drives atomic counts).
pub const GRAD_COMPONENTS: u64 = 10;

/// Reverse color integration for one pixel (paper Fig. 3 / Sec. IV-B).
///
/// Walks the pixel's depth-ordered contribution list, computes each pair's
/// partial gradients analytically, and adds them into `accum`. `lookup`
/// resolves a Gaussian id to its projection. `dl_dc`/`dl_dd` are the loss
/// gradients w.r.t. this pixel's color and depth.
#[allow(clippy::too_many_arguments)]
pub fn pixel_backward(
    pixel: Vec2,
    contribs: &[Contribution],
    lookup: &dyn Fn(u32) -> ProjectedGaussian,
    dl_dc: Vec3,
    dl_dd: f64,
    config: &RenderConfig,
    background: Vec3,
    accum: &mut CamGradAccumulator,
) -> PixelBackwardCounts {
    let mut counts = PixelBackwardCounts::default();
    if contribs.is_empty() {
        return counts;
    }
    // Suffix sums: S_c = Σ_{j>i} w_j c_j, S_z = Σ_{j>i} w_j z_j, plus the
    // background term which also depends on every α through Γ_final.
    // C = Σ w_i c_i + Γ_final·bg, with Γ_final = Π (1−α_j):
    //   ∂C/∂α_i = Γ_i c_i − (S_c^i + Γ_final·bg)/(1−α_i).
    let mut suffix_c = Vec3::ZERO;
    let mut suffix_z = 0.0;
    let mut t_final = 1.0;
    for c in contribs {
        t_final *= 1.0 - c.alpha;
    }
    // Iterate back-to-front (the paper's reverse integration order).
    for c in contribs.iter().rev() {
        let pg = lookup(c.gaussian);
        let w = c.transmittance * c.alpha;
        // ∂L/∂color and ∂L/∂z are direct.
        let dl_dcolor = dl_dc * w;
        let dl_dz = dl_dd * w;
        // ∂L/∂α via color and depth channels.
        let one_minus = (1.0 - c.alpha).max(1e-6);
        let dc_dalpha = pg.color * c.transmittance - (suffix_c + background * t_final) / one_minus;
        let dd_dalpha = pg.depth * c.transmittance - suffix_z / one_minus;
        let dl_dalpha = dl_dc.dot(dc_dalpha) + dl_dd * dd_dalpha;
        // α = min(α_max, o·G): zero gradient through the clamp.
        let g_val = c.alpha / pg.opacity;
        let clamped = c.alpha >= config.alpha_max - 1e-12;
        let (dl_do, dl_dg) = if clamped {
            (0.0, 0.0)
        } else {
            (g_val * dl_dalpha, pg.opacity * dl_dalpha)
        };
        // G = exp(−q/2) ⇒ ∂G/∂q = −G/2, so ∂L/∂q = −½·G·∂L/∂G.
        let dl_dq = -0.5 * g_val * dl_dg;
        let d = pixel - pg.mean2d;
        let u = pg.conic * d; // Σ'⁻¹ d
                              // q = dᵀΣ'⁻¹d with d = p − μ' ⇒ ∂q/∂μ' = −2u, ∂q/∂Σ' = −u uᵀ.
        let dl_dcov = [-dl_dq * u.x * u.x, -dl_dq * u.x * u.y, -dl_dq * u.y * u.y];
        let e = accum.entry(c.gaussian);
        e.mean2d += Vec2::new(-2.0 * dl_dq * u.x, -2.0 * dl_dq * u.y);
        e.cov2d[0] += dl_dcov[0];
        e.cov2d[1] += dl_dcov[1];
        e.cov2d[2] += dl_dcov[2];
        e.depth += dl_dz;
        e.color += dl_dcolor;
        e.opacity += dl_do;
        e.count += 1;
        counts.pairs += 1;
        counts.atomic_adds += GRAD_COMPONENTS;
        // Maintain suffixes for the next (nearer) Gaussian.
        suffix_c += pg.color * w;
        suffix_z += pg.depth * w;
    }
    counts
}

/// Re-projection (paper Fig. 3): transforms the aggregated camera-space
/// gradients into world-space parameter gradients and accumulates the
/// camera-pose gradient.
///
/// `track_pose` enables the pose-gradient path (tracking); when false the
/// pose gradient is returned as zero (mapping fixes poses).
pub fn reproject(
    scene: &GaussianScene,
    camera: &Camera,
    accum: &CamGradAccumulator,
    track_pose: bool,
) -> (SceneGrads, PoseGrad) {
    let w = camera.pose.rotation;
    let wt = w.transpose();
    let intr = &camera.intrinsics;
    let mut grads = SceneGrads::default();
    grads.entries.reserve(accum.touched().len());
    let mut pose = Se3::ZERO;
    for &id in accum.touched() {
        let cg = accum.get(id);
        let g: Gaussian = match scene.get(id as usize) {
            Some(g) => g,
            None => continue,
        };
        let p_cam = camera.to_camera(g.mean);
        if p_cam.z <= 0.0 {
            continue;
        }
        let j = projection_jacobian(intr.fx, intr.fy, p_cam);
        // ∂L/∂p_cam through the projected mean and depth.
        let mut dl_dpcam = j[0] * cg.mean2d.x + j[1] * cg.mean2d.y + Vec3::Z * cg.depth;
        // ∂L/∂p_cam through the covariance's dependence on J.
        // Σ' = J Σc Jᵀ ⇒ ∂L/∂J = 2·(∂L/∂Σ')·(J Σc)  (∂L/∂Σ' symmetric).
        let sigma_cam = w * g.covariance() * wt;
        let dl_dcov = Mat2::new(cg.cov2d[0], cg.cov2d[1], cg.cov2d[1], cg.cov2d[2]);
        let js = [sigma_cam * j[0], sigma_cam * j[1]]; // rows of (J Σc)ᵀ? see below
                                                       // (J Σc) row r = Σc jᵣ (Σc symmetric), a 3-vector.
        let dl_dj0 = (js[0] * (2.0 * dl_dcov.m[0]) + js[1] * (2.0 * dl_dcov.m[1])) * 1.0;
        let dl_dj1 = (js[0] * (2.0 * dl_dcov.m[2]) + js[1] * (2.0 * dl_dcov.m[3])) * 1.0;
        // Non-zero J entries: J00=fx/z, J02=−fx·x/z², J11=fy/z, J12=−fy·y/z².
        let (x, y, z) = (p_cam.x, p_cam.y, p_cam.z);
        let inv_z2 = 1.0 / (z * z);
        let inv_z3 = inv_z2 / z;
        dl_dpcam.x += dl_dj0.z * (-intr.fx * inv_z2);
        dl_dpcam.y += dl_dj1.z * (-intr.fy * inv_z2);
        dl_dpcam.z += dl_dj0.x * (-intr.fx * inv_z2)
            + dl_dj0.z * (2.0 * intr.fx * x * inv_z3)
            + dl_dj1.y * (-intr.fy * inv_z2)
            + dl_dj1.z * (2.0 * intr.fy * y * inv_z3);
        if track_pose {
            // Left-perturbation: δp_cam = δρ + δφ × p_cam.
            pose.rho += dl_dpcam;
            pose.phi += p_cam.cross(dl_dpcam);
        }
        // World-space mean gradient.
        let dmean = wt * dl_dpcam;
        // World-space covariance gradient: ∂L/∂Σw = Tᵀ (∂L/∂Σ') T, T = J W.
        let t0 = wt * j[0];
        let t1 = wt * j[1];
        let dl_dsigma_w = Mat3::outer(t0, t0).scale(dl_dcov.m[0])
            + (Mat3::outer(t0, t1) + Mat3::outer(t1, t0)).scale(dl_dcov.m[1])
            + Mat3::outer(t1, t1).scale(dl_dcov.m[3]);
        // Σw = M Mᵀ with M = R S ⇒ ∂L/∂M = 2 (∂L/∂Σw) M.
        let r = g.rotation.to_rotation_matrix();
        let s = g.scale();
        let m = r * Mat3::diag(s.x, s.y, s.z);
        let dl_dm = dl_dsigma_w.scale(2.0) * m;
        // ∂L/∂s_j = Σ_i (∂L/∂M)_ij R_ij; chain to log-scale (×s_j).
        let mut dlog_scale = Vec3::ZERO;
        for jcol in 0..3 {
            let mut acc = 0.0;
            for irow in 0..3 {
                acc += dl_dm.at(irow, jcol) * r.at(irow, jcol);
            }
            dlog_scale[jcol] = acc * s[jcol];
        }
        // ∂L/∂R_ij = (∂L/∂M)_ij s_j → quaternion gradient.
        let mut dl_dr = Mat3::zero();
        for irow in 0..3 {
            for jcol in 0..3 {
                *dl_dr.at_mut(irow, jcol) = dl_dm.at(irow, jcol) * s[jcol];
            }
        }
        let jac = g.rotation.rotation_jacobian();
        let mut dq_unit = [0.0; 4];
        for (k, dj) in jac.iter().enumerate() {
            let mut acc = 0.0;
            for i in 0..9 {
                acc += dl_dr.m[i] * dj.m[i];
            }
            dq_unit[k] = acc;
        }
        let drot = g.rotation.backprop_normalization(dq_unit);
        // Opacity: chain natural → logit.
        let o = g.opacity();
        let dopacity_logit = cg.opacity * o * (1.0 - o);
        // Color: straight-through except where the render-time clamp binds.
        let mut dcolor = cg.color;
        if g.color.x <= 0.0 || g.color.x >= 1.0 {
            dcolor.x = 0.0;
        }
        if g.color.y <= 0.0 || g.color.y >= 1.0 {
            dcolor.y = 0.0;
        }
        if g.color.z <= 0.0 || g.color.z >= 1.0 {
            dcolor.z = 0.0;
        }
        grads.entries.push((
            id,
            GaussianParamGrad {
                mean: dmean,
                log_scale: dlog_scale,
                rotation: drot,
                opacity_logit: dopacity_logit,
                color: dcolor,
            },
        ));
    }
    (grads, PoseGrad { xi: pose })
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatonic_math::Pose;
    use splatonic_scene::Intrinsics;

    #[test]
    fn accumulator_epoch_reset() {
        let mut acc = CamGradAccumulator::new(4);
        acc.reset(4);
        acc.entry(2).opacity = 1.0;
        assert_eq!(acc.touched(), &[2]);
        assert_eq!(acc.get(2).opacity, 1.0);
        acc.reset(4);
        assert!(acc.touched().is_empty());
        assert_eq!(acc.get(2).opacity, 0.0);
    }

    #[test]
    fn accumulator_grows_on_reset() {
        let mut acc = CamGradAccumulator::new(2);
        acc.reset(10);
        acc.entry(9).depth = 2.0;
        assert_eq!(acc.get(9).depth, 2.0);
    }

    #[test]
    fn pixel_backward_empty_contribs() {
        let mut acc = CamGradAccumulator::new(1);
        acc.reset(1);
        let counts = pixel_backward(
            Vec2::new(0.0, 0.0),
            &[],
            &|_| unreachable!(),
            Vec3::ZERO,
            0.0,
            &RenderConfig::default(),
            Vec3::ZERO,
            &mut acc,
        );
        assert_eq!(counts.pairs, 0);
    }

    #[test]
    fn reproject_skips_unknown_ids() {
        let scene = GaussianScene::new();
        let cam = Camera::new(Intrinsics::with_fov(32, 32, 1.0), Pose::identity());
        let mut acc = CamGradAccumulator::new(4);
        acc.reset(4);
        acc.entry(3).color = Vec3::splat(1.0);
        let (grads, pose) = reproject(&scene, &cam, &acc, true);
        assert!(grads.is_empty());
        assert_eq!(pose.xi, Se3::ZERO);
    }
}
