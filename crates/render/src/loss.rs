//! Per-pixel losses and their gradients.
//!
//! The 3DGS-SLAM algorithms train against an L1 photometric loss plus an L1
//! depth loss on valid depth pixels (SplaTAM-style). The loss is evaluated
//! only over the sampled pixel set and normalized by its size, so gradients
//! are comparable across sampling rates.

use crate::pixelset::PixelSet;
use crate::ForwardResult;
use splatonic_math::Vec3;
use splatonic_scene::Frame;

/// Loss weighting configuration.
///
/// # Examples
///
/// ```
/// use splatonic_render::LossConfig;
/// let cfg = LossConfig::default();
/// assert!(cfg.color_weight > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossConfig {
    /// Weight on the L1 color term.
    pub color_weight: f64,
    /// Weight on the L1 depth term.
    pub depth_weight: f64,
    /// Huber knee for the color residual (zero disables smoothing).
    pub huber_delta: f64,
    /// Huber knee for the depth residual in meters. Depth residuals are
    /// metric, so a tighter knee keeps the gradient proportional to the
    /// pose error near convergence.
    pub huber_delta_depth: f64,
}

impl Default for LossConfig {
    fn default() -> Self {
        LossConfig {
            color_weight: 0.5,
            depth_weight: 1.0,
            huber_delta: 0.05,
            huber_delta_depth: 0.01,
        }
    }
}

/// Loss gradient for one sampled pixel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LossGrad {
    /// ∂L/∂color.
    pub d_color: Vec3,
    /// ∂L/∂depth.
    pub d_depth: f64,
}

/// The evaluated loss plus per-pixel gradients (in pixel-set order).
#[derive(Debug, Clone, PartialEq)]
pub struct LossResult {
    /// Scalar loss value.
    pub value: f64,
    /// Per-pixel gradients aligned with [`PixelSet::iter_all`] order.
    pub grads: Vec<LossGrad>,
}

/// Smoothed sign: `sign(r)` for `|r| > delta`, linear inside.
#[inline]
fn smooth_sign(r: f64, delta: f64) -> f64 {
    if delta <= 0.0 {
        return if r > 0.0 {
            1.0
        } else if r < 0.0 {
            -1.0
        } else {
            0.0
        };
    }
    (r / delta).clamp(-1.0, 1.0)
}

/// Huber penalty matching [`smooth_sign`]'s derivative: `r²/(2δ)` inside the
/// knee, `|r| − δ/2` outside (zero at zero, C¹ at the knee).
#[inline]
fn smooth_abs(r: f64, delta: f64) -> f64 {
    if delta <= 0.0 {
        r.abs()
    } else if r.abs() >= delta {
        r.abs() - 0.5 * delta
    } else {
        0.5 * r * r / delta
    }
}

/// Evaluates the L1 color + L1 depth loss of `forward` against `reference`
/// over the pixels of `pixels`, returning the loss and per-pixel gradients.
///
/// Invalid reference depths (`<= 0`) contribute no depth term.
///
/// # Panics
///
/// Panics if `forward` does not cover exactly the pixels of `pixels`.
pub fn evaluate_loss(
    forward: &ForwardResult,
    reference: &Frame,
    pixels: &PixelSet,
    config: &LossConfig,
) -> LossResult {
    assert_eq!(
        forward.color.len(),
        pixels.len(),
        "forward result does not match the pixel set"
    );
    let n = pixels.len().max(1) as f64;
    let cw = config.color_weight / n;
    let dw = config.depth_weight / n;
    let mut value = 0.0;
    let mut grads = Vec::with_capacity(pixels.len());
    for (i, p) in pixels.iter_all().enumerate() {
        let ref_c = reference.color[(p.x as usize, p.y as usize)];
        let ref_d = reference.depth[(p.x as usize, p.y as usize)];
        let rc = forward.color[i] - ref_c;
        let mut g = LossGrad::default();
        value += cw
            * (smooth_abs(rc.x, config.huber_delta)
                + smooth_abs(rc.y, config.huber_delta)
                + smooth_abs(rc.z, config.huber_delta));
        g.d_color = Vec3::new(
            cw * smooth_sign(rc.x, config.huber_delta),
            cw * smooth_sign(rc.y, config.huber_delta),
            cw * smooth_sign(rc.z, config.huber_delta),
        );
        if ref_d > 0.0 {
            let rd = forward.depth[i] - ref_d;
            value += dw * smooth_abs(rd, config.huber_delta_depth);
            g.d_depth = dw * smooth_sign(rd, config.huber_delta_depth);
        }
        grads.push(g);
    }
    LossResult { value, grads }
}

/// Per-tile mean color loss, used by the loss-guided (GauSPU-style) sampler.
///
/// Returns a `tiles_x × tiles_y` row-major vector of mean per-pixel L1 color
/// losses, given a *dense* forward result.
pub fn per_tile_loss(
    forward: &ForwardResult,
    reference: &Frame,
    width: usize,
    height: usize,
    tile: usize,
) -> Vec<f64> {
    assert_eq!(forward.color.len(), width * height, "needs a dense forward");
    let tiles_x = width.div_ceil(tile);
    let tiles_y = height.div_ceil(tile);
    let mut sums = vec![0.0; tiles_x * tiles_y];
    let mut counts = vec![0u32; tiles_x * tiles_y];
    for y in 0..height {
        for x in 0..width {
            let i = y * width + x;
            let r = forward.color[i] - reference.color[(x, y)];
            let t = (y / tile) * tiles_x + (x / tile);
            sums[t] += r.abs().sum();
            counts[t] += 1;
        }
    }
    for (s, c) in sums.iter_mut().zip(counts.iter()) {
        if *c > 0 {
            *s /= *c as f64;
        }
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RenderTrace;
    use splatonic_math::Image;

    fn dummy_forward(colors: Vec<Vec3>, depths: Vec<f64>) -> ForwardResult {
        let n = colors.len();
        ForwardResult {
            color: colors,
            depth: depths,
            final_transmittance: vec![1.0; n],
            contributions: vec![Vec::new(); n],
            trace: RenderTrace::new(),
        }
    }

    fn frame(w: usize, h: usize, c: Vec3, d: f64) -> Frame {
        Frame::new(Image::filled(w, h, c), Image::filled(w, h, d), 0)
    }

    #[test]
    fn zero_residual_zero_loss() {
        let pixels = PixelSet::dense(2, 2);
        let f = dummy_forward(vec![Vec3::splat(0.5); 4], vec![1.0; 4]);
        let r = frame(2, 2, Vec3::splat(0.5), 1.0);
        let out = evaluate_loss(&f, &r, &pixels, &LossConfig::default());
        assert!(out.value.abs() < 1e-9);
        assert!(out.grads.iter().all(|g| g.d_color.norm() < 1e-9));
    }

    #[test]
    fn positive_residual_positive_gradient() {
        let pixels = PixelSet::dense(1, 1);
        let f = dummy_forward(vec![Vec3::splat(0.9)], vec![2.0]);
        let r = frame(1, 1, Vec3::splat(0.5), 1.0);
        let out = evaluate_loss(&f, &r, &pixels, &LossConfig::default());
        assert!(out.value > 0.0);
        assert!(out.grads[0].d_color.x > 0.0);
        assert!(out.grads[0].d_depth > 0.0);
    }

    #[test]
    fn invalid_depth_has_no_depth_term() {
        let pixels = PixelSet::dense(1, 1);
        let f = dummy_forward(vec![Vec3::ZERO], vec![5.0]);
        let r = frame(1, 1, Vec3::ZERO, 0.0);
        let out = evaluate_loss(&f, &r, &pixels, &LossConfig::default());
        assert_eq!(out.grads[0].d_depth, 0.0);
        assert!(out.value.abs() < 1e-12);
    }

    #[test]
    fn loss_normalized_by_pixel_count() {
        let cfg = LossConfig {
            huber_delta: 0.0,
            huber_delta_depth: 0.0,
            ..LossConfig::default()
        };
        let one = evaluate_loss(
            &dummy_forward(vec![Vec3::splat(1.0)], vec![1.0]),
            &frame(1, 1, Vec3::ZERO, 1.0),
            &PixelSet::dense(1, 1),
            &cfg,
        );
        let four = evaluate_loss(
            &dummy_forward(vec![Vec3::splat(1.0); 4], vec![1.0; 4]),
            &frame(2, 2, Vec3::ZERO, 1.0),
            &PixelSet::dense(2, 2),
            &cfg,
        );
        assert!((one.value - four.value).abs() < 1e-12);
    }

    #[test]
    fn huber_smooths_near_zero() {
        assert_eq!(smooth_sign(1.0, 1e-3), 1.0);
        assert_eq!(smooth_sign(-1.0, 1e-3), -1.0);
        assert!((smooth_sign(5e-4, 1e-3) - 0.5).abs() < 1e-12);
        assert_eq!(smooth_abs(0.0, 1e-3), 0.0);
        // Continuity at the knee: r²/(2δ) = |r| − δ/2 at r = δ.
        let delta = 1e-3;
        assert!((smooth_abs(delta, delta) - 0.5 * delta).abs() < 1e-15);
    }

    #[test]
    fn per_tile_loss_localizes_error() {
        // 4x4 image, 2x2 tiles; error only in the top-left tile.
        let mut colors = vec![Vec3::ZERO; 16];
        colors[0] = Vec3::splat(1.0);
        let f = dummy_forward(colors, vec![1.0; 16]);
        let r = frame(4, 4, Vec3::ZERO, 1.0);
        let tl = per_tile_loss(&f, &r, 4, 4, 2);
        assert_eq!(tl.len(), 4);
        assert!(tl[0] > 0.0);
        assert_eq!(tl[1], 0.0);
        assert_eq!(tl[2], 0.0);
        assert_eq!(tl[3], 0.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_pixel_set_panics() {
        let pixels = PixelSet::dense(2, 2);
        let f = dummy_forward(vec![Vec3::ZERO], vec![1.0]);
        let r = frame(2, 2, Vec3::ZERO, 1.0);
        let _ = evaluate_loss(&f, &r, &pixels, &LossConfig::default());
    }
}
