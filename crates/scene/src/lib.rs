//! Scene primitives and synthetic-world generation for SPLATONIC.
//!
//! This crate defines the data the SLAM system operates on:
//!
//! * [`Gaussian`] / [`GaussianScene`] — the 3D Gaussian primitives `{G_i}`
//!   that represent the reconstructed scene (paper Sec. II-B),
//! * [`Camera`] / [`Intrinsics`] — the pinhole camera and pose `{C_t}`,
//! * [`Frame`] — RGB-D reference frames,
//! * [`world`] — procedural ground-truth worlds standing in for the Replica
//!   and TUM RGB-D datasets (see DESIGN.md §2 for the substitution argument),
//! * [`trajectory`] — smooth (Replica-like) and fast-motion (TUM-like)
//!   camera trajectories,
//! * [`ply`] — standard 3DGS `.ply` import/export (reconstructions become
//!   inspectable artifacts, external captures become workloads),
//! * [`lod`] — opacity/scale-aware level-of-detail decimation.
//!
//! # Examples
//!
//! ```
//! use splatonic_scene::world::{WorldBuilder, WorldStyle};
//!
//! let world = WorldBuilder::new(7)
//!     .style(WorldStyle::ReplicaLike)
//!     .gaussian_spacing(0.4)
//!     .build();
//! assert!(world.scene.len() > 100);
//! ```

// Every public item must carry a doc comment; config knobs additionally
// document their default and bit-exactness contract (DESIGN.md §13).
#![warn(missing_docs)]

pub mod camera;
pub mod frame;
pub mod gaussian;
pub mod lod;
pub mod ply;
pub mod trajectory;
pub mod world;

pub use camera::{Camera, Intrinsics};
pub use frame::{ColorImage, DepthImage, Frame};
pub use gaussian::{Gaussian, GaussianScene};
pub use lod::{decimate, decimate_fraction, LodStats};
pub use ply::{decode_ply, encode_ply, read_ply_file, write_ply_file, PlyError};
pub use trajectory::{Trajectory, TrajectoryKind};
pub use world::{SyntheticWorld, WorldBuilder, WorldStyle};
