//! Pinhole camera model.
//!
//! A [`Camera`] pairs fixed [`Intrinsics`] with a world-to-camera [`Pose`];
//! tracking optimizes the pose while the intrinsics stay constant.

use splatonic_math::{Pose, Vec2, Vec3};

/// Pinhole camera intrinsics.
///
/// # Examples
///
/// ```
/// use splatonic_scene::Intrinsics;
/// let intr = Intrinsics::with_fov(128, 96, 90f64.to_radians());
/// assert_eq!(intr.width, 128);
/// assert!((intr.cx - 64.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Intrinsics {
    /// Focal length along x, in pixels.
    pub fx: f64,
    /// Focal length along y, in pixels.
    pub fy: f64,
    /// Principal point x, in pixels.
    pub cx: f64,
    /// Principal point y, in pixels.
    pub cy: f64,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
}

impl Intrinsics {
    /// Creates intrinsics from explicit parameters.
    pub fn new(fx: f64, fy: f64, cx: f64, cy: f64, width: usize, height: usize) -> Self {
        Intrinsics {
            fx,
            fy,
            cx,
            cy,
            width,
            height,
        }
    }

    /// Creates intrinsics from a horizontal field of view.
    ///
    /// The principal point is the image centre and pixels are square.
    pub fn with_fov(width: usize, height: usize, horizontal_fov: f64) -> Self {
        let f = width as f64 * 0.5 / (horizontal_fov * 0.5).tan();
        Intrinsics {
            fx: f,
            fy: f,
            cx: width as f64 * 0.5,
            cy: height as f64 * 0.5,
            width,
            height,
        }
    }

    /// Total pixel count.
    #[inline]
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// Projects a camera-frame point to pixel coordinates.
    ///
    /// Returns `None` when the point is at or behind the camera plane
    /// (`z <= near`).
    #[inline]
    pub fn project(&self, p_cam: Vec3, near: f64) -> Option<Vec2> {
        if p_cam.z <= near {
            return None;
        }
        Some(Vec2::new(
            self.fx * p_cam.x / p_cam.z + self.cx,
            self.fy * p_cam.y / p_cam.z + self.cy,
        ))
    }

    /// Back-projects pixel `(u, v)` at `depth` into the camera frame.
    #[inline]
    pub fn unproject(&self, u: f64, v: f64, depth: f64) -> Vec3 {
        Vec3::new(
            (u - self.cx) / self.fx * depth,
            (v - self.cy) / self.fy * depth,
            depth,
        )
    }

    /// Returns `true` when pixel coordinates fall inside the image, with a
    /// `margin` (in pixels) of slack outside the border.
    #[inline]
    pub fn in_bounds(&self, px: Vec2, margin: f64) -> bool {
        px.x >= -margin
            && px.y >= -margin
            && px.x < self.width as f64 + margin
            && px.y < self.height as f64 + margin
    }

    /// Returns intrinsics for the same field of view at a scaled resolution.
    ///
    /// Used by the "Low-Res." sampling baseline: a `factor`-times smaller
    /// image keeps the same FOV with proportionally shorter focal lengths.
    pub fn downscaled(&self, factor: usize) -> Intrinsics {
        let f = factor.max(1) as f64;
        Intrinsics {
            fx: self.fx / f,
            fy: self.fy / f,
            cx: self.cx / f,
            cy: self.cy / f,
            width: (self.width / factor.max(1)).max(1),
            height: (self.height / factor.max(1)).max(1),
        }
    }
}

/// A posed pinhole camera (world-to-camera convention).
///
/// # Examples
///
/// ```
/// use splatonic_scene::{Camera, Intrinsics};
/// use splatonic_math::{Pose, Vec3};
///
/// let cam = Camera::new(Intrinsics::with_fov(64, 48, 1.2), Pose::identity());
/// let px = cam.project_point(Vec3::new(0.0, 0.0, 2.0)).unwrap();
/// assert!((px.x - 32.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Fixed intrinsics.
    pub intrinsics: Intrinsics,
    /// World-to-camera pose (`p_cam = R p_world + t`).
    pub pose: Pose,
}

impl Camera {
    /// Near-plane distance below which points are culled.
    pub const NEAR: f64 = 0.05;

    /// Creates a camera from intrinsics and a pose.
    pub fn new(intrinsics: Intrinsics, pose: Pose) -> Self {
        Camera { intrinsics, pose }
    }

    /// Transforms a world point into the camera frame.
    #[inline]
    pub fn to_camera(&self, p_world: Vec3) -> Vec3 {
        self.pose.transform(p_world)
    }

    /// Projects a world point to pixel coordinates (`None` if behind).
    #[inline]
    pub fn project_point(&self, p_world: Vec3) -> Option<Vec2> {
        self.intrinsics.project(self.to_camera(p_world), Self::NEAR)
    }

    /// Back-projects pixel `(u, v)` at `depth` into world coordinates.
    pub fn unproject_to_world(&self, u: f64, v: f64, depth: f64) -> Vec3 {
        let p_cam = self.intrinsics.unproject(u, v, depth);
        self.pose.inverse().transform(p_cam)
    }

    /// Camera center in world coordinates.
    pub fn center(&self) -> Vec3 {
        self.pose.camera_center()
    }

    /// Returns a camera looking from `eye` toward `target` with `up` hint.
    ///
    /// # Panics
    ///
    /// Panics if `eye == target`.
    pub fn look_at(intrinsics: Intrinsics, eye: Vec3, target: Vec3, up: Vec3) -> Camera {
        let forward = (target - eye).normalized();
        assert!(forward != Vec3::ZERO, "look_at: eye and target coincide");
        // Camera frame: +z forward, +x right, +y down (image convention).
        let right = forward.cross(up.normalized() * -1.0).normalized();
        let right = if right == Vec3::ZERO {
            // up parallel to forward; pick any orthogonal.
            forward.cross(Vec3::X).normalized()
        } else {
            right
        };
        let down = forward.cross(right);
        // Rows of R are the camera axes expressed in world coordinates.
        let r = splatonic_math::Mat3::from_rows(right, down, forward);
        let t = -(r * eye);
        Camera::new(intrinsics, Pose::new(r, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatonic_math::Mat3;

    fn intr() -> Intrinsics {
        Intrinsics::with_fov(128, 96, 1.2)
    }

    #[test]
    fn project_unproject_round_trip() {
        let intr = intr();
        let p = Vec3::new(0.3, -0.2, 2.5);
        let px = intr.project(p, 0.01).unwrap();
        let back = intr.unproject(px.x, px.y, p.z);
        assert!((back - p).norm() < 1e-12);
    }

    #[test]
    fn behind_camera_is_culled() {
        let intr = intr();
        assert!(intr.project(Vec3::new(0.0, 0.0, -1.0), 0.01).is_none());
        assert!(intr.project(Vec3::new(0.0, 0.0, 0.005), 0.01).is_none());
    }

    #[test]
    fn principal_point_projects_to_center() {
        let intr = intr();
        let px = intr.project(Vec3::new(0.0, 0.0, 1.0), 0.01).unwrap();
        assert!((px.x - intr.cx).abs() < 1e-12);
        assert!((px.y - intr.cy).abs() < 1e-12);
    }

    #[test]
    fn in_bounds_with_margin() {
        let intr = intr();
        assert!(intr.in_bounds(Vec2::new(0.0, 0.0), 0.0));
        assert!(!intr.in_bounds(Vec2::new(-1.0, 0.0), 0.0));
        assert!(intr.in_bounds(Vec2::new(-1.0, 0.0), 2.0));
        assert!(!intr.in_bounds(Vec2::new(128.0, 0.0), 0.0));
    }

    #[test]
    fn downscaled_preserves_fov() {
        let intr = intr();
        let d = intr.downscaled(2);
        assert_eq!(d.width, 64);
        // Same point projects to half the pixel coordinates.
        let p = Vec3::new(0.4, 0.1, 2.0);
        let a = intr.project(p, 0.01).unwrap();
        let b = d.project(p, 0.01).unwrap();
        assert!((a.x / 2.0 - b.x).abs() < 1e-9);
    }

    #[test]
    fn world_round_trip_with_pose() {
        let cam = Camera::look_at(
            intr(),
            Vec3::new(1.0, 2.0, -3.0),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::Y,
        );
        let p = Vec3::new(0.2, -0.1, 0.3);
        let px = cam.project_point(p).unwrap();
        let depth = cam.to_camera(p).z;
        let back = cam.unproject_to_world(px.x, px.y, depth);
        assert!((back - p).norm() < 1e-9);
    }

    #[test]
    fn look_at_points_camera_at_target() {
        let eye = Vec3::new(3.0, 1.0, -2.0);
        let target = Vec3::new(0.0, 0.5, 1.0);
        let cam = Camera::look_at(intr(), eye, target, Vec3::Y);
        // The target must land on the optical axis.
        let t_cam = cam.to_camera(target);
        assert!(t_cam.x.abs() < 1e-9);
        assert!(t_cam.y.abs() < 1e-9);
        assert!(t_cam.z > 0.0);
        // Rotation must be orthonormal.
        let rrt = cam.pose.rotation * cam.pose.rotation.transpose();
        let id = Mat3::identity();
        for i in 0..9 {
            assert!((rrt.m[i] - id.m[i]).abs() < 1e-9);
        }
        // Camera center round-trips.
        assert!((cam.center() - eye).norm() < 1e-9);
    }

    #[test]
    fn look_at_up_parallel_fallback() {
        // Forward along +y and up along +y would degenerate; must not panic.
        let cam = Camera::look_at(intr(), Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0), Vec3::Y);
        assert!((cam.pose.rotation.det() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "coincide")]
    fn look_at_same_point_panics() {
        let _ = Camera::look_at(intr(), Vec3::ZERO, Vec3::ZERO, Vec3::Y);
    }
}
