//! Opacity/scale-aware level-of-detail decimation for [`GaussianScene`]
//! (DESIGN.md §17).
//!
//! A Gaussian's screen contribution is bounded by its opacity times its
//! footprint area, so the pass ranks Gaussians by the **contribution
//! score** `sigmoid(opacity_logit) · exp(2 · mean(log_scale))` — natural
//! opacity times the squared geometric-mean scale (an area proxy that is
//! rotation-invariant and cheap to compute from the stored log-scales) —
//! and keeps the top `budget` of them. Ties break by index, so the
//! priority order is fully deterministic: the same scene and budget always
//! keep exactly the same Gaussians, in their original order.
//!
//! Used as an optional post-mapping pass from `SlamSystem::finalize` (the
//! `lod_budget` knob) and standalone via the bench plan runner's
//! `decimate` step.

use crate::gaussian::{sigmoid, GaussianScene};

/// Outcome of a [`decimate`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LodStats {
    /// Gaussians remaining after the pass.
    pub kept: usize,
    /// Gaussians removed by the pass.
    pub pruned: usize,
}

/// Contribution score of one Gaussian: natural opacity times the squared
/// geometric mean of its per-axis scales. Higher scores survive
/// decimation longer.
pub fn contribution_score(log_scale: splatonic_math::Vec3, opacity_logit: f64) -> f64 {
    let mean_log_scale = (log_scale.x + log_scale.y + log_scale.z) / 3.0;
    sigmoid(opacity_logit) * (2.0 * mean_log_scale).exp()
}

/// Decimates `scene` in place to at most `budget` Gaussians, keeping the
/// top-`budget` by [`contribution_score`] (ties broken by index) in their
/// original order. Returns how many were kept and pruned.
///
/// A scene already within budget is untouched — no mutation, no revision
/// bump, so downstream projection/sort caches stay warm.
pub fn decimate(scene: &mut GaussianScene, budget: usize) -> LodStats {
    let n = scene.len();
    if n <= budget {
        return LodStats { kept: n, pruned: 0 };
    }
    let scales = scene.log_scales();
    let logits = scene.opacity_logits();
    let mut order: Vec<usize> = (0..n).collect();
    // Sort by score descending; `total_cmp` keeps the order total even for
    // degenerate scores, and the index tiebreak makes it deterministic.
    order.sort_by(|&a, &b| {
        contribution_score(scales[b], logits[b])
            .total_cmp(&contribution_score(scales[a], logits[a]))
            .then(a.cmp(&b))
    });
    let mut keep = vec![false; n];
    for &i in order.iter().take(budget) {
        keep[i] = true;
    }
    let mut idx = 0;
    scene.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
    LodStats {
        kept: budget,
        pruned: n - budget,
    }
}

/// Decimates to a fraction of the current size: `keep_fraction` in
/// `[0, 1]` is rounded to the nearest whole budget. Convenience wrapper
/// over [`decimate`] for plan files that scale with scene size.
pub fn decimate_fraction(scene: &mut GaussianScene, keep_fraction: f64) -> LodStats {
    let budget = (scene.len() as f64 * keep_fraction.clamp(0.0, 1.0)).round() as usize;
    decimate(scene, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::Gaussian;
    use splatonic_math::{Quat, Vec3};

    fn scene_with_scores(opacities: &[f64]) -> GaussianScene {
        let mut scene = GaussianScene::new();
        for (i, &op) in opacities.iter().enumerate() {
            scene.push(Gaussian::new(
                Vec3::new(i as f64, 0.0, 2.0),
                Vec3::splat(0.1),
                Quat::IDENTITY,
                op,
                Vec3::splat(0.5),
            ));
        }
        scene
    }

    #[test]
    fn keeps_top_k_by_score_in_original_order() {
        let mut scene = scene_with_scores(&[0.1, 0.9, 0.5, 0.8, 0.2]);
        let stats = decimate(&mut scene, 3);
        assert_eq!(stats, LodStats { kept: 3, pruned: 2 });
        // Survivors are indices 1, 2, 3 (opacities 0.9, 0.5, 0.8), kept in
        // original order — means encode the original index.
        let xs: Vec<f64> = scene.means().iter().map(|m| m.x).collect();
        assert_eq!(xs, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn larger_scale_outranks_at_equal_opacity() {
        let mut scene = GaussianScene::new();
        for s in [0.05, 0.3, 0.1] {
            scene.push(Gaussian::new(
                Vec3::new(s, 0.0, 2.0),
                Vec3::splat(s),
                Quat::IDENTITY,
                0.5,
                Vec3::splat(0.5),
            ));
        }
        decimate(&mut scene, 1);
        assert_eq!(scene.len(), 1);
        assert!((scene.means()[0].x - 0.3).abs() < 1e-12);
    }

    #[test]
    fn within_budget_is_a_no_op_without_revision_bump() {
        let mut scene = scene_with_scores(&[0.5, 0.6]);
        let rev = scene.revision();
        let stats = decimate(&mut scene, 2);
        assert_eq!(stats, LodStats { kept: 2, pruned: 0 });
        assert_eq!(scene.revision(), rev, "no-op must not invalidate caches");
        assert_eq!(decimate(&mut scene, 10).pruned, 0);
    }

    #[test]
    fn deterministic_with_tied_scores() {
        let mut a = scene_with_scores(&[0.5; 7]);
        let mut b = scene_with_scores(&[0.5; 7]);
        decimate(&mut a, 3);
        decimate(&mut b, 3);
        let xs = |s: &GaussianScene| s.means().iter().map(|m| m.x).collect::<Vec<_>>();
        assert_eq!(xs(&a), xs(&b));
        // Ties break by index: the first 3 survive.
        assert_eq!(xs(&a), vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn zero_budget_empties_the_scene() {
        let mut scene = scene_with_scores(&[0.5, 0.6, 0.7]);
        let stats = decimate(&mut scene, 0);
        assert_eq!(stats.pruned, 3);
        assert!(scene.is_empty());
    }

    #[test]
    fn fraction_rounds_to_nearest_budget() {
        let mut scene = scene_with_scores(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        let stats = decimate_fraction(&mut scene, 0.5);
        // 5 × 0.5 = 2.5 → rounds to 3 (round half away from zero).
        assert_eq!(stats.kept, 3);
        assert_eq!(scene.len(), 3);
        assert_eq!(decimate_fraction(&mut scene, 2.0).pruned, 0);
    }

    #[test]
    fn score_orders_by_opacity_and_area() {
        let lo = contribution_score(Vec3::splat(-2.0), -1.0);
        let hi_op = contribution_score(Vec3::splat(-2.0), 1.0);
        let hi_area = contribution_score(Vec3::splat(-1.0), -1.0);
        assert!(hi_op > lo);
        assert!(hi_area > lo);
    }
}
