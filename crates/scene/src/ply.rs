//! Standard 3D Gaussian Splatting `.ply` import/export for
//! [`GaussianScene`] (DESIGN.md §17).
//!
//! The wire format is the de-facto 3DGS interchange layout: a text header
//! (`ply` magic, `format binary_little_endian 1.0`, one `element vertex N`)
//! followed by `N` fixed-stride binary records. Each vertex carries the 14
//! scalar properties every 3DGS tool reads, in this export order:
//!
//! | property            | scene field                           |
//! |---------------------|---------------------------------------|
//! | `x y z`             | [`Gaussian::mean`]                    |
//! | `f_dc_0..2`         | [`Gaussian::color`] (RGB, `[0, 1]`)   |
//! | `opacity`           | [`Gaussian::opacity_logit`]           |
//! | `scale_0..2`        | [`Gaussian::log_scale`]               |
//! | `rot_0..3`          | [`Gaussian::rotation`] (`w x y z`)    |
//!
//! Values are stored as the raw internal parameters cast `f64 → f32`
//! (log-scales stay logs, opacity stays a logit, colors are plain `[0, 1]`
//! RGB rather than SH DC coefficients — see DESIGN.md §17 for why the SH
//! transform is deliberately skipped). That cast is the *only* lossy step:
//! after one export→import round trip every parameter is exactly
//! f32-representable, so a second round trip is a bitwise identity and
//! `export ∘ import ∘ export` is byte-identical. Import resolves properties
//! **by name** (any order, `float` or `double`, unknown scalar properties
//! skipped), so files written by other 3DGS tools load as long as they
//! carry the 14 standard names.
//!
//! External files are untrusted input: every malformed-input class maps to
//! a typed [`PlyError`] (mirroring the snapshot codec's corruption
//! taxonomy) and any NaN/∞ parameter is rejected — a scene decoded from a
//! `.ply` never smuggles non-finite values into the render kernels.

use std::fmt;
use std::fs;
use std::path::Path;

use splatonic_math::{Quat, Vec3};

use crate::gaussian::{Gaussian, GaussianScene};

/// The 14 vertex properties of a 3DGS `.ply`, in export order. Import
/// accepts them in any order and with `float` or `double` storage.
pub const PROPERTIES: [&str; 14] = [
    "x", "y", "z", "f_dc_0", "f_dc_1", "f_dc_2", "opacity", "scale_0", "scale_1", "scale_2",
    "rot_0", "rot_1", "rot_2", "rot_3",
];

/// Typed failure modes of `.ply` decoding — one variant per
/// malformed-input class, in the style of the snapshot codec's
/// `SnapshotError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlyError {
    /// The file does not start with the `ply` magic line — not a PLY at
    /// all.
    BadMagic,
    /// The header is structurally invalid (missing `end_header`, bad
    /// vertex count, non-UTF-8 line, property outside an element, …).
    BadHeader(String),
    /// A valid PLY feature this importer deliberately does not support:
    /// ASCII or big-endian storage, list properties, non-vertex elements,
    /// or a required property stored with a non-float type.
    Unsupported(String),
    /// One of the 14 standard 3DGS properties is absent from the vertex
    /// element.
    MissingProperty(&'static str),
    /// The binary body ends before the announced vertex count does.
    Truncated {
        /// Bytes the vertex records require.
        needed: usize,
        /// Bytes actually available after the header.
        available: usize,
    },
    /// Bytes remain after the last vertex record — the element count and
    /// the body disagree.
    TrailingBytes(usize),
    /// A vertex carries a NaN or infinite value; external scenes must be
    /// finite before they reach the render kernels.
    NonFinite {
        /// Index of the offending vertex record.
        vertex: usize,
        /// Name of the offending property.
        property: &'static str,
    },
    /// Filesystem failure while reading or writing a `.ply` file.
    Io(String),
}

impl fmt::Display for PlyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlyError::BadMagic => write!(f, "not a PLY file (missing 'ply' magic line)"),
            PlyError::BadHeader(what) => write!(f, "malformed PLY header: {what}"),
            PlyError::Unsupported(what) => write!(f, "unsupported PLY feature: {what}"),
            PlyError::MissingProperty(name) => {
                write!(f, "vertex element lacks required 3DGS property {name:?}")
            }
            PlyError::Truncated { needed, available } => {
                write!(
                    f,
                    "PLY body truncated: needed {needed} bytes, have {available}"
                )
            }
            PlyError::TrailingBytes(n) => {
                write!(f, "PLY has {n} trailing bytes after the last vertex")
            }
            PlyError::NonFinite { vertex, property } => {
                write!(
                    f,
                    "vertex {vertex} has a non-finite value in property {property:?}"
                )
            }
            PlyError::Io(e) => write!(f, "PLY I/O error: {e}"),
        }
    }
}

impl std::error::Error for PlyError {}

/// How one vertex property is stored in the binary body.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PropKind {
    /// 4-byte IEEE 754 little-endian float.
    F32,
    /// 8-byte IEEE 754 little-endian double.
    F64,
    /// A scalar we don't read; carries its byte width for stride math.
    Skip(usize),
}

impl PropKind {
    fn size(self) -> usize {
        match self {
            PropKind::F32 => 4,
            PropKind::F64 => 8,
            PropKind::Skip(n) => n,
        }
    }
}

struct Header {
    vertex_count: usize,
    props: Vec<(String, PropKind)>,
    body_offset: usize,
}

/// Serializes a scene to standard 3DGS binary-little-endian `.ply` bytes.
///
/// Deterministic: the same scene always yields the same bytes. Parameters
/// are cast `f64 → f32`; for scenes whose parameters are already
/// f32-representable (e.g. anything previously imported from a `.ply`)
/// the encoding is lossless.
pub fn encode_ply(scene: &GaussianScene) -> Vec<u8> {
    let mut out = Vec::with_capacity(256 + scene.len() * PROPERTIES.len() * 4);
    out.extend_from_slice(b"ply\nformat binary_little_endian 1.0\n");
    out.extend_from_slice(b"comment splatonic gaussian scene\n");
    out.extend_from_slice(format!("element vertex {}\n", scene.len()).as_bytes());
    for name in PROPERTIES {
        out.extend_from_slice(format!("property float {name}\n").as_bytes());
    }
    out.extend_from_slice(b"end_header\n");
    for i in 0..scene.len() {
        for v in vertex_values(&scene.gaussian(i)) {
            out.extend_from_slice(&(v as f32).to_le_bytes());
        }
    }
    out
}

/// The 14 raw parameters of one Gaussian in [`PROPERTIES`] order.
fn vertex_values(g: &Gaussian) -> [f64; 14] {
    [
        g.mean.x,
        g.mean.y,
        g.mean.z,
        g.color.x,
        g.color.y,
        g.color.z,
        g.opacity_logit,
        g.log_scale.x,
        g.log_scale.y,
        g.log_scale.z,
        g.rotation.w,
        g.rotation.x,
        g.rotation.y,
        g.rotation.z,
    ]
}

fn parse_header(data: &[u8]) -> Result<Header, PlyError> {
    let mut pos = 0usize;
    let mut first = true;
    let mut seen_format = false;
    let mut vertex_count: Option<usize> = None;
    let mut props: Vec<(String, PropKind)> = Vec::new();
    loop {
        let nl = data[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| PlyError::BadHeader("missing end_header".to_string()))?;
        let raw = &data[pos..pos + nl];
        pos += nl + 1;
        let line = std::str::from_utf8(raw)
            .map_err(|_| PlyError::BadHeader("non-UTF-8 header line".to_string()))?
            .trim_end_matches('\r');
        if first {
            if line != "ply" {
                return Err(PlyError::BadMagic);
            }
            first = false;
            continue;
        }
        let mut tok = line.split_ascii_whitespace();
        match tok.next() {
            None | Some("comment") | Some("obj_info") => {}
            Some("format") => {
                let kind = tok.next().unwrap_or("");
                if kind != "binary_little_endian" {
                    return Err(PlyError::Unsupported(format!("format {kind:?}")));
                }
                seen_format = true;
            }
            Some("element") => {
                let name = tok.next().unwrap_or("");
                if name != "vertex" || vertex_count.is_some() {
                    return Err(PlyError::Unsupported(format!("element {name:?}")));
                }
                let count = tok.next().unwrap_or("");
                let n: usize = count
                    .parse()
                    .map_err(|_| PlyError::BadHeader(format!("bad vertex count {count:?}")))?;
                vertex_count = Some(n);
            }
            Some("property") => {
                if vertex_count.is_none() {
                    return Err(PlyError::BadHeader(
                        "property outside an element".to_string(),
                    ));
                }
                let ty = tok.next().unwrap_or("");
                let kind = match ty {
                    "list" => return Err(PlyError::Unsupported("list property".to_string())),
                    "float" | "float32" => PropKind::F32,
                    "double" | "float64" => PropKind::F64,
                    "char" | "uchar" | "int8" | "uint8" => PropKind::Skip(1),
                    "short" | "ushort" | "int16" | "uint16" => PropKind::Skip(2),
                    "int" | "uint" | "int32" | "uint32" => PropKind::Skip(4),
                    other => return Err(PlyError::Unsupported(format!("property type {other:?}"))),
                };
                let name = tok
                    .next()
                    .ok_or_else(|| PlyError::BadHeader("property without a name".to_string()))?;
                props.push((name.to_string(), kind));
            }
            Some("end_header") => break,
            Some(other) => {
                return Err(PlyError::BadHeader(format!("unknown keyword {other:?}")));
            }
        }
    }
    if !seen_format {
        return Err(PlyError::BadHeader("missing format line".to_string()));
    }
    let vertex_count =
        vertex_count.ok_or_else(|| PlyError::BadHeader("missing element vertex".to_string()))?;
    Ok(Header {
        vertex_count,
        props,
        body_offset: pos,
    })
}

/// Deserializes a standard 3DGS binary-little-endian `.ply` into a scene.
///
/// Properties are resolved by name so any property order decodes; unknown
/// scalar properties are skipped. Rejects every malformed-input class with
/// a typed [`PlyError`], including any non-finite parameter. Deterministic:
/// the same bytes always yield the same scene (vertex order preserved).
pub fn decode_ply(data: &[u8]) -> Result<GaussianScene, PlyError> {
    let header = parse_header(data)?;
    // Byte offset (within a vertex record) of each required property.
    let mut offsets: [Option<(usize, PropKind)>; 14] = [None; 14];
    let mut stride = 0usize;
    for (name, kind) in &header.props {
        if let Some(slot) = PROPERTIES.iter().position(|p| p == name) {
            if matches!(kind, PropKind::Skip(_)) {
                return Err(PlyError::Unsupported(format!(
                    "property {name:?} must be float or double"
                )));
            }
            offsets[slot] = Some((stride, *kind));
        }
        stride += kind.size();
    }
    for (slot, name) in PROPERTIES.iter().enumerate() {
        if offsets[slot].is_none() {
            return Err(PlyError::MissingProperty(name));
        }
    }
    let needed = header
        .vertex_count
        .checked_mul(stride)
        .ok_or_else(|| PlyError::BadHeader("vertex count overflows".to_string()))?;
    let available = data.len() - header.body_offset;
    if available < needed {
        return Err(PlyError::Truncated { needed, available });
    }
    if available > needed {
        return Err(PlyError::TrailingBytes(available - needed));
    }
    let mut scene = GaussianScene::with_capacity(header.vertex_count);
    for v in 0..header.vertex_count {
        let base = header.body_offset + v * stride;
        let mut vals = [0.0f64; 14];
        for (slot, val) in vals.iter_mut().enumerate() {
            let (off, kind) = offsets[slot].expect("checked above");
            let p = base + off;
            let x = match kind {
                PropKind::F32 => {
                    f32::from_le_bytes(data[p..p + 4].try_into().expect("sized")) as f64
                }
                PropKind::F64 => f64::from_le_bytes(data[p..p + 8].try_into().expect("sized")),
                PropKind::Skip(_) => unreachable!("skip properties have no slot"),
            };
            if !x.is_finite() {
                return Err(PlyError::NonFinite {
                    vertex: v,
                    property: PROPERTIES[slot],
                });
            }
            *val = x;
        }
        scene.push(Gaussian {
            mean: Vec3::new(vals[0], vals[1], vals[2]),
            color: Vec3::new(vals[3], vals[4], vals[5]),
            opacity_logit: vals[6],
            log_scale: Vec3::new(vals[7], vals[8], vals[9]),
            rotation: Quat {
                w: vals[10],
                x: vals[11],
                y: vals[12],
                z: vals[13],
            },
        });
    }
    Ok(scene)
}

/// Writes a scene to a `.ply` file atomically (temp file + rename), in the
/// style of the snapshot writer: readers never observe a half-written
/// file.
pub fn write_ply_file(scene: &GaussianScene, path: impl AsRef<Path>) -> Result<(), PlyError> {
    let path = path.as_ref();
    let bytes = encode_ply(scene);
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp_name);
    fs::write(&tmp, &bytes).map_err(|e| PlyError::Io(format!("{}: {e}", tmp.display())))?;
    fs::rename(&tmp, path).map_err(|e| PlyError::Io(format!("{}: {e}", path.display())))?;
    Ok(())
}

/// Reads a scene from a `.ply` file.
pub fn read_ply_file(path: impl AsRef<Path>) -> Result<GaussianScene, PlyError> {
    let path = path.as_ref();
    let data = fs::read(path).map_err(|e| PlyError::Io(format!("{}: {e}", path.display())))?;
    decode_ply(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scene() -> GaussianScene {
        let mut scene = GaussianScene::new();
        for i in 0..17 {
            let t = i as f64;
            scene.push(Gaussian {
                mean: Vec3::new(t * 0.3 - 1.0, (t * 0.7).sin(), 2.0 + t * 0.1),
                log_scale: Vec3::new(-2.0 + t * 0.01, -2.5, -1.9),
                rotation: Quat {
                    w: 0.9,
                    x: 0.1 * t,
                    y: -0.05,
                    z: 0.2,
                },
                opacity_logit: -1.0 + t * 0.2,
                color: Vec3::new(0.1 * (i % 10) as f64, 0.5, 0.9),
            });
        }
        scene
    }

    /// A scene whose parameters are all exactly f32-representable.
    fn f32_scene() -> GaussianScene {
        let mut scene = GaussianScene::new();
        let full = sample_scene();
        for g in full.iter() {
            let f = |x: f64| x as f32 as f64;
            scene.push(Gaussian {
                mean: Vec3::new(f(g.mean.x), f(g.mean.y), f(g.mean.z)),
                log_scale: Vec3::new(f(g.log_scale.x), f(g.log_scale.y), f(g.log_scale.z)),
                rotation: Quat {
                    w: f(g.rotation.w),
                    x: f(g.rotation.x),
                    y: f(g.rotation.y),
                    z: f(g.rotation.z),
                },
                opacity_logit: f(g.opacity_logit),
                color: Vec3::new(f(g.color.x), f(g.color.y), f(g.color.z)),
            });
        }
        scene
    }

    fn bits(scene: &GaussianScene) -> Vec<u64> {
        scene
            .iter()
            .flat_map(|g| vertex_values(&g).map(f64::to_bits))
            .collect()
    }

    /// Hand-builds a PLY from a header string and raw body bytes.
    fn build(header: &str, body: &[u8]) -> Vec<u8> {
        let mut out = header.as_bytes().to_vec();
        out.extend_from_slice(body);
        out
    }

    fn minimal_header(count: usize) -> String {
        let mut h = String::from("ply\nformat binary_little_endian 1.0\n");
        h.push_str(&format!("element vertex {count}\n"));
        for name in PROPERTIES {
            h.push_str(&format!("property float {name}\n"));
        }
        h.push_str("end_header\n");
        h
    }

    #[test]
    fn round_trip_is_lossless_for_f32_scenes() {
        let scene = f32_scene();
        let decoded = decode_ply(&encode_ply(&scene)).unwrap();
        assert_eq!(bits(&scene), bits(&decoded));
    }

    #[test]
    fn second_round_trip_is_bitwise_identity() {
        let scene = sample_scene();
        let once = decode_ply(&encode_ply(&scene)).unwrap();
        let twice = decode_ply(&encode_ply(&once)).unwrap();
        assert_eq!(bits(&once), bits(&twice));
        // And the exported bytes themselves are stable after one trip.
        assert_eq!(encode_ply(&once), encode_ply(&twice));
    }

    #[test]
    fn export_is_deterministic() {
        let scene = sample_scene();
        assert_eq!(encode_ply(&scene), encode_ply(&scene));
    }

    #[test]
    fn empty_scene_round_trips() {
        let scene = GaussianScene::new();
        let decoded = decode_ply(&encode_ply(&scene)).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_ply(&sample_scene());
        bytes[0] = b'x';
        assert_eq!(decode_ply(&bytes), Err(PlyError::BadMagic));
    }

    #[test]
    fn missing_end_header_rejected() {
        let bytes = b"ply\nformat binary_little_endian 1.0\nelement vertex 0\n";
        assert!(matches!(decode_ply(bytes), Err(PlyError::BadHeader(_))));
    }

    #[test]
    fn bad_vertex_count_rejected() {
        let bytes = build(
            "ply\nformat binary_little_endian 1.0\nelement vertex nope\nend_header\n",
            &[],
        );
        assert!(matches!(decode_ply(&bytes), Err(PlyError::BadHeader(_))));
    }

    #[test]
    fn ascii_format_rejected() {
        let bytes = build("ply\nformat ascii 1.0\nend_header\n", &[]);
        assert!(matches!(decode_ply(&bytes), Err(PlyError::Unsupported(_))));
    }

    #[test]
    fn big_endian_format_rejected() {
        let bytes = build("ply\nformat binary_big_endian 1.0\nend_header\n", &[]);
        assert!(matches!(decode_ply(&bytes), Err(PlyError::Unsupported(_))));
    }

    #[test]
    fn list_property_rejected() {
        let h = "ply\nformat binary_little_endian 1.0\nelement vertex 1\n\
                 property list uchar int vertex_indices\nend_header\n";
        assert!(matches!(
            decode_ply(&build(h, &[])),
            Err(PlyError::Unsupported(_))
        ));
    }

    #[test]
    fn non_vertex_element_rejected() {
        let h = "ply\nformat binary_little_endian 1.0\nelement face 3\nend_header\n";
        assert!(matches!(
            decode_ply(&build(h, &[])),
            Err(PlyError::Unsupported(_))
        ));
    }

    #[test]
    fn integer_typed_required_property_rejected() {
        let mut h = String::from("ply\nformat binary_little_endian 1.0\nelement vertex 0\n");
        h.push_str("property uchar x\n");
        for name in &PROPERTIES[1..] {
            h.push_str(&format!("property float {name}\n"));
        }
        h.push_str("end_header\n");
        assert!(matches!(
            decode_ply(&build(&h, &[])),
            Err(PlyError::Unsupported(_))
        ));
    }

    #[test]
    fn missing_property_rejected() {
        let mut h = String::from("ply\nformat binary_little_endian 1.0\nelement vertex 0\n");
        for name in &PROPERTIES[..13] {
            h.push_str(&format!("property float {name}\n"));
        }
        h.push_str("end_header\n");
        assert_eq!(
            decode_ply(&build(&h, &[])),
            Err(PlyError::MissingProperty("rot_3"))
        );
    }

    #[test]
    fn truncated_body_rejected() {
        let bytes = encode_ply(&sample_scene());
        let cut = &bytes[..bytes.len() - 5];
        match decode_ply(cut) {
            Err(PlyError::Truncated { needed, available }) => {
                assert_eq!(needed, 17 * 14 * 4);
                assert_eq!(available, needed - 5);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_ply(&sample_scene());
        bytes.extend_from_slice(&[0u8; 3]);
        assert_eq!(decode_ply(&bytes), Err(PlyError::TrailingBytes(3)));
    }

    #[test]
    fn non_finite_value_rejected() {
        let header = minimal_header(1);
        let mut body = Vec::new();
        for i in 0..14 {
            let v: f32 = if i == 6 { f32::NAN } else { 1.0 };
            body.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(
            decode_ply(&build(&header, &body)),
            Err(PlyError::NonFinite {
                vertex: 0,
                property: "opacity"
            })
        );
        let mut body_inf = Vec::new();
        for i in 0..14 {
            let v: f32 = if i == 0 { f32::INFINITY } else { 1.0 };
            body_inf.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(
            decode_ply(&build(&header, &body_inf)),
            Err(PlyError::NonFinite {
                vertex: 0,
                property: "x"
            })
        );
    }

    #[test]
    fn property_order_is_resolved_by_name() {
        let mut h = String::from("ply\nformat binary_little_endian 1.0\nelement vertex 1\n");
        let mut reordered: Vec<&str> = PROPERTIES.to_vec();
        reordered.reverse();
        for name in &reordered {
            h.push_str(&format!("property float {name}\n"));
        }
        h.push_str("end_header\n");
        let scene = f32_scene();
        let g = scene.gaussian(0);
        let vals = vertex_values(&g);
        let mut body = Vec::new();
        for name in &reordered {
            let slot = PROPERTIES.iter().position(|p| p == name).unwrap();
            body.extend_from_slice(&(vals[slot] as f32).to_le_bytes());
        }
        let decoded = decode_ply(&build(&h, &body)).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(
            vertex_values(&decoded.gaussian(0)).map(f64::to_bits),
            vals.map(f64::to_bits)
        );
    }

    #[test]
    fn unknown_scalar_properties_are_skipped() {
        let mut h = String::from("ply\nformat binary_little_endian 1.0\nelement vertex 1\n");
        h.push_str("property float nx\n");
        for name in PROPERTIES {
            h.push_str(&format!("property float {name}\n"));
        }
        h.push_str("property uchar red\n");
        h.push_str("end_header\n");
        let scene = f32_scene();
        let vals = vertex_values(&scene.gaussian(0));
        let mut body = Vec::new();
        body.extend_from_slice(&7.5f32.to_le_bytes()); // nx, ignored
        for v in vals {
            body.extend_from_slice(&(v as f32).to_le_bytes());
        }
        body.push(255); // red, ignored
        let decoded = decode_ply(&build(&h, &body)).unwrap();
        assert_eq!(
            vertex_values(&decoded.gaussian(0)).map(f64::to_bits),
            vals.map(f64::to_bits)
        );
    }

    #[test]
    fn double_typed_properties_decode_exactly() {
        let mut h = String::from("ply\nformat binary_little_endian 1.0\nelement vertex 1\n");
        for name in PROPERTIES {
            h.push_str(&format!("property double {name}\n"));
        }
        h.push_str("end_header\n");
        let scene = sample_scene();
        let vals = vertex_values(&scene.gaussian(3));
        let mut body = Vec::new();
        for v in vals {
            body.extend_from_slice(&v.to_le_bytes());
        }
        let decoded = decode_ply(&build(&h, &body)).unwrap();
        // double storage is lossless even for non-f32-representable values.
        assert_eq!(
            vertex_values(&decoded.gaussian(0)).map(f64::to_bits),
            vals.map(f64::to_bits)
        );
    }

    #[test]
    fn comments_and_crlf_are_tolerated() {
        let h = minimal_header(0).replace(
            "format binary_little_endian 1.0\n",
            "comment made by a tool\r\nformat binary_little_endian 1.0\r\n",
        );
        assert!(decode_ply(&build(&h, &[])).unwrap().is_empty());
    }

    #[test]
    fn file_round_trip_is_atomic_and_exact() {
        let dir = std::env::temp_dir().join(format!("splatonic-ply-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scene.ply");
        let scene = sample_scene();
        write_ply_file(&scene, &path).unwrap();
        assert!(!path.with_extension("ply.tmp").exists());
        let decoded = read_ply_file(&path).unwrap();
        assert_eq!(encode_ply(&scene), encode_ply(&decoded));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn errors_display_cleanly() {
        // Every variant renders a human-readable message.
        let errs: Vec<PlyError> = vec![
            PlyError::BadMagic,
            PlyError::BadHeader("x".to_string()),
            PlyError::Unsupported("y".to_string()),
            PlyError::MissingProperty("x"),
            PlyError::Truncated {
                needed: 2,
                available: 1,
            },
            PlyError::TrailingBytes(3),
            PlyError::NonFinite {
                vertex: 0,
                property: "x",
            },
            PlyError::Io("z".to_string()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
