//! 3D Gaussian primitives and the scene container.
//!
//! Each [`Gaussian`] carries the trainable attributes of paper Sec. II-B:
//! mean position, anisotropic scale, orientation, opacity, and color. Scale
//! and opacity are stored in unconstrained form (log-scale, logit-opacity) so
//! the mapping optimizer can take raw gradient steps, matching the reference
//! 3DGS implementation.

use splatonic_math::{Mat3, Quat, Vec3};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global source of scene revision numbers. Every value handed out
/// is unique for the lifetime of the process, so two scenes (or two states
/// of one scene separated by a mutation) never share a revision.
static NEXT_REVISION: AtomicU64 = AtomicU64::new(1);

#[inline]
fn fresh_revision() -> u64 {
    NEXT_REVISION.fetch_add(1, Ordering::Relaxed)
}

/// Numerically safe sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Inverse sigmoid; input is clamped away from {0, 1}.
#[inline]
pub fn logit(p: f64) -> f64 {
    let p = p.clamp(1e-6, 1.0 - 1e-6);
    (p / (1.0 - p)).ln()
}

/// A single trainable 3D Gaussian primitive.
///
/// # Examples
///
/// ```
/// use splatonic_scene::Gaussian;
/// use splatonic_math::{Vec3, Quat};
///
/// let g = Gaussian::new(
///     Vec3::new(0.0, 0.0, 2.0),
///     Vec3::splat(0.1),
///     Quat::IDENTITY,
///     0.9,
///     Vec3::new(1.0, 0.5, 0.2),
/// );
/// assert!((g.opacity() - 0.9).abs() < 1e-9);
/// assert!((g.scale().x - 0.1).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    /// Mean position in world coordinates.
    pub mean: Vec3,
    /// Per-axis log-scale (standard deviation is `exp(log_scale)`).
    pub log_scale: Vec3,
    /// Orientation quaternion (may be unnormalized; normalized on use).
    pub rotation: Quat,
    /// Opacity in logit space (opacity is `sigmoid(opacity_logit)`).
    pub opacity_logit: f64,
    /// RGB color in `[0, 1]` per channel (clamped at render time).
    pub color: Vec3,
}

impl Gaussian {
    /// Creates a Gaussian from *natural* parameters.
    ///
    /// `scale` components are clamped to a small positive floor; `opacity`
    /// is clamped into `(0, 1)`.
    pub fn new(mean: Vec3, scale: Vec3, rotation: Quat, opacity: f64, color: Vec3) -> Self {
        let s = scale.max(Vec3::splat(1e-6));
        Gaussian {
            mean,
            log_scale: Vec3::new(s.x.ln(), s.y.ln(), s.z.ln()),
            rotation,
            opacity_logit: logit(opacity),
            color,
        }
    }

    /// Natural per-axis scale (standard deviations).
    #[inline]
    pub fn scale(&self) -> Vec3 {
        Vec3::new(
            self.log_scale.x.exp(),
            self.log_scale.y.exp(),
            self.log_scale.z.exp(),
        )
    }

    /// Natural opacity in `(0, 1)`.
    #[inline]
    pub fn opacity(&self) -> f64 {
        sigmoid(self.opacity_logit)
    }

    /// World-space 3D covariance `Σ = R S Sᵀ Rᵀ`.
    pub fn covariance(&self) -> Mat3 {
        let r = self.rotation.to_rotation_matrix();
        let s = self.scale();
        let d = Mat3::diag(s.x * s.x, s.y * s.y, s.z * s.z);
        r * d * r.transpose()
    }

    /// Radius of the bounding sphere at 3σ of the largest axis.
    pub fn bounding_radius(&self) -> f64 {
        3.0 * self.scale().max_component()
    }

    /// Returns `true` when every parameter is finite.
    pub fn is_finite(&self) -> bool {
        self.mean.is_finite()
            && self.log_scale.is_finite()
            && self.opacity_logit.is_finite()
            && self.color.is_finite()
            && self.rotation.norm_sq().is_finite()
    }
}

/// The scene representation `{G_i}`: a growable set of Gaussians.
///
/// # Examples
///
/// ```
/// use splatonic_scene::{Gaussian, GaussianScene};
/// use splatonic_math::{Vec3, Quat};
///
/// let mut scene = GaussianScene::new();
/// scene.push(Gaussian::new(Vec3::ZERO, Vec3::splat(0.1), Quat::IDENTITY, 0.8, Vec3::splat(0.5)));
/// assert_eq!(scene.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GaussianScene {
    gaussians: Vec<Gaussian>,
    /// Monotonic content-change token; see [`GaussianScene::revision`].
    revision: u64,
}

/// Scene equality is content equality; the revision token is an identity
/// aid for caches, not part of the value.
impl PartialEq for GaussianScene {
    fn eq(&self, other: &Self) -> bool {
        self.gaussians == other.gaussians
    }
}

impl Default for GaussianScene {
    fn default() -> Self {
        GaussianScene::new()
    }
}

impl GaussianScene {
    /// Creates an empty scene.
    pub fn new() -> Self {
        GaussianScene {
            gaussians: Vec::new(),
            revision: fresh_revision(),
        }
    }

    /// Creates a scene with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        GaussianScene {
            gaussians: Vec::with_capacity(n),
            revision: fresh_revision(),
        }
    }

    /// Builds a scene directly from a vector of Gaussians without copying.
    ///
    /// Used by snapshot restore. The scene gets a *fresh* revision, never a
    /// restored one: revisions are process-unique identity tokens (see
    /// [`GaussianScene::revision`]), and replaying a serialized value could
    /// collide with a revision already handed out in this process, breaking
    /// the "equal revisions imply bitwise-equal Gaussians" cache contract.
    pub fn from_vec(gaussians: Vec<Gaussian>) -> Self {
        GaussianScene {
            gaussians,
            revision: fresh_revision(),
        }
    }

    /// Process-unique token identifying the current contents of this scene.
    ///
    /// Every constructor draws a fresh value and every mutating accessor
    /// (`push`, `gaussians_mut`, `retain`, `extend`) replaces it with a new
    /// one, so *equal revisions imply bitwise-equal Gaussians*. Cloning
    /// keeps the revision (contents are identical at clone time); the first
    /// mutation of either copy separates them. The render-side projection
    /// cache keys on this to detect scene changes in O(1).
    #[inline]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Number of Gaussians.
    #[inline]
    pub fn len(&self) -> usize {
        self.gaussians.len()
    }

    /// Returns `true` when the scene holds no Gaussians.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gaussians.is_empty()
    }

    /// Appends a Gaussian, returning its index.
    pub fn push(&mut self, g: Gaussian) -> usize {
        self.revision = fresh_revision();
        self.gaussians.push(g);
        self.gaussians.len() - 1
    }

    /// Immutable view of the Gaussians.
    #[inline]
    pub fn gaussians(&self) -> &[Gaussian] {
        &self.gaussians
    }

    /// Mutable view of the Gaussians (used by the mapping optimizer).
    ///
    /// Conservatively advances the revision: handing out mutable access
    /// *may* change contents, and the cache contract only requires that
    /// equal revisions imply equal contents.
    #[inline]
    pub fn gaussians_mut(&mut self) -> &mut [Gaussian] {
        self.revision = fresh_revision();
        &mut self.gaussians
    }

    /// Immutable access by index.
    pub fn get(&self, i: usize) -> Option<&Gaussian> {
        self.gaussians.get(i)
    }

    /// Retains only Gaussians satisfying the predicate (pruning).
    pub fn retain(&mut self, f: impl FnMut(&Gaussian) -> bool) {
        self.revision = fresh_revision();
        self.gaussians.retain(f);
    }

    /// Iterates over the Gaussians.
    pub fn iter(&self) -> std::slice::Iter<'_, Gaussian> {
        self.gaussians.iter()
    }

    /// Axis-aligned bounding box of all means, or `None` when empty.
    pub fn bounds(&self) -> Option<(Vec3, Vec3)> {
        let first = self.gaussians.first()?;
        let mut lo = first.mean;
        let mut hi = first.mean;
        for g in &self.gaussians {
            lo = lo.min(g.mean);
            hi = hi.max(g.mean);
        }
        Some((lo, hi))
    }
}

impl FromIterator<Gaussian> for GaussianScene {
    fn from_iter<I: IntoIterator<Item = Gaussian>>(iter: I) -> Self {
        GaussianScene {
            gaussians: iter.into_iter().collect(),
            revision: fresh_revision(),
        }
    }
}

impl Extend<Gaussian> for GaussianScene {
    fn extend<I: IntoIterator<Item = Gaussian>>(&mut self, iter: I) {
        self.revision = fresh_revision();
        self.gaussians.extend(iter);
    }
}

impl<'a> IntoIterator for &'a GaussianScene {
    type Item = &'a Gaussian;
    type IntoIter = std::slice::Iter<'a, Gaussian>;
    fn into_iter(self) -> Self::IntoIter {
        self.gaussians.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Gaussian {
        Gaussian::new(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(0.1, 0.2, 0.05),
            Quat::from_axis_angle(Vec3::new(1.0, 1.0, 0.0), 0.6),
            0.75,
            Vec3::new(0.9, 0.1, 0.4),
        )
    }

    #[test]
    fn natural_parameter_round_trip() {
        let g = sample();
        assert!((g.opacity() - 0.75).abs() < 1e-9);
        let s = g.scale();
        assert!((s.x - 0.1).abs() < 1e-9);
        assert!((s.y - 0.2).abs() < 1e-9);
        assert!((s.z - 0.05).abs() < 1e-9);
    }

    #[test]
    fn opacity_clamped_to_open_interval() {
        let g = Gaussian::new(
            Vec3::ZERO,
            Vec3::splat(0.1),
            Quat::IDENTITY,
            1.5,
            Vec3::ZERO,
        );
        assert!(g.opacity() < 1.0);
        let g = Gaussian::new(
            Vec3::ZERO,
            Vec3::splat(0.1),
            Quat::IDENTITY,
            -0.5,
            Vec3::ZERO,
        );
        assert!(g.opacity() > 0.0);
    }

    #[test]
    fn covariance_is_symmetric_positive() {
        let g = sample();
        let c = g.covariance();
        for i in 0..3 {
            for j in 0..3 {
                assert!((c.at(i, j) - c.at(j, i)).abs() < 1e-12);
            }
        }
        assert!(c.det() > 0.0);
        assert!(c.trace() > 0.0);
    }

    #[test]
    fn covariance_of_axis_aligned_is_diagonal() {
        let g = Gaussian::new(
            Vec3::ZERO,
            Vec3::new(0.1, 0.2, 0.3),
            Quat::IDENTITY,
            0.5,
            Vec3::ZERO,
        );
        let c = g.covariance();
        assert!((c.at(0, 0) - 0.01).abs() < 1e-9);
        assert!((c.at(1, 1) - 0.04).abs() < 1e-9);
        assert!((c.at(2, 2) - 0.09).abs() < 1e-9);
        assert!(c.at(0, 1).abs() < 1e-12);
    }

    #[test]
    fn bounding_radius_uses_largest_axis() {
        let g = Gaussian::new(
            Vec3::ZERO,
            Vec3::new(0.1, 0.5, 0.2),
            Quat::IDENTITY,
            0.5,
            Vec3::ZERO,
        );
        assert!((g.bounding_radius() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn sigmoid_logit_inverse() {
        for p in [0.01, 0.3, 0.5, 0.9, 0.999] {
            assert!((sigmoid(logit(p)) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn sigmoid_extremes_are_stable() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn scene_push_get_retain() {
        let mut scene = GaussianScene::new();
        assert!(scene.is_empty());
        let idx = scene.push(sample());
        assert_eq!(idx, 0);
        scene.push(Gaussian::new(
            Vec3::new(10.0, 0.0, 0.0),
            Vec3::splat(0.1),
            Quat::IDENTITY,
            0.5,
            Vec3::ZERO,
        ));
        assert_eq!(scene.len(), 2);
        scene.retain(|g| g.mean.x < 5.0);
        assert_eq!(scene.len(), 1);
        assert!(scene.get(0).is_some());
        assert!(scene.get(1).is_none());
    }

    #[test]
    fn scene_bounds() {
        let mut scene = GaussianScene::new();
        assert!(scene.bounds().is_none());
        scene.push(Gaussian::new(
            Vec3::new(-1.0, 0.0, 2.0),
            Vec3::splat(0.1),
            Quat::IDENTITY,
            0.5,
            Vec3::ZERO,
        ));
        scene.push(Gaussian::new(
            Vec3::new(3.0, -2.0, 1.0),
            Vec3::splat(0.1),
            Quat::IDENTITY,
            0.5,
            Vec3::ZERO,
        ));
        let (lo, hi) = scene.bounds().unwrap();
        assert_eq!(lo, Vec3::new(-1.0, -2.0, 1.0));
        assert_eq!(hi, Vec3::new(3.0, 0.0, 2.0));
    }

    #[test]
    fn scene_from_iterator_and_extend() {
        let mut scene: GaussianScene = (0..3)
            .map(|i| {
                Gaussian::new(
                    Vec3::new(i as f64, 0.0, 0.0),
                    Vec3::splat(0.1),
                    Quat::IDENTITY,
                    0.5,
                    Vec3::ZERO,
                )
            })
            .collect();
        assert_eq!(scene.len(), 3);
        scene.extend(std::iter::once(sample()));
        assert_eq!(scene.len(), 4);
        assert_eq!(scene.iter().count(), 4);
    }

    #[test]
    fn revision_changes_on_mutation_only() {
        let mut scene = GaussianScene::new();
        let r0 = scene.revision();
        scene.push(sample());
        let r1 = scene.revision();
        assert_ne!(r0, r1);
        // Read-only access keeps the revision.
        let _ = scene.gaussians();
        let _ = scene.len();
        assert_eq!(scene.revision(), r1);
        scene.gaussians_mut()[0].opacity_logit += 0.1;
        let r2 = scene.revision();
        assert_ne!(r1, r2);
        scene.retain(|_| true);
        assert_ne!(scene.revision(), r2);
        // Two scenes never share a revision, even when equal in content.
        let a = GaussianScene::new();
        let b = GaussianScene::new();
        assert_eq!(a, b);
        assert_ne!(a.revision(), b.revision());
        // Clones share the revision until one of them is mutated.
        let c = scene.clone();
        assert_eq!(c.revision(), scene.revision());
    }

    #[test]
    fn finite_check() {
        let mut g = sample();
        assert!(g.is_finite());
        g.mean.x = f64::NAN;
        assert!(!g.is_finite());
    }
}
