//! 3D Gaussian primitives and the scene container.
//!
//! Each [`Gaussian`] carries the trainable attributes of paper Sec. II-B:
//! mean position, anisotropic scale, orientation, opacity, and color. Scale
//! and opacity are stored in unconstrained form (log-scale, logit-opacity) so
//! the mapping optimizer can take raw gradient steps, matching the reference
//! 3DGS implementation.
//!
//! # Memory layout
//!
//! [`GaussianScene`] stores the attributes **structure-of-arrays** (one
//! parallel `Vec` per attribute, see DESIGN.md §13): the render hot loops
//! (projection, α-checking) stream exactly the fields they touch, and the
//! SIMD kernels in `splatonic-render` load contiguous lanes without
//! gather steps. [`Gaussian`] remains the by-value exchange type — every
//! accessor assembles or scatters one on the fly, which costs the same
//! copies the old array-of-structs layout paid per element.

use splatonic_math::{Mat3, Quat, Vec3};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global source of scene revision numbers. Every value handed out
/// is unique for the lifetime of the process, so two scenes (or two states
/// of one scene separated by a mutation) never share a revision.
static NEXT_REVISION: AtomicU64 = AtomicU64::new(1);

#[inline]
fn fresh_revision() -> u64 {
    NEXT_REVISION.fetch_add(1, Ordering::Relaxed)
}

/// Numerically safe sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Inverse sigmoid; input is clamped away from {0, 1}.
#[inline]
pub fn logit(p: f64) -> f64 {
    let p = p.clamp(1e-6, 1.0 - 1e-6);
    (p / (1.0 - p)).ln()
}

/// A single trainable 3D Gaussian primitive.
///
/// This is the *by-value exchange type* for one scene element; the scene
/// itself stores the fields structure-of-arrays (see [`GaussianScene`]).
///
/// # Examples
///
/// ```
/// use splatonic_scene::Gaussian;
/// use splatonic_math::{Vec3, Quat};
///
/// let g = Gaussian::new(
///     Vec3::new(0.0, 0.0, 2.0),
///     Vec3::splat(0.1),
///     Quat::IDENTITY,
///     0.9,
///     Vec3::new(1.0, 0.5, 0.2),
/// );
/// assert!((g.opacity() - 0.9).abs() < 1e-9);
/// assert!((g.scale().x - 0.1).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    /// Mean position in world coordinates.
    pub mean: Vec3,
    /// Per-axis log-scale (standard deviation is `exp(log_scale)`).
    pub log_scale: Vec3,
    /// Orientation quaternion (may be unnormalized; normalized on use).
    pub rotation: Quat,
    /// Opacity in logit space (opacity is `sigmoid(opacity_logit)`).
    pub opacity_logit: f64,
    /// RGB color in `[0, 1]` per channel (clamped at render time).
    pub color: Vec3,
}

impl Gaussian {
    /// Creates a Gaussian from *natural* parameters.
    ///
    /// `scale` components are clamped to a small positive floor; `opacity`
    /// is clamped into `(0, 1)`.
    pub fn new(mean: Vec3, scale: Vec3, rotation: Quat, opacity: f64, color: Vec3) -> Self {
        let s = scale.max(Vec3::splat(1e-6));
        Gaussian {
            mean,
            log_scale: Vec3::new(s.x.ln(), s.y.ln(), s.z.ln()),
            rotation,
            opacity_logit: logit(opacity),
            color,
        }
    }

    /// Natural per-axis scale (standard deviations).
    #[inline]
    pub fn scale(&self) -> Vec3 {
        Vec3::new(
            self.log_scale.x.exp(),
            self.log_scale.y.exp(),
            self.log_scale.z.exp(),
        )
    }

    /// Natural opacity in `(0, 1)`.
    #[inline]
    pub fn opacity(&self) -> f64 {
        sigmoid(self.opacity_logit)
    }

    /// World-space 3D covariance `Σ = R S Sᵀ Rᵀ`.
    pub fn covariance(&self) -> Mat3 {
        let r = self.rotation.to_rotation_matrix();
        let s = self.scale();
        let d = Mat3::diag(s.x * s.x, s.y * s.y, s.z * s.z);
        r * d * r.transpose()
    }

    /// Radius of the bounding sphere at 3σ of the largest axis.
    pub fn bounding_radius(&self) -> f64 {
        3.0 * self.scale().max_component()
    }

    /// Returns `true` when every parameter is finite.
    pub fn is_finite(&self) -> bool {
        self.mean.is_finite()
            && self.log_scale.is_finite()
            && self.opacity_logit.is_finite()
            && self.color.is_finite()
            && self.rotation.norm_sq().is_finite()
    }
}

/// Structure-of-arrays view handed out by [`GaussianScene::fields_mut`]:
/// one mutable slice per attribute, all of equal length.
///
/// Borrowing this view conservatively advances the scene revision (the
/// caller may write through any slice). The mapping optimizer uses it to
/// apply per-parameter Adam deltas without reassembling whole Gaussians.
#[derive(Debug)]
pub struct SceneFieldsMut<'a> {
    /// Mean positions in world coordinates.
    pub means: &'a mut [Vec3],
    /// Per-axis log-scales.
    pub log_scales: &'a mut [Vec3],
    /// Orientation quaternions.
    pub rotations: &'a mut [Quat],
    /// Logit-space opacities.
    pub opacity_logits: &'a mut [f64],
    /// RGB colors.
    pub colors: &'a mut [Vec3],
}

/// The scene representation `{G_i}`: a growable set of Gaussians, stored
/// structure-of-arrays.
///
/// Each attribute lives in its own parallel `Vec` ([`GaussianScene::means`],
/// [`GaussianScene::rotations`], …); [`GaussianScene::get`] and
/// [`GaussianScene::iter`] assemble [`Gaussian`] values on the fly. The
/// array-of-structs boundary round-trips losslessly:
/// [`GaussianScene::from_vec`] ∘ [`GaussianScene::to_vec`] is a bitwise
/// identity (property-tested in this crate's test suite).
///
/// # Examples
///
/// ```
/// use splatonic_scene::{Gaussian, GaussianScene};
/// use splatonic_math::{Vec3, Quat};
///
/// let mut scene = GaussianScene::new();
/// scene.push(Gaussian::new(Vec3::ZERO, Vec3::splat(0.1), Quat::IDENTITY, 0.8, Vec3::splat(0.5)));
/// assert_eq!(scene.len(), 1);
/// assert_eq!(scene.means()[0], Vec3::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct GaussianScene {
    means: Vec<Vec3>,
    log_scales: Vec<Vec3>,
    rotations: Vec<Quat>,
    opacity_logits: Vec<f64>,
    colors: Vec<Vec3>,
    /// Monotonic content-change token; see [`GaussianScene::revision`].
    revision: u64,
}

/// Scene equality is content equality; the revision token is an identity
/// aid for caches, not part of the value.
impl PartialEq for GaussianScene {
    fn eq(&self, other: &Self) -> bool {
        self.means == other.means
            && self.log_scales == other.log_scales
            && self.rotations == other.rotations
            && self.opacity_logits == other.opacity_logits
            && self.colors == other.colors
    }
}

impl Default for GaussianScene {
    fn default() -> Self {
        GaussianScene::new()
    }
}

impl GaussianScene {
    /// Creates an empty scene.
    pub fn new() -> Self {
        GaussianScene {
            means: Vec::new(),
            log_scales: Vec::new(),
            rotations: Vec::new(),
            opacity_logits: Vec::new(),
            colors: Vec::new(),
            revision: fresh_revision(),
        }
    }

    /// Creates a scene with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        GaussianScene {
            means: Vec::with_capacity(n),
            log_scales: Vec::with_capacity(n),
            rotations: Vec::with_capacity(n),
            opacity_logits: Vec::with_capacity(n),
            colors: Vec::with_capacity(n),
            revision: fresh_revision(),
        }
    }

    /// Builds a scene from a vector of Gaussians (array-of-structs input;
    /// scattered into the structure-of-arrays storage).
    ///
    /// Used by snapshot restore. The scene gets a *fresh* revision, never a
    /// restored one: revisions are process-unique identity tokens (see
    /// [`GaussianScene::revision`]), and replaying a serialized value could
    /// collide with a revision already handed out in this process, breaking
    /// the "equal revisions imply bitwise-equal Gaussians" cache contract.
    pub fn from_vec(gaussians: Vec<Gaussian>) -> Self {
        let mut scene = GaussianScene::with_capacity(gaussians.len());
        for g in gaussians {
            scene.push_fields(g);
        }
        scene
    }

    /// Gathers the scene back into an array-of-structs vector (snapshot
    /// serialization). Bitwise inverse of [`GaussianScene::from_vec`].
    pub fn to_vec(&self) -> Vec<Gaussian> {
        (0..self.len()).map(|i| self.gaussian(i)).collect()
    }

    /// Process-unique token identifying the current contents of this scene.
    ///
    /// Every constructor draws a fresh value and every mutating accessor
    /// (`push`, `fields_mut`, `set`, `update`, `retain`, `extend`) replaces
    /// it with a new one, so *equal revisions imply bitwise-equal
    /// Gaussians*. Cloning keeps the revision (contents are identical at
    /// clone time); the first mutation of either copy separates them. The
    /// render-side projection cache keys on this to detect scene changes
    /// in O(1).
    #[inline]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Number of Gaussians.
    #[inline]
    pub fn len(&self) -> usize {
        self.means.len()
    }

    /// Returns `true` when the scene holds no Gaussians.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.means.is_empty()
    }

    /// Scatters one Gaussian's fields without touching the revision.
    #[inline]
    fn push_fields(&mut self, g: Gaussian) {
        self.means.push(g.mean);
        self.log_scales.push(g.log_scale);
        self.rotations.push(g.rotation);
        self.opacity_logits.push(g.opacity_logit);
        self.colors.push(g.color);
    }

    /// Appends a Gaussian, returning its index.
    pub fn push(&mut self, g: Gaussian) -> usize {
        self.revision = fresh_revision();
        self.push_fields(g);
        self.means.len() - 1
    }

    /// Mean positions, indexed by Gaussian id.
    #[inline]
    pub fn means(&self) -> &[Vec3] {
        &self.means
    }

    /// Per-axis log-scales, indexed by Gaussian id.
    #[inline]
    pub fn log_scales(&self) -> &[Vec3] {
        &self.log_scales
    }

    /// Orientation quaternions, indexed by Gaussian id.
    #[inline]
    pub fn rotations(&self) -> &[Quat] {
        &self.rotations
    }

    /// Logit-space opacities, indexed by Gaussian id.
    #[inline]
    pub fn opacity_logits(&self) -> &[f64] {
        &self.opacity_logits
    }

    /// RGB colors, indexed by Gaussian id.
    #[inline]
    pub fn colors(&self) -> &[Vec3] {
        &self.colors
    }

    /// Mutable structure-of-arrays view (used by the mapping optimizer).
    ///
    /// Conservatively advances the revision: handing out mutable access
    /// *may* change contents, and the cache contract only requires that
    /// equal revisions imply equal contents.
    pub fn fields_mut(&mut self) -> SceneFieldsMut<'_> {
        self.revision = fresh_revision();
        SceneFieldsMut {
            means: &mut self.means,
            log_scales: &mut self.log_scales,
            rotations: &mut self.rotations,
            opacity_logits: &mut self.opacity_logits,
            colors: &mut self.colors,
        }
    }

    /// Assembles the Gaussian at index `i` by value.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds; use [`GaussianScene::get`] for the
    /// fallible variant.
    #[inline]
    pub fn gaussian(&self, i: usize) -> Gaussian {
        Gaussian {
            mean: self.means[i],
            log_scale: self.log_scales[i],
            rotation: self.rotations[i],
            opacity_logit: self.opacity_logits[i],
            color: self.colors[i],
        }
    }

    /// Assembles the Gaussian at index `i` by value, or `None` when out of
    /// bounds.
    pub fn get(&self, i: usize) -> Option<Gaussian> {
        if i < self.len() {
            Some(self.gaussian(i))
        } else {
            None
        }
    }

    /// Overwrites the Gaussian at index `i` (scattering its fields).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn set(&mut self, i: usize, g: Gaussian) {
        self.revision = fresh_revision();
        self.means[i] = g.mean;
        self.log_scales[i] = g.log_scale;
        self.rotations[i] = g.rotation;
        self.opacity_logits[i] = g.opacity_logit;
        self.colors[i] = g.color;
    }

    /// Applies `f` to the Gaussian at index `i` (gather → mutate →
    /// scatter). Convenience for tests and perturbation-style callers.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn update(&mut self, i: usize, f: impl FnOnce(&mut Gaussian)) {
        let mut g = self.gaussian(i);
        f(&mut g);
        self.set(i, g);
    }

    /// Applies `f` to every Gaussian in index order.
    pub fn update_each(&mut self, mut f: impl FnMut(usize, &mut Gaussian)) {
        self.revision = fresh_revision();
        for i in 0..self.len() {
            let mut g = self.gaussian(i);
            f(i, &mut g);
            self.means[i] = g.mean;
            self.log_scales[i] = g.log_scale;
            self.rotations[i] = g.rotation;
            self.opacity_logits[i] = g.opacity_logit;
            self.colors[i] = g.color;
        }
    }

    /// Retains only Gaussians satisfying the predicate (pruning).
    ///
    /// All attribute arrays are compacted in lockstep, preserving the
    /// relative order of survivors.
    pub fn retain(&mut self, mut f: impl FnMut(&Gaussian) -> bool) {
        self.revision = fresh_revision();
        let n = self.len();
        let mut write = 0usize;
        for read in 0..n {
            let g = self.gaussian(read);
            if f(&g) {
                if write != read {
                    self.means[write] = self.means[read];
                    self.log_scales[write] = self.log_scales[read];
                    self.rotations[write] = self.rotations[read];
                    self.opacity_logits[write] = self.opacity_logits[read];
                    self.colors[write] = self.colors[read];
                }
                write += 1;
            }
        }
        self.means.truncate(write);
        self.log_scales.truncate(write);
        self.rotations.truncate(write);
        self.opacity_logits.truncate(write);
        self.colors.truncate(write);
    }

    /// Iterates over the Gaussians by value, in index order.
    pub fn iter(&self) -> SceneIter<'_> {
        SceneIter {
            scene: self,
            next: 0,
        }
    }

    /// Axis-aligned bounding box of all means, or `None` when empty.
    pub fn bounds(&self) -> Option<(Vec3, Vec3)> {
        let first = self.means.first()?;
        let mut lo = *first;
        let mut hi = *first;
        for m in &self.means {
            lo = lo.min(*m);
            hi = hi.max(*m);
        }
        Some((lo, hi))
    }
}

/// By-value iterator over a scene's Gaussians (see [`GaussianScene::iter`]).
#[derive(Debug, Clone)]
pub struct SceneIter<'a> {
    scene: &'a GaussianScene,
    next: usize,
}

impl Iterator for SceneIter<'_> {
    type Item = Gaussian;

    fn next(&mut self) -> Option<Gaussian> {
        let g = self.scene.get(self.next)?;
        self.next += 1;
        Some(g)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.scene.len().saturating_sub(self.next);
        (n, Some(n))
    }
}

impl ExactSizeIterator for SceneIter<'_> {}

impl FromIterator<Gaussian> for GaussianScene {
    fn from_iter<I: IntoIterator<Item = Gaussian>>(iter: I) -> Self {
        let mut scene = GaussianScene::new();
        for g in iter {
            scene.push_fields(g);
        }
        scene
    }
}

impl Extend<Gaussian> for GaussianScene {
    fn extend<I: IntoIterator<Item = Gaussian>>(&mut self, iter: I) {
        self.revision = fresh_revision();
        for g in iter {
            self.push_fields(g);
        }
    }
}

impl<'a> IntoIterator for &'a GaussianScene {
    type Item = Gaussian;
    type IntoIter = SceneIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Gaussian {
        Gaussian::new(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(0.1, 0.2, 0.05),
            Quat::from_axis_angle(Vec3::new(1.0, 1.0, 0.0), 0.6),
            0.75,
            Vec3::new(0.9, 0.1, 0.4),
        )
    }

    #[test]
    fn natural_parameter_round_trip() {
        let g = sample();
        assert!((g.opacity() - 0.75).abs() < 1e-9);
        let s = g.scale();
        assert!((s.x - 0.1).abs() < 1e-9);
        assert!((s.y - 0.2).abs() < 1e-9);
        assert!((s.z - 0.05).abs() < 1e-9);
    }

    #[test]
    fn opacity_clamped_to_open_interval() {
        let g = Gaussian::new(
            Vec3::ZERO,
            Vec3::splat(0.1),
            Quat::IDENTITY,
            1.5,
            Vec3::ZERO,
        );
        assert!(g.opacity() < 1.0);
        let g = Gaussian::new(
            Vec3::ZERO,
            Vec3::splat(0.1),
            Quat::IDENTITY,
            -0.5,
            Vec3::ZERO,
        );
        assert!(g.opacity() > 0.0);
    }

    #[test]
    fn covariance_is_symmetric_positive() {
        let g = sample();
        let c = g.covariance();
        for i in 0..3 {
            for j in 0..3 {
                assert!((c.at(i, j) - c.at(j, i)).abs() < 1e-12);
            }
        }
        assert!(c.det() > 0.0);
        assert!(c.trace() > 0.0);
    }

    #[test]
    fn covariance_of_axis_aligned_is_diagonal() {
        let g = Gaussian::new(
            Vec3::ZERO,
            Vec3::new(0.1, 0.2, 0.3),
            Quat::IDENTITY,
            0.5,
            Vec3::ZERO,
        );
        let c = g.covariance();
        assert!((c.at(0, 0) - 0.01).abs() < 1e-9);
        assert!((c.at(1, 1) - 0.04).abs() < 1e-9);
        assert!((c.at(2, 2) - 0.09).abs() < 1e-9);
        assert!(c.at(0, 1).abs() < 1e-12);
    }

    #[test]
    fn bounding_radius_uses_largest_axis() {
        let g = Gaussian::new(
            Vec3::ZERO,
            Vec3::new(0.1, 0.5, 0.2),
            Quat::IDENTITY,
            0.5,
            Vec3::ZERO,
        );
        assert!((g.bounding_radius() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn sigmoid_logit_inverse() {
        for p in [0.01, 0.3, 0.5, 0.9, 0.999] {
            assert!((sigmoid(logit(p)) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn sigmoid_extremes_are_stable() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn scene_push_get_retain() {
        let mut scene = GaussianScene::new();
        assert!(scene.is_empty());
        let idx = scene.push(sample());
        assert_eq!(idx, 0);
        scene.push(Gaussian::new(
            Vec3::new(10.0, 0.0, 0.0),
            Vec3::splat(0.1),
            Quat::IDENTITY,
            0.5,
            Vec3::ZERO,
        ));
        assert_eq!(scene.len(), 2);
        scene.retain(|g| g.mean.x < 5.0);
        assert_eq!(scene.len(), 1);
        assert!(scene.get(0).is_some());
        assert!(scene.get(1).is_none());
    }

    #[test]
    fn retain_compacts_all_arrays_in_lockstep() {
        let gs: Vec<Gaussian> = (0..6)
            .map(|i| {
                Gaussian::new(
                    Vec3::new(i as f64, -(i as f64), 1.0 + i as f64),
                    Vec3::splat(0.05 + 0.01 * i as f64),
                    Quat::from_axis_angle(Vec3::Y, 0.1 * i as f64),
                    0.3 + 0.1 * i as f64,
                    Vec3::splat(i as f64 / 6.0),
                )
            })
            .collect();
        let mut scene = GaussianScene::from_vec(gs.clone());
        scene.retain(|g| (g.mean.x as usize).is_multiple_of(2));
        assert_eq!(scene.len(), 3);
        for (k, want_idx) in [0usize, 2, 4].iter().enumerate() {
            assert_eq!(scene.gaussian(k), gs[*want_idx]);
        }
    }

    #[test]
    fn scene_bounds() {
        let mut scene = GaussianScene::new();
        assert!(scene.bounds().is_none());
        scene.push(Gaussian::new(
            Vec3::new(-1.0, 0.0, 2.0),
            Vec3::splat(0.1),
            Quat::IDENTITY,
            0.5,
            Vec3::ZERO,
        ));
        scene.push(Gaussian::new(
            Vec3::new(3.0, -2.0, 1.0),
            Vec3::splat(0.1),
            Quat::IDENTITY,
            0.5,
            Vec3::ZERO,
        ));
        let (lo, hi) = scene.bounds().unwrap();
        assert_eq!(lo, Vec3::new(-1.0, -2.0, 1.0));
        assert_eq!(hi, Vec3::new(3.0, 0.0, 2.0));
    }

    #[test]
    fn scene_from_iterator_and_extend() {
        let mut scene: GaussianScene = (0..3)
            .map(|i| {
                Gaussian::new(
                    Vec3::new(i as f64, 0.0, 0.0),
                    Vec3::splat(0.1),
                    Quat::IDENTITY,
                    0.5,
                    Vec3::ZERO,
                )
            })
            .collect();
        assert_eq!(scene.len(), 3);
        scene.extend(std::iter::once(sample()));
        assert_eq!(scene.len(), 4);
        assert_eq!(scene.iter().count(), 4);
    }

    #[test]
    fn revision_changes_on_mutation_only() {
        let mut scene = GaussianScene::new();
        let r0 = scene.revision();
        scene.push(sample());
        let r1 = scene.revision();
        assert_ne!(r0, r1);
        // Read-only access keeps the revision.
        let _ = scene.means();
        let _ = scene.len();
        assert_eq!(scene.revision(), r1);
        scene.update(0, |g| g.opacity_logit += 0.1);
        let r2 = scene.revision();
        assert_ne!(r1, r2);
        scene.retain(|_| true);
        assert_ne!(scene.revision(), r2);
        let r3 = scene.revision();
        let _ = scene.fields_mut();
        assert_ne!(scene.revision(), r3);
        // Two scenes never share a revision, even when equal in content.
        let a = GaussianScene::new();
        let b = GaussianScene::new();
        assert_eq!(a, b);
        assert_ne!(a.revision(), b.revision());
        // Clones share the revision until one of them is mutated.
        let c = scene.clone();
        assert_eq!(c.revision(), scene.revision());
    }

    #[test]
    fn fields_mut_writes_through() {
        let mut scene = GaussianScene::from_vec(vec![sample(), sample()]);
        {
            let fields = scene.fields_mut();
            fields.means[1].x = 42.0;
            fields.opacity_logits[0] = -1.25;
            fields.colors[1].z = 0.125;
        }
        assert_eq!(scene.gaussian(1).mean.x, 42.0);
        assert_eq!(scene.gaussian(0).opacity_logit, -1.25);
        assert_eq!(scene.gaussian(1).color.z, 0.125);
    }

    #[test]
    fn soa_aos_round_trip_is_bitwise() {
        let gs: Vec<Gaussian> = (0..32)
            .map(|i| {
                Gaussian::new(
                    Vec3::new(0.31 * i as f64, -0.17 * i as f64, 1.0 + 0.09 * i as f64),
                    Vec3::new(0.02 + 0.003 * i as f64, 0.05, 0.07),
                    Quat::from_axis_angle(Vec3::new(1.0, 0.5, -0.25), 0.13 * i as f64),
                    0.2 + 0.02 * i as f64,
                    Vec3::new(0.1, 0.5, 0.9),
                )
            })
            .collect();
        let scene = GaussianScene::from_vec(gs.clone());
        let back = scene.to_vec();
        assert_eq!(back.len(), gs.len());
        for (a, b) in gs.iter().zip(&back) {
            // Bitwise, not approximate: SoA↔AoS must be lossless.
            assert_eq!(a.mean.x.to_bits(), b.mean.x.to_bits());
            assert_eq!(a.log_scale.z.to_bits(), b.log_scale.z.to_bits());
            assert_eq!(a.opacity_logit.to_bits(), b.opacity_logit.to_bits());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn finite_check() {
        let mut g = sample();
        assert!(g.is_finite());
        g.mean.x = f64::NAN;
        assert!(!g.is_finite());
    }
}
