//! Procedural ground-truth worlds.
//!
//! These stand in for the Replica \[70] and TUM RGB-D \[71] datasets (see
//! DESIGN.md §2): an indoor "room" is assembled from Gaussian-covered
//! surfaces — floor, ceiling, walls, and box-shaped furniture — with
//! procedural textures. Texture-rich and texture-flat regions coexist by
//! construction, which is what the mapping sampler's Sobel weighting (paper
//! Eq. 3) keys on, and furniture creates occlusion boundaries that become
//! "unseen" regions (paper Eq. 2) as the camera moves.

use crate::gaussian::{Gaussian, GaussianScene};
use crate::trajectory::TrajectoryKind;
use splatonic_math::rng::Rng64;
use splatonic_math::{Quat, Vec3};

/// Dataset family the world mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorldStyle {
    /// Replica-like: large clean room, moderate furniture, smooth motion.
    ReplicaLike,
    /// TUM-like: cluttered desk-scale scene, fast camera motion.
    TumLike,
}

impl WorldStyle {
    /// The trajectory family matching this dataset family.
    pub fn trajectory_kind(self) -> TrajectoryKind {
        match self {
            WorldStyle::ReplicaLike => TrajectoryKind::SmoothIndoor,
            WorldStyle::TumLike => TrajectoryKind::FastMotion,
        }
    }
}

/// Procedural surface texture assigned to a wall or furniture face.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Texture {
    Flat(Vec3),
    Checker(Vec3, Vec3, f64),
    Stripes(Vec3, Vec3, f64),
    Noise(Vec3, f64),
}

impl Texture {
    fn sample(&self, u: f64, v: f64) -> Vec3 {
        match *self {
            Texture::Flat(c) => c,
            Texture::Checker(a, b, cell) => {
                let iu = (u / cell).floor() as i64;
                let iv = (v / cell).floor() as i64;
                if (iu + iv) % 2 == 0 {
                    a
                } else {
                    b
                }
            }
            Texture::Stripes(a, b, width) => {
                if ((u / width).floor() as i64) % 2 == 0 {
                    a
                } else {
                    b
                }
            }
            Texture::Noise(base, amp) => {
                let n = value_noise(u * 4.0, v * 4.0);
                (base + Vec3::splat((n - 0.5) * amp)).clamp(0.0, 1.0)
            }
        }
    }

    fn random(rng: &mut Rng64, rich: bool) -> Texture {
        let c1 = Vec3::new(rng.gen_f64(), rng.gen_f64(), rng.gen_f64()) * 0.8 + Vec3::splat(0.1);
        let c2 = Vec3::new(rng.gen_f64(), rng.gen_f64(), rng.gen_f64()) * 0.8 + Vec3::splat(0.1);
        if !rich {
            return Texture::Flat(c1);
        }
        match rng.gen_range(0..3) {
            0 => Texture::Checker(c1, c2, rng.gen_range(0.25..0.6)),
            1 => Texture::Stripes(c1, c2, rng.gen_range(0.2..0.5)),
            _ => Texture::Noise(c1, rng.gen_range(0.4..0.8)),
        }
    }
}

/// Hash-based 2D value noise in `[0, 1]` (deterministic, seedless).
fn value_noise(x: f64, y: f64) -> f64 {
    let xi = x.floor();
    let yi = y.floor();
    let fx = x - xi;
    let fy = y - yi;
    let h = |i: i64, j: i64| -> f64 {
        let mut v = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (j as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        v ^= v >> 33;
        v = v.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        v ^= v >> 33;
        (v % 10_000) as f64 / 10_000.0
    };
    let (i, j) = (xi as i64, yi as i64);
    let s = |t: f64| t * t * (3.0 - 2.0 * t);
    let (sx, sy) = (s(fx), s(fy));
    let top = h(i, j) * (1.0 - sx) + h(i + 1, j) * sx;
    let bot = h(i, j + 1) * (1.0 - sx) + h(i + 1, j + 1) * sx;
    top * (1.0 - sy) + bot * sy
}

/// A ground-truth world: Gaussians plus room metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticWorld {
    /// Ground-truth Gaussians.
    pub scene: GaussianScene,
    /// Room extent (width, height, depth), centered at the origin.
    pub extent: Vec3,
    /// Dataset family.
    pub style: WorldStyle,
    /// Seed the world was generated from.
    pub seed: u64,
}

/// Builder for [`SyntheticWorld`].
///
/// # Examples
///
/// ```
/// use splatonic_scene::{WorldBuilder, WorldStyle};
///
/// let world = WorldBuilder::new(3)
///     .style(WorldStyle::TumLike)
///     .gaussian_spacing(0.3)
///     .furniture(2)
///     .build();
/// assert!(!world.scene.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct WorldBuilder {
    seed: u64,
    style: WorldStyle,
    extent: Vec3,
    spacing: f64,
    furniture: usize,
}

impl WorldBuilder {
    /// Creates a builder with Replica-like defaults.
    pub fn new(seed: u64) -> Self {
        WorldBuilder {
            seed,
            style: WorldStyle::ReplicaLike,
            extent: Vec3::new(6.0, 3.0, 5.0),
            spacing: 0.16,
            furniture: 4,
        }
    }

    /// Sets the dataset family (adjusts the default room size).
    pub fn style(mut self, style: WorldStyle) -> Self {
        self.style = style;
        if style == WorldStyle::TumLike {
            self.extent = Vec3::new(4.0, 2.5, 4.0);
            self.furniture = 6;
        }
        self
    }

    /// Sets the room extent (width, height, depth) in meters.
    pub fn extent(mut self, extent: Vec3) -> Self {
        self.extent = extent;
        self
    }

    /// Sets the spacing between surface Gaussians in meters.
    ///
    /// Smaller spacing → more Gaussians → denser workload.
    pub fn gaussian_spacing(mut self, spacing: f64) -> Self {
        self.spacing = spacing.max(0.02);
        self
    }

    /// Sets the number of furniture boxes.
    pub fn furniture(mut self, n: usize) -> Self {
        self.furniture = n;
        self
    }

    /// Builds the world.
    pub fn build(self) -> SyntheticWorld {
        let mut rng = Rng64::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut scene = GaussianScene::new();
        let e = self.extent * 0.5;
        let sp = self.spacing;

        // Six room surfaces. Normals point inward. Roughly half the
        // surfaces get rich textures, the rest stay flat (low-texture
        // regions matter for the sampling experiments).
        let surfaces: [(Vec3, Vec3, Vec3, f64, f64); 6] = [
            // (origin corner, u axis, v axis, u extent, v extent)
            (
                Vec3::new(-e.x, -e.y, -e.z),
                Vec3::X,
                Vec3::Z,
                self.extent.x,
                self.extent.z,
            ), // floor
            (
                Vec3::new(-e.x, e.y, -e.z),
                Vec3::X,
                Vec3::Z,
                self.extent.x,
                self.extent.z,
            ), // ceiling
            (
                Vec3::new(-e.x, -e.y, -e.z),
                Vec3::X,
                Vec3::Y,
                self.extent.x,
                self.extent.y,
            ), // back wall
            (
                Vec3::new(-e.x, -e.y, e.z),
                Vec3::X,
                Vec3::Y,
                self.extent.x,
                self.extent.y,
            ), // front wall
            (
                Vec3::new(-e.x, -e.y, -e.z),
                Vec3::Z,
                Vec3::Y,
                self.extent.z,
                self.extent.y,
            ), // left wall
            (
                Vec3::new(e.x, -e.y, -e.z),
                Vec3::Z,
                Vec3::Y,
                self.extent.z,
                self.extent.y,
            ), // right wall
        ];
        for (i, (origin, u_axis, v_axis, u_len, v_len)) in surfaces.iter().enumerate() {
            let rich = i % 2 == 0 || rng.gen_bool(0.4);
            let tex = Texture::random(&mut rng, rich);
            add_surface(
                &mut scene, &mut rng, *origin, *u_axis, *v_axis, *u_len, *v_len, sp, &tex,
            );
        }

        // Furniture boxes standing on the floor, placed toward the room
        // corners so they occlude and texture the scene without blocking
        // the camera's orbit path (trajectories circle the room center).
        for _ in 0..self.furniture {
            let size = Vec3::new(
                rng.gen_range(0.3..0.5),
                rng.gen_range(0.4..0.8),
                rng.gen_range(0.3..0.5),
            );
            let sx = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let sz = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let cx = sx * rng.gen_range(e.x * 0.70..e.x * 0.85);
            let cz = sz * rng.gen_range(e.z * 0.70..e.z * 0.85);
            let base = Vec3::new(cx, -e.y, cz);
            let rich = rng.gen_bool(0.7);
            let tex = Texture::random(&mut rng, rich);
            add_box(&mut scene, &mut rng, base, size, sp, &tex);
        }

        SyntheticWorld {
            scene,
            extent: self.extent,
            style: self.style,
            seed: self.seed,
        }
    }
}

/// Adds a Gaussian-covered rectangle spanning `origin + u*u_axis + v*v_axis`.
#[allow(clippy::too_many_arguments)]
fn add_surface(
    scene: &mut GaussianScene,
    rng: &mut Rng64,
    origin: Vec3,
    u_axis: Vec3,
    v_axis: Vec3,
    u_len: f64,
    v_len: f64,
    spacing: f64,
    tex: &Texture,
) {
    let normal = u_axis.cross(v_axis).normalized();
    // Orientation: rotate the local z axis onto the surface normal.
    let rot = rotation_aligning_z(normal);
    let nu = (u_len / spacing).ceil() as usize;
    let nv = (v_len / spacing).ceil() as usize;
    for iv in 0..nv {
        for iu in 0..nu {
            let ju = rng.gen_range(-0.2..0.2) * spacing;
            let jv = rng.gen_range(-0.2..0.2) * spacing;
            let u = (iu as f64 + 0.5) * spacing + ju;
            let v = (iv as f64 + 0.5) * spacing + jv;
            if u > u_len || v > v_len {
                continue;
            }
            let pos = origin + u_axis * u + v_axis * v;
            let color = tex.sample(u, v);
            let tangent_scale = spacing * rng.gen_range(0.55..0.75);
            let g = Gaussian::new(
                pos,
                Vec3::new(tangent_scale, tangent_scale, spacing * 0.08),
                rot,
                rng.gen_range(0.85..0.97),
                color,
            );
            scene.push(g);
        }
    }
}

/// Adds the five exposed faces of an axis-aligned box resting on `base`.
fn add_box(
    scene: &mut GaussianScene,
    rng: &mut Rng64,
    base: Vec3,
    size: Vec3,
    spacing: f64,
    tex: &Texture,
) {
    let lo = Vec3::new(base.x - size.x * 0.5, base.y, base.z - size.z * 0.5);
    // Top face plus four sides (bottom rests on the floor).
    let faces: [(Vec3, Vec3, Vec3, f64, f64); 5] = [
        (
            Vec3::new(lo.x, lo.y + size.y, lo.z),
            Vec3::X,
            Vec3::Z,
            size.x,
            size.z,
        ),
        (lo, Vec3::X, Vec3::Y, size.x, size.y),
        (
            Vec3::new(lo.x, lo.y, lo.z + size.z),
            Vec3::X,
            Vec3::Y,
            size.x,
            size.y,
        ),
        (lo, Vec3::Z, Vec3::Y, size.z, size.y),
        (
            Vec3::new(lo.x + size.x, lo.y, lo.z),
            Vec3::Z,
            Vec3::Y,
            size.z,
            size.y,
        ),
    ];
    // Furniture uses a slightly denser sampling so boxes look solid.
    let sp = spacing * 0.9;
    for (origin, u_axis, v_axis, u_len, v_len) in faces {
        add_surface(scene, rng, origin, u_axis, v_axis, u_len, v_len, sp, tex);
    }
}

/// Quaternion rotating local +z onto the given unit `normal`.
fn rotation_aligning_z(normal: Vec3) -> Quat {
    let z = Vec3::Z;
    let d = z.dot(normal).clamp(-1.0, 1.0);
    if d > 1.0 - 1e-9 {
        return Quat::IDENTITY;
    }
    if d < -1.0 + 1e-9 {
        return Quat::from_axis_angle(Vec3::X, std::f64::consts::PI);
    }
    let axis = z.cross(normal);
    Quat::from_axis_angle(axis, d.acos())
}

/// Named Replica-like sequence descriptors (8 sequences, paper Sec. VI).
pub fn replica_sequences() -> Vec<(&'static str, u64)> {
    vec![
        ("room0", 101),
        ("room1", 102),
        ("room2", 103),
        ("office0", 104),
        ("office1", 105),
        ("office2", 106),
        ("office3", 107),
        ("office4", 108),
    ]
}

/// Named TUM-like sequence descriptors (3 sequences, paper Sec. VI).
pub fn tum_sequences() -> Vec<(&'static str, u64)> {
    vec![("fr1/desk", 201), ("fr2/xyz", 202), ("fr3/office", 203)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let a = WorldBuilder::new(5).gaussian_spacing(0.5).build();
        let b = WorldBuilder::new(5).gaussian_spacing(0.5).build();
        assert_eq!(a.scene.len(), b.scene.len());
        assert_eq!(a.scene.gaussian(0), b.scene.gaussian(0));
    }

    #[test]
    fn different_seeds_produce_different_worlds() {
        let a = WorldBuilder::new(5).gaussian_spacing(0.5).build();
        let b = WorldBuilder::new(6).gaussian_spacing(0.5).build();
        assert_ne!(a.scene.gaussian(0), b.scene.gaussian(0));
    }

    #[test]
    fn gaussians_lie_within_room() {
        let w = WorldBuilder::new(1).gaussian_spacing(0.4).build();
        let e = w.extent * 0.5;
        let slack = 0.3;
        for g in w.scene.iter() {
            assert!(g.mean.x.abs() <= e.x + slack);
            assert!(g.mean.y.abs() <= e.y + slack);
            assert!(g.mean.z.abs() <= e.z + slack);
        }
    }

    #[test]
    fn finer_spacing_means_more_gaussians() {
        let coarse = WorldBuilder::new(2).gaussian_spacing(0.6).build();
        let fine = WorldBuilder::new(2).gaussian_spacing(0.3).build();
        assert!(fine.scene.len() > coarse.scene.len() * 2);
    }

    #[test]
    fn all_gaussians_are_finite_and_opaque_enough() {
        let w = WorldBuilder::new(3).gaussian_spacing(0.4).build();
        for g in w.scene.iter() {
            assert!(g.is_finite());
            assert!(g.opacity() > 0.5);
            assert!(g.color.x >= 0.0 && g.color.x <= 1.0);
        }
    }

    #[test]
    fn tum_style_changes_defaults() {
        let w = WorldBuilder::new(4)
            .style(WorldStyle::TumLike)
            .gaussian_spacing(0.4)
            .build();
        assert_eq!(w.style, WorldStyle::TumLike);
        assert!(w.extent.x < 6.0);
        assert_eq!(w.style.trajectory_kind(), TrajectoryKind::FastMotion);
    }

    #[test]
    fn sequence_descriptors() {
        assert_eq!(replica_sequences().len(), 8);
        assert_eq!(tum_sequences().len(), 3);
        let seeds: std::collections::HashSet<u64> = replica_sequences()
            .iter()
            .chain(tum_sequences().iter())
            .map(|(_, s)| *s)
            .collect();
        assert_eq!(seeds.len(), 11, "sequence seeds must be unique");
    }

    #[test]
    fn value_noise_in_unit_interval() {
        for i in 0..100 {
            let v = value_noise(i as f64 * 0.37, i as f64 * 0.91);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn rotation_aligning_z_cases() {
        for n in [
            Vec3::Z,
            -Vec3::Z,
            Vec3::X,
            Vec3::new(1.0, 2.0, -0.5).normalized(),
        ] {
            let q = rotation_aligning_z(n);
            let rotated = q.rotate(Vec3::Z);
            assert!((rotated - n).norm() < 1e-9, "normal {n:?}");
        }
    }

    #[test]
    fn textures_sample_in_gamut() {
        let mut rng = Rng64::seed_from_u64(1);
        for _ in 0..20 {
            let t = Texture::random(&mut rng, true);
            for i in 0..10 {
                let c = t.sample(i as f64 * 0.21, i as f64 * 0.13);
                assert!(c.x >= 0.0 && c.x <= 1.0);
                assert!(c.y >= 0.0 && c.y <= 1.0);
                assert!(c.z >= 0.0 && c.z <= 1.0);
            }
        }
    }
}
