//! Camera trajectory synthesis.
//!
//! Two families mirror the paper's datasets:
//!
//! * [`TrajectoryKind::SmoothIndoor`] — slow, smooth motion like the Replica
//!   sequences (handheld walkthroughs of static rooms),
//! * [`TrajectoryKind::FastMotion`] — the faster, shakier motion of the TUM
//!   RGB-D sequences ("a more complex real-world dataset with fast camera
//!   motion", paper Sec. VI).

use crate::camera::{Camera, Intrinsics};
use splatonic_math::rng::Rng64;
use splatonic_math::{Pose, Vec3};

/// Trajectory style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrajectoryKind {
    /// Slow, smooth orbit with gentle look-target drift (Replica-like).
    SmoothIndoor,
    /// Fast translation plus rotational jitter (TUM-like).
    FastMotion,
}

/// A sequence of ground-truth world-to-camera poses.
///
/// # Examples
///
/// ```
/// use splatonic_scene::{Trajectory, TrajectoryKind};
/// use splatonic_math::Vec3;
///
/// let traj = Trajectory::generate(
///     TrajectoryKind::SmoothIndoor,
///     Vec3::new(6.0, 3.0, 5.0),
///     30,
///     42,
/// );
/// assert_eq!(traj.len(), 30);
/// // Consecutive poses move only a little.
/// let step = traj.poses()[0].translation_distance_to(&traj.poses()[1]);
/// assert!(step < 0.3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    poses: Vec<Pose>,
    kind: TrajectoryKind,
}

impl Trajectory {
    /// Generates a trajectory inside a room of the given `extent`
    /// (width, height, depth), centered at the origin.
    ///
    /// # Panics
    ///
    /// Panics if `frames == 0`.
    pub fn generate(kind: TrajectoryKind, extent: Vec3, frames: usize, seed: u64) -> Self {
        assert!(frames > 0, "trajectory needs at least one frame");
        let mut rng = Rng64::seed_from_u64(seed ^ TRAJECTORY_SEED_SALT);
        let (orbit_rx, orbit_rz) = (extent.x * 0.22, extent.z * 0.22);
        let eye_height = -extent.y * 0.05;
        // Per-sequence phase offsets so different seeds see the room from
        // different directions.
        let phase = rng.gen_range(0.0..std::f64::consts::TAU);
        let target_phase = rng.gen_range(0.0..std::f64::consts::TAU);
        // Per-frame arc length (meters) sets the motion speed, mirroring the
        // real datasets: Replica walkthroughs move millimeters per frame at
        // 30 Hz while TUM hand-held sequences move several centimeters.
        let (step_m, jitter_t, jitter_r) = match kind {
            TrajectoryKind::SmoothIndoor => (0.012, 0.0, 0.0),
            TrajectoryKind::FastMotion => (0.035, 0.004, 0.01),
        };
        let ang_step = step_m / orbit_rx.max(orbit_rz).max(0.1);
        let mut poses = Vec::with_capacity(frames);
        for i in 0..frames {
            let ang = phase + i as f64 * ang_step;
            let eye = Vec3::new(
                orbit_rx * ang.cos() + jitter_t * rng.gen_range(-1.0..1.0),
                eye_height + 0.1 * (ang * 0.5).sin() + jitter_t * rng.gen_range(-1.0..1.0),
                orbit_rz * ang.sin() + jitter_t * rng.gen_range(-1.0..1.0),
            );
            // Look target drifts around a ring near the walls so the camera
            // pans across textured surfaces and previously unseen regions.
            let tang = target_phase + i as f64 * ang_step * 0.7;
            let target = Vec3::new(
                extent.x * 0.4 * tang.cos(),
                0.15 * (tang * 1.3).sin(),
                extent.z * 0.4 * tang.sin(),
            ) + Vec3::new(
                jitter_r * rng.gen_range(-1.0..1.0),
                jitter_r * rng.gen_range(-1.0..1.0),
                jitter_r * rng.gen_range(-1.0..1.0),
            );
            let cam = Camera::look_at(
                // Intrinsics are irrelevant to the pose; use a placeholder.
                Intrinsics::with_fov(2, 2, 1.0),
                eye,
                target,
                Vec3::Y,
            );
            poses.push(cam.pose);
        }
        Trajectory { poses, kind }
    }

    /// Number of poses.
    pub fn len(&self) -> usize {
        self.poses.len()
    }

    /// Returns `true` when the trajectory has no poses.
    pub fn is_empty(&self) -> bool {
        self.poses.is_empty()
    }

    /// The ground-truth poses (world-to-camera).
    pub fn poses(&self) -> &[Pose] {
        &self.poses
    }

    /// The trajectory style this was generated with.
    pub fn kind(&self) -> TrajectoryKind {
        self.kind
    }

    /// Mean inter-frame translation distance (a motion-speed proxy).
    pub fn mean_step(&self) -> f64 {
        if self.poses.len() < 2 {
            return 0.0;
        }
        let total: f64 = self
            .poses
            .windows(2)
            .map(|w| {
                let a = w[0].camera_center();
                let b = w[1].camera_center();
                (a - b).norm()
            })
            .sum();
        total / (self.poses.len() - 1) as f64
    }
}

/// Arbitrary constant mixed into trajectory seeds so they do not collide
/// with world-builder seeds derived from the same sequence id.
const TRAJECTORY_SEED_SALT: u64 = 0x53504c41_544f4e49; // "SPLATONI"

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let extent = Vec3::new(6.0, 3.0, 5.0);
        let a = Trajectory::generate(TrajectoryKind::SmoothIndoor, extent, 10, 1);
        let b = Trajectory::generate(TrajectoryKind::SmoothIndoor, extent, 10, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let extent = Vec3::new(6.0, 3.0, 5.0);
        let a = Trajectory::generate(TrajectoryKind::SmoothIndoor, extent, 10, 1);
        let b = Trajectory::generate(TrajectoryKind::SmoothIndoor, extent, 10, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn fast_motion_moves_faster() {
        let extent = Vec3::new(6.0, 3.0, 5.0);
        let slow = Trajectory::generate(TrajectoryKind::SmoothIndoor, extent, 40, 3);
        let fast = Trajectory::generate(TrajectoryKind::FastMotion, extent, 40, 3);
        assert!(
            fast.mean_step() > slow.mean_step() * 1.5,
            "fast {} vs slow {}",
            fast.mean_step(),
            slow.mean_step()
        );
    }

    #[test]
    fn poses_stay_inside_room() {
        let extent = Vec3::new(6.0, 3.0, 5.0);
        let traj = Trajectory::generate(TrajectoryKind::FastMotion, extent, 50, 9);
        for p in traj.poses() {
            let c = p.camera_center();
            assert!(c.x.abs() < extent.x * 0.5);
            assert!(c.y.abs() < extent.y * 0.5);
            assert!(c.z.abs() < extent.z * 0.5);
        }
    }

    #[test]
    fn rotations_are_valid() {
        let traj = Trajectory::generate(
            TrajectoryKind::SmoothIndoor,
            Vec3::new(6.0, 3.0, 5.0),
            20,
            5,
        );
        for p in traj.poses() {
            assert!((p.rotation.det() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        let _ = Trajectory::generate(TrajectoryKind::SmoothIndoor, Vec3::splat(1.0), 0, 0);
    }
}
