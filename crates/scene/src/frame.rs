//! RGB-D frame types.
//!
//! A [`Frame`] is one sensor observation: an RGB image plus an aligned depth
//! map, exactly what the RGB-D SLAM algorithms of the paper consume.

use splatonic_math::{Image, Vec3};

/// An RGB image: one [`Vec3`] (channels in `[0, 1]`) per pixel.
pub type ColorImage = Image<Vec3>;

/// A depth image in meters; `0.0` marks invalid / no-return pixels.
pub type DepthImage = Image<f64>;

/// One RGB-D observation.
///
/// # Examples
///
/// ```
/// use splatonic_scene::Frame;
/// use splatonic_math::{Image, Vec3};
///
/// let frame = Frame::new(
///     Image::filled(4, 3, Vec3::splat(0.5)),
///     Image::filled(4, 3, 1.0),
///     0,
/// );
/// assert_eq!(frame.width(), 4);
/// assert!((frame.luminance()[(0, 0)] - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// RGB color image.
    pub color: ColorImage,
    /// Aligned depth image (meters).
    pub depth: DepthImage,
    /// Frame index within its sequence.
    pub index: usize,
}

impl Frame {
    /// Creates a frame from aligned color and depth images.
    ///
    /// # Panics
    ///
    /// Panics if the color and depth dimensions differ.
    pub fn new(color: ColorImage, depth: DepthImage, index: usize) -> Self {
        assert_eq!(
            (color.width(), color.height()),
            (depth.width(), depth.height()),
            "color and depth images must be aligned"
        );
        Frame {
            color,
            depth,
            index,
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.color.width()
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.color.height()
    }

    /// Per-pixel luminance (Rec. 601 weights), used by the samplers.
    pub fn luminance(&self) -> Image<f64> {
        self.color.map(|c| 0.299 * c.x + 0.587 * c.y + 0.114 * c.z)
    }

    /// Fraction of pixels with valid (positive) depth.
    pub fn depth_coverage(&self) -> f64 {
        if self.depth.is_empty() {
            return 0.0;
        }
        let valid = self.depth.as_slice().iter().filter(|&&d| d > 0.0).count();
        valid as f64 / self.depth.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatonic_math::Image;

    #[test]
    fn luminance_weights() {
        let color = Image::filled(2, 2, Vec3::new(1.0, 0.0, 0.0));
        let f = Frame::new(color, Image::filled(2, 2, 1.0), 0);
        assert!((f.luminance()[(0, 0)] - 0.299).abs() < 1e-12);
    }

    #[test]
    fn depth_coverage_counts_positive() {
        let mut depth = Image::filled(2, 2, 0.0);
        depth[(0, 0)] = 1.0;
        depth[(1, 1)] = 2.0;
        let f = Frame::new(Image::filled(2, 2, Vec3::ZERO), depth, 3);
        assert!((f.depth_coverage() - 0.5).abs() < 1e-12);
        assert_eq!(f.index, 3);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn mismatched_dimensions_panic() {
        let _ = Frame::new(Image::filled(2, 2, Vec3::ZERO), Image::filled(3, 2, 1.0), 0);
    }
}
