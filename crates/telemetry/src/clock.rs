//! Time sources for span timing.
//!
//! Production telemetry stamps spans on the process-wide monotonic clock
//! ([`splatonic_math::timebase::monotonic_ns`]) so merged traces line up
//! across subsystems. Tests instead inject a [`TestClock`] — a manually
//! advanced nanosecond counter — so span durations, nesting windows, and
//! histogram buckets are exact and assertable.

use splatonic_math::timebase;
use std::cell::Cell;
use std::rc::Rc;

/// A manually-advanced monotonic clock for deterministic telemetry tests.
///
/// Cloning shares the underlying counter (the telemetry handle holds one
/// clone, the test the other), and the handle is `!Sync` like
/// [`crate::Telemetry`] itself.
///
/// ```
/// use splatonic_telemetry::TestClock;
/// let clock = TestClock::new();
/// clock.advance_ns(250);
/// assert_eq!(clock.now_ns(), 250);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TestClock(Rc<Cell<u64>>);

impl TestClock {
    /// A clock starting at 0 ns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.0.set(self.0.get().saturating_add(ns));
    }

    /// Sets the clock to an absolute value (must not move backwards in
    /// sane tests; the clock itself does not enforce monotonicity).
    pub fn set_ns(&self, ns: u64) {
        self.0.set(ns);
    }

    /// Current reading in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.0.get()
    }
}

/// The time source a [`crate::Telemetry`] handle stamps spans with.
#[derive(Debug, Clone, Default)]
pub(crate) enum Clock {
    /// The shared process-wide monotonic clock (production).
    #[default]
    Monotonic,
    /// An injected manual clock (tests).
    Test(TestClock),
}

impl Clock {
    pub(crate) fn now_ns(&self) -> u64 {
        match self {
            Clock::Monotonic => timebase::monotonic_ns(),
            Clock::Test(c) => c.now_ns(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_clock_advances_and_shares_state() {
        let a = TestClock::new();
        let b = a.clone();
        a.advance_ns(100);
        b.advance_ns(50);
        assert_eq!(a.now_ns(), 150);
        a.set_ns(7);
        assert_eq!(b.now_ns(), 7);
    }

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = Clock::Monotonic;
        let t0 = c.now_ns();
        assert!(c.now_ns() >= t0);
    }
}
