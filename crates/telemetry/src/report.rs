//! Machine-readable run reports and their human-readable rendering.
//!
//! A [`RunReport`] is the terminal artifact of an instrumented run: span
//! timing stats, workload counters, hardware gauges, the per-frame SLAM
//! trajectory, and final accuracy, serialized as JSON
//! (`{name, date, frames, spans, counters, accuracy}` — the `BENCH_*.json`
//! perf-trajectory schema) or rendered as aligned-column text.

use crate::frame::FrameRecord;
use crate::hist::LogHistogram;
use crate::json::Json;
use crate::span::SpanStats;

/// Final accuracy of a run (the `accuracy` report section).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccuracySummary {
    /// Absolute trajectory error (cm).
    pub ate_cm: f64,
    /// Mean PSNR of final-map renders (dB).
    pub psnr_db: f64,
    /// Frames processed.
    pub frames: usize,
    /// Final scene size (Gaussians).
    pub scene_size: usize,
}

impl AccuracySummary {
    /// JSON object for this summary.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("ate_cm", self.ate_cm)
            .set("psnr_db", self.psnr_db)
            .set("frames", self.frames)
            .set("scene_size", self.scene_size);
        o
    }
}

/// A complete instrumented-run report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Run name (e.g. the benchmark id).
    pub name: String,
    /// UTC date of the run, `YYYY-MM-DD`.
    pub date: String,
    /// Unix timestamp (seconds) of report creation.
    pub unix_time: u64,
    /// Per-frame SLAM trajectory.
    pub frames: Vec<FrameRecord>,
    /// Span timing stats by `/`-separated path, sorted.
    pub spans: Vec<(String, SpanStats)>,
    /// Monotonic workload counters by name, sorted.
    pub counters: Vec<(String, u64)>,
    /// Point-in-time gauges (hardware model outputs etc.) by name, sorted.
    pub gauges: Vec<(String, f64)>,
    /// Log2 latency histograms by name (`frame/track_ms`, `frame/map_ms`),
    /// with deterministic-width buckets and p50/p95/p99.
    pub latency: Vec<(String, LogHistogram)>,
    /// Final accuracy.
    pub accuracy: AccuracySummary,
}

impl RunReport {
    /// The full JSON document.
    pub fn to_json(&self) -> Json {
        let mut spans = Json::obj();
        for (path, stats) in &self.spans {
            spans.set(path, stats.to_json());
        }
        let mut counters = Json::obj();
        for (name, value) in &self.counters {
            counters.set(name, *value);
        }
        let mut gauges = Json::obj();
        for (name, value) in &self.gauges {
            gauges.set(name, *value);
        }
        let mut latency = Json::obj();
        for (name, hist) in &self.latency {
            latency.set(name, hist.to_json());
        }
        let mut o = Json::obj();
        o.set("name", self.name.as_str())
            .set("date", self.date.as_str())
            .set("unix_time", self.unix_time)
            .set(
                "frames",
                Json::Arr(self.frames.iter().map(FrameRecord::to_json).collect()),
            )
            .set("spans", spans)
            .set("counters", counters)
            .set("gauges", gauges)
            .set("latency", latency)
            .set("accuracy", self.accuracy.to_json());
        o
    }

    /// Pretty JSON text.
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().to_string_pretty();
        s.push('\n');
        s
    }

    /// Writes the JSON document to `path`.
    pub fn write_json_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string())
    }

    /// Aligned-column text rendering: the span tree, the counters, and the
    /// accuracy line. Span nesting is shown by indenting each path segment
    /// under its parent.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== run report: {} ({}) ==\n",
            self.name, self.date
        ));

        if !self.spans.is_empty() {
            let rows: Vec<[String; 7]> = self
                .spans
                .iter()
                .map(|(path, s)| {
                    let depth = path.matches('/').count();
                    let leaf = path.rsplit('/').next().unwrap_or(path);
                    [
                        format!("{}{}", "  ".repeat(depth), leaf),
                        s.count().to_string(),
                        format!("{:.2}", s.total_ms()),
                        format!("{:.3}", s.mean_ms()),
                        format!("{:.3}", s.p50_ms()),
                        format!("{:.3}", s.p95_ms()),
                        format!("{:.3}", s.max_ms()),
                    ]
                })
                .collect();
            let header = ["span", "count", "total ms", "mean", "p50", "p95", "max"];
            let mut w: Vec<usize> = header.iter().map(|h| h.len()).collect();
            for row in &rows {
                for (i, cell) in row.iter().enumerate() {
                    w[i] = w[i].max(cell.chars().count());
                }
            }
            let fmt_row = |cells: &[String]| {
                cells
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        if i == 0 {
                            format!("{:<width$}", c, width = w[i])
                        } else {
                            format!("{:>width$}", c, width = w[i])
                        }
                    })
                    .collect::<Vec<_>>()
                    .join("  ")
            };
            let header: Vec<String> = header.iter().map(|s| s.to_string()).collect();
            out.push_str(&fmt_row(&header));
            out.push('\n');
            for row in rows {
                out.push_str(&fmt_row(&row));
                out.push('\n');
            }
        }

        let shown_latency: Vec<&(String, LogHistogram)> =
            self.latency.iter().filter(|(_, h)| h.count() > 0).collect();
        if !shown_latency.is_empty() {
            out.push_str("-- latency (log2 histogram upper edges) --\n");
            let w = shown_latency
                .iter()
                .map(|(n, _)| n.chars().count())
                .max()
                .unwrap_or(0);
            for (name, h) in &shown_latency {
                out.push_str(&format!(
                    "{name:<w$}  n={:<5} p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms\n",
                    h.count(),
                    h.p50_ms(),
                    h.p95_ms(),
                    h.p99_ms()
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("-- counters --\n");
            let w = self
                .counters
                .iter()
                .map(|(n, _)| n.chars().count())
                .max()
                .unwrap_or(0);
            for (name, value) in &self.counters {
                out.push_str(&format!("{name:<w$}  {value}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("-- gauges --\n");
            let w = self
                .gauges
                .iter()
                .map(|(n, _)| n.chars().count())
                .max()
                .unwrap_or(0);
            for (name, value) in &self.gauges {
                out.push_str(&format!("{name:<w$}  {value:.6}\n"));
            }
        }
        out.push_str(&format!(
            "accuracy: ATE {:.2} cm, PSNR {:.2} dB over {} frames ({} gaussians)\n",
            self.accuracy.ate_cm,
            self.accuracy.psnr_db,
            self.accuracy.frames,
            self.accuracy.scene_size
        ));
        out
    }
}

/// `YYYY-MM-DD` (UTC) for a unix timestamp, via the standard civil-from-days
/// conversion (Howard Hinnant's algorithm) — no time-zone database needed.
pub fn utc_date(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // day of era [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_report() -> RunReport {
        let mut tracking = SpanStats::default();
        tracking.record(5.0);
        tracking.record(7.0);
        let mut forward = SpanStats::default();
        forward.record(1.0);
        RunReport {
            name: "smoke".into(),
            date: "2026-08-06".into(),
            unix_time: 1_786_000_000,
            frames: vec![FrameRecord {
                frame_idx: 1,
                track_iters: 10,
                map_invoked: false,
                sampled_pixels: 48,
                map_sampled_pixels: 0,
                gaussian_count: 900,
                cache_hits: 0,
                cache_invalidations: 0,
                psnr_db: 20.0,
                ate_so_far_cm: 0.4,
                track_ms: 5.0,
                map_ms: 0.0,
            }],
            spans: vec![
                ("tracking".into(), tracking),
                ("tracking/forward".into(), forward),
            ],
            counters: vec![("tracking/forward/pixels_shaded".into(), 480)],
            gauges: vec![("hw/splatonic/total_s".into(), 1.25e-4)],
            latency: vec![("frame/track_ms".into(), {
                let mut h = LogHistogram::new();
                h.record_ms(5.0);
                h
            })],
            accuracy: AccuracySummary {
                ate_cm: 0.4,
                psnr_db: 20.0,
                frames: 2,
                scene_size: 900,
            },
        }
    }

    #[test]
    fn json_round_trips_and_matches_schema() {
        let r = sample_report();
        let doc = parse(&r.to_json_string()).expect("report must be valid JSON");
        for key in ["name", "date", "frames", "spans", "counters", "accuracy"] {
            assert!(doc.get(key).is_some(), "schema section {key} missing");
        }
        let frames = doc.get("frames").unwrap().as_arr().unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].get("psnr_db").unwrap().as_f64(), Some(20.0));
        let spans = doc.get("spans").unwrap();
        let t = spans.get("tracking").unwrap();
        assert_eq!(t.get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(t.get("total_ms").unwrap().as_f64(), Some(12.0));
        assert_eq!(
            doc.get("accuracy").unwrap().get("ate_cm").unwrap().as_f64(),
            Some(0.4)
        );
    }

    #[test]
    fn text_rendering_aligns_and_indents() {
        let text = sample_report().to_text();
        assert!(text.contains("tracking"));
        // The nested span is indented under its parent.
        assert!(text.contains("\n  forward") || text.contains("  forward  "));
        assert!(text.contains("accuracy: ATE 0.40 cm"));
        assert!(text.contains("pixels_shaded"));
        assert!(text.contains("-- latency"));
        assert!(text.contains("frame/track_ms"));
    }

    #[test]
    fn latency_section_serializes_histograms() {
        let doc = parse(&sample_report().to_json_string()).unwrap();
        let lat = doc.get("latency").expect("latency section");
        let track = lat.get("frame/track_ms").expect("track histogram");
        assert_eq!(track.get("count").unwrap().as_f64(), Some(1.0));
        for key in ["p50_ms", "p95_ms", "p99_ms", "buckets"] {
            assert!(track.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn utc_date_known_values() {
        assert_eq!(utc_date(0), "1970-01-01");
        assert_eq!(utc_date(86_400), "1970-01-02");
        // 2000-03-01 (leap-century boundary).
        assert_eq!(utc_date(951_868_800), "2000-03-01");
        // 2026-08-06 00:00:00 UTC (day 20671 since epoch).
        assert_eq!(utc_date(1_785_974_400), "2026-08-06");
    }
}
