//! Per-frame SLAM trajectory records.
//!
//! One [`FrameRecord`] per processed frame captures the accuracy/workload
//! trajectory of a run (SplaTAM-style per-frame evaluation): how much work
//! tracking did, whether mapping fired, how the map grew, and the running
//! accuracy metrics. The array of records is the `frames` section of a
//! [`crate::RunReport`].

use crate::json::Json;

/// One frame of a SLAM run.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameRecord {
    /// Frame index in the sequence.
    pub frame_idx: usize,
    /// Tracking iterations executed on this frame (0 for the anchor frame).
    pub track_iters: usize,
    /// Whether a mapping invocation ran after this frame.
    pub map_invoked: bool,
    /// Pixels sampled by tracking across its iterations.
    pub sampled_pixels: usize,
    /// Pixels sampled by mapping across its optimization iterations (0 when
    /// mapping did not run).
    pub map_sampled_pixels: usize,
    /// Scene size (Gaussians) after processing this frame.
    pub gaussian_count: usize,
    /// Projection-cache hits across this frame's renders (tracking +
    /// mapping); 0 when the cache is disabled.
    pub cache_hits: u64,
    /// Projection-cache invalidations (pose-delta misses) across this
    /// frame's renders; 0 when the cache is disabled.
    pub cache_invalidations: u64,
    /// PSNR of the current map rendered at the estimated pose (dB); NaN
    /// serializes as `null` when not evaluated.
    pub psnr_db: f64,
    /// ATE RMSE over frames `0..=frame_idx` (cm).
    pub ate_so_far_cm: f64,
    /// Wall-clock milliseconds spent in tracking for this frame.
    pub track_ms: f64,
    /// Wall-clock milliseconds spent in mapping for this frame (0 when
    /// mapping did not run).
    pub map_ms: f64,
}

impl FrameRecord {
    /// JSON object for this record.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("frame_idx", self.frame_idx)
            .set("track_iters", self.track_iters)
            .set("map_invoked", self.map_invoked)
            .set("sampled_pixels", self.sampled_pixels)
            .set("map_sampled_pixels", self.map_sampled_pixels)
            .set("gaussian_count", self.gaussian_count)
            .set("cache_hits", self.cache_hits)
            .set("cache_invalidations", self.cache_invalidations)
            .set("psnr_db", self.psnr_db)
            .set("ate_so_far_cm", self.ate_so_far_cm)
            .set("track_ms", self.track_ms)
            .set("map_ms", self.map_ms);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn record_serializes_with_all_fields() {
        let r = FrameRecord {
            frame_idx: 4,
            track_iters: 10,
            map_invoked: true,
            sampled_pixels: 120,
            map_sampled_pixels: 200,
            gaussian_count: 5000,
            cache_hits: 18,
            cache_invalidations: 9,
            psnr_db: 21.5,
            ate_so_far_cm: 0.8,
            track_ms: 12.0,
            map_ms: 30.0,
        };
        let doc = parse(&r.to_json().to_string_compact()).unwrap();
        assert_eq!(doc.get("frame_idx").unwrap().as_f64(), Some(4.0));
        assert_eq!(doc.get("map_invoked").unwrap(), &Json::Bool(true));
        assert_eq!(doc.get("psnr_db").unwrap().as_f64(), Some(21.5));
        assert_eq!(doc.get("ate_so_far_cm").unwrap().as_f64(), Some(0.8));
        assert_eq!(doc.get("map_sampled_pixels").unwrap().as_f64(), Some(200.0));
    }

    #[test]
    fn unevaluated_psnr_serializes_as_null() {
        let r = FrameRecord {
            frame_idx: 0,
            track_iters: 0,
            map_invoked: false,
            sampled_pixels: 0,
            map_sampled_pixels: 0,
            gaussian_count: 0,
            cache_hits: 0,
            cache_invalidations: 0,
            psnr_db: f64::NAN,
            ate_so_far_cm: 0.0,
            track_ms: 0.0,
            map_ms: 0.0,
        };
        let doc = parse(&r.to_json().to_string_compact()).unwrap();
        assert_eq!(doc.get("psnr_db").unwrap(), &Json::Null);
    }
}
