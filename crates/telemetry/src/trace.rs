//! Chrome trace-event export (Perfetto-loadable).
//!
//! A [`TraceSession`] brackets the traced portion of a run: beginning one
//! turns on the side-band capture gates of the worker pool
//! (`splatonic_math::pool`) and the renderer phase buffer
//! (`splatonic_render::phase`) and remembers their cursors, so the export
//! only contains events from *this* session even though both buffers are
//! process-global. [`crate::Telemetry::write_chrome_trace`] then merges
//! three producers onto one timeline:
//!
//! * telemetry span events (category `span`) on the recording thread's lane,
//! * renderer phase events (category `render`) on their recording lanes,
//! * pool worker activity (category `pool`) on one lane per worker *slot*
//!   (`timebase::POOL_LANE_BASE + worker`), stable across the ephemeral
//!   scoped threads.
//!
//! All producers stamp the same monotonic timebase, so nesting falls out of
//! time containment per lane — Perfetto renders one row per lane with
//! spans stacked. Events are emitted as complete (`"ph": "X"`) records
//! sorted by start time; `scripts/check_trace.py` validates the schema.
//!
//! # Multi-session runs
//!
//! Every producer also stamps the ambient run id
//! (`splatonic_math::timebase::run_id`; 0 outside any session scope). The
//! export maps run `r` to Chrome trace process id `r + 1` — a single-run
//! trace therefore stays on pid 1 exactly as before, while a fleet trace
//! shows one process group per SLAM session. [`TraceSession::begin_for_run`]
//! additionally *filters* the export to one run, so concurrent sessions
//! sharing the process-global buffers each export only their own events.

use crate::event::SpanEvent;
use crate::json::Json;
use splatonic_math::{pool, timebase};
use splatonic_render::phase;

/// One traced window of a run; see the module docs.
#[derive(Debug)]
pub struct TraceSession {
    pool_cursor: usize,
    phase_cursor: usize,
    /// When set, the export keeps only events stamped with this run id.
    run_filter: Option<u32>,
}

impl TraceSession {
    /// Enables pool and render-phase capture and marks the session start.
    ///
    /// The gates stay on for the life of the process (bench binaries trace
    /// whole runs); cursors scope the export to this session's events.
    pub fn begin() -> Self {
        pool::trace_enable(true);
        phase::enable(true);
        TraceSession {
            pool_cursor: pool::trace_cursor(),
            phase_cursor: phase::cursor(),
            run_filter: None,
        }
    }

    /// Like [`TraceSession::begin`], but the eventual export keeps only
    /// events attributed to `run` — the scoped-drain form concurrent
    /// sessions need so one session's export cannot absorb another's
    /// events from the shared process-global buffers.
    pub fn begin_for_run(run: u32) -> Self {
        let mut s = TraceSession::begin();
        s.run_filter = Some(run);
        s
    }
}

/// One exported `"X"` row before serialization.
struct Row {
    name: String,
    cat: &'static str,
    /// Chrome trace process id: run id + 1 (run 0 → pid 1).
    pid: u64,
    tid: u32,
    ts_us: f64,
    dur_us: f64,
}

/// Maps a producer run id to a Chrome trace process id. Run 0 (no session
/// scope) lands on pid 1, keeping single-run traces shaped as before.
fn run_to_pid(run: u32) -> u64 {
    run as u64 + 1
}

/// Builds the full Chrome trace document for the given telemetry span
/// events plus everything the session's side-band buffers captured.
pub(crate) fn chrome_trace_json(spans: &[SpanEvent], session: &TraceSession) -> Json {
    let keep = |run: u32| session.run_filter.is_none_or(|want| run == want);
    let mut rows: Vec<Row> = Vec::new();
    for e in spans {
        if !keep(e.run) {
            continue;
        }
        rows.push(Row {
            name: e.path.clone(),
            cat: "span",
            pid: run_to_pid(e.run),
            tid: e.lane,
            ts_us: e.start_ns as f64 / 1e3,
            dur_us: e.dur_ns as f64 / 1e3,
        });
    }
    for e in phase::events_since(session.phase_cursor) {
        if !keep(e.run) {
            continue;
        }
        rows.push(Row {
            name: e.name.to_string(),
            cat: "render",
            pid: run_to_pid(e.run),
            tid: e.lane,
            ts_us: e.start_ns as f64 / 1e3,
            dur_us: e.dur_ns as f64 / 1e3,
        });
    }
    for e in pool::trace_events_since(session.pool_cursor) {
        if !keep(e.run) {
            continue;
        }
        rows.push(Row {
            name: format!("pool/worker{}", e.worker),
            cat: "pool",
            pid: run_to_pid(e.run),
            tid: timebase::POOL_LANE_BASE + e.worker as u32,
            ts_us: e.start_ns as f64 / 1e3,
            dur_us: e.dur_ns as f64 / 1e3,
        });
    }
    // Start-time order (ties: longer span first) makes per-lane nesting a
    // simple stack walk for validators.
    rows.sort_by(|a, b| {
        a.ts_us
            .partial_cmp(&b.ts_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                b.dur_us
                    .partial_cmp(&a.dur_us)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });

    let mut events: Vec<Json> = Vec::new();
    let mut meta = |name: &str, pid: u64, tid: u32, value: &str| {
        let mut args = Json::obj();
        args.set("name", value);
        let mut o = Json::obj();
        o.set("name", name)
            .set("ph", "M")
            .set("pid", pid)
            .set("tid", tid as i64)
            .set("args", args);
        events.push(o);
    };
    // One process group per run id present in the export (always at least
    // pid 1 so an empty trace still names the process).
    let mut pids: Vec<u64> = rows.iter().map(|r| r.pid).collect();
    pids.push(1);
    pids.sort_unstable();
    pids.dedup();
    for pid in &pids {
        let label = if *pid == 1 {
            "splatonic".to_string()
        } else {
            format!("session-{}", pid - 1)
        };
        meta("process_name", *pid, 0, &label);
    }
    let mut lanes: Vec<(u64, u32)> = rows.iter().map(|r| (r.pid, r.tid)).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for (pid, tid) in &lanes {
        let label = if *tid >= timebase::POOL_LANE_BASE {
            format!("pool-worker{}", tid - timebase::POOL_LANE_BASE)
        } else if *tid == 1 {
            "main".to_string()
        } else {
            format!("lane{tid}")
        };
        meta("thread_name", *pid, *tid, &label);
    }
    for r in rows {
        let mut o = Json::obj();
        o.set("name", r.name)
            .set("cat", r.cat)
            .set("ph", "X")
            .set("ts", r.ts_us)
            .set("dur", r.dur_us)
            .set("pid", r.pid)
            .set("tid", r.tid as i64);
        events.push(o);
    }

    let mut doc = Json::obj();
    doc.set("traceEvents", Json::Arr(events))
        .set("displayTimeUnit", "ms");
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u32, parent: Option<u32>, path: &str, run: u32, start_ns: u64) -> SpanEvent {
        SpanEvent {
            id,
            parent,
            path: path.into(),
            name: path.rsplit('/').next().unwrap_or(path).into(),
            lane: 1,
            run,
            start_ns,
            dur_ns: 1_000,
        }
    }

    #[test]
    fn export_contains_metadata_and_sorted_x_events() {
        let session = TraceSession::begin();
        let spans = vec![
            SpanEvent {
                id: 2,
                parent: Some(1),
                path: "frame/tracking".into(),
                name: "tracking".into(),
                lane: 1,
                run: 0,
                start_ns: 2_000,
                dur_ns: 1_000,
            },
            SpanEvent {
                id: 1,
                parent: None,
                path: "frame".into(),
                name: "frame".into(),
                lane: 1,
                run: 0,
                start_ns: 1_000,
                dur_ns: 5_000,
            },
        ];
        let doc = chrome_trace_json(&spans, &session);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap() == &Json::Str("X".into()))
            .collect();
        assert!(xs.len() >= 2);
        // Sorted by ts: the outer "frame" span comes first.
        assert_eq!(xs[0].get("name").unwrap(), &Json::Str("frame".into()));
        let mut last_ts = f64::NEG_INFINITY;
        for x in &xs {
            let ts = x.get("ts").unwrap().as_f64().unwrap();
            assert!(ts >= last_ts, "X events must be start-time sorted");
            last_ts = ts;
        }
        // Run 0 spans stay on pid 1, exactly as single-run traces always did.
        assert!(xs
            .iter()
            .all(|x| x.get("pid").unwrap().as_f64() == Some(1.0)));
        assert!(events.iter().any(|e| {
            e.get("name").unwrap() == &Json::Str("thread_name".into())
                && e.get("ph").unwrap() == &Json::Str("M".into())
        }));
    }

    #[test]
    fn runs_map_to_process_groups_and_filters_scope_the_export() {
        let spans = vec![
            span(1, None, "frame", 0, 1_000),
            span(2, None, "frame", 3, 2_000),
            span(3, None, "frame", 4, 3_000),
        ];

        // Unfiltered: one process group per run, run r on pid r+1.
        let session = TraceSession::begin();
        let doc = chrome_trace_json(&spans, &session);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let mut x_pids: Vec<f64> = events
            .iter()
            .filter(|e| e.get("ph").unwrap() == &Json::Str("X".into()))
            .filter_map(|e| e.get("pid").unwrap().as_f64())
            .collect();
        x_pids.sort_by(f64::total_cmp);
        assert!(x_pids.starts_with(&[1.0]));
        assert!(x_pids.contains(&4.0) && x_pids.contains(&5.0));
        let session_names: Vec<String> = events
            .iter()
            .filter(|e| e.get("name").unwrap() == &Json::Str("process_name".into()))
            .filter_map(|e| match e.get("args").unwrap().get("name") {
                Some(Json::Str(s)) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(session_names.contains(&"splatonic".to_string()));
        assert!(session_names.contains(&"session-3".to_string()));
        assert!(session_names.contains(&"session-4".to_string()));

        // Filtered: only run 3's events survive.
        let scoped = TraceSession::begin_for_run(3);
        let doc = chrome_trace_json(&spans, &scoped);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap() == &Json::Str("X".into()))
            .collect();
        assert_eq!(xs.len(), 1);
        assert_eq!(xs[0].get("pid").unwrap().as_f64(), Some(4.0));
    }
}
