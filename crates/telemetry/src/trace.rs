//! Chrome trace-event export (Perfetto-loadable).
//!
//! A [`TraceSession`] brackets the traced portion of a run: beginning one
//! turns on the side-band capture gates of the worker pool
//! (`splatonic_math::pool`) and the renderer phase buffer
//! (`splatonic_render::phase`) and remembers their cursors, so the export
//! only contains events from *this* session even though both buffers are
//! process-global. [`crate::Telemetry::write_chrome_trace`] then merges
//! three producers onto one timeline:
//!
//! * telemetry span events (category `span`) on the recording thread's lane,
//! * renderer phase events (category `render`) on their recording lanes,
//! * pool worker activity (category `pool`) on one lane per worker *slot*
//!   (`timebase::POOL_LANE_BASE + worker`), stable across the ephemeral
//!   scoped threads.
//!
//! All producers stamp the same monotonic timebase, so nesting falls out of
//! time containment per lane — Perfetto renders one row per lane with
//! spans stacked. Events are emitted as complete (`"ph": "X"`) records
//! sorted by start time; `scripts/check_trace.py` validates the schema.

use crate::event::SpanEvent;
use crate::json::Json;
use splatonic_math::{pool, timebase};
use splatonic_render::phase;

/// One traced window of a run; see the module docs.
#[derive(Debug)]
pub struct TraceSession {
    pool_cursor: usize,
    phase_cursor: usize,
}

impl TraceSession {
    /// Enables pool and render-phase capture and marks the session start.
    ///
    /// The gates stay on for the life of the process (bench binaries trace
    /// whole runs); cursors scope the export to this session's events.
    pub fn begin() -> Self {
        pool::trace_enable(true);
        phase::enable(true);
        TraceSession {
            pool_cursor: pool::trace_cursor(),
            phase_cursor: phase::cursor(),
        }
    }
}

/// One exported `"X"` row before serialization.
struct Row {
    name: String,
    cat: &'static str,
    tid: u32,
    ts_us: f64,
    dur_us: f64,
}

/// Builds the full Chrome trace document for the given telemetry span
/// events plus everything the session's side-band buffers captured.
pub(crate) fn chrome_trace_json(spans: &[SpanEvent], session: &TraceSession) -> Json {
    let mut rows: Vec<Row> = Vec::new();
    for e in spans {
        rows.push(Row {
            name: e.path.clone(),
            cat: "span",
            tid: e.lane,
            ts_us: e.start_ns as f64 / 1e3,
            dur_us: e.dur_ns as f64 / 1e3,
        });
    }
    for e in phase::events_since(session.phase_cursor) {
        rows.push(Row {
            name: e.name.to_string(),
            cat: "render",
            tid: e.lane,
            ts_us: e.start_ns as f64 / 1e3,
            dur_us: e.dur_ns as f64 / 1e3,
        });
    }
    for e in pool::trace_events_since(session.pool_cursor) {
        rows.push(Row {
            name: format!("pool/worker{}", e.worker),
            cat: "pool",
            tid: timebase::POOL_LANE_BASE + e.worker as u32,
            ts_us: e.start_ns as f64 / 1e3,
            dur_us: e.dur_ns as f64 / 1e3,
        });
    }
    // Start-time order (ties: longer span first) makes per-lane nesting a
    // simple stack walk for validators.
    rows.sort_by(|a, b| {
        a.ts_us
            .partial_cmp(&b.ts_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                b.dur_us
                    .partial_cmp(&a.dur_us)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });

    let mut events: Vec<Json> = Vec::new();
    let mut meta = |name: &str, tid: u32, value: &str| {
        let mut args = Json::obj();
        args.set("name", value);
        let mut o = Json::obj();
        o.set("name", name)
            .set("ph", "M")
            .set("pid", 1u64)
            .set("tid", tid as i64)
            .set("args", args);
        events.push(o);
    };
    meta("process_name", 0, "splatonic");
    let mut tids: Vec<u32> = rows.iter().map(|r| r.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in &tids {
        let label = if *tid >= timebase::POOL_LANE_BASE {
            format!("pool-worker{}", tid - timebase::POOL_LANE_BASE)
        } else if *tid == 1 {
            "main".to_string()
        } else {
            format!("lane{tid}")
        };
        meta("thread_name", *tid, &label);
    }
    for r in rows {
        let mut o = Json::obj();
        o.set("name", r.name)
            .set("cat", r.cat)
            .set("ph", "X")
            .set("ts", r.ts_us)
            .set("dur", r.dur_us)
            .set("pid", 1u64)
            .set("tid", r.tid as i64);
        events.push(o);
    }

    let mut doc = Json::obj();
    doc.set("traceEvents", Json::Arr(events))
        .set("displayTimeUnit", "ms");
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_contains_metadata_and_sorted_x_events() {
        let session = TraceSession::begin();
        let spans = vec![
            SpanEvent {
                id: 2,
                parent: Some(1),
                path: "frame/tracking".into(),
                name: "tracking".into(),
                lane: 1,
                start_ns: 2_000,
                dur_ns: 1_000,
            },
            SpanEvent {
                id: 1,
                parent: None,
                path: "frame".into(),
                name: "frame".into(),
                lane: 1,
                start_ns: 1_000,
                dur_ns: 5_000,
            },
        ];
        let doc = chrome_trace_json(&spans, &session);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap() == &Json::Str("X".into()))
            .collect();
        assert!(xs.len() >= 2);
        // Sorted by ts: the outer "frame" span comes first.
        assert_eq!(xs[0].get("name").unwrap(), &Json::Str("frame".into()));
        let mut last_ts = f64::NEG_INFINITY;
        for x in &xs {
            let ts = x.get("ts").unwrap().as_f64().unwrap();
            assert!(ts >= last_ts, "X events must be start-time sorted");
            last_ts = ts;
        }
        assert!(events.iter().any(|e| {
            e.get("name").unwrap() == &Json::Str("thread_name".into())
                && e.get("ph").unwrap() == &Json::Str("M".into())
        }));
    }
}
