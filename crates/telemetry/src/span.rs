//! Per-span-path wall-clock statistics.
//!
//! Span paths are `/`-separated (e.g. `tracking/forward`), built from the
//! nesting of [`crate::Telemetry::span`] guards at record time. Each path
//! accumulates a [`Summary`] (count/total/min/max/mean) plus the raw sample
//! list so report time can compute order statistics (p50/p95).

use crate::hist::LogHistogram;
use crate::json::Json;
use splatonic_math::stats::{percentile, Summary};

/// Timing statistics for one span path, in milliseconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanStats {
    summary: Summary,
    samples: Vec<f64>,
    hist: LogHistogram,
}

impl SpanStats {
    /// Records one timed execution.
    pub fn record(&mut self, ms: f64) {
        self.summary.push(ms);
        self.samples.push(ms);
        self.hist.record_ms(ms);
    }

    /// Number of recorded executions.
    pub fn count(&self) -> usize {
        self.summary.count()
    }

    /// Total milliseconds across executions.
    pub fn total_ms(&self) -> f64 {
        self.summary.sum()
    }

    /// Mean milliseconds per execution.
    pub fn mean_ms(&self) -> f64 {
        self.summary.mean()
    }

    /// Fastest execution.
    pub fn min_ms(&self) -> f64 {
        self.summary.min()
    }

    /// Slowest execution.
    pub fn max_ms(&self) -> f64 {
        self.summary.max()
    }

    /// Median execution time (nearest rank).
    pub fn p50_ms(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 95th-percentile execution time (nearest rank).
    pub fn p95_ms(&self) -> f64 {
        self.percentile(95.0)
    }

    /// 99th-percentile execution time (nearest rank).
    pub fn p99_ms(&self) -> f64 {
        self.percentile(99.0)
    }

    fn percentile(&self, p: f64) -> f64 {
        let mut v = self.samples.clone();
        percentile(&mut v, p)
    }

    /// The fixed-bucket log2 duration histogram for this path.
    pub fn hist(&self) -> &LogHistogram {
        &self.hist
    }

    /// Merges another path's statistics into this one.
    pub fn merge(&mut self, other: &SpanStats) {
        self.summary.merge(&other.summary);
        self.samples.extend_from_slice(&other.samples);
        self.hist.merge(&other.hist);
    }

    /// JSON object with the stats fields (`count`, `total_ms`, …) plus the
    /// log2 histogram under `hist`.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("count", self.count())
            .set("total_ms", self.total_ms())
            .set("mean_ms", self.mean_ms())
            .set("min_ms", self.min_ms())
            .set("max_ms", self.max_ms())
            .set("p50_ms", self.p50_ms())
            .set("p95_ms", self.p95_ms())
            .set("p99_ms", self.p99_ms())
            .set("hist", self.hist.to_json());
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate() {
        let mut s = SpanStats::default();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.total_ms(), 10.0);
        assert_eq!(s.mean_ms(), 2.5);
        assert_eq!(s.min_ms(), 1.0);
        assert_eq!(s.max_ms(), 4.0);
        assert_eq!(s.p50_ms(), 3.0); // nearest rank
    }

    #[test]
    fn p95_tracks_the_tail() {
        let mut s = SpanStats::default();
        for _ in 0..99 {
            s.record(1.0);
        }
        s.record(100.0);
        assert_eq!(s.p50_ms(), 1.0);
        assert!(s.p95_ms() <= 1.0 + 1e-12);
        assert_eq!(s.max_ms(), 100.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = SpanStats::default();
        a.record(1.0);
        let mut b = SpanStats::default();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean_ms(), 2.0);
    }

    #[test]
    fn json_has_all_fields() {
        let mut s = SpanStats::default();
        s.record(2.0);
        let j = s.to_json();
        for key in [
            "count", "total_ms", "mean_ms", "min_ms", "max_ms", "p50_ms", "p95_ms",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
    }
}
