//! Dependency-free telemetry for the SPLATONIC suite.
//!
//! One [`Telemetry`] handle carries everything an instrumented run records:
//!
//! * **Spans** — RAII wall-clock timers ([`Telemetry::span`]) that nest; a
//!   guard created while another is live records under the `/`-joined path
//!   (`tracking/forward`). Each path keeps count/total/min/max/p50/p95/p99
//!   ([`SpanStats`]) plus a fixed-bucket log2 latency histogram
//!   ([`LogHistogram`]). Every completed guard additionally emits one
//!   hierarchical [`SpanEvent`] carrying its parent span id, trace lane,
//!   and window on the shared monotonic timebase
//!   ([`splatonic_math::timebase`]).
//! * **Counters and gauges** — monotonic `u64` counters and point-in-time
//!   `f64` gauges, named `subsystem/name` ([`validate_metric_name`]).
//!   [`Telemetry::record_trace`] exports every field of a renderer
//!   [`RenderTrace`] as counters (exhaustively destructured, so a new trace
//!   field is a compile error here until it is exported).
//! * **Frames** — per-frame SLAM records ([`FrameRecord`]) forming the
//!   accuracy/workload trajectory of a run; `finish` folds their track/map
//!   latencies into the report's histogram section.
//! * **Reports** — [`Telemetry::finish`] snapshots everything into a
//!   [`RunReport`] that serializes to JSON ([`json::Json`]) or renders as
//!   aligned text.
//! * **Exports** — [`Telemetry::write_chrome_trace`] merges span events
//!   with the pool and render-phase side-band buffers into a
//!   Perfetto-loadable Chrome trace ([`trace::TraceSession`]);
//!   [`Telemetry::stream_events_to`] attaches an incrementally-flushed
//!   JSONL event stream a live run can tail.
//!
//! The handle is deliberately cheap to thread everywhere: a disabled handle
//! ([`Telemetry::disabled`]) holds no state and every operation on it —
//! including [`Telemetry::span`] — returns without allocating, so hot render
//! loops can take `&Telemetry` unconditionally.
//!
//! Timings are wall-clock and therefore non-deterministic; they stay
//! outside the snapshot fingerprint and the bit-exactness suites
//! (DESIGN.md §14). Everything here is hand-rolled on `std` only: the
//! suite builds offline, so no `tracing`, no `serde` (DESIGN.md
//! "Telemetry & run reports").

// Every public item must carry a doc comment; config knobs additionally
// document their default and bit-exactness contract (DESIGN.md §13).
#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod frame;
pub mod hist;
pub mod json;
pub mod report;
pub mod span;
pub mod trace;

pub use clock::TestClock;
pub use event::SpanEvent;
pub use frame::FrameRecord;
pub use hist::LogHistogram;
pub use json::Json;
pub use report::{utc_date, AccuracySummary, RunReport};
pub use span::SpanStats;
pub use trace::TraceSession;

use clock::Clock;
use event::EventSink;
use splatonic_math::{pool, timebase};
use splatonic_render::trace::{BackwardStats, ForwardStats, RenderTrace};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Upper bound on retained [`SpanEvent`]s per handle; beyond it events are
/// dropped (aggregates still record) so long runs stay bounded.
const MAX_SPAN_EVENTS: usize = 1 << 20;

#[derive(Debug, Default)]
struct Inner {
    /// Live span names, innermost last; joined with `/` to form paths.
    stack: Vec<String>,
    /// Ids of all open spans (including flat ones), innermost last —
    /// the parent-attribution stack for hierarchical events.
    event_stack: Vec<u32>,
    spans: BTreeMap<String, SpanStats>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    frames: Vec<FrameRecord>,
    /// Completed hierarchical span events, in completion order.
    events: Vec<SpanEvent>,
    next_event_id: u32,
    events_dropped: u64,
    clock: Clock,
    /// Attached JSONL event stream, if any.
    sink: Option<EventSink>,
}

/// Telemetry sink for one run.
///
/// Not `Sync`; each run owns its handle (the suite is single-threaded by
/// design — determinism first, see DESIGN.md).
#[derive(Debug, Default)]
pub struct Telemetry {
    /// `None` = disabled: every method is a no-op and allocates nothing.
    inner: Option<RefCell<Inner>>,
}

impl Telemetry {
    /// An enabled, empty telemetry sink.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(RefCell::new(Inner::default())),
        }
    }

    /// An enabled sink stamping spans on an injected [`TestClock`] instead
    /// of the process monotonic clock — nesting windows, durations, and
    /// histogram buckets become exact and assertable in tests.
    pub fn with_clock(clock: TestClock) -> Self {
        Telemetry {
            inner: Some(RefCell::new(Inner {
                clock: Clock::Test(clock),
                ..Inner::default()
            })),
        }
    }

    /// A disabled sink: all operations no-op without allocating.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a timed span. The returned guard records elapsed wall-clock
    /// milliseconds under the current nesting path when dropped.
    ///
    /// ```
    /// let t = splatonic_telemetry::Telemetry::enabled();
    /// {
    ///     let _outer = t.span("tracking");
    ///     let _inner = t.span("forward"); // records as "tracking/forward"
    /// }
    /// let report = t.finish("doc", Default::default());
    /// assert!(report.spans.iter().any(|(p, _)| p == "tracking/forward"));
    /// ```
    #[must_use = "dropping the guard immediately records a ~0 ms span"]
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        self.span_impl(name, false)
    }

    /// Starts a timed span that aggregates under the **verbatim** `name`,
    /// without joining (or extending) the nesting path.
    ///
    /// Spans opened while a flat span is live keep their own paths —
    /// `span_flat("frame")` wrapping `span("tracking")` still aggregates
    /// the inner one as `"tracking"`, keeping report span paths stable —
    /// but the hierarchical [`SpanEvent`]s do record the flat span as the
    /// parent, so trace exports show the true tree.
    #[must_use = "dropping the guard immediately records a ~0 ms span"]
    pub fn span_flat(&self, name: &str) -> SpanGuard<'_> {
        self.span_impl(name, true)
    }

    fn span_impl(&self, name: &str, flat: bool) -> SpanGuard<'_> {
        let Some(cell) = &self.inner else {
            return SpanGuard { live: None };
        };
        let mut inner = cell.borrow_mut();
        let path = if flat {
            name.to_string()
        } else {
            inner.stack.push(name.to_string());
            inner.stack.join("/")
        };
        let id = inner.next_event_id;
        inner.next_event_id += 1;
        let parent = inner.event_stack.last().copied();
        inner.event_stack.push(id);
        let start_ns = inner.clock.now_ns();
        drop(inner);
        SpanGuard {
            live: Some(LiveSpan {
                telemetry: self,
                path,
                name: name.to_string(),
                id,
                parent,
                flat,
                lane: timebase::lane_id(),
                run: timebase::run_id(),
                start_ns,
            }),
        }
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(cell) = &self.inner {
            let mut inner = cell.borrow_mut();
            *inner.counters.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(cell) = &self.inner {
            cell.borrow_mut().gauges.insert(name.to_string(), value);
        }
    }

    /// Appends one per-frame SLAM record (also streamed to an attached
    /// JSONL sink).
    pub fn record_frame(&self, record: FrameRecord) {
        if let Some(cell) = &self.inner {
            let mut inner = cell.borrow_mut();
            if let Some(sink) = &mut inner.sink {
                sink.frame(&record);
            }
            inner.frames.push(record);
        }
    }

    /// Records one externally-measured duration under `path`, without
    /// touching the live span stack.
    ///
    /// Used to import measurements the RAII guards cannot take themselves —
    /// e.g. per-worker busy time from the render worker pool, whose threads
    /// never see this (`!Sync`) handle.
    pub fn record_span_ms(&self, path: &str, ms: f64) {
        if let Some(cell) = &self.inner {
            cell.borrow_mut()
                .spans
                .entry(path.to_string())
                .or_default()
                .record(ms);
        }
    }

    /// Imports the render worker pool's per-worker activity since `before`
    /// (a [`pool::worker_stats_snapshot`] taken earlier) as `pool/worker<i>`
    /// spans, plus a `pool/workers` gauge with the number of active workers.
    ///
    /// The pool registry is process-global and monotonic, so callers bracket
    /// the phase of interest with a snapshot and this call.
    pub fn record_pool_workers(&self, before: &[pool::WorkerStats]) {
        if self.inner.is_none() {
            return;
        }
        let after = pool::worker_stats_snapshot();
        let deltas: Vec<pool::WorkerStats> = after
            .iter()
            .map(|w| {
                let prev_ms = before
                    .iter()
                    .find(|b| b.worker == w.worker)
                    .map_or(0.0, |b| b.busy_ms);
                let prev_chunks = before
                    .iter()
                    .find(|b| b.worker == w.worker)
                    .map_or(0, |b| b.chunks);
                pool::WorkerStats {
                    worker: w.worker,
                    busy_ms: w.busy_ms - prev_ms,
                    chunks: w.chunks.saturating_sub(prev_chunks),
                }
            })
            .collect();
        self.record_pool_worker_deltas(&deltas);
    }

    /// Imports pre-computed per-worker activity deltas as `pool/worker<i>`
    /// spans plus the `pool/workers` gauge.
    ///
    /// Used when the caller cannot bracket one contiguous window — e.g. a
    /// multi-session manager interleaving sessions must accumulate each
    /// session's own before/after deltas across its scheduling slices and
    /// import the sum here, so one session's report never absorbs another
    /// session's pool activity.
    pub fn record_pool_worker_deltas(&self, deltas: &[pool::WorkerStats]) {
        if self.inner.is_none() {
            return;
        }
        let mut active = 0u64;
        for w in deltas {
            if w.busy_ms > 0.0 {
                active += 1;
                self.record_span_ms(&format!("pool/worker{}", w.worker), w.busy_ms);
            }
        }
        if active > 0 {
            self.gauge_set("pool/workers", active as f64);
        }
    }

    /// Exports every counter of a render trace under `prefix` (e.g.
    /// `tracking`), plus derived utilization/contention gauges.
    ///
    /// The destructuring below is deliberately exhaustive (no `..`): adding a
    /// field to [`ForwardStats`] or [`BackwardStats`] fails compilation here
    /// until the new counter is exported — the same drift-proofing contract
    /// as [`RenderTrace::merge`].
    pub fn record_trace(&self, prefix: &str, trace: &RenderTrace) {
        if self.inner.is_none() {
            return;
        }
        let RenderTrace {
            forward,
            backward,
            pixel_lists: _,     // raw distributions; summarized via Summary fields
            proj_candidates: _, // below, not exported element-wise
        } = trace;

        let ForwardStats {
            gaussians_input,
            gaussians_culled,
            gaussians_projected,
            tile_pairs,
            proj_alpha_checks,
            bin_candidates,
            proj_pairs_kept,
            sort_elems,
            sort_lists,
            sort_group_reuse,
            raster_alpha_checks,
            pairs_integrated,
            pixels_shaded,
            exp_evals,
            warp_steps,
            warp_active,
            pixel_list_len,
            bytes_read,
            bytes_written,
        } = forward;
        let fwd = [
            ("gaussians_input", *gaussians_input),
            ("gaussians_culled", *gaussians_culled),
            ("gaussians_projected", *gaussians_projected),
            ("tile_pairs", *tile_pairs),
            ("proj_alpha_checks", *proj_alpha_checks),
            ("bin_candidates", *bin_candidates),
            ("proj_pairs_kept", *proj_pairs_kept),
            ("sort_elems", *sort_elems),
            ("sort_lists", *sort_lists),
            ("sort_group_reuse", *sort_group_reuse),
            ("raster_alpha_checks", *raster_alpha_checks),
            ("pairs_integrated", *pairs_integrated),
            ("pixels_shaded", *pixels_shaded),
            ("exp_evals", *exp_evals),
            ("warp_steps", *warp_steps),
            ("warp_active", *warp_active),
            ("bytes_read", *bytes_read),
            ("bytes_written", *bytes_written),
        ];
        for (name, value) in fwd {
            self.counter_add(&format!("{prefix}/forward/{name}"), value);
        }
        self.gauge_set(
            &format!("{prefix}/forward/pixel_list_len_mean"),
            pixel_list_len.mean(),
        );
        self.gauge_set(
            &format!("{prefix}/forward/warp_utilization"),
            forward.warp_utilization(),
        );

        let BackwardStats {
            alpha_checks,
            pairs_grad,
            reduction_ops,
            atomic_adds,
            exp_evals,
            warp_steps,
            warp_active,
            gaussian_touches,
            gaussians_touched,
            reprojections,
            bytes_read,
            bytes_written,
        } = backward;
        let bwd = [
            ("alpha_checks", *alpha_checks),
            ("pairs_grad", *pairs_grad),
            ("reduction_ops", *reduction_ops),
            ("atomic_adds", *atomic_adds),
            ("exp_evals", *exp_evals),
            ("warp_steps", *warp_steps),
            ("warp_active", *warp_active),
            ("gaussians_touched", *gaussians_touched),
            ("reprojections", *reprojections),
            ("bytes_read", *bytes_read),
            ("bytes_written", *bytes_written),
        ];
        for (name, value) in bwd {
            self.counter_add(&format!("{prefix}/backward/{name}"), value);
        }
        self.gauge_set(
            &format!("{prefix}/backward/mean_contention"),
            gaussian_touches.mean(),
        );
        self.gauge_set(
            &format!("{prefix}/backward/warp_utilization"),
            backward.warp_utilization(),
        );
    }

    /// Snapshots everything recorded so far into a [`RunReport`],
    /// including the per-frame track/map latency histograms
    /// (`frame/track_ms` counts every non-anchor frame, `frame/map_ms`
    /// only frames where mapping ran).
    ///
    /// The handle stays usable afterwards (the report is a copy), so a
    /// caller can emit intermediate reports from a long run. If a JSONL
    /// stream is attached, counter/gauge totals and a `run_end` record are
    /// written on every `finish` call.
    pub fn finish(&self, name: &str, accuracy: AccuracySummary) -> RunReport {
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut report = RunReport {
            name: name.to_string(),
            date: utc_date(unix_time),
            unix_time,
            frames: Vec::new(),
            spans: Vec::new(),
            counters: Vec::new(),
            gauges: Vec::new(),
            latency: Vec::new(),
            accuracy,
        };
        if let Some(cell) = &self.inner {
            let mut inner = cell.borrow_mut();
            report.frames = inner.frames.clone();
            report.spans = inner
                .spans
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            report.counters = inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            report.gauges = inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect();

            let mut track = LogHistogram::new();
            let mut map = LogHistogram::new();
            for f in &report.frames {
                if f.track_iters > 0 {
                    track.record_ms(f.track_ms);
                }
                if f.map_invoked {
                    map.record_ms(f.map_ms);
                }
            }
            report.latency = vec![
                ("frame/track_ms".to_string(), track),
                ("frame/map_ms".to_string(), map),
            ];

            let counters: Vec<(String, u64)> = report.counters.clone();
            let gauges: Vec<(String, f64)> = report.gauges.clone();
            let end_ns = inner.clock.now_ns();
            if let Some(sink) = &mut inner.sink {
                for (k, v) in &counters {
                    sink.counter(k, *v);
                }
                for (k, v) in &gauges {
                    sink.gauge(k, *v);
                }
                sink.run_end(name, end_ns);
            }
        }
        report
    }

    fn end_span(&self, live: LiveSpan<'_>) {
        if let Some(cell) = &self.inner {
            let mut inner = cell.borrow_mut();
            let dur_ns = inner.clock.now_ns().saturating_sub(live.start_ns);
            if !live.flat {
                inner.stack.pop();
            }
            inner.event_stack.pop();
            inner
                .spans
                .entry(live.path.clone())
                .or_default()
                .record(dur_ns as f64 / 1e6);
            let event = SpanEvent {
                id: live.id,
                parent: live.parent,
                path: live.path,
                name: live.name,
                lane: live.lane,
                run: live.run,
                start_ns: live.start_ns,
                dur_ns,
            };
            if let Some(sink) = &mut inner.sink {
                sink.span(&event);
            }
            if inner.events.len() < MAX_SPAN_EVENTS {
                inner.events.push(event);
            } else {
                inner.events_dropped += 1;
            }
        }
    }

    /// Attaches an incrementally-flushed JSONL event stream: a `run_start`
    /// record immediately, one record per completed span and frame as they
    /// happen, and counter/gauge totals plus `run_end` at
    /// [`Telemetry::finish`]. Each record is one compact JSON object per
    /// line, flushed as written, so `tail -f` on the file follows the run
    /// live. A later call replaces the previous stream.
    pub fn stream_events_to(&self, out: Box<dyn std::io::Write>) {
        if let Some(cell) = &self.inner {
            let mut inner = cell.borrow_mut();
            let ts = inner.clock.now_ns();
            let mut sink = EventSink::new(out);
            sink.run_start(ts);
            inner.sink = Some(sink);
        }
    }

    /// Snapshot of the hierarchical span events completed so far.
    pub fn span_events(&self) -> Vec<SpanEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |cell| cell.borrow().events.clone())
    }

    /// Writes a Chrome trace-event JSON file merging this handle's span
    /// events with the pool and render-phase activity captured since
    /// `session` began (see [`TraceSession`]). Loadable in Perfetto /
    /// `chrome://tracing`; validated by `scripts/check_trace.py`.
    pub fn write_chrome_trace(
        &self,
        session: &TraceSession,
        path: &std::path::Path,
    ) -> std::io::Result<()> {
        self.write_chrome_trace_merged(session, &[], path)
    }

    /// Like [`Telemetry::write_chrome_trace`], but additionally merges
    /// `extra_spans` — span events collected on *other* telemetry handles —
    /// into the same timeline.
    ///
    /// A multi-session driver owns one telemetry handle per session (the
    /// handle is `!Sync`); this export lets it emit one fleet-wide trace
    /// where each session's spans land in that session's process group
    /// (sessions are distinguished by [`SpanEvent::run`]).
    pub fn write_chrome_trace_merged(
        &self,
        session: &TraceSession,
        extra_spans: &[SpanEvent],
        path: &std::path::Path,
    ) -> std::io::Result<()> {
        let mut events = self.span_events();
        events.extend_from_slice(extra_spans);
        let doc = trace::chrome_trace_json(&events, session);
        let mut text = doc.to_string_pretty();
        text.push('\n');
        std::fs::write(path, text)
    }
}

struct LiveSpan<'a> {
    telemetry: &'a Telemetry,
    path: String,
    name: String,
    id: u32,
    parent: Option<u32>,
    flat: bool,
    lane: u32,
    run: u32,
    start_ns: u64,
}

/// RAII guard returned by [`Telemetry::span`]; records on drop.
pub struct SpanGuard<'a> {
    /// `None` when the telemetry handle is disabled — dropping is free.
    live: Option<LiveSpan<'a>>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let telemetry: &Telemetry = live.telemetry;
            telemetry.end_span(live);
        }
    }
}

/// Checks a counter/gauge name against the `subsystem/name` convention:
/// at least two non-empty `/`-separated segments of
/// `[a-z0-9_-]` characters.
///
/// ```
/// use splatonic_telemetry::validate_metric_name as v;
/// assert!(v("slam/checkpoints_written").is_ok());
/// assert!(v("unprefixed").is_err());
/// assert!(v("Bad/Case").is_err());
/// ```
pub fn validate_metric_name(name: &str) -> Result<(), String> {
    let segments: Vec<&str> = name.split('/').collect();
    if segments.len() < 2 {
        return Err(format!(
            "metric {name:?} lacks a subsystem prefix (want subsystem/name)"
        ));
    }
    for seg in &segments {
        if seg.is_empty() {
            return Err(format!("metric {name:?} has an empty path segment"));
        }
        if !seg
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
        {
            return Err(format!(
                "metric {name:?} has characters outside [a-z0-9_-] in segment {seg:?}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_build_slash_paths() {
        let t = Telemetry::enabled();
        for _ in 0..3 {
            let _track = t.span("tracking");
            {
                let _fwd = t.span("forward");
            }
            let _bwd = t.span("backward");
        }
        let report = t.finish("r", AccuracySummary::default());
        let paths: Vec<&str> = report.spans.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(
            paths,
            vec!["tracking", "tracking/backward", "tracking/forward"]
        );
        for (_, stats) in &report.spans {
            assert_eq!(stats.count(), 3);
        }
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let t = Telemetry::enabled();
        {
            let _a = t.span("a");
        }
        {
            let _b = t.span("b");
        }
        let report = t.finish("r", AccuracySummary::default());
        let paths: Vec<&str> = report.spans.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["a", "b"]);
    }

    #[test]
    fn record_span_ms_bypasses_the_stack() {
        let t = Telemetry::enabled();
        {
            let _outer = t.span("tracking");
            // Imported spans land at their own path, not under "tracking/".
            t.record_span_ms("pool/worker0", 3.0);
            t.record_span_ms("pool/worker0", 5.0);
        }
        let report = t.finish("r", AccuracySummary::default());
        let (_, stats) = report
            .spans
            .iter()
            .find(|(p, _)| p == "pool/worker0")
            .expect("imported span present");
        assert_eq!(stats.count(), 2);
        assert!((stats.total_ms() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn pool_worker_deltas_become_spans() {
        let t = Telemetry::enabled();
        let before = pool::worker_stats_snapshot();
        // Drive the pool so at least worker 0 accrues busy time.
        let items: Vec<u64> = (0..4096).collect();
        let _ = pool::par_chunks_indexed(2, &items, 64, |_, _, c| {
            c.iter().map(|&x| x.wrapping_mul(x)).sum::<u64>()
        });
        t.record_pool_workers(&before);
        let report = t.finish("r", AccuracySummary::default());
        assert!(
            report
                .spans
                .iter()
                .any(|(p, _)| p.starts_with("pool/worker")),
            "expected pool worker spans, got {:?}",
            report.spans.iter().map(|(p, _)| p).collect::<Vec<_>>()
        );
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        {
            let _s = t.span("tracking");
            t.counter_add("c", 5);
            t.gauge_set("g", 1.0);
            t.record_frame(FrameRecord {
                frame_idx: 0,
                track_iters: 0,
                map_invoked: false,
                sampled_pixels: 0,
                map_sampled_pixels: 0,
                gaussian_count: 0,
                cache_hits: 0,
                cache_invalidations: 0,
                psnr_db: 0.0,
                ate_so_far_cm: 0.0,
                track_ms: 0.0,
                map_ms: 0.0,
            });
            t.record_trace("x", &RenderTrace::new());
        }
        let report = t.finish("r", AccuracySummary::default());
        assert!(report.spans.is_empty());
        assert!(report.counters.is_empty());
        assert!(report.gauges.is_empty());
        assert!(report.frames.is_empty());
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let t = Telemetry::enabled();
        t.counter_add("pairs", 3);
        t.counter_add("pairs", 4);
        t.gauge_set("util", 0.2);
        t.gauge_set("util", 0.9);
        let report = t.finish("r", AccuracySummary::default());
        assert_eq!(report.counters, vec![("pairs".to_string(), 7)]);
        assert_eq!(report.gauges, vec![("util".to_string(), 0.9)]);
    }

    #[test]
    fn record_trace_exports_forward_and_backward_counters() {
        let mut trace = RenderTrace::new();
        trace.forward.pairs_integrated = 42;
        trace.forward.pixels_shaded = 7;
        trace.forward.warp_steps = 10;
        trace.forward.warp_active = 160;
        trace.backward.atomic_adds = 11;
        trace.backward.gaussian_touches.push(4.0);
        let t = Telemetry::enabled();
        t.record_trace("tracking", &trace);
        t.record_trace("tracking", &trace); // counters sum across calls
        let report = t.finish("r", AccuracySummary::default());
        let get = |name: &str| {
            report
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(get("tracking/forward/pairs_integrated"), Some(84));
        assert_eq!(get("tracking/forward/pixels_shaded"), Some(14));
        assert_eq!(get("tracking/backward/atomic_adds"), Some(22));
        let util = report
            .gauges
            .iter()
            .find(|(n, _)| n == "tracking/forward/warp_utilization")
            .map(|(_, v)| *v)
            .unwrap();
        assert!((util - 0.5).abs() < 1e-12);
    }

    #[test]
    fn span_events_record_hierarchy_and_exact_durations() {
        let clock = TestClock::new();
        let t = Telemetry::with_clock(clock.clone());
        {
            let _frame = t.span_flat("frame");
            clock.advance_ns(1_000);
            {
                let _track = t.span("tracking");
                clock.advance_ns(2_000_000); // 2 ms
                {
                    let _fwd = t.span("forward");
                    clock.advance_ns(500_000); // 0.5 ms
                }
            }
            clock.advance_ns(1_000);
        }
        let events = t.span_events();
        // Completion order: innermost first.
        assert_eq!(events.len(), 3);
        let fwd = &events[0];
        let track = &events[1];
        let frame = &events[2];
        assert_eq!(frame.path, "frame");
        assert_eq!(frame.parent, None);
        assert_eq!(track.path, "tracking"); // flat parent does not extend paths
        assert_eq!(track.parent, Some(frame.id));
        assert_eq!(fwd.path, "tracking/forward");
        assert_eq!(fwd.parent, Some(track.id));
        // Durations are exact on the test clock.
        assert_eq!(fwd.dur_ns, 500_000);
        assert_eq!(track.dur_ns, 2_500_000);
        assert_eq!(frame.dur_ns, 2_502_000);
        // Windows nest: child inside parent.
        assert!(track.start_ns >= frame.start_ns);
        assert!(track.start_ns + track.dur_ns <= frame.start_ns + frame.dur_ns);
        // All on this thread's lane.
        let lane = splatonic_math::timebase::lane_id();
        assert!(events.iter().all(|e| e.lane == lane));
        // Aggregates: "frame" recorded verbatim, inner paths unchanged.
        let report = t.finish("r", AccuracySummary::default());
        let paths: Vec<&str> = report.spans.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["frame", "tracking", "tracking/forward"]);
    }

    #[test]
    fn spans_record_the_recording_threads_lane() {
        // The handle is !Sync, so each thread owns its own handle; lanes
        // attribute events to threads across handles.
        let here = {
            let t = Telemetry::enabled();
            let _s = t.span("a");
            drop(_s);
            t.span_events()[0].lane
        };
        let there = std::thread::spawn(|| {
            let t = Telemetry::enabled();
            let _s = t.span("a");
            drop(_s);
            t.span_events()[0].lane
        })
        .join()
        .unwrap();
        assert_ne!(here, there);
    }

    #[test]
    fn frame_latency_histograms_land_in_the_report() {
        let clock = TestClock::new();
        let t = Telemetry::with_clock(clock);
        let frame = |idx: usize, track_ms: f64, map: Option<f64>| FrameRecord {
            frame_idx: idx,
            track_iters: 10,
            map_invoked: map.is_some(),
            sampled_pixels: 1,
            map_sampled_pixels: 0,
            gaussian_count: 1,
            cache_hits: 0,
            cache_invalidations: 0,
            psnr_db: f64::NAN,
            ate_so_far_cm: 0.0,
            track_ms,
            map_ms: map.unwrap_or(0.0),
        };
        t.record_frame(frame(1, 1.0, None));
        t.record_frame(frame(2, 1.0, Some(8.0)));
        t.record_frame(frame(3, 30.0, None));
        let report = t.finish("r", AccuracySummary::default());
        let track = &report
            .latency
            .iter()
            .find(|(n, _)| n == "frame/track_ms")
            .unwrap()
            .1;
        let map = &report
            .latency
            .iter()
            .find(|(n, _)| n == "frame/map_ms")
            .unwrap()
            .1;
        assert_eq!(track.count(), 3);
        assert_eq!(map.count(), 1, "map histogram only counts mapping frames");
        // 1 ms = 1000 µs → bucket 10 (upper edge 1.024 ms).
        assert_eq!(track.p50_ms(), LogHistogram::bucket_upper_ms(10));
        // 30 ms = 30000 µs → bucket 15 (upper edge 32.768 ms).
        assert_eq!(track.p99_ms(), LogHistogram::bucket_upper_ms(15));
    }

    #[test]
    fn jsonl_stream_is_tailable_line_by_line() {
        use std::io::Write;
        use std::rc::Rc;
        #[derive(Clone, Default)]
        struct Buf(Rc<RefCell<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let clock = TestClock::new();
        let t = Telemetry::with_clock(clock.clone());
        let buf = Buf::default();
        t.stream_events_to(Box::new(buf.clone()));
        {
            let _s = t.span("tracking");
            clock.advance_ns(1_000_000);
        }
        t.counter_add("slam/frames", 1);
        let _ = t.finish("stream-unit", AccuracySummary::default());

        let text = String::from_utf8(buf.0.borrow().clone()).unwrap();
        let types: Vec<String> = text
            .lines()
            .map(|l| {
                let doc = json::parse(l).expect("each line parses standalone");
                match doc.get("type").unwrap() {
                    Json::Str(s) => s.clone(),
                    other => panic!("bad type field {other:?}"),
                }
            })
            .collect();
        assert_eq!(types[0], "run_start");
        assert!(types.contains(&"span".to_string()));
        assert!(types.contains(&"counter".to_string()));
        assert_eq!(types.last().unwrap(), "run_end");
        // Span lines appear before run_end (incremental, not batched).
        let span_pos = types.iter().position(|t| t == "span").unwrap();
        let end_pos = types.iter().position(|t| t == "run_end").unwrap();
        assert!(span_pos < end_pos);
    }

    #[test]
    fn metric_name_validation_enforces_subsystem_prefix() {
        assert!(validate_metric_name("slam/checkpoints_written").is_ok());
        assert!(validate_metric_name("hw/splatonic-hw/seconds").is_ok());
        assert!(validate_metric_name("pool/worker0").is_ok());
        assert!(validate_metric_name("unprefixed").is_err());
        assert!(validate_metric_name("trailing/").is_err());
        assert!(validate_metric_name("/leading").is_err());
        assert!(validate_metric_name("Upper/case").is_err());
        assert!(validate_metric_name("spa ce/x").is_err());
    }

    #[test]
    fn finish_report_is_valid_json() {
        let t = Telemetry::enabled();
        {
            let _s = t.span("tracking");
        }
        t.counter_add("tracking/forward/pixels_shaded", 9);
        let report = t.finish(
            "unit",
            AccuracySummary {
                ate_cm: 1.0,
                psnr_db: 20.0,
                frames: 1,
                scene_size: 10,
            },
        );
        let doc = json::parse(&report.to_json_string()).expect("valid JSON");
        assert_eq!(doc.get("name").unwrap(), &Json::Str("unit".into()));
        assert!(doc.get("spans").unwrap().get("tracking").is_some());
    }
}
