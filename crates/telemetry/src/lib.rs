//! Dependency-free telemetry for the SPLATONIC suite.
//!
//! One [`Telemetry`] handle carries everything an instrumented run records:
//!
//! * **Spans** — RAII wall-clock timers ([`Telemetry::span`]) that nest; a
//!   guard created while another is live records under the `/`-joined path
//!   (`tracking/forward`). Each path keeps count/total/min/max/p50/p95
//!   ([`SpanStats`]).
//! * **Counters and gauges** — monotonic `u64` counters and point-in-time
//!   `f64` gauges. [`Telemetry::record_trace`] exports every field of a
//!   renderer [`RenderTrace`] as counters (exhaustively destructured, so a
//!   new trace field is a compile error here until it is exported).
//! * **Frames** — per-frame SLAM records ([`FrameRecord`]) forming the
//!   accuracy/workload trajectory of a run.
//! * **Reports** — [`Telemetry::finish`] snapshots everything into a
//!   [`RunReport`] that serializes to JSON ([`json::Json`]) or renders as
//!   aligned text.
//!
//! The handle is deliberately cheap to thread everywhere: a disabled handle
//! ([`Telemetry::disabled`]) holds no state and every operation on it —
//! including [`Telemetry::span`] — returns without allocating, so hot render
//! loops can take `&Telemetry` unconditionally.
//!
//! Everything here is hand-rolled on `std` only: the suite builds offline,
//! so no `tracing`, no `serde` (DESIGN.md "Telemetry & run reports").

pub mod frame;
pub mod json;
pub mod report;
pub mod span;

pub use frame::FrameRecord;
pub use json::Json;
pub use report::{utc_date, AccuracySummary, RunReport};
pub use span::SpanStats;

use splatonic_math::pool;
use splatonic_render::trace::{BackwardStats, ForwardStats, RenderTrace};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

#[derive(Debug, Default)]
struct Inner {
    /// Live span names, innermost last; joined with `/` to form paths.
    stack: Vec<String>,
    spans: BTreeMap<String, SpanStats>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    frames: Vec<FrameRecord>,
}

/// Telemetry sink for one run.
///
/// Not `Sync`; each run owns its handle (the suite is single-threaded by
/// design — determinism first, see DESIGN.md).
#[derive(Debug, Default)]
pub struct Telemetry {
    /// `None` = disabled: every method is a no-op and allocates nothing.
    inner: Option<RefCell<Inner>>,
}

impl Telemetry {
    /// An enabled, empty telemetry sink.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(RefCell::new(Inner::default())),
        }
    }

    /// A disabled sink: all operations no-op without allocating.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a timed span. The returned guard records elapsed wall-clock
    /// milliseconds under the current nesting path when dropped.
    ///
    /// ```
    /// let t = splatonic_telemetry::Telemetry::enabled();
    /// {
    ///     let _outer = t.span("tracking");
    ///     let _inner = t.span("forward"); // records as "tracking/forward"
    /// }
    /// let report = t.finish("doc", Default::default());
    /// assert!(report.spans.iter().any(|(p, _)| p == "tracking/forward"));
    /// ```
    #[must_use = "dropping the guard immediately records a ~0 ms span"]
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let Some(cell) = &self.inner else {
            return SpanGuard { live: None };
        };
        let mut inner = cell.borrow_mut();
        inner.stack.push(name.to_string());
        let path = inner.stack.join("/");
        drop(inner);
        SpanGuard {
            live: Some(LiveSpan {
                telemetry: self,
                path,
                start: Instant::now(),
            }),
        }
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(cell) = &self.inner {
            let mut inner = cell.borrow_mut();
            *inner.counters.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(cell) = &self.inner {
            cell.borrow_mut().gauges.insert(name.to_string(), value);
        }
    }

    /// Appends one per-frame SLAM record.
    pub fn record_frame(&self, record: FrameRecord) {
        if let Some(cell) = &self.inner {
            cell.borrow_mut().frames.push(record);
        }
    }

    /// Records one externally-measured duration under `path`, without
    /// touching the live span stack.
    ///
    /// Used to import measurements the RAII guards cannot take themselves —
    /// e.g. per-worker busy time from the render worker pool, whose threads
    /// never see this (`!Sync`) handle.
    pub fn record_span_ms(&self, path: &str, ms: f64) {
        if let Some(cell) = &self.inner {
            cell.borrow_mut()
                .spans
                .entry(path.to_string())
                .or_default()
                .record(ms);
        }
    }

    /// Imports the render worker pool's per-worker activity since `before`
    /// (a [`pool::worker_stats_snapshot`] taken earlier) as `pool/worker<i>`
    /// spans, plus a `pool/workers` gauge with the number of active workers.
    ///
    /// The pool registry is process-global and monotonic, so callers bracket
    /// the phase of interest with a snapshot and this call.
    pub fn record_pool_workers(&self, before: &[pool::WorkerStats]) {
        if self.inner.is_none() {
            return;
        }
        let after = pool::worker_stats_snapshot();
        let mut active = 0u64;
        for w in &after {
            let prev_ms = before
                .iter()
                .find(|b| b.worker == w.worker)
                .map_or(0.0, |b| b.busy_ms);
            let delta = w.busy_ms - prev_ms;
            if delta > 0.0 {
                active += 1;
                self.record_span_ms(&format!("pool/worker{}", w.worker), delta);
            }
        }
        if active > 0 {
            self.gauge_set("pool/workers", active as f64);
        }
    }

    /// Exports every counter of a render trace under `prefix` (e.g.
    /// `tracking`), plus derived utilization/contention gauges.
    ///
    /// The destructuring below is deliberately exhaustive (no `..`): adding a
    /// field to [`ForwardStats`] or [`BackwardStats`] fails compilation here
    /// until the new counter is exported — the same drift-proofing contract
    /// as [`RenderTrace::merge`].
    pub fn record_trace(&self, prefix: &str, trace: &RenderTrace) {
        if self.inner.is_none() {
            return;
        }
        let RenderTrace {
            forward,
            backward,
            pixel_lists: _,     // raw distributions; summarized via Summary fields
            proj_candidates: _, // below, not exported element-wise
        } = trace;

        let ForwardStats {
            gaussians_input,
            gaussians_culled,
            gaussians_projected,
            tile_pairs,
            proj_alpha_checks,
            bin_candidates,
            proj_pairs_kept,
            sort_elems,
            sort_lists,
            raster_alpha_checks,
            pairs_integrated,
            pixels_shaded,
            exp_evals,
            warp_steps,
            warp_active,
            pixel_list_len,
            bytes_read,
            bytes_written,
        } = forward;
        let fwd = [
            ("gaussians_input", *gaussians_input),
            ("gaussians_culled", *gaussians_culled),
            ("gaussians_projected", *gaussians_projected),
            ("tile_pairs", *tile_pairs),
            ("proj_alpha_checks", *proj_alpha_checks),
            ("bin_candidates", *bin_candidates),
            ("proj_pairs_kept", *proj_pairs_kept),
            ("sort_elems", *sort_elems),
            ("sort_lists", *sort_lists),
            ("raster_alpha_checks", *raster_alpha_checks),
            ("pairs_integrated", *pairs_integrated),
            ("pixels_shaded", *pixels_shaded),
            ("exp_evals", *exp_evals),
            ("warp_steps", *warp_steps),
            ("warp_active", *warp_active),
            ("bytes_read", *bytes_read),
            ("bytes_written", *bytes_written),
        ];
        for (name, value) in fwd {
            self.counter_add(&format!("{prefix}/forward/{name}"), value);
        }
        self.gauge_set(
            &format!("{prefix}/forward/pixel_list_len_mean"),
            pixel_list_len.mean(),
        );
        self.gauge_set(
            &format!("{prefix}/forward/warp_utilization"),
            forward.warp_utilization(),
        );

        let BackwardStats {
            alpha_checks,
            pairs_grad,
            reduction_ops,
            atomic_adds,
            exp_evals,
            warp_steps,
            warp_active,
            gaussian_touches,
            gaussians_touched,
            reprojections,
            bytes_read,
            bytes_written,
        } = backward;
        let bwd = [
            ("alpha_checks", *alpha_checks),
            ("pairs_grad", *pairs_grad),
            ("reduction_ops", *reduction_ops),
            ("atomic_adds", *atomic_adds),
            ("exp_evals", *exp_evals),
            ("warp_steps", *warp_steps),
            ("warp_active", *warp_active),
            ("gaussians_touched", *gaussians_touched),
            ("reprojections", *reprojections),
            ("bytes_read", *bytes_read),
            ("bytes_written", *bytes_written),
        ];
        for (name, value) in bwd {
            self.counter_add(&format!("{prefix}/backward/{name}"), value);
        }
        self.gauge_set(
            &format!("{prefix}/backward/mean_contention"),
            gaussian_touches.mean(),
        );
        self.gauge_set(
            &format!("{prefix}/backward/warp_utilization"),
            backward.warp_utilization(),
        );
    }

    /// Snapshots everything recorded so far into a [`RunReport`].
    ///
    /// The handle stays usable afterwards (the report is a copy), so a
    /// caller can emit intermediate reports from a long run.
    pub fn finish(&self, name: &str, accuracy: AccuracySummary) -> RunReport {
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut report = RunReport {
            name: name.to_string(),
            date: utc_date(unix_time),
            unix_time,
            frames: Vec::new(),
            spans: Vec::new(),
            counters: Vec::new(),
            gauges: Vec::new(),
            accuracy,
        };
        if let Some(cell) = &self.inner {
            let inner = cell.borrow();
            report.frames = inner.frames.clone();
            report.spans = inner
                .spans
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            report.counters = inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            report.gauges = inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect();
        }
        report
    }

    fn end_span(&self, path: &str, elapsed_ms: f64) {
        if let Some(cell) = &self.inner {
            let mut inner = cell.borrow_mut();
            inner.stack.pop();
            inner
                .spans
                .entry(path.to_string())
                .or_default()
                .record(elapsed_ms);
        }
    }
}

struct LiveSpan<'a> {
    telemetry: &'a Telemetry,
    path: String,
    start: Instant,
}

/// RAII guard returned by [`Telemetry::span`]; records on drop.
pub struct SpanGuard<'a> {
    /// `None` when the telemetry handle is disabled — dropping is free.
    live: Option<LiveSpan<'a>>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let ms = live.start.elapsed().as_secs_f64() * 1e3;
            live.telemetry.end_span(&live.path, ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_build_slash_paths() {
        let t = Telemetry::enabled();
        for _ in 0..3 {
            let _track = t.span("tracking");
            {
                let _fwd = t.span("forward");
            }
            let _bwd = t.span("backward");
        }
        let report = t.finish("r", AccuracySummary::default());
        let paths: Vec<&str> = report.spans.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(
            paths,
            vec!["tracking", "tracking/backward", "tracking/forward"]
        );
        for (_, stats) in &report.spans {
            assert_eq!(stats.count(), 3);
        }
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let t = Telemetry::enabled();
        {
            let _a = t.span("a");
        }
        {
            let _b = t.span("b");
        }
        let report = t.finish("r", AccuracySummary::default());
        let paths: Vec<&str> = report.spans.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["a", "b"]);
    }

    #[test]
    fn record_span_ms_bypasses_the_stack() {
        let t = Telemetry::enabled();
        {
            let _outer = t.span("tracking");
            // Imported spans land at their own path, not under "tracking/".
            t.record_span_ms("pool/worker0", 3.0);
            t.record_span_ms("pool/worker0", 5.0);
        }
        let report = t.finish("r", AccuracySummary::default());
        let (_, stats) = report
            .spans
            .iter()
            .find(|(p, _)| p == "pool/worker0")
            .expect("imported span present");
        assert_eq!(stats.count(), 2);
        assert!((stats.total_ms() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn pool_worker_deltas_become_spans() {
        let t = Telemetry::enabled();
        let before = pool::worker_stats_snapshot();
        // Drive the pool so at least worker 0 accrues busy time.
        let items: Vec<u64> = (0..4096).collect();
        let _ = pool::par_chunks_indexed(2, &items, 64, |_, _, c| {
            c.iter().map(|&x| x.wrapping_mul(x)).sum::<u64>()
        });
        t.record_pool_workers(&before);
        let report = t.finish("r", AccuracySummary::default());
        assert!(
            report
                .spans
                .iter()
                .any(|(p, _)| p.starts_with("pool/worker")),
            "expected pool worker spans, got {:?}",
            report.spans.iter().map(|(p, _)| p).collect::<Vec<_>>()
        );
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        {
            let _s = t.span("tracking");
            t.counter_add("c", 5);
            t.gauge_set("g", 1.0);
            t.record_frame(FrameRecord {
                frame_idx: 0,
                track_iters: 0,
                map_invoked: false,
                sampled_pixels: 0,
                map_sampled_pixels: 0,
                gaussian_count: 0,
                cache_hits: 0,
                cache_invalidations: 0,
                psnr_db: 0.0,
                ate_so_far_cm: 0.0,
                track_ms: 0.0,
                map_ms: 0.0,
            });
            t.record_trace("x", &RenderTrace::new());
        }
        let report = t.finish("r", AccuracySummary::default());
        assert!(report.spans.is_empty());
        assert!(report.counters.is_empty());
        assert!(report.gauges.is_empty());
        assert!(report.frames.is_empty());
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let t = Telemetry::enabled();
        t.counter_add("pairs", 3);
        t.counter_add("pairs", 4);
        t.gauge_set("util", 0.2);
        t.gauge_set("util", 0.9);
        let report = t.finish("r", AccuracySummary::default());
        assert_eq!(report.counters, vec![("pairs".to_string(), 7)]);
        assert_eq!(report.gauges, vec![("util".to_string(), 0.9)]);
    }

    #[test]
    fn record_trace_exports_forward_and_backward_counters() {
        let mut trace = RenderTrace::new();
        trace.forward.pairs_integrated = 42;
        trace.forward.pixels_shaded = 7;
        trace.forward.warp_steps = 10;
        trace.forward.warp_active = 160;
        trace.backward.atomic_adds = 11;
        trace.backward.gaussian_touches.push(4.0);
        let t = Telemetry::enabled();
        t.record_trace("tracking", &trace);
        t.record_trace("tracking", &trace); // counters sum across calls
        let report = t.finish("r", AccuracySummary::default());
        let get = |name: &str| {
            report
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(get("tracking/forward/pairs_integrated"), Some(84));
        assert_eq!(get("tracking/forward/pixels_shaded"), Some(14));
        assert_eq!(get("tracking/backward/atomic_adds"), Some(22));
        let util = report
            .gauges
            .iter()
            .find(|(n, _)| n == "tracking/forward/warp_utilization")
            .map(|(_, v)| *v)
            .unwrap();
        assert!((util - 0.5).abs() < 1e-12);
    }

    #[test]
    fn finish_report_is_valid_json() {
        let t = Telemetry::enabled();
        {
            let _s = t.span("tracking");
        }
        t.counter_add("tracking/forward/pixels_shaded", 9);
        let report = t.finish(
            "unit",
            AccuracySummary {
                ate_cm: 1.0,
                psnr_db: 20.0,
                frames: 1,
                scene_size: 10,
            },
        );
        let doc = json::parse(&report.to_json_string()).expect("valid JSON");
        assert_eq!(doc.get("name").unwrap(), &Json::Str("unit".into()));
        assert!(doc.get("spans").unwrap().get("tracking").is_some());
    }
}
