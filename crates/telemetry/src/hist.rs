//! Fixed-bucket log2 latency histograms with deterministic percentiles.
//!
//! A [`LogHistogram`] buckets integer microseconds into 64 power-of-two
//! buckets whose boundaries are *fixed at compile time*: bucket 0 holds
//! sub-microsecond samples (`[0, 1) µs`) and bucket `k ≥ 1` holds
//! `[2^(k-1), 2^k) µs`, with the last bucket absorbing overflow. Because
//! the bucket grid never depends on the data, percentile extraction is
//! deterministic given the same multiset of bucketed samples, and merging
//! two histograms is a plain element-wise add — commutative and
//! associative, so per-worker histograms can be combined in any order
//! (property-tested below).
//!
//! Percentiles are nearest-rank over bucket counts and report the bucket's
//! **upper edge** in milliseconds — a conservative (never underestimating)
//! quantile with at most 2× resolution error, which is what a log2 grid
//! buys in exchange for O(1) memory on unbounded streams.

use crate::json::Json;

/// Number of buckets; the top bucket absorbs overflow.
pub const HIST_BUCKETS: usize = 64;

/// A fixed-bucket log2 histogram over microsecond durations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: [u64; HIST_BUCKETS],
    total: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: [0; HIST_BUCKETS],
            total: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a duration in microseconds: 0 for `[0, 1)`, else
    /// `k` for `[2^(k-1), 2^k)`, clamped into the top (overflow) bucket.
    pub fn bucket_of_us(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Upper edge of bucket `b`, in milliseconds (`2^b µs`, with bucket 0's
    /// edge at 1 µs).
    pub fn bucket_upper_ms(b: usize) -> f64 {
        // 2^b µs → ms; exact in f64 for every bucket index.
        (2.0f64).powi(b.min(HIST_BUCKETS - 1) as i32) / 1000.0
    }

    /// Records one duration in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.counts[Self::bucket_of_us(us)] += 1;
        self.total += 1;
    }

    /// Records one duration in milliseconds (rounded to whole microseconds;
    /// negative or non-finite inputs count as 0 µs).
    pub fn record_ms(&mut self, ms: f64) {
        let us = if ms.is_finite() && ms > 0.0 {
            (ms * 1000.0).round() as u64
        } else {
            0
        };
        self.record_us(us);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Raw bucket counts (index = [`LogHistogram::bucket_of_us`]).
    pub fn counts(&self) -> &[u64; HIST_BUCKETS] {
        &self.counts
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`) as the matched bucket's
    /// upper edge in milliseconds; 0 for an empty histogram.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.total);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_ms(b);
            }
        }
        Self::bucket_upper_ms(HIST_BUCKETS - 1)
    }

    /// Median (ms, bucket upper edge).
    pub fn p50_ms(&self) -> f64 {
        self.percentile_ms(50.0)
    }

    /// 95th percentile (ms, bucket upper edge).
    pub fn p95_ms(&self) -> f64 {
        self.percentile_ms(95.0)
    }

    /// 99th percentile (ms, bucket upper edge).
    pub fn p99_ms(&self) -> f64 {
        self.percentile_ms(99.0)
    }

    /// Merges `other` into `self` (element-wise add; order-independent).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
    }

    /// JSON object: `count`, `p50_ms`/`p95_ms`/`p99_ms`, and the non-zero
    /// buckets as `[bucket_index, count]` pairs.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("count", self.total)
            .set("p50_ms", self.p50_ms())
            .set("p95_ms", self.p95_ms())
            .set("p99_ms", self.p99_ms());
        let buckets: Vec<Json> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| Json::Arr(vec![Json::Int(b as i64), Json::Int(c as i64)]))
            .collect();
        o.set("buckets", Json::Arr(buckets));
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatonic_math::Rng64;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(LogHistogram::bucket_of_us(0), 0);
        assert_eq!(LogHistogram::bucket_of_us(1), 1);
        assert_eq!(LogHistogram::bucket_of_us(2), 2);
        assert_eq!(LogHistogram::bucket_of_us(3), 2);
        assert_eq!(LogHistogram::bucket_of_us(4), 3);
        assert_eq!(LogHistogram::bucket_of_us(1023), 10);
        assert_eq!(LogHistogram::bucket_of_us(1024), 11);
        // Overflow clamps into the top bucket.
        assert_eq!(LogHistogram::bucket_of_us(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50_ms(), 0.0);
        assert_eq!(h.p95_ms(), 0.0);
        assert_eq!(h.p99_ms(), 0.0);
    }

    #[test]
    fn one_sample_sets_every_percentile() {
        let mut h = LogHistogram::new();
        h.record_ms(1.0); // 1000 µs → bucket 10, upper edge 1.024 ms
        assert_eq!(h.count(), 1);
        let edge = LogHistogram::bucket_upper_ms(10);
        assert_eq!(h.p50_ms(), edge);
        assert_eq!(h.p95_ms(), edge);
        assert_eq!(h.p99_ms(), edge);
    }

    #[test]
    fn percentile_is_conservative_upper_edge() {
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.record_us(100); // bucket 7, upper edge 0.128 ms
        }
        h.record_us(100_000); // bucket 17, upper edge 131.072 ms
        assert_eq!(h.p50_ms(), LogHistogram::bucket_upper_ms(7));
        assert_eq!(h.p95_ms(), LogHistogram::bucket_upper_ms(7));
        assert!(h.p50_ms() >= 0.1, "upper edge never underestimates");
        assert_eq!(h.p99_ms(), LogHistogram::bucket_upper_ms(7));
        assert_eq!(h.percentile_ms(100.0), LogHistogram::bucket_upper_ms(17));
    }

    #[test]
    fn overflow_samples_land_in_the_top_bucket() {
        let mut h = LogHistogram::new();
        h.record_ms(f64::INFINITY); // non-finite → 0 µs
        h.record_ms(-5.0); // negative → 0 µs
        h.record_us(u64::MAX);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[HIST_BUCKETS - 1], 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = LogHistogram::new();
        a.record_us(1);
        a.record_us(1000);
        let mut b = LogHistogram::new();
        b.record_us(1);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.counts()[1], 2);
    }

    /// Property: merging per-worker histograms is order-independent —
    /// any permutation of the same parts yields an identical histogram.
    #[test]
    fn prop_merge_is_order_independent() {
        let mut rng = Rng64::seed_from_u64(0x5EED_0B5E);
        for _case in 0..64 {
            let parts: Vec<LogHistogram> = (0..8)
                .map(|_| {
                    let mut h = LogHistogram::new();
                    let n = (rng.next_u64() % 32) as usize;
                    for _ in 0..n {
                        // Spread samples across the full bucket range.
                        let shift = rng.next_u64() % 40;
                        h.record_us(rng.next_u64() >> (24 + shift.min(39)));
                    }
                    h
                })
                .collect();

            let merge_in = |order: &[usize]| {
                let mut acc = LogHistogram::new();
                for &i in order {
                    acc.merge(&parts[i]);
                }
                acc
            };
            let forward = merge_in(&[0, 1, 2, 3, 4, 5, 6, 7]);
            let reverse = merge_in(&[7, 6, 5, 4, 3, 2, 1, 0]);
            // A random shuffle (Fisher–Yates on the index array).
            let mut shuffled: Vec<usize> = (0..8).collect();
            for i in (1..8).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                shuffled.swap(i, j);
            }
            let random = merge_in(&shuffled);
            assert_eq!(forward, reverse);
            assert_eq!(forward, random, "order {shuffled:?} diverged");
        }
    }

    #[test]
    fn json_has_summary_and_sparse_buckets() {
        let mut h = LogHistogram::new();
        h.record_us(3);
        h.record_us(3);
        h.record_us(4096);
        let j = h.to_json();
        assert_eq!(j.get("count").unwrap().as_f64(), Some(3.0));
        assert!(j.get("p99_ms").unwrap().as_f64().is_some());
        let buckets = j.get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(buckets.len(), 2); // only non-zero buckets serialize
    }
}
