//! Hierarchical span events and the incremental JSONL event stream.
//!
//! Every completed span guard produces one [`SpanEvent`] carrying its
//! parent/child linkage (`id`/`parent`), its trace lane, and its window on
//! the shared monotonic timebase. The in-memory event list feeds the Chrome
//! trace export ([`crate::trace`]); when an [`EventSink`] is attached
//! ([`crate::Telemetry::stream_events_to`]) the same events — plus frame,
//! counter, gauge, and run lifecycle records — are written incrementally as
//! one JSON object per line and flushed after each line, so a live run can
//! be tailed (`tail -f events.jsonl`).

use crate::frame::FrameRecord;
use crate::json::Json;
use std::io::Write;

/// One completed hierarchical span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Event id, unique and increasing within one telemetry handle.
    pub id: u32,
    /// Id of the innermost span open when this one started, if any.
    pub parent: Option<u32>,
    /// Aggregation path (`/`-joined nesting, or the verbatim name for
    /// flat spans — see [`crate::Telemetry::span_flat`]).
    pub path: String,
    /// The span's own name (last path segment).
    pub name: String,
    /// Trace lane of the recording thread ([`splatonic_math::timebase`]).
    pub lane: u32,
    /// Run/session id ambient when the span started
    /// ([`splatonic_math::timebase::run_id`]; 0 outside any session scope).
    pub run: u32,
    /// Start, nanoseconds on the telemetry handle's clock.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

impl SpanEvent {
    /// JSONL record for this event (`"type": "span"`).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("type", "span")
            .set("id", self.id as i64)
            .set(
                "parent",
                match self.parent {
                    Some(p) => Json::Int(p as i64),
                    None => Json::Null,
                },
            )
            .set("path", self.path.as_str())
            .set("name", self.name.as_str())
            .set("lane", self.lane as i64)
            .set("run", self.run as i64)
            .set("start_ns", self.start_ns)
            .set("dur_ns", self.dur_ns);
        o
    }
}

/// Incremental JSONL writer for the structured event stream.
///
/// Write errors are swallowed after being counted — telemetry must never
/// take down the instrumented run.
pub struct EventSink {
    out: Box<dyn Write>,
    /// Lines that failed to write (diagnostic only).
    errors: u64,
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSink")
            .field("errors", &self.errors)
            .finish_non_exhaustive()
    }
}

impl EventSink {
    /// Wraps a writer (typically a freshly created file).
    pub fn new(out: Box<dyn Write>) -> Self {
        EventSink { out, errors: 0 }
    }

    fn emit(&mut self, line: &Json) {
        let ok =
            writeln!(self.out, "{}", line.to_string_compact()).is_ok() && self.out.flush().is_ok();
        if !ok {
            self.errors += 1;
        }
    }

    /// Emits the `run_start` lifecycle record.
    pub fn run_start(&mut self, ts_ns: u64) {
        let mut o = Json::obj();
        o.set("type", "run_start").set("ts_ns", ts_ns);
        self.emit(&o);
    }

    /// Emits one completed span.
    pub fn span(&mut self, event: &SpanEvent) {
        self.emit(&event.to_json());
    }

    /// Emits one per-frame record (`"type": "frame"` + the
    /// [`FrameRecord`] fields).
    pub fn frame(&mut self, record: &FrameRecord) {
        let mut o = Json::obj();
        o.set("type", "frame");
        if let Json::Obj(fields) = record.to_json() {
            if let Json::Obj(dst) = &mut o {
                dst.extend(fields);
            }
        }
        self.emit(&o);
    }

    /// Emits a counter total.
    pub fn counter(&mut self, name: &str, value: u64) {
        let mut o = Json::obj();
        o.set("type", "counter")
            .set("name", name)
            .set("value", value);
        self.emit(&o);
    }

    /// Emits a gauge value.
    pub fn gauge(&mut self, name: &str, value: f64) {
        let mut o = Json::obj();
        o.set("type", "gauge").set("name", name).set("value", value);
        self.emit(&o);
    }

    /// Emits the `run_end` lifecycle record.
    pub fn run_end(&mut self, name: &str, ts_ns: u64) {
        let mut o = Json::obj();
        o.set("type", "run_end")
            .set("name", name)
            .set("ts_ns", ts_ns);
        self.emit(&o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A Write that appends into a shared buffer (single-threaded tests).
    #[derive(Clone, Default)]
    pub(crate) struct SharedBuf(pub Rc<RefCell<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.borrow_mut().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn sink_writes_one_json_object_per_line() {
        let buf = SharedBuf::default();
        let mut sink = EventSink::new(Box::new(buf.clone()));
        sink.run_start(10);
        sink.counter("slam/frames", 12);
        sink.run_end("unit", 99);
        let text = String::from_utf8(buf.0.borrow().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            parse(line).expect("every JSONL line parses standalone");
        }
        let first = parse(lines[0]).unwrap();
        assert_eq!(first.get("type").unwrap(), &Json::Str("run_start".into()));
        let c = parse(lines[1]).unwrap();
        assert_eq!(c.get("value").unwrap().as_f64(), Some(12.0));
    }

    #[test]
    fn span_event_serializes_parent_null_at_root() {
        let e = SpanEvent {
            id: 1,
            parent: None,
            path: "tracking".into(),
            name: "tracking".into(),
            lane: 1,
            run: 0,
            start_ns: 5,
            dur_ns: 10,
        };
        let j = e.to_json();
        assert_eq!(j.get("parent").unwrap(), &Json::Null);
        assert_eq!(j.get("dur_ns").unwrap().as_f64(), Some(10.0));
    }
}
