//! Hand-rolled JSON, because the repo builds offline (no `serde`).
//!
//! The telemetry value space is small — numbers, strings, booleans, arrays,
//! objects — so a tiny writer covers it. Non-finite floats have no JSON
//! representation and serialize as `null` (the convention consumers of
//! `BENCH_*.json` files expect). A minimal recursive-descent parser is
//! included so tests can round-trip reports without external tooling; it is
//! a *checker*, not a general-purpose JSON library.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also the encoding of non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer number (kept separate from floats so counters render
    /// without a decimal point).
    Int(i64),
    /// Floating-point number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object (panics on non-objects — a telemetry
    /// report is always built top-down from objects).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an f64, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * d));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 is the shortest round-trippable form; add
                    // a `.0` when it happens to look integral so the value
                    // stays typed as a float for readers.
                    let s = format!("{n}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    pad(out, depth);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !fields.is_empty() {
                    pad(out, depth);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        // Counters far exceed i64 only in pathological runs; saturate
        // rather than wrap so reports stay monotone.
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

/// Writes `s` as a quoted JSON string with full escaping.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

/// Parses a JSON document (the whole input must be one value).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing data", pos));
    }
    Ok(value)
}

fn err(message: &str, offset: usize) -> ParseError {
    ParseError {
        message: message.to_string(),
        offset,
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), ParseError> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(err(&format!("expected '{}'", c as char), *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err("expected ',' or ']'", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(err("expected ',' or '}'", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(&format!("expected '{lit}'"), *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("bad \\u escape", *pos))?;
                        // Surrogates are not produced by our writer; map
                        // them to the replacement character when checking.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar.
                let rest =
                    std::str::from_utf8(&b[*pos..]).map_err(|_| err("invalid UTF-8", *pos))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| err("bad number", start))?;
    if text.is_empty() || text == "-" {
        return Err(err("expected a value", start));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| err("bad number", start))
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .or_else(|_| text.parse::<f64>().map(Json::Num))
            .map_err(|_| err("bad number", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{01} unicode\u{00e9}";
        let v = Json::Str(nasty.to_string());
        let s = v.to_string_compact();
        assert!(s.contains("\\\""));
        assert!(s.contains("\\\\"));
        assert!(s.contains("\\n"));
        assert!(s.contains("\\u0001"));
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = Json::obj();
        o.set("nan", f64::NAN)
            .set("inf", f64::INFINITY)
            .set("ninf", f64::NEG_INFINITY)
            .set("ok", 1.5);
        let s = o.to_string_compact();
        assert_eq!(s, r#"{"nan":null,"inf":null,"ninf":null,"ok":1.5}"#);
    }

    #[test]
    fn nested_objects_round_trip() {
        let mut inner = Json::obj();
        inner.set("count", 3u64).set("mean", 2.25);
        let mut root = Json::obj();
        root.set("name", "smoke")
            .set("flag", true)
            .set("nothing", Json::Null)
            .set(
                "items",
                Json::Arr(vec![Json::Int(-1), Json::Num(0.5), inner.clone()]),
            )
            .set("stats", inner);
        for s in [root.to_string_compact(), root.to_string_pretty()] {
            assert_eq!(parse(&s).unwrap(), root, "failed on: {s}");
        }
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(Json::Num(2.0).to_string_compact(), "2.0");
        assert_eq!(Json::Int(2).to_string_compact(), "2");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parser_accepts_whitespace_and_empty_containers() {
        assert_eq!(parse(" { } ").unwrap(), Json::obj());
        assert_eq!(parse("[\n]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("-12").unwrap(), Json::Int(-12));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn get_and_as_helpers() {
        let doc = parse(r#"{"a": [1, 2.5], "b": {"c": 7}}"#).unwrap();
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_f64(), Some(7.0));
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].as_f64(), Some(2.5));
    }

    #[test]
    fn u64_saturates_instead_of_wrapping() {
        assert_eq!(Json::from(u64::MAX), Json::Int(i64::MAX));
    }
}
