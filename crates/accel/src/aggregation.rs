//! Cycle-stepped simulation of the aggregation unit (paper Fig. 16).
//!
//! The unit batch-processes partial gradients from `n` pixels per cycle:
//! a **merge unit** combines same-Gaussian gradients within the batch, a
//! **scoreboard** holds merged partials waiting for their accumulated
//! gradient to arrive in the **Gaussian cache**, and an **accumulation
//! unit** retires scoreboard entries whose cache line is present — hiding
//! off-chip latency behind independent Gaussians' work. We simulate those
//! mechanics against the real gradient stream, so locality and stalls come
//! from measured data.

use crate::dram::DramModel;
use std::collections::HashMap;

/// Aggregation-unit parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregationConfig {
    /// Pixel entries processed per cycle (paper: 4 channels).
    pub channels: usize,
    /// Gaussian-cache capacity in gradient records.
    pub cache_entries: usize,
    /// Scoreboard capacity in merged records.
    pub scoreboard_entries: usize,
    /// Bytes per accumulated-gradient record (load and write-back).
    pub record_bytes: u64,
    /// Scoreboard entries retired per cycle when their line is ready.
    pub retire_per_cycle: usize,
}

impl AggregationConfig {
    /// The paper's configuration: 4 channels, 32 KB cache, 8 KB scoreboard.
    pub fn paper() -> Self {
        AggregationConfig {
            channels: 4,
            cache_entries: 32 * 1024 / 48,
            scoreboard_entries: 8 * 1024 / 16,
            record_bytes: 48,
            retire_per_cycle: 4,
        }
    }
}

impl Default for AggregationConfig {
    fn default() -> Self {
        AggregationConfig::paper()
    }
}

/// Simulation outcome.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AggregationResult {
    /// Total cycles to drain the stream.
    pub cycles: u64,
    /// Cycles in which nothing could issue or retire (true stalls).
    pub stall_cycles: u64,
    /// Cache fills from DRAM.
    pub fills: u64,
    /// Dirty evictions written back to DRAM.
    pub evictions: u64,
    /// Gradient entries processed.
    pub entries: u64,
    /// DRAM bytes moved by the unit (fills + write-backs).
    pub dram_bytes: u64,
}

impl AggregationResult {
    /// Fraction of cycles spent stalled.
    pub fn stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.cycles as f64
        }
    }
}

/// Pseudo-LRU (clock) Gaussian cache.
struct GaussianCache {
    slots: Vec<Option<u32>>,
    index: HashMap<u32, usize>,
    clock: usize,
}

impl GaussianCache {
    fn new(entries: usize) -> Self {
        GaussianCache {
            slots: vec![None; entries.max(1)],
            index: HashMap::new(),
            clock: 0,
        }
    }

    fn contains(&self, id: u32) -> bool {
        self.index.contains_key(&id)
    }

    /// Inserts `id`, evicting the clock victim. Returns the evicted id.
    fn insert(&mut self, id: u32) -> Option<u32> {
        if self.contains(id) {
            return None;
        }
        let slot = self.clock;
        self.clock = (self.clock + 1) % self.slots.len();
        let evicted = self.slots[slot];
        if let Some(old) = evicted {
            self.index.remove(&old);
        }
        self.slots[slot] = Some(id);
        self.index.insert(id, slot);
        evicted
    }
}

/// Simulates draining one gradient stream through the aggregation unit.
///
/// `stream` holds the per-pixel Gaussian-id lists (reverse-integration
/// order); `clock_hz` converts the DRAM model's latency into cycles.
pub fn simulate(
    stream: &[Vec<u32>],
    config: &AggregationConfig,
    dram: &DramModel,
    clock_hz: f64,
) -> AggregationResult {
    // Flatten per-pixel entries; the unit reads n pixel entries per cycle,
    // each contributing its next (gaussian, gradient) tuple.
    let flat: Vec<u32> = stream.iter().flatten().copied().collect();
    let mut result = AggregationResult {
        entries: flat.len() as u64,
        ..AggregationResult::default()
    };
    if flat.is_empty() {
        return result;
    }
    let latency = dram.latency_cycles(clock_hz).ceil() as u64;
    // Bandwidth constraint as a minimum inter-fill gap.
    let fill_gap = dram
        .transfer_cycles(config.record_bytes, clock_hz)
        .max(1e-9);

    let mut cache = GaussianCache::new(config.cache_entries);
    // Scoreboard: id → pending merged-partial count.
    let mut scoreboard: HashMap<u32, u32> = HashMap::new();
    // Outstanding fills: (ready_cycle, id), kept sorted by arrival.
    let mut inflight: Vec<(u64, u32)> = Vec::new();
    let mut next_fill_free = 0.0f64;
    let mut cursor = 0usize;
    let mut cycle = 0u64;
    // Hard bound so malformed inputs cannot hang the simulation.
    let max_cycles = (flat.len() as u64 + 1) * (latency + 4) * 4;

    while (cursor < flat.len() || !scoreboard.is_empty()) && cycle < max_cycles {
        let mut progressed = false;

        // Complete arrived fills.
        inflight.retain(|&(ready, id)| {
            if ready <= cycle {
                if let Some(evicted) = cache.insert(id) {
                    let _ = evicted;
                    result.evictions += 1;
                    result.dram_bytes += config.record_bytes;
                }
                result.dram_bytes += config.record_bytes;
                false
            } else {
                true
            }
        });

        // Issue up to `channels` new entries into the merge unit.
        let mut issued = 0;
        while issued < config.channels
            && cursor < flat.len()
            && scoreboard.len() < config.scoreboard_entries
        {
            let id = flat[cursor];
            // Merge unit: same-id partials combine in the scoreboard.
            *scoreboard.entry(id).or_insert(0) += 1;
            cursor += 1;
            issued += 1;
            progressed = true;
        }

        // Kick off fills for scoreboard entries whose line is neither
        // cached nor in flight (re-attempted every cycle so entries that
        // arrived while the fill queue was full still make progress).
        for id in scoreboard.keys().copied() {
            if inflight.len() >= dram.max_outstanding {
                break;
            }
            if !cache.contains(id) && !inflight.iter().any(|&(_, fid)| fid == id) {
                let start = next_fill_free.max(cycle as f64);
                next_fill_free = start + fill_gap;
                inflight.push((start as u64 + latency, id));
                result.fills += 1;
                progressed = true;
            }
        }

        // Retire ready scoreboard entries (their line is in the cache).
        let mut retired = 0;
        let ready_ids: Vec<u32> = scoreboard
            .keys()
            .filter(|id| cache.contains(**id))
            .take(config.retire_per_cycle)
            .copied()
            .collect();
        for id in ready_ids {
            scoreboard.remove(&id);
            retired += 1;
            progressed = true;
        }
        let _ = retired;

        if !progressed {
            result.stall_cycles += 1;
        }
        cycle += 1;
    }
    result.cycles = cycle;
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> DramModel {
        DramModel::lpddr3_1600_x4()
    }

    #[test]
    fn empty_stream_is_free() {
        let r = simulate(&[], &AggregationConfig::paper(), &dram(), 500e6);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.entries, 0);
    }

    #[test]
    fn single_pixel_stream_pays_one_fill_latency() {
        let r = simulate(
            &[vec![1, 2, 3]],
            &AggregationConfig::paper(),
            &dram(),
            500e6,
        );
        assert_eq!(r.entries, 3);
        assert_eq!(r.fills, 3);
        // Must at least wait for the first fill to land.
        assert!(r.cycles as f64 >= dram().latency_cycles(500e6));
    }

    #[test]
    fn hot_gaussian_reuses_cache() {
        // 1000 entries all hitting the same Gaussian: one fill, the rest
        // retire from cache.
        let stream: Vec<Vec<u32>> = (0..1000).map(|_| vec![7]).collect();
        let r = simulate(&stream, &AggregationConfig::paper(), &dram(), 500e6);
        assert_eq!(r.fills, 1);
        assert!(r.stall_fraction() < 0.3, "stalls {}", r.stall_fraction());
    }

    #[test]
    fn independent_gaussians_hide_latency() {
        // Many distinct ids: fills overlap with useful merges/retires, so
        // throughput approaches the channel rate rather than one-latency-
        // per-entry.
        let stream: Vec<Vec<u32>> = (0..4000u32).map(|i| vec![i % 500]).collect();
        let r = simulate(&stream, &AggregationConfig::paper(), &dram(), 500e6);
        let serialized = r.entries * dram().latency_cycles(500e6) as u64;
        assert!(
            r.cycles < serialized / 4,
            "latency hiding failed: {} cycles vs fully serialized {}",
            r.cycles,
            serialized
        );
    }

    #[test]
    fn cache_thrash_costs_evictions() {
        // Working set far beyond the cache: evictions and refills pile up.
        let big: Vec<Vec<u32>> = (0..8000u32).map(|i| vec![i % 4000]).collect();
        let r = simulate(&big, &AggregationConfig::paper(), &dram(), 500e6);
        assert!(r.evictions > 0);
        assert!(r.fills > 4000, "second pass over 4000 ids must refill");
    }

    #[test]
    fn simulation_terminates_on_pathological_input() {
        let stream: Vec<Vec<u32>> = vec![vec![0; 10_000]];
        let r = simulate(&stream, &AggregationConfig::paper(), &dram(), 500e6);
        assert!(r.cycles > 0);
        assert_eq!(r.entries, 10_000);
    }
}
