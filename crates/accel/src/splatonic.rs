//! The SPLATONIC pipelined accelerator model (paper Sec. V, Fig. 15).
//!
//! Forward: projection units (with α-filter LUTs) → hierarchical sorters →
//! rasterization engines, all streaming through double buffers, so the pass
//! time is the *maximum* stage occupancy plus fill/drain — the defining
//! property of the pipelined design. The render units need no α-checking
//! (preemptive α-checking guarantees every list entry contributes) and the
//! forward pass stashes `Γ_i`/`C_i` per pixel in the engine buffer, so the
//! backward pass runs without the first cross-thread reduction.
//!
//! Backward: reverse render units compute per-pair gradients; the
//! aggregation unit (simulated cycle-by-cycle in [`crate::aggregation`])
//! drains them; re-projection reuses the projection units.

use crate::aggregation::{simulate, AggregationConfig, AggregationResult};
use crate::config::SplatonicConfig;
use crate::dram::DramModel;
use crate::workload::FrameWorkload;
use splatonic_render::Pipeline;

/// Per-stage cycle breakdown of one pass on SPLATONIC.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AccelReport {
    /// Projection-stage cycles (incl. preemptive α-checking).
    pub projection_cycles: f64,
    /// Sorting-stage cycles.
    pub sorting_cycles: f64,
    /// Rasterization-engine cycles (forward).
    pub raster_cycles: f64,
    /// Reverse-render cycles (backward pair gradients).
    pub reverse_cycles: f64,
    /// Aggregation-unit cycles (from the cycle-stepped simulation).
    pub aggregation_cycles: f64,
    /// Re-projection cycles.
    pub reprojection_cycles: f64,
    /// DRAM streaming floor for the forward pass, cycles.
    pub fwd_dram_cycles: f64,
    /// DRAM streaming floor for the backward pass, cycles.
    pub bwd_dram_cycles: f64,
    /// Pipeline fill/drain overhead, cycles.
    pub fill_cycles: f64,
    /// Clock in Hz (for time conversion).
    pub clock_hz: f64,
    /// Aggregation simulation detail.
    pub aggregation: AggregationResult,
}

impl AccelReport {
    /// Forward-pass cycles: pipelined stages bound by the slowest, floored
    /// by DRAM streaming.
    pub fn forward_cycles(&self) -> f64 {
        self.projection_cycles
            .max(self.sorting_cycles)
            .max(self.raster_cycles)
            .max(self.fwd_dram_cycles)
            + self.fill_cycles
    }

    /// Backward-pass cycles: reverse rasterization and aggregation are
    /// pipelined against each other; re-projection follows.
    pub fn backward_cycles(&self) -> f64 {
        self.reverse_cycles
            .max(self.aggregation_cycles)
            .max(self.bwd_dram_cycles)
            + self.reprojection_cycles
            + self.fill_cycles
    }

    /// Total seconds for forward + backward.
    pub fn total_seconds(&self) -> f64 {
        (self.forward_cycles() + self.backward_cycles()) / self.clock_hz
    }

    /// Exports the stage cycle breakdown (and the aggregation-unit detail)
    /// as telemetry gauges under `prefix` (e.g. `hw/splatonic`).
    ///
    /// Destructuring is exhaustive: a new report field fails compilation
    /// here until it is exported.
    pub fn export_telemetry(&self, telemetry: &splatonic_telemetry::Telemetry, prefix: &str) {
        let AccelReport {
            projection_cycles,
            sorting_cycles,
            raster_cycles,
            reverse_cycles,
            aggregation_cycles,
            reprojection_cycles,
            fwd_dram_cycles,
            bwd_dram_cycles,
            fill_cycles,
            clock_hz,
            aggregation,
        } = self;
        let stages = [
            ("projection_cycles", *projection_cycles),
            ("sorting_cycles", *sorting_cycles),
            ("raster_cycles", *raster_cycles),
            ("reverse_cycles", *reverse_cycles),
            ("aggregation_cycles", *aggregation_cycles),
            ("reprojection_cycles", *reprojection_cycles),
            ("fwd_dram_cycles", *fwd_dram_cycles),
            ("bwd_dram_cycles", *bwd_dram_cycles),
            ("fill_cycles", *fill_cycles),
            ("clock_hz", *clock_hz),
            ("forward_cycles", self.forward_cycles()),
            ("backward_cycles", self.backward_cycles()),
            ("total_s", self.total_seconds()),
        ];
        for (name, value) in stages {
            telemetry.gauge_set(&format!("{prefix}/{name}"), value);
        }
        telemetry.gauge_set(
            &format!("{prefix}/aggregation/stall_cycles"),
            aggregation.stall_cycles as f64,
        );
        telemetry.gauge_set(
            &format!("{prefix}/aggregation/dram_bytes"),
            aggregation.dram_bytes as f64,
        );
    }
}

/// The SPLATONIC accelerator model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SplatonicAccel {
    /// Hardware configuration.
    pub config: SplatonicConfig,
    /// DRAM model.
    pub dram: DramModel,
}

impl SplatonicAccel {
    /// Creates the paper-configuration accelerator.
    pub fn paper() -> Self {
        SplatonicAccel {
            config: SplatonicConfig::paper(),
            dram: DramModel::lpddr3_1600_x4(),
        }
    }

    /// Prices one training iteration's workload.
    ///
    /// The workload should come from the **pixel-based** pipeline — the
    /// architecture implements that schedule (tile-based workloads are what
    /// the baselines consume).
    pub fn price(&self, w: &FrameWorkload) -> AccelReport {
        let c = &self.config;
        let clock = c.clock_hz();

        // Projection: each Gaussian is transformed once; its candidate
        // pixels are α-checked by the unit's α-filter LUTs.
        let transform = w.gaussians as f64 * c.projection_cycles / c.projection_units as f64;
        let checks: f64 = w.proj_candidates.iter().map(|&n| n as f64).sum();
        let alpha = checks / c.alpha_check_rate();
        let projection_cycles = transform + alpha;

        // Sorting on the hierarchical sorters. Pixel workloads (the
        // architecture's native schedule) sort per-pixel lists. Tile
        // workloads carry the schedule's own sort accounting — per-tile
        // lists, or fewer/larger shared group lists when the trace was
        // produced with tile grouping; with `tile_grouping` the model also
        // charges one mask/scatter stream pass over the tile–Gaussian
        // pairs to derive per-tile lists from the shared group sorts.
        let sort_work: f64 = match w.pipeline {
            Some(Pipeline::TileBased) if w.sort_lists > 0 => {
                let mean_len = (w.sort_elems as f64 / w.sort_lists as f64).max(2.0);
                let mut work = w.sort_elems as f64 * mean_len.log2();
                if c.tile_grouping {
                    work += w.tile_pairs as f64;
                }
                work
            }
            _ => w
                .pixel_lists
                .iter()
                .map(|&l| {
                    let l = l as f64;
                    if l > 1.0 {
                        l * l.log2()
                    } else {
                        l
                    }
                })
                .sum(),
        };
        let sorting_cycles = sort_work / (c.sorting_units as f64 * c.sort_elems_per_unit_cycle);

        // Rasterization: render units blend pre-filtered pairs; one
        // reduction step per pixel.
        let pairs = w.total_pairs() as f64;
        let raster_cycles = pairs / c.blend_rate() + w.pixels as f64;

        // Forward DRAM floor. The accelerator streams fp16 parameter
        // records in two phases (geometry for projection, then color/
        // opacity only for surviving Gaussians) rather than the GPU's
        // full-fat records. Pixel–Gaussian pair entries never round-trip
        // DRAM: the streaming pipeline (Fig. 15) carries each pixel's list
        // through sort → raster → reverse-raster on-chip, which is exactly
        // what the per-pixel Γ/C double buffer enables.
        let hw_fwd_bytes = w.gaussians * 32 + w.projected * 16 + w.pixels * 20;
        let fwd_dram_cycles = self.dram.transfer_cycles(hw_fwd_bytes, clock);

        // Backward: reverse render units, using the cached Γ/C (no first
        // reduction).
        let grads = w.total_grad_entries() as f64;
        let reverse_cycles = grads / c.grad_rate();

        // Aggregation: cycle-stepped simulation on the real stream.
        let agg_cfg = AggregationConfig {
            channels: c.aggregation_channels,
            cache_entries: c.gaussian_cache_bytes / 48,
            scoreboard_entries: c.scoreboard_bytes / 16,
            record_bytes: 48,
            retire_per_cycle: c.aggregation_channels,
        };
        let aggregation = simulate(&w.grad_stream, &agg_cfg, &self.dram, clock);

        // Re-projection of the touched Gaussians on the projection units.
        let touched = w.distinct_grad_gaussians() as f64;
        let reprojection_cycles = touched * c.reprojection_cycles / c.projection_units as f64;

        // Backward traffic: only the per-Gaussian accumulated gradients
        // (handled by the aggregation unit's cache) plus the final
        // re-projected parameter updates; pair lists stay on-chip.
        let hw_bwd_bytes = touched as u64 * 48;
        let bwd_dram_cycles = self
            .dram
            .transfer_cycles(hw_bwd_bytes + aggregation.dram_bytes, clock);

        AccelReport {
            projection_cycles,
            sorting_cycles,
            raster_cycles,
            reverse_cycles,
            aggregation_cycles: aggregation.cycles as f64,
            reprojection_cycles,
            fwd_dram_cycles,
            bwd_dram_cycles,
            fill_cycles: c.pipeline_fill_cycles,
            clock_hz: clock,
            aggregation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_workload() -> FrameWorkload {
        // 48 sampled pixels, ~20 contributors each, 4000 Gaussians.
        let pixel_lists = vec![20u32; 48];
        let grad_stream: Vec<Vec<u32>> = (0..48u32)
            .map(|p| (0..20u32).map(|k| (p * 37 + k * 113) % 4000).collect())
            .collect();
        FrameWorkload {
            gaussians: 4000,
            projected: 3000,
            proj_candidates: vec![4; 3000],
            pairs_kept: 960,
            tile_pairs: 0,
            pixel_lists,
            grad_stream,
            sort_elems: 0,
            sort_lists: 0,
            sort_group_reuse: 0,
            tile_warp_steps: 0,
            fwd_bytes: 4000 * 64 + 960 * 12,
            bwd_bytes: 960 * 48,
            pixels: 48,
            pipeline: None,
        }
    }

    #[test]
    fn sparse_iteration_is_fast() {
        let accel = SplatonicAccel::paper();
        let r = accel.price(&sparse_workload());
        // A sparse tracking iteration should take well under a millisecond
        // at 500 MHz (the paper reports hundreds of FPS end-to-end).
        assert!(r.total_seconds() < 1e-3, "took {}", r.total_seconds());
        assert!(r.forward_cycles() > 0.0);
        assert!(r.backward_cycles() > 0.0);
    }

    #[test]
    fn stage_occupancy_pipelines() {
        // Compute stages overlap: the pipelined occupancy is the max, not
        // the sum. (The full forward time may still be DRAM-floored for
        // small workloads, which is orthogonal to pipelining.)
        let accel = SplatonicAccel::paper();
        let r = accel.price(&sparse_workload());
        let sum = r.projection_cycles + r.sorting_cycles + r.raster_cycles;
        let pipelined = r
            .projection_cycles
            .max(r.sorting_cycles)
            .max(r.raster_cycles);
        assert!(pipelined < sum);
        assert!(r.forward_cycles() >= pipelined);
    }

    #[test]
    fn more_render_units_speed_up_raster_bound() {
        let mut w = sparse_workload();
        // Make rasterization the bottleneck.
        w.pixel_lists = vec![2000u32; 48];
        let base = SplatonicAccel::paper().price(&w);
        let big = SplatonicAccel {
            config: SplatonicConfig::paper().with_units(8, 8),
            dram: DramModel::lpddr3_1600_x4(),
        }
        .price(&w);
        assert!(big.raster_cycles < base.raster_cycles * 0.6);
    }

    #[test]
    fn more_projection_units_speed_up_projection_bound() {
        let mut w = sparse_workload();
        w.proj_candidates = vec![64; 3000]; // heavy preemptive checking
        let base = SplatonicAccel::paper().price(&w);
        let big = SplatonicAccel {
            config: SplatonicConfig::paper().with_units(16, 4),
            dram: DramModel::lpddr3_1600_x4(),
        }
        .price(&w);
        assert!(big.projection_cycles < base.projection_cycles * 0.6);
    }

    #[test]
    fn grouped_tile_workload_sorts_cheaper() {
        // Same tile pipeline, two schedules: per-tile sorts vs. grouped
        // shared sorts (4× fewer lists, ~2.5× fewer compared elements, as
        // the render-side ablation measures). Grouping must cut sorting
        // cycles on the base config, and the grouping-aware config's
        // mask/scatter surcharge must not erase the win.
        let mut per_tile = sparse_workload();
        per_tile.pipeline = Some(Pipeline::TileBased);
        per_tile.tile_pairs = 40_000;
        per_tile.sort_elems = 100_000;
        per_tile.sort_lists = 192;
        let mut grouped = per_tile.clone();
        grouped.sort_elems = 40_000;
        grouped.sort_lists = 48;
        grouped.sort_group_reuse = 144;

        let base = SplatonicAccel::paper();
        let baseline = base.price(&per_tile).sorting_cycles;
        let mut with_grouping = SplatonicAccel::paper();
        with_grouping.config = with_grouping.config.with_tile_grouping(true);
        let ablation = with_grouping.price(&grouped).sorting_cycles;
        assert!(baseline > 0.0);
        assert!(
            ablation < baseline,
            "grouped sorting {ablation} should beat per-tile {baseline}"
        );
        // The mask/scatter pass is charged: grouping-aware pricing of the
        // grouped schedule costs more than naively pricing its sorts alone.
        let naive = base.price(&grouped).sorting_cycles;
        assert!(ablation > naive);
    }

    #[test]
    fn pixel_workloads_ignore_tile_sort_counters() {
        // The architecture's native pixel schedule prices per-pixel lists;
        // stray tile counters (or the grouping knob) must not change it.
        let mut w = sparse_workload();
        w.sort_elems = 123_456;
        w.sort_lists = 7;
        let base = SplatonicAccel::paper().price(&sparse_workload());
        let noisy = SplatonicAccel::paper().price(&w);
        let mut grouped = SplatonicAccel::paper();
        grouped.config = grouped.config.with_tile_grouping(true);
        let knob = grouped.price(&w);
        assert_eq!(base.sorting_cycles, noisy.sorting_cycles);
        assert_eq!(base.sorting_cycles, knob.sorting_cycles);
    }

    #[test]
    fn empty_workload_costs_only_fill() {
        let accel = SplatonicAccel::paper();
        let r = accel.price(&FrameWorkload::default());
        assert!((r.forward_cycles() - accel.config.pipeline_fill_cycles).abs() < 1e-9);
    }
}
