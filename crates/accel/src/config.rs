//! SPLATONIC hardware configuration (paper Sec. VI).

/// The accelerator's unit counts and buffer sizes.
///
/// Defaults match the paper: *"SPLATONIC consists of eight projection
/// units, four hierarchical sorting units, four rasterization engines, and
/// one aggregation unit. We augment each projection unit with four α-filter
/// units. Each rasterization engine has 2×2 render units and 2×2 reverse
/// render units … an 8 KB double buffer … a 64 KB global double buffer …
/// the aggregation unit is designed with four channels … with a 32 KB
/// Gaussian cache and a 8 KB scoreboard."* Clocked at 500 MHz.
///
/// # Examples
///
/// ```
/// use splatonic_accel::SplatonicConfig;
/// let cfg = SplatonicConfig::paper();
/// assert_eq!(cfg.projection_units, 8);
/// assert_eq!(cfg.render_units_per_engine, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplatonicConfig {
    /// Number of projection units.
    pub projection_units: usize,
    /// α-filter (LUT-exp) units per projection unit.
    pub alpha_filters_per_unit: usize,
    /// Hierarchical sorting units.
    pub sorting_units: usize,
    /// Rasterization engines.
    pub raster_engines: usize,
    /// Render units per engine (2×2 in the paper).
    pub render_units_per_engine: usize,
    /// Reverse render units per engine (2×2 in the paper).
    pub reverse_units_per_engine: usize,
    /// Aggregation-unit channels.
    pub aggregation_channels: usize,
    /// Γ/C double buffer per engine, bytes.
    pub engine_buffer_bytes: usize,
    /// Global double buffer, bytes.
    pub global_buffer_bytes: usize,
    /// Aggregation Gaussian cache, bytes.
    pub gaussian_cache_bytes: usize,
    /// Aggregation scoreboard, bytes.
    pub scoreboard_bytes: usize,
    /// Clock in MHz.
    pub clock_mhz: f64,
    /// Cycles for one Gaussian's projection (transform + conic).
    pub projection_cycles: f64,
    /// Candidate α-checks per α-filter unit per cycle (LUT-based exp).
    pub alpha_checks_per_filter_cycle: f64,
    /// Sort throughput: elements merged per sorter per cycle (the
    /// hierarchical sorters are bitonic merge networks handling several
    /// elements per cycle).
    pub sort_elems_per_unit_cycle: f64,
    /// Pairs blended per render unit per cycle (a blend is ~5 MACs —
    /// three color channels, depth, and the Γ update — on a compact unit).
    pub blend_per_unit_cycle: f64,
    /// Pairs differentiated per reverse render unit per cycle.
    pub grad_per_unit_cycle: f64,
    /// Cycles per re-projection (per touched Gaussian, on projection units).
    pub reprojection_cycles: f64,
    /// Pipeline fill/drain overhead per pass, cycles.
    pub pipeline_fill_cycles: f64,
    /// Model GS-TG-style tile grouping in the hierarchical sorters: tile
    /// workloads are priced from the grouped sort schedule (fewer, larger
    /// shared sorts) plus a mask/scatter stream pass that derives per-tile
    /// lists. The paper configuration leaves this `false` — the base
    /// SPLATONIC design sorts per list; the ablation row turns it on.
    pub tile_grouping: bool,
}

impl SplatonicConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        SplatonicConfig {
            projection_units: 8,
            alpha_filters_per_unit: 4,
            sorting_units: 4,
            raster_engines: 4,
            render_units_per_engine: 4,
            reverse_units_per_engine: 4,
            aggregation_channels: 4,
            engine_buffer_bytes: 8 * 1024,
            global_buffer_bytes: 64 * 1024,
            gaussian_cache_bytes: 32 * 1024,
            scoreboard_bytes: 8 * 1024,
            clock_mhz: 500.0,
            projection_cycles: 4.0,
            alpha_checks_per_filter_cycle: 1.0,
            sort_elems_per_unit_cycle: 8.0,
            blend_per_unit_cycle: 0.5,
            grad_per_unit_cycle: 0.5,
            reprojection_cycles: 8.0,
            pipeline_fill_cycles: 64.0,
            tile_grouping: false,
        }
    }

    /// Enables (or disables) tile-grouping in the sorting stage — used by
    /// the SPLATONIC vs. SPLATONIC+tile-grouping ablation.
    pub fn with_tile_grouping(mut self, on: bool) -> Self {
        self.tile_grouping = on;
        self
    }

    /// A variant with different projection / render unit counts (for the
    /// paper's Fig. 27 sensitivity study). Buffer sizes scale with the PE
    /// counts, as the paper couples them for double buffering.
    pub fn with_units(mut self, projection_units: usize, render_units: usize) -> Self {
        let scale = render_units as f64 / self.render_units_per_engine as f64;
        self.projection_units = projection_units;
        self.render_units_per_engine = render_units;
        self.reverse_units_per_engine = render_units;
        self.engine_buffer_bytes = (self.engine_buffer_bytes as f64 * scale) as usize;
        self
    }

    /// Clock frequency in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_mhz * 1e6
    }

    /// Seconds per cycle.
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / self.clock_hz()
    }

    /// Total α-check throughput per cycle.
    pub fn alpha_check_rate(&self) -> f64 {
        self.projection_units as f64
            * self.alpha_filters_per_unit as f64
            * self.alpha_checks_per_filter_cycle
    }

    /// Total blend throughput per cycle.
    pub fn blend_rate(&self) -> f64 {
        self.raster_engines as f64 * self.render_units_per_engine as f64 * self.blend_per_unit_cycle
    }

    /// Total gradient throughput per cycle.
    pub fn grad_rate(&self) -> f64 {
        self.raster_engines as f64 * self.reverse_units_per_engine as f64 * self.grad_per_unit_cycle
    }
}

impl Default for SplatonicConfig {
    fn default() -> Self {
        SplatonicConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_values() {
        let c = SplatonicConfig::paper();
        assert_eq!(c.projection_units, 8);
        assert_eq!(c.alpha_filters_per_unit, 4);
        assert_eq!(c.sorting_units, 4);
        assert_eq!(c.raster_engines, 4);
        assert_eq!(c.aggregation_channels, 4);
        assert_eq!(c.gaussian_cache_bytes, 32 * 1024);
        assert_eq!(c.scoreboard_bytes, 8 * 1024);
        assert!((c.clock_mhz - 500.0).abs() < 1e-12);
        assert!(!c.tile_grouping, "paper config sorts per list");
    }

    #[test]
    fn with_tile_grouping_toggles_knob() {
        assert!(
            SplatonicConfig::paper()
                .with_tile_grouping(true)
                .tile_grouping
        );
        assert!(
            !SplatonicConfig::paper()
                .with_tile_grouping(true)
                .with_tile_grouping(false)
                .tile_grouping
        );
    }

    #[test]
    fn derived_rates() {
        let c = SplatonicConfig::paper();
        assert_eq!(c.alpha_check_rate(), 32.0);
        assert_eq!(c.blend_rate(), 8.0);
        assert_eq!(c.grad_rate(), 8.0);
        assert!((c.cycle_seconds() - 2e-9).abs() < 1e-15);
    }

    #[test]
    fn with_units_scales_buffers() {
        let c = SplatonicConfig::paper().with_units(16, 8);
        assert_eq!(c.projection_units, 16);
        assert_eq!(c.render_units_per_engine, 8);
        assert_eq!(c.engine_buffer_bytes, 16 * 1024);
    }
}
