//! SPLATONIC energy model.
//!
//! Stands in for the paper's synthesis-derived numbers (TSMC 16 nm, scaled
//! to 8 nm with DeepScaleTool to match the Orin SoC's node): per-operation
//! energies for the dedicated units, SRAM access energies, and DRAM traffic
//! priced per byte from the Micron power-calculator methodology.

use crate::splatonic::AccelReport;
use crate::workload::FrameWorkload;

/// Per-operation energy constants for the accelerator (picojoules), plus
/// static power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelEnergyModel {
    /// Energy per Gaussian projection.
    pub pj_per_projection: f64,
    /// Energy per LUT-based α-check (the 64-entry LUT replaces the exp).
    pub pj_per_alpha_check: f64,
    /// Energy per sorted element.
    pub pj_per_sort_elem: f64,
    /// Energy per blended pair (render unit).
    pub pj_per_blend: f64,
    /// Energy per pair gradient (reverse render unit).
    pub pj_per_grad: f64,
    /// Energy per aggregation-unit operation (merge + scoreboard + cache).
    pub pj_per_aggregate: f64,
    /// Energy per re-projection.
    pub pj_per_reprojection: f64,
    /// SRAM access energy per byte (buffers, cache, scoreboard).
    pub pj_per_sram_byte: f64,
    /// DRAM energy per byte.
    pub pj_per_dram_byte: f64,
    /// Static power in watts.
    pub static_watts: f64,
}

impl AccelEnergyModel {
    /// 8 nm-scaled calibration.
    pub fn paper() -> Self {
        AccelEnergyModel {
            pj_per_projection: 40.0,
            pj_per_alpha_check: 2.0,
            pj_per_sort_elem: 1.5,
            pj_per_blend: 4.0,
            pj_per_grad: 8.0,
            pj_per_aggregate: 6.0,
            pj_per_reprojection: 60.0,
            pj_per_sram_byte: 0.08,
            pj_per_dram_byte: 80.0,
            static_watts: 0.05,
        }
    }

    /// Prices one workload's energy given its timing report.
    pub fn price(&self, w: &FrameWorkload, report: &AccelReport) -> AccelEnergyReport {
        let checks: f64 = w.proj_candidates.iter().map(|&n| n as f64).sum();
        let pairs = w.total_pairs() as f64;
        let grads = w.total_grad_entries() as f64;
        let touched = w.distinct_grad_gaussians() as f64;
        let pj = |v: f64| v * 1e-12;
        let compute_j = pj(w.gaussians as f64 * self.pj_per_projection
            + checks * self.pj_per_alpha_check
            + pairs * self.pj_per_sort_elem
            + pairs * self.pj_per_blend
            + grads * self.pj_per_grad
            + grads * self.pj_per_aggregate
            + touched * self.pj_per_reprojection);
        // SRAM traffic: pair entries through the global buffer, Γ/C through
        // the engine buffers, gradients through the aggregation structures.
        let sram_bytes = pairs * 24.0 + grads * 32.0;
        let sram_j = pj(sram_bytes * self.pj_per_sram_byte);
        // Same fp16 two-phase, pairs-stay-on-chip traffic accounting as
        // the timing model.
        let hw_bytes = w.gaussians * 32
            + w.projected * 16
            + w.pixels * 20
            + w.distinct_grad_gaussians() as u64 * 48;
        let dram_bytes = (hw_bytes + report.aggregation.dram_bytes) as f64;
        let dram_j = pj(dram_bytes * self.pj_per_dram_byte);
        let static_j = self.static_watts * report.total_seconds();
        AccelEnergyReport {
            compute_j,
            sram_j,
            dram_j,
            static_j,
        }
    }
}

impl Default for AccelEnergyModel {
    fn default() -> Self {
        AccelEnergyModel::paper()
    }
}

/// Energy components of one pass, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AccelEnergyReport {
    /// Dynamic compute energy.
    pub compute_j: f64,
    /// On-chip SRAM energy.
    pub sram_j: f64,
    /// DRAM traffic energy.
    pub dram_j: f64,
    /// Static power × runtime.
    pub static_j: f64,
}

impl AccelEnergyReport {
    /// Total joules.
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.sram_j + self.dram_j + self.static_j
    }

    /// Exports the energy components as telemetry gauges under `prefix`
    /// (exhaustively destructured: new components must be exported here).
    pub fn export_telemetry(&self, telemetry: &splatonic_telemetry::Telemetry, prefix: &str) {
        let AccelEnergyReport {
            compute_j,
            sram_j,
            dram_j,
            static_j,
        } = self;
        let parts = [
            ("compute_j", *compute_j),
            ("sram_j", *sram_j),
            ("dram_j", *dram_j),
            ("static_j", *static_j),
            ("total_j", self.total_j()),
        ];
        for (name, value) in parts {
            telemetry.gauge_set(&format!("{prefix}/{name}"), value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splatonic::SplatonicAccel;

    fn workload() -> FrameWorkload {
        FrameWorkload {
            gaussians: 1000,
            projected: 800,
            proj_candidates: vec![4; 800],
            pairs_kept: 500,
            pixel_lists: vec![10; 50],
            grad_stream: (0..50u32)
                .map(|p| (0..10).map(|k| p * 10 + k).collect())
                .collect(),
            fwd_bytes: 100_000,
            bwd_bytes: 50_000,
            pixels: 50,
            ..FrameWorkload::default()
        }
    }

    #[test]
    fn energy_positive_and_dominated_by_dram_for_traffic_heavy() {
        let accel = SplatonicAccel::paper();
        let w = workload();
        let report = accel.price(&w);
        let e = AccelEnergyModel::paper().price(&w, &report);
        assert!(e.total_j() > 0.0);
        assert!(e.dram_j > e.sram_j, "DRAM dominates on-chip SRAM energy");
    }

    #[test]
    fn energy_scales_with_work() {
        let accel = SplatonicAccel::paper();
        let small = workload();
        let mut big = workload();
        big.pixel_lists = vec![10; 500];
        big.grad_stream = (0..500u32)
            .map(|p| (0..10).map(|k| p * 10 + k).collect())
            .collect();
        big.fwd_bytes *= 10;
        big.bwd_bytes *= 10;
        let es = AccelEnergyModel::paper().price(&small, &accel.price(&small));
        let eb = AccelEnergyModel::paper().price(&big, &accel.price(&big));
        assert!(eb.total_j() > es.total_j() * 3.0);
    }
}
