//! DRAM model.
//!
//! The paper models *"4 channels of Micron 16 Gb LPDDR3-1600 memory"*
//! (Sec. VI). We model sustained bandwidth plus a fixed access latency —
//! what the pipeline stages and the aggregation unit's latency-hiding logic
//! actually interact with.

/// Bandwidth + latency DRAM model.
///
/// # Examples
///
/// ```
/// use splatonic_accel::DramModel;
/// let dram = DramModel::lpddr3_1600_x4();
/// // 64 bytes at 25.6 GB/s on a 500 MHz consumer ≈ 1.25 cycles of
/// // occupancy (plus latency for the first access).
/// assert!(dram.transfer_cycles(64, 500e6) > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    /// Sustained bandwidth in bytes/second.
    pub bandwidth_bytes_per_sec: f64,
    /// Random-access latency in nanoseconds.
    pub access_latency_ns: f64,
    /// Maximum outstanding fills (memory-level parallelism).
    pub max_outstanding: usize,
}

impl DramModel {
    /// Four channels of LPDDR3-1600 (≈ 6.4 GB/s each).
    pub fn lpddr3_1600_x4() -> Self {
        DramModel {
            bandwidth_bytes_per_sec: 25.6e9,
            access_latency_ns: 90.0,
            max_outstanding: 16,
        }
    }

    /// Bandwidth-occupancy cycles to stream `bytes` at `clock_hz`.
    pub fn transfer_cycles(&self, bytes: u64, clock_hz: f64) -> f64 {
        bytes as f64 / self.bandwidth_bytes_per_sec * clock_hz
    }

    /// Access latency in cycles at `clock_hz`.
    pub fn latency_cycles(&self, clock_hz: f64) -> f64 {
        self.access_latency_ns * 1e-9 * clock_hz
    }

    /// Seconds to stream `bytes` (bandwidth-bound).
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth_bytes_per_sec
    }
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel::lpddr3_1600_x4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_math() {
        let d = DramModel::lpddr3_1600_x4();
        // 25.6 GB in one second.
        assert!((d.transfer_seconds(25_600_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn latency_cycles_at_500mhz() {
        let d = DramModel::lpddr3_1600_x4();
        // 90 ns at 500 MHz = 45 cycles.
        assert!((d.latency_cycles(500e6) - 45.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_cycles_scale_with_bytes() {
        let d = DramModel::lpddr3_1600_x4();
        let one = d.transfer_cycles(1_000, 500e6);
        let two = d.transfer_cycles(2_000, 500e6);
        assert!((two - 2.0 * one).abs() < 1e-9);
    }
}
