//! Prior-accelerator baselines: GSArch \[29] and GauSPU \[77].
//!
//! Both are built for **tile-based** rendering, which is what makes them
//! inefficient under sparse pixel sampling (paper Sec. VII-C): their PE
//! arrays process tile-granular work, so a tile with one sampled pixel
//! still walks its whole Gaussian list. The models consume the *tile
//! pipeline's* workload trace, whose `tile_warp_steps` already encode that
//! slot-level inefficiency.
//!
//! * **GSArch** — a dedicated 3DGS *training* accelerator; all stages run
//!   on-chip. Its aggregation handles memory stalls better than GPU
//!   `atomicAdd` but lacks SPLATONIC's scoreboard/cache co-design.
//! * **GauSPU** — a 3DGS-SLAM processor that *"executes projection and
//!   sorting on GPU, and the remaining stages … on the dedicated
//!   accelerator"*; its projection/sorting latency and energy are therefore
//!   priced with the GPU model.

use crate::dram::DramModel;
use crate::workload::FrameWorkload;
use splatonic_gpusim::{GpuConfig, GpuEnergyModel};
use splatonic_render::{Pipeline, RenderTrace};

/// Per-pass result for a baseline accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BaselineReport {
    /// Forward seconds.
    pub forward_s: f64,
    /// Backward seconds.
    pub backward_s: f64,
    /// Energy in joules.
    pub energy_j: f64,
}

impl BaselineReport {
    /// Total seconds.
    pub fn total_seconds(&self) -> f64 {
        self.forward_s + self.backward_s
    }
}

/// GSArch model (edge configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GsArchModel {
    /// PE lanes processing pixel–Gaussian slots.
    pub pe_lanes: f64,
    /// Clock in Hz (scaled to 500 MHz like the paper's comparison).
    pub clock_hz: f64,
    /// Cycles per pixel–Gaussian slot (α-check + blend on dedicated logic).
    pub slot_cpi: f64,
    /// Cycles per slot in the backward pass.
    pub bwd_slot_cpi: f64,
    /// Gradient accumulations retired per cycle (its memory-stall
    /// mitigation is better than GPU atomics, below SPLATONIC's unit).
    pub accum_per_cycle: f64,
    /// Projection throughput, Gaussians per cycle.
    pub proj_per_cycle: f64,
    /// Sort throughput, elements per cycle.
    pub sort_per_cycle: f64,
    /// Energy per slot, picojoules.
    pub pj_per_slot: f64,
    /// Static power, watts.
    pub static_watts: f64,
    /// Effective DRAM-traffic factor: GSArch's contribution is breaking
    /// memory barriers in 3DGS training (fp16 parameter streams + on-chip
    /// reuse of tile lists), modelled as a flat compression of the tile
    /// pipeline's raw traffic.
    pub dram_traffic_factor: f64,
    /// DRAM model.
    pub dram: DramModel,
}

impl GsArchModel {
    /// Edge configuration scaled to 500 MHz (paper Sec. VI).
    pub fn edge() -> Self {
        GsArchModel {
            pe_lanes: 64.0,
            clock_hz: 500e6,
            slot_cpi: 1.0,
            bwd_slot_cpi: 2.0,
            accum_per_cycle: 2.0,
            proj_per_cycle: 2.0,
            sort_per_cycle: 4.0,
            pj_per_slot: 18.0,
            static_watts: 0.25,
            dram_traffic_factor: 0.35,
            dram: DramModel::lpddr3_1600_x4(),
        }
    }

    /// Prices a tile-pipeline workload.
    ///
    /// `tile_warp_steps` count 32-slot steps of the tile schedule; GSArch
    /// runs the same slot-granular work on `pe_lanes` dedicated lanes.
    /// Sorting is charged per tile–Gaussian pair (`tile_pairs /
    /// sort_per_cycle`): the prior architectures sort each tile's list
    /// independently, so the grouped-schedule counters (`sort_elems`,
    /// `sort_lists`, `sort_group_reuse`) are deliberately ignored here —
    /// only SPLATONIC's hierarchical sorters model the grouping ablation.
    pub fn price(&self, w: &FrameWorkload) -> BaselineReport {
        let slots = w.tile_warp_steps as f64 * 32.0;
        let fwd_bytes = w.fwd_bytes as f64 * self.dram_traffic_factor;
        let bwd_bytes =
            (w.bwd_bytes + w.total_grad_entries() * 48) as f64 * self.dram_traffic_factor;
        let fwd_compute = w.gaussians as f64 / self.proj_per_cycle
            + w.tile_pairs as f64 / self.sort_per_cycle
            + slots * self.slot_cpi / self.pe_lanes;
        let fwd_dram = self.dram.transfer_cycles(fwd_bytes as u64, self.clock_hz);
        let forward = fwd_compute.max(fwd_dram) / self.clock_hz;

        let grads = w.total_grad_entries() as f64;
        let bwd_compute = slots * self.bwd_slot_cpi / self.pe_lanes + grads / self.accum_per_cycle;
        let bwd_dram = self.dram.transfer_cycles(bwd_bytes as u64, self.clock_hz);
        let backward = bwd_compute.max(bwd_dram) / self.clock_hz;

        let energy = (slots * 2.0 + grads) * self.pj_per_slot * 1e-12
            + (fwd_bytes + bwd_bytes) * 80.0 * 1e-12
            + self.static_watts * (forward + backward);
        BaselineReport {
            forward_s: forward,
            backward_s: backward,
            energy_j: energy,
        }
    }
}

impl Default for GsArchModel {
    fn default() -> Self {
        GsArchModel::edge()
    }
}

/// GauSPU model: GPU projection/sorting + dedicated raster/reverse-raster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GauSpuModel {
    /// GPU used for projection and sorting.
    pub gpu: GpuConfig,
    /// GPU energy model for those stages.
    pub gpu_energy: GpuEnergyModel,
    /// Accelerator PE lanes for rasterization stages.
    pub pe_lanes: f64,
    /// Accelerator clock in Hz.
    pub clock_hz: f64,
    /// Cycles per pixel–Gaussian slot.
    pub slot_cpi: f64,
    /// Gradient accumulations retired per cycle.
    pub accum_per_cycle: f64,
    /// Energy per slot, picojoules.
    pub pj_per_slot: f64,
    /// Accelerator static power, watts.
    pub static_watts: f64,
}

impl GauSpuModel {
    /// The paper's modelling: GPU stage parameters from the Orin mobile GPU.
    pub fn paper() -> Self {
        GauSpuModel {
            gpu: GpuConfig::orin_like(),
            gpu_energy: GpuEnergyModel::orin_like(),
            pe_lanes: 32.0,
            clock_hz: 500e6,
            slot_cpi: 2.0,
            accum_per_cycle: 1.0,
            pj_per_slot: 22.0,
            static_watts: 0.2,
        }
    }

    /// Prices a tile-pipeline workload; `gpu_trace` must be the matching
    /// tile-pipeline render trace (for the GPU-side stages).
    pub fn price(&self, w: &FrameWorkload, gpu_trace: &RenderTrace) -> BaselineReport {
        // GPU side: projection + sorting latency and energy.
        let gpu_report = self.gpu.price(gpu_trace, Pipeline::TileBased);
        let gpu_time = gpu_report.forward.projection + gpu_report.forward.sorting;
        // Count the GPU energy for just those stages via their time share.
        let gpu_total = gpu_report.total_seconds().max(1e-12);
        let gpu_energy_all = self.gpu_energy.price(gpu_trace, &gpu_report).total_j();
        let gpu_energy = gpu_energy_all * (gpu_time / gpu_total).min(1.0);

        // Accelerator side: tile-granular rasterization slots.
        let slots = w.tile_warp_steps as f64 * 32.0;
        let fwd = slots * self.slot_cpi / self.pe_lanes / self.clock_hz;
        let grads = w.total_grad_entries() as f64;
        let bwd =
            (slots * self.slot_cpi / self.pe_lanes + grads / self.accum_per_cycle) / self.clock_hz;
        let accel_energy =
            (slots * 2.0 + grads) * self.pj_per_slot * 1e-12 + self.static_watts * (fwd + bwd);
        // The GPU must stay powered across the whole pipelined iteration
        // (it feeds projection/sorting results to the accelerator), so its
        // static power is charged over the full latency — the reason the
        // paper finds GauSPU+S's energy efficiency low (Sec. VII-C).
        let total = gpu_time + fwd + bwd;
        let gpu_static = self.gpu_energy.static_watts * total;

        BaselineReport {
            forward_s: gpu_time + fwd,
            backward_s: bwd,
            energy_j: gpu_energy + gpu_static + accel_energy,
        }
    }
}

impl Default for GauSpuModel {
    fn default() -> Self {
        GauSpuModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile_workload(sparse: bool) -> FrameWorkload {
        // Dense: every pixel works; sparse: 1/256 pixels but tile lists
        // still walked (warp-steps shrink only ~8×).
        let (pixels, steps, pairs) = if sparse {
            (48u64, 60_000u64, 1_000u64)
        } else {
            (12_288u64, 480_000u64, 250_000u64)
        };
        FrameWorkload {
            gaussians: 4000,
            projected: 3000,
            proj_candidates: Vec::new(),
            pairs_kept: 0,
            tile_pairs: 40_000,
            pixel_lists: vec![(pairs / pixels.max(1)) as u32; pixels as usize],
            grad_stream: (0..pixels as u32)
                .map(|p| {
                    (0..(pairs / pixels.max(1)) as u32)
                        .map(|k| (p * 31 + k * 97) % 4000)
                        .collect()
                })
                .collect(),
            sort_elems: 40_000,
            sort_lists: 48,
            sort_group_reuse: 0,
            tile_warp_steps: steps,
            fwd_bytes: 4_000_000,
            bwd_bytes: 2_000_000,
            pixels,
            pipeline: None,
        }
    }

    #[test]
    fn gsarch_sparse_speedup_is_limited() {
        let m = GsArchModel::edge();
        let dense = m.price(&tile_workload(false));
        let sparse = m.price(&tile_workload(true));
        let speedup = dense.total_seconds() / sparse.total_seconds();
        // Tile-granular work limits the benefit of 256× fewer pixels.
        assert!(
            speedup > 1.5 && speedup < 64.0,
            "GSArch sparse speedup {speedup} should be far below 256×"
        );
    }

    #[test]
    fn gauspu_keeps_gpu_projection_cost() {
        let m = GauSpuModel::paper();
        let mut trace = RenderTrace::new();
        trace.forward.gaussians_input = 4000;
        trace.forward.tile_pairs = 40_000;
        trace.forward.sort_elems = 40_000;
        trace.forward.sort_lists = 48;
        let r = m.price(&tile_workload(true), &trace);
        // GPU-side projection/sorting must be a visible part of the total.
        let gpu_side = m.gpu.price(&trace, Pipeline::TileBased);
        let gpu_time = gpu_side.forward.projection + gpu_side.forward.sorting;
        assert!(r.forward_s >= gpu_time);
        assert!(gpu_time > 0.0);
    }

    #[test]
    fn gsarch_pricing_ignores_grouped_sort_counters() {
        // Prior tile architectures sort per tile; a trace produced with
        // tile grouping (different sort_elems/sort_lists) must price
        // identically — they only see tile_pairs.
        let m = GsArchModel::edge();
        let per_tile = tile_workload(true);
        let mut grouped = tile_workload(true);
        grouped.sort_elems = 16_000;
        grouped.sort_lists = 12;
        grouped.sort_group_reuse = 36;
        assert_eq!(m.price(&per_tile), m.price(&grouped));
    }

    #[test]
    fn baseline_energy_positive_and_ordered() {
        let g = GsArchModel::edge();
        let dense = g.price(&tile_workload(false));
        let sparse = g.price(&tile_workload(true));
        assert!(dense.energy_j > sparse.energy_j);
        assert!(sparse.energy_j > 0.0);
    }
}
