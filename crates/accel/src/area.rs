//! Area budget (paper Sec. VI, "Area").
//!
//! *"SPLATONIC has a smaller area (1.07 mm²) compared to other 3DGS
//! accelerators, such as GSCore (1.77 mm²) and GSArch (3.42 mm²), with all
//! areas scaled down to 16 nm … its efficient rasterization engine …
//! accounts for only 28% of the total area. The remaining stages occupy
//! 57% … SRAMs … comprise 15%."*

/// Area budget of an accelerator at the 16 nm node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBudget {
    /// Rasterization-engine area, mm².
    pub raster_engine_mm2: f64,
    /// Remaining compute stages (projection, sorting, aggregation), mm².
    pub other_stages_mm2: f64,
    /// SRAM area, mm².
    pub sram_mm2: f64,
}

impl AreaBudget {
    /// SPLATONIC's budget: 1.07 mm² split 28% / 57% / 15%.
    pub fn splatonic() -> Self {
        const TOTAL: f64 = 1.07;
        AreaBudget {
            raster_engine_mm2: TOTAL * 0.28,
            other_stages_mm2: TOTAL * 0.57,
            sram_mm2: TOTAL * 0.15,
        }
    }

    /// GSCore total area for comparison (mm² at 16 nm).
    pub const GSCORE_MM2: f64 = 1.77;
    /// GSArch total area for comparison (mm² at 16 nm).
    pub const GSARCH_MM2: f64 = 3.42;

    /// Total area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.raster_engine_mm2 + self.other_stages_mm2 + self.sram_mm2
    }

    /// Fractional breakdown `(raster, other, sram)`.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total_mm2();
        (
            self.raster_engine_mm2 / t,
            self.other_stages_mm2 / t,
            self.sram_mm2 / t,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splatonic_totals_match_paper() {
        let a = AreaBudget::splatonic();
        assert!((a.total_mm2() - 1.07).abs() < 1e-9);
        let (r, o, s) = a.fractions();
        assert!((r - 0.28).abs() < 1e-9);
        assert!((o - 0.57).abs() < 1e-9);
        assert!((s - 0.15).abs() < 1e-9);
    }

    #[test]
    fn splatonic_smaller_than_baselines() {
        let a = AreaBudget::splatonic();
        assert!(a.total_mm2() < AreaBudget::GSCORE_MM2);
        assert!(a.total_mm2() < AreaBudget::GSARCH_MM2);
    }
}
