//! Accelerator models: the SPLATONIC pipelined architecture (paper Sec. V)
//! plus the two prior-work baselines it is compared against (GSArch \[29]
//! and GauSPU \[77]).
//!
//! The SPLATONIC model follows the paper's microarchitecture: projection
//! units with α-filter LUTs, hierarchical sorters, rasterization engines
//! with render / reverse-render units and the Γ/C double buffer, and the
//! scoreboard-based aggregation unit of Fig. 16 — the latter simulated
//! cycle-by-cycle against the *real* gradient stream, because latency
//! hiding under irregular accumulation is precisely what the unit exists
//! for. The RTL/synthesis numbers of the paper are replaced by documented
//! energy/area constant tables (DESIGN.md §2).

pub mod aggregation;
pub mod area;
pub mod baselines;
pub mod config;
pub mod dram;
pub mod energy;
pub mod splatonic;
pub mod workload;

pub use aggregation::{AggregationConfig, AggregationResult};
pub use area::AreaBudget;
pub use baselines::{GauSpuModel, GsArchModel};
pub use config::SplatonicConfig;
pub use dram::DramModel;
pub use energy::{AccelEnergyModel, AccelEnergyReport};
pub use splatonic::{AccelReport, SplatonicAccel};
pub use workload::FrameWorkload;
