//! Frame workloads: what the accelerator simulators consume.
//!
//! A [`FrameWorkload`] captures one training iteration's real work shape —
//! per-Gaussian candidate counts from projection, per-pixel contributing
//! lists, and the backward gradient stream (pixel-grouped Gaussian ids) —
//! extracted from a rendered [`ForwardResult`] plus its trace. Hardware
//! behavior that depends on *distribution* (sorter load balance,
//! aggregation locality) therefore comes from measured data.

use splatonic_render::{ForwardResult, Pipeline, RenderTrace};

/// The work shape of one forward+backward training iteration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameWorkload {
    /// Total Gaussians fed to projection.
    pub gaussians: u64,
    /// Gaussians surviving projection.
    pub projected: u64,
    /// Per-Gaussian candidate-pixel counts at projection (pixel pipeline)
    /// — drives the α-filter units.
    pub proj_candidates: Vec<u32>,
    /// Pairs kept after preemptive α-checking.
    pub pairs_kept: u64,
    /// Tile–Gaussian pairs (tile pipeline) — drives tile-based baselines.
    pub tile_pairs: u64,
    /// Per-pixel contributing-list lengths (depth-sorted lists).
    pub pixel_lists: Vec<u32>,
    /// Gradient stream: per pixel, the Gaussian ids receiving partial
    /// gradients (in reverse integration order).
    pub grad_stream: Vec<Vec<u32>>,
    /// Depth-compared elements across the schedule's sorted lists (tile
    /// pipeline: per-tile or per-group lists depending on the grouping
    /// knob that produced the trace; pixel pipeline: per-pixel lists).
    pub sort_elems: u64,
    /// Number of depth sorts the schedule executed (tile pipeline with
    /// grouping: one shared sort per non-empty group).
    pub sort_lists: u64,
    /// Per-tile sorts avoided by deriving tile lists from a shared group
    /// sort by masking. Zero when grouping was off or for pixel workloads.
    pub sort_group_reuse: u64,
    /// Warp-steps the GPU tile schedule would issue (for baselines that
    /// inherit tile-granular work).
    pub tile_warp_steps: u64,
    /// Forward DRAM bytes (parameters in, pairs + pixels out).
    pub fwd_bytes: u64,
    /// Backward DRAM bytes (pairs in, gradients out), excluding the
    /// aggregation unit's own cache traffic (simulated separately).
    pub bwd_bytes: u64,
    /// Pixels shaded.
    pub pixels: u64,
    /// Which schedule produced this workload.
    pub pipeline: Option<Pipeline>,
}

impl FrameWorkload {
    /// Extracts a workload from a forward result and its backward trace.
    ///
    /// `forward.trace` supplies the forward counts; `backward` (from
    /// `render_backward`) supplies the backward counts. The gradient stream
    /// is rebuilt from the stored per-pixel contribution lists.
    pub fn from_render(
        forward: &ForwardResult,
        backward: &RenderTrace,
        pipeline: Pipeline,
    ) -> FrameWorkload {
        let f = &forward.trace.forward;
        let grad_stream: Vec<Vec<u32>> = forward
            .contributions
            .iter()
            .map(|list| list.iter().rev().map(|c| c.gaussian).collect())
            .collect();
        FrameWorkload {
            gaussians: f.gaussians_input,
            projected: f.gaussians_projected,
            proj_candidates: forward.trace.proj_candidates.clone(),
            pairs_kept: f.proj_pairs_kept,
            tile_pairs: f.tile_pairs,
            pixel_lists: forward.trace.pixel_lists.clone(),
            grad_stream,
            sort_elems: f.sort_elems,
            sort_lists: f.sort_lists,
            sort_group_reuse: f.sort_group_reuse,
            tile_warp_steps: f.warp_steps,
            fwd_bytes: f.bytes_read + f.bytes_written,
            bwd_bytes: backward.backward.bytes_read + backward.backward.bytes_written,
            pixels: f.pixels_shaded,
            pipeline: Some(pipeline),
        }
    }

    /// Total pixel–Gaussian pairs integrated.
    pub fn total_pairs(&self) -> u64 {
        self.pixel_lists.iter().map(|&l| l as u64).sum()
    }

    /// Total gradient entries in the backward stream.
    pub fn total_grad_entries(&self) -> u64 {
        self.grad_stream.iter().map(|v| v.len() as u64).sum()
    }

    /// Number of distinct Gaussians in the gradient stream.
    pub fn distinct_grad_gaussians(&self) -> usize {
        let mut ids: Vec<u32> = self.grad_stream.iter().flatten().copied().collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatonic_math::Vec3;
    use splatonic_render::trace::RenderTrace;
    use splatonic_render::Contribution;

    fn fake_forward() -> ForwardResult {
        let mut trace = RenderTrace::new();
        trace.forward.gaussians_input = 10;
        trace.forward.gaussians_projected = 8;
        trace.forward.pixels_shaded = 2;
        trace.pixel_lists = vec![2, 1];
        trace.proj_candidates = vec![3, 1];
        ForwardResult {
            color: vec![Vec3::ZERO; 2],
            depth: vec![0.0; 2],
            final_transmittance: vec![1.0; 2],
            contributions: vec![
                vec![
                    Contribution {
                        gaussian: 4,
                        alpha: 0.5,
                        transmittance: 1.0,
                    },
                    Contribution {
                        gaussian: 7,
                        alpha: 0.3,
                        transmittance: 0.5,
                    },
                ],
                vec![Contribution {
                    gaussian: 4,
                    alpha: 0.2,
                    transmittance: 1.0,
                }],
            ],
            trace,
        }
    }

    #[test]
    fn extracts_grad_stream_in_reverse_order() {
        let w =
            FrameWorkload::from_render(&fake_forward(), &RenderTrace::new(), Pipeline::PixelBased);
        assert_eq!(w.grad_stream.len(), 2);
        // Reverse integration: farthest Gaussian first.
        assert_eq!(w.grad_stream[0], vec![7, 4]);
        assert_eq!(w.grad_stream[1], vec![4]);
        assert_eq!(w.total_grad_entries(), 3);
        assert_eq!(w.distinct_grad_gaussians(), 2);
        assert_eq!(w.total_pairs(), 3);
        assert_eq!(w.gaussians, 10);
    }
}
