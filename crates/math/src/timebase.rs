//! Shared monotonic timebase and trace-lane identifiers.
//!
//! Every tracing producer in the suite — the telemetry span guards, the
//! render-phase side-band buffer, the worker pool — stamps events against
//! **one** process-wide monotonic clock so a merged Chrome trace lines up
//! across subsystems. [`monotonic_ns`] is that clock: nanoseconds since the
//! first call in the process (the epoch is latched lazily with a
//! [`OnceLock`], so ordering between subsystems needs no init call).
//!
//! Trace rows ("threads" in the Chrome trace-event model) are identified by
//! small integer **lanes** rather than OS thread ids: the pool spawns fresh
//! scoped threads per invocation, so OS ids are unstable and unbounded,
//! while lanes are stable and compact. Long-lived threads get a lane from
//! [`lane_id`] (a thread-local counting from 1); pool workers use
//! [`POOL_LANE_BASE`]` + worker_index` so worker *slots* — not ephemeral
//! threads — form the rows.
//!
//! Timings are wall-clock and therefore non-deterministic by nature; lanes
//! and the clock are trace-only concepts and never feed the bit-exactness
//! suites (DESIGN.md §14).

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// First lane reserved for pool workers: worker `w` traces on lane
/// `POOL_LANE_BASE + w`. Lanes below this belong to long-lived threads
/// (see [`lane_id`]).
pub const POOL_LANE_BASE: u32 = 1000;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process trace epoch (the first call to this
/// function). Monotonic and shared by every tracing producer in the suite.
pub fn monotonic_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// Stable small integer identifying the calling thread's trace lane.
///
/// Lanes are assigned on first use per thread, starting at 1 (the process
/// main thread is almost always lane 1). They are distinct from — and
/// numerically below — the pool-worker lanes at [`POOL_LANE_BASE`].
pub fn lane_id() -> u32 {
    static NEXT_LANE: AtomicU32 = AtomicU32::new(1);
    thread_local! {
        static LANE: u32 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
    }
    LANE.with(|l| *l)
}

thread_local! {
    /// Run/session id ambient on this thread; see [`run_id`].
    static RUN_ID: Cell<u32> = const { Cell::new(0) };
}

/// The run/session id currently ambient on the calling thread.
///
/// `0` (the default) means "not attributed to any particular session" — the
/// single-run bench binaries never set it, so their traces are unchanged.
/// A multi-session driver (the SLAM serving layer) brackets each session's
/// work with [`run_scope`]; every trace producer — the worker pool, the
/// render phase buffer, the telemetry span guards — stamps the ambient id
/// into its events so concurrent sessions stop cross-attributing each
/// other's activity.
///
/// Like [`lane_id`] this is a trace-only concept: it never feeds the
/// bit-exactness suites.
pub fn run_id() -> u32 {
    RUN_ID.with(|r| r.get())
}

/// Sets the calling thread's ambient run id, returning the previous value.
/// Prefer the RAII [`run_scope`] so the previous id is always restored.
pub fn set_run_id(run: u32) -> u32 {
    RUN_ID.with(|r| r.replace(run))
}

/// RAII guard restoring the previous ambient run id on drop (see
/// [`run_scope`]).
#[must_use = "dropping the guard immediately restores the previous run id"]
pub struct RunScope {
    prev: u32,
}

/// Makes `run` the ambient run id for the calling thread until the returned
/// guard drops, then restores whatever was ambient before (scopes nest).
pub fn run_scope(run: u32) -> RunScope {
    RunScope {
        prev: set_run_id(run),
    }
}

impl Drop for RunScope {
    fn drop(&mut self) {
        set_run_id(self.prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_ns_is_monotonic() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
    }

    #[test]
    fn lane_id_is_stable_per_thread_and_distinct_across_threads() {
        let here = lane_id();
        assert_eq!(here, lane_id());
        assert!(here < POOL_LANE_BASE);
        let other = std::thread::spawn(lane_id).join().unwrap();
        assert_ne!(here, other);
    }
}
