//! Shared monotonic timebase and trace-lane identifiers.
//!
//! Every tracing producer in the suite — the telemetry span guards, the
//! render-phase side-band buffer, the worker pool — stamps events against
//! **one** process-wide monotonic clock so a merged Chrome trace lines up
//! across subsystems. [`monotonic_ns`] is that clock: nanoseconds since the
//! first call in the process (the epoch is latched lazily with a
//! [`OnceLock`], so ordering between subsystems needs no init call).
//!
//! Trace rows ("threads" in the Chrome trace-event model) are identified by
//! small integer **lanes** rather than OS thread ids: the pool spawns fresh
//! scoped threads per invocation, so OS ids are unstable and unbounded,
//! while lanes are stable and compact. Long-lived threads get a lane from
//! [`lane_id`] (a thread-local counting from 1); pool workers use
//! [`POOL_LANE_BASE`]` + worker_index` so worker *slots* — not ephemeral
//! threads — form the rows.
//!
//! Timings are wall-clock and therefore non-deterministic by nature; lanes
//! and the clock are trace-only concepts and never feed the bit-exactness
//! suites (DESIGN.md §14).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// First lane reserved for pool workers: worker `w` traces on lane
/// `POOL_LANE_BASE + w`. Lanes below this belong to long-lived threads
/// (see [`lane_id`]).
pub const POOL_LANE_BASE: u32 = 1000;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process trace epoch (the first call to this
/// function). Monotonic and shared by every tracing producer in the suite.
pub fn monotonic_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// Stable small integer identifying the calling thread's trace lane.
///
/// Lanes are assigned on first use per thread, starting at 1 (the process
/// main thread is almost always lane 1). They are distinct from — and
/// numerically below — the pool-worker lanes at [`POOL_LANE_BASE`].
pub fn lane_id() -> u32 {
    static NEXT_LANE: AtomicU32 = AtomicU32::new(1);
    thread_local! {
        static LANE: u32 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
    }
    LANE.with(|l| *l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_ns_is_monotonic() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
    }

    #[test]
    fn lane_id_is_stable_per_thread_and_distinct_across_threads() {
        let here = lane_id();
        assert_eq!(here, lane_id());
        assert!(here < POOL_LANE_BASE);
        let other = std::thread::spawn(lane_id).join().unwrap();
        assert_ne!(here, other);
    }
}
