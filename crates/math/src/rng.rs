//! Small deterministic PRNG used everywhere randomness is needed.
//!
//! The repo builds offline, so instead of the `rand` crate this module
//! provides [`Rng64`]: xoshiro256++ state seeded through SplitMix64, the
//! standard construction recommended by the xoshiro authors. Every sampler
//! in the workspace takes an explicit seed, so determinism is preserved by
//! construction: the same seed always yields the same stream.
//!
//! # Examples
//!
//! ```
//! use splatonic_math::rng::Rng64;
//! let mut a = Rng64::seed_from_u64(7);
//! let mut b = Rng64::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_range(0..10usize);
//! assert!(x < 10);
//! let f = a.gen_range(0.25..0.6);
//! assert!((0.25..0.6).contains(&f));
//! ```

/// xoshiro256++ generator with SplitMix64 seeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

/// One SplitMix64 step (also used to expand a 64-bit seed into the
/// 256-bit xoshiro state).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a base seed with a stream index into an independent sub-seed.
///
/// Two SplitMix64 steps over `seed` and `stream` decorrelate nearby
/// streams, so per-tile generators seeded with `mix_seed(seed, tile_idx)`
/// are independent of each other and of the tile traversal order — the
/// property that makes tile-parallel sampling deterministic.
///
/// # Examples
///
/// ```
/// use splatonic_math::rng::mix_seed;
/// assert_ne!(mix_seed(7, 0), mix_seed(7, 1));
/// assert_ne!(mix_seed(7, 0), mix_seed(8, 0));
/// assert_eq!(mix_seed(7, 3), mix_seed(7, 3));
/// ```
#[inline]
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut s = seed;
    let a = splitmix64(&mut s);
    let mut t = a ^ stream;
    splitmix64(&mut t)
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// Next 64 uniformly random bits (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform integer in `[0, n)` using Lemire's widening-multiply
    /// rejection method (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below needs a non-empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
            // Rejected: retry keeps the distribution exactly uniform.
        }
    }

    /// Uniform sample from `range` (integer and float ranges, inclusive or
    /// exclusive — mirrors `rand::Rng::gen_range`).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// A range [`Rng64::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng64) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.gen_below(span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.gen_below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, i64, i32);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng64) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        let mut c = Rng64::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn reference_vector_xoshiro256pp() {
        // Raw xoshiro256++ from the all-distinct state {1, 2, 3, 4}
        // (matches the public reference implementation).
        let mut r = Rng64 { s: [1, 2, 3, 4] };
        assert_eq!(r.next_u64(), 41943041);
        assert_eq!(r.next_u64(), 58720359);
        assert_eq!(r.next_u64(), 3588806011781223);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut r = Rng64::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.gen_range(2..7usize);
            assert!((2..7).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        for _ in 0..200 {
            let v = r.gen_range(0..=3usize);
            assert!(v <= 3);
            let n = r.gen_range(-5..5i32);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut r = Rng64::seed_from_u64(4);
        for _ in 0..500 {
            let v = r.gen_range(-0.2..0.2);
            assert!((-0.2..0.2).contains(&v));
        }
    }

    #[test]
    fn gen_bool_probability_is_sane() {
        let mut r = Rng64::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits} hits for p=0.3");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn mean_is_near_half() {
        let mut r = Rng64::seed_from_u64(6);
        let mean: f64 = (0..10_000).map(|_| r.gen_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Rng64::seed_from_u64(0);
        let _ = r.gen_range(3..3usize);
    }
}
