//! Scalar/vector image containers and the image-space operators used by the
//! sparse-sampling algorithms.
//!
//! * [`Image`] — a generic row-major 2D grid.
//! * [`sobel_magnitude`] — the texture-richness weight `w_R(p) = √(Gx²+Gy²)`
//!   of paper Eq. 3.
//! * [`harris_response`] — the Harris corner score used by the "Harris"
//!   sampling baseline of paper Fig. 10.
//! * [`downsample`] — the "Low-Res." sampling baseline.

use std::fmt;

/// A row-major 2D grid of values.
///
/// # Examples
///
/// ```
/// use splatonic_math::Image;
/// let mut img = Image::filled(4, 3, 0.0f64);
/// img[(2, 1)] = 5.0;
/// assert_eq!(img.get(2, 1), Some(&5.0));
/// assert_eq!(img.width(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Image<T> {
    width: usize,
    height: usize,
    data: Vec<T>,
}

impl<T: Clone> Image<T> {
    /// Creates an image of `width × height` filled with `value`.
    pub fn filled(width: usize, height: usize, value: T) -> Self {
        Image {
            width,
            height,
            data: vec![value; width * height],
        }
    }
}

impl<T> Image<T> {
    /// Creates an image from raw row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            width * height,
            "image data length must be width * height"
        );
        Image {
            width,
            height,
            data,
        }
    }

    /// Creates an image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Image {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of pixels.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the image has zero pixels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bounds-checked pixel access.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Option<&T> {
        if x < self.width && y < self.height {
            Some(&self.data[y * self.width + x])
        } else {
            None
        }
    }

    /// Bounds-checked mutable pixel access.
    #[inline]
    pub fn get_mut(&mut self, x: usize, y: usize) -> Option<&mut T> {
        if x < self.width && y < self.height {
            Some(&mut self.data[y * self.width + x])
        } else {
            None
        }
    }

    /// Raw row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Raw row-major mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the image, returning the raw data.
    #[inline]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Iterates over `(x, y, &value)`.
    pub fn iter_pixels(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| (i % w, i / w, v))
    }

    /// Maps every pixel through `f`, producing a new image.
    pub fn map<U>(&self, mut f: impl FnMut(&T) -> U) -> Image<U> {
        Image {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(&mut f).collect(),
        }
    }
}

impl<T> std::ops::Index<(usize, usize)> for Image<T> {
    type Output = T;
    #[inline]
    fn index(&self, (x, y): (usize, usize)) -> &T {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        &self.data[y * self.width + x]
    }
}

impl<T> std::ops::IndexMut<(usize, usize)> for Image<T> {
    #[inline]
    fn index_mut(&mut self, (x, y): (usize, usize)) -> &mut T {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        &mut self.data[y * self.width + x]
    }
}

impl<T: fmt::Debug> fmt::Display for Image<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Image({}x{})", self.width, self.height)
    }
}

/// Clamped pixel fetch used by the convolution kernels.
#[inline]
fn at_clamped(img: &Image<f64>, x: isize, y: isize) -> f64 {
    let xc = x.clamp(0, img.width() as isize - 1) as usize;
    let yc = y.clamp(0, img.height() as isize - 1) as usize;
    img[(xc, yc)]
}

/// Sobel gradient magnitude `√(Gx² + Gy²)` per pixel (paper Eq. 3).
///
/// Border pixels use clamped (replicated) neighbours.
///
/// # Examples
///
/// ```
/// use splatonic_math::image::sobel_magnitude;
/// use splatonic_math::Image;
/// // A vertical step edge has strong horizontal gradient at the boundary.
/// let img = Image::from_fn(8, 8, |x, _| if x < 4 { 0.0 } else { 1.0 });
/// let g = sobel_magnitude(&img);
/// assert!(g[(4, 4)] > g[(1, 4)]);
/// ```
pub fn sobel_magnitude(img: &Image<f64>) -> Image<f64> {
    Image::from_fn(img.width(), img.height(), |x, y| {
        let (xi, yi) = (x as isize, y as isize);
        let p = |dx: isize, dy: isize| at_clamped(img, xi + dx, yi + dy);
        let gx = -p(-1, -1) - 2.0 * p(-1, 0) - p(-1, 1) + p(1, -1) + 2.0 * p(1, 0) + p(1, 1);
        let gy = -p(-1, -1) - 2.0 * p(0, -1) - p(1, -1) + p(-1, 1) + 2.0 * p(0, 1) + p(1, 1);
        (gx * gx + gy * gy).sqrt()
    })
}

/// Harris corner response per pixel (Harris & Stephens 1988), with a 3×3
/// structure-tensor window and the classic `k = 0.04`.
///
/// Used by the "Harris" tracking-sampling baseline of paper Fig. 10.
pub fn harris_response(img: &Image<f64>) -> Image<f64> {
    const K: f64 = 0.04;
    let w = img.width();
    let h = img.height();
    // First compute per-pixel gradients.
    let mut gx = Image::filled(w, h, 0.0);
    let mut gy = Image::filled(w, h, 0.0);
    for y in 0..h {
        for x in 0..w {
            let (xi, yi) = (x as isize, y as isize);
            let p = |dx: isize, dy: isize| at_clamped(img, xi + dx, yi + dy);
            gx[(x, y)] =
                -p(-1, -1) - 2.0 * p(-1, 0) - p(-1, 1) + p(1, -1) + 2.0 * p(1, 0) + p(1, 1);
            gy[(x, y)] =
                -p(-1, -1) - 2.0 * p(0, -1) - p(1, -1) + p(-1, 1) + 2.0 * p(0, 1) + p(1, 1);
        }
    }
    // Then the windowed structure tensor and the Harris score.
    Image::from_fn(w, h, |x, y| {
        let (xi, yi) = (x as isize, y as isize);
        let mut sxx = 0.0;
        let mut syy = 0.0;
        let mut sxy = 0.0;
        for dy in -1..=1 {
            for dx in -1..=1 {
                let ix = at_clamped(&gx, xi + dx, yi + dy);
                let iy = at_clamped(&gy, xi + dx, yi + dy);
                sxx += ix * ix;
                syy += iy * iy;
                sxy += ix * iy;
            }
        }
        let det = sxx * syy - sxy * sxy;
        let trace = sxx + syy;
        det - K * trace * trace
    })
}

/// Box-filter downsampling by integer `factor` (the "Low-Res." baseline of
/// paper Fig. 10).
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn downsample(img: &Image<f64>, factor: usize) -> Image<f64> {
    assert!(factor > 0, "downsample factor must be positive");
    let w = (img.width() / factor).max(1);
    let h = (img.height() / factor).max(1);
    Image::from_fn(w, h, |x, y| {
        let mut sum = 0.0;
        let mut n = 0.0;
        for dy in 0..factor {
            for dx in 0..factor {
                let sx = x * factor + dx;
                let sy = y * factor + dy;
                if let Some(v) = img.get(sx, sy) {
                    sum += v;
                    n += 1.0;
                }
            }
        }
        if n > 0.0 {
            sum / n
        } else {
            0.0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_round_trip() {
        let img = Image::from_vec(2, 3, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(img[(0, 0)], 1);
        assert_eq!(img[(1, 2)], 6);
        assert_eq!(img.into_vec(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "width * height")]
    fn from_vec_length_mismatch_panics() {
        let _ = Image::from_vec(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn get_out_of_bounds_is_none() {
        let img = Image::filled(3, 3, 0.0f64);
        assert!(img.get(3, 0).is_none());
        assert!(img.get(0, 3).is_none());
        assert!(img.get(2, 2).is_some());
    }

    #[test]
    fn iter_pixels_covers_all() {
        let img = Image::from_fn(3, 2, |x, y| x + 10 * y);
        let collected: Vec<_> = img.iter_pixels().map(|(x, y, v)| (x, y, *v)).collect();
        assert_eq!(collected.len(), 6);
        assert_eq!(collected[0], (0, 0, 0));
        assert_eq!(collected[5], (2, 1, 12));
    }

    #[test]
    fn map_preserves_shape() {
        let img = Image::filled(4, 5, 2.0f64);
        let doubled = img.map(|v| v * 2.0);
        assert_eq!(doubled.width(), 4);
        assert_eq!(doubled.height(), 5);
        assert_eq!(doubled[(3, 4)], 4.0);
    }

    #[test]
    fn sobel_flat_image_is_zero() {
        let img = Image::filled(8, 8, 0.7);
        let g = sobel_magnitude(&img);
        assert!(g.as_slice().iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn sobel_detects_edges() {
        let img = Image::from_fn(16, 16, |x, _| if x < 8 { 0.0 } else { 1.0 });
        let g = sobel_magnitude(&img);
        // Strongest response straddles the edge columns 7..=8.
        assert!(g[(7, 8)] > 1.0);
        assert!(g[(2, 8)] < 1e-12);
    }

    #[test]
    fn harris_prefers_corners_over_edges() {
        // A quadrant image has a corner at the centre.
        let img = Image::from_fn(17, 17, |x, y| if x >= 8 && y >= 8 { 1.0 } else { 0.0 });
        let h = harris_response(&img);
        let corner = h[(8, 8)];
        let edge = h[(8, 14)];
        let flat = h[(2, 2)];
        assert!(
            corner > edge,
            "corner {corner} should beat edge {edge} (flat {flat})"
        );
        assert!(corner > flat);
        // An edge away from the corner should have a non-positive score.
        assert!(edge <= 1e-9);
    }

    #[test]
    fn downsample_averages_blocks() {
        let img = Image::from_fn(4, 4, |x, y| (x + y * 4) as f64);
        let d = downsample(&img, 2);
        assert_eq!(d.width(), 2);
        assert_eq!(d.height(), 2);
        // Block (0,0): values 0,1,4,5 → mean 2.5
        assert!((d[(0, 0)] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn downsample_factor_one_is_identity() {
        let img = Image::from_fn(3, 3, |x, y| (x * y) as f64);
        assert_eq!(downsample(&img, 1), img);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn downsample_zero_panics() {
        let _ = downsample(&Image::filled(2, 2, 0.0), 0);
    }
}
