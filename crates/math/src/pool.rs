//! Deterministic scoped worker pool (std-only, no external dependencies).
//!
//! The paper's hardware runs its stages on parallel units — 8 projection
//! units, Gaussian-parallel warps, 4 rasterization engines (Sec. IV-B, V).
//! This module is the software analogue: [`par_chunks_indexed`] fans a slice
//! out over `std::thread::scope` workers in fixed-size chunks and returns
//! the per-chunk results **in chunk-index order**.
//!
//! # Determinism contract
//!
//! Floating-point addition is not associative, so "same answer on any
//! thread count" has to be engineered, not hoped for:
//!
//! 1. **Chunk boundaries are fixed** by the caller's `chunk_size`, never by
//!    the worker count. Worker count only changes *who* computes a chunk.
//! 2. **Results are returned in chunk-index order**, so callers merge
//!    partial sums in a fixed sequence regardless of completion order.
//! 3. Workers claim chunks dynamically (atomic counter), which is safe
//!    precisely because of (1) and (2): scheduling affects latency only.
//!
//! A run with 1 worker therefore produces bit-identical results to a run
//! with any other worker count — the cross-thread-count golden tests in
//! `splatonic-render` enforce this.
//!
//! # Thread-count resolution
//!
//! [`resolve_threads`] maps an explicit knob (e.g. `RenderConfig::threads`)
//! to a worker count: an explicit positive value wins; otherwise the
//! `SPLATONIC_THREADS` environment variable; otherwise
//! `std::thread::available_parallelism()`. The environment variable is read
//! once per process and cached.

use crate::timebase;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Upper bound on workers (also sizes the per-worker stats registry).
pub const MAX_WORKERS: usize = 64;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "SPLATONIC_THREADS";

/// Per-worker busy time in nanoseconds, accumulated across all pool
/// invocations in this process.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static BUSY_NANOS: [AtomicU64; MAX_WORKERS] = [ZERO; MAX_WORKERS];
/// Per-worker chunk counts, same indexing as [`BUSY_NANOS`].
static CHUNKS_DONE: [AtomicU64; MAX_WORKERS] = [ZERO; MAX_WORKERS];
/// Highest worker slot ever used (exclusive), for snapshot truncation.
static HIGH_WATER: AtomicUsize = AtomicUsize::new(0);

/// Cached default worker count (env var, then host parallelism).
fn auto_threads() -> usize {
    static AUTO: OnceLock<usize> = OnceLock::new();
    *AUTO.get_or_init(|| {
        if let Ok(v) = std::env::var(THREADS_ENV) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n.min(MAX_WORKERS);
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_WORKERS)
    })
}

/// Resolves a thread-count knob: `explicit > 0` wins, else the cached
/// `SPLATONIC_THREADS` / `available_parallelism` default.
pub fn resolve_threads(explicit: usize) -> usize {
    if explicit > 0 {
        explicit.min(MAX_WORKERS)
    } else {
        auto_threads()
    }
}

/// One worker's accumulated activity (from the process-global registry).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerStats {
    /// Worker slot index (0-based).
    pub worker: usize,
    /// Busy wall-clock milliseconds across all pool invocations so far.
    pub busy_ms: f64,
    /// Chunks executed by this worker.
    pub chunks: u64,
}

/// Snapshot of the per-worker registry (slots `0..high_water`).
///
/// The registry is process-global and monotonic; callers wanting per-phase
/// numbers take a snapshot before and after and subtract (see
/// [`WorkerStats`] consumers in the telemetry integration).
pub fn worker_stats_snapshot() -> Vec<WorkerStats> {
    let hw = HIGH_WATER.load(Ordering::Acquire).min(MAX_WORKERS);
    (0..hw)
        .map(|w| WorkerStats {
            worker: w,
            busy_ms: BUSY_NANOS[w].load(Ordering::Relaxed) as f64 / 1e6,
            chunks: CHUNKS_DONE[w].load(Ordering::Relaxed),
        })
        .collect()
}

fn record_worker(worker: usize, nanos: u64, chunks: u64) {
    if worker >= MAX_WORKERS {
        return;
    }
    BUSY_NANOS[worker].fetch_add(nanos, Ordering::Relaxed);
    CHUNKS_DONE[worker].fetch_add(chunks, Ordering::Relaxed);
    HIGH_WATER.fetch_max(worker + 1, Ordering::AcqRel);
}

/// One worker's activity during one [`par_chunks_indexed`] invocation, on
/// the shared [`timebase`] clock. Emitted into the trace buffer only while
/// tracing is enabled ([`trace_enable`]); the inline (single-worker) path
/// records as worker 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolEvent {
    /// Worker slot index; traces on lane [`timebase::POOL_LANE_BASE`]` + worker`.
    pub worker: usize,
    /// Run/session id ambient on the *calling* thread when the invocation
    /// started ([`timebase::run_id`]; 0 when no session scope is active).
    /// Spawned workers inherit the caller's id — the ephemeral worker
    /// threads themselves never carry one.
    pub run: u32,
    /// Invocation start, nanoseconds on [`timebase::monotonic_ns`].
    pub start_ns: u64,
    /// Busy duration of this worker within the invocation, nanoseconds.
    pub dur_ns: u64,
    /// Chunks this worker executed during the invocation.
    pub chunks: u64,
}

/// Upper bound on buffered [`PoolEvent`]s; past it new events are dropped
/// (tracing must never grow memory without bound on long runs).
const MAX_POOL_EVENTS: usize = 1 << 20;

/// Gate for per-invocation event capture. Off by default: the hot path
/// pays one relaxed atomic load when disabled.
static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static TRACE_EVENTS: Mutex<Vec<PoolEvent>> = Mutex::new(Vec::new());

/// Enables or disables pool event capture (process-global).
pub fn trace_enable(on: bool) {
    TRACE_ENABLED.store(on, Ordering::Release);
}

/// Whether pool event capture is currently enabled.
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Current length of the process-global event buffer. Callers bracket a
/// phase with a cursor and [`trace_events_since`] to read only their events
/// (the buffer, like the worker registry, is process-global).
pub fn trace_cursor() -> usize {
    TRACE_EVENTS.lock().expect("pool trace lock").len()
}

/// Copies the events recorded since `cursor` (a prior [`trace_cursor`]).
pub fn trace_events_since(cursor: usize) -> Vec<PoolEvent> {
    let events = TRACE_EVENTS.lock().expect("pool trace lock");
    events.get(cursor..).map_or_else(Vec::new, <[_]>::to_vec)
}

/// Like [`trace_events_since`], but keeps only events attributed to `run`
/// ([`PoolEvent::run`]). Concurrent sessions sharing the process-global
/// buffer use this so one session's drain cannot steal another's events.
pub fn trace_events_since_for_run(cursor: usize, run: u32) -> Vec<PoolEvent> {
    let events = TRACE_EVENTS.lock().expect("pool trace lock");
    events.get(cursor..).map_or_else(Vec::new, |tail| {
        tail.iter().filter(|e| e.run == run).copied().collect()
    })
}

fn record_trace_event(worker: usize, run: u32, start_ns: u64, dur_ns: u64, chunks: u64) {
    let mut events = TRACE_EVENTS.lock().expect("pool trace lock");
    if events.len() < MAX_POOL_EVENTS {
        events.push(PoolEvent {
            worker,
            run,
            start_ns,
            dur_ns,
            chunks,
        });
    }
}

/// Fans `items` out over `threads` scoped workers in fixed-size chunks and
/// returns the per-chunk results in chunk-index order.
///
/// `f(chunk_index, offset, chunk)` receives the chunk's index, the offset of
/// its first element in `items`, and the chunk slice. Chunk boundaries
/// depend only on `chunk_size` (the last chunk may be short), so the result
/// vector — and any order-dependent merge a caller performs over it — is
/// identical for every `threads` value.
///
/// With `threads <= 1`, a single chunk, or an empty input the fan-out runs
/// inline on the calling thread (same chunk structure, no spawn).
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn par_chunks_indexed<T, R, F>(threads: usize, items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, usize, &[T]) -> R + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n_chunks = items.len().div_ceil(chunk_size);
    if n_chunks == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, MAX_WORKERS).min(n_chunks);
    let tracing = trace_enabled();
    // Run attribution comes from the caller: the ambient id is thread-local
    // and the spawned workers are fresh threads (default id 0), so it must
    // be captured here and forwarded into each worker's trace record.
    let run = if tracing { timebase::run_id() } else { 0 };
    if threads <= 1 || n_chunks == 1 {
        let start_ns = if tracing { timebase::monotonic_ns() } else { 0 };
        let start = Instant::now();
        let out: Vec<R> = (0..n_chunks)
            .map(|ci| {
                let lo = ci * chunk_size;
                let hi = (lo + chunk_size).min(items.len());
                f(ci, lo, &items[lo..hi])
            })
            .collect();
        let nanos = start.elapsed().as_nanos() as u64;
        record_worker(0, nanos, n_chunks as u64);
        if tracing {
            record_trace_event(0, run, start_ns, nanos, n_chunks as u64);
        }
        return out;
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n_chunks).map(|_| None).collect();
    let partials: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let start_ns = if tracing { timebase::monotonic_ns() } else { 0 };
                    let start = Instant::now();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let ci = next.fetch_add(1, Ordering::Relaxed);
                        if ci >= n_chunks {
                            break;
                        }
                        let lo = ci * chunk_size;
                        let hi = (lo + chunk_size).min(items.len());
                        local.push((ci, f(ci, lo, &items[lo..hi])));
                    }
                    let nanos = start.elapsed().as_nanos() as u64;
                    record_worker(worker, nanos, local.len() as u64);
                    if tracing {
                        record_trace_event(worker, run, start_ns, nanos, local.len() as u64);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });
    for (ci, r) in partials.into_iter().flatten() {
        slots[ci] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every chunk index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_no_chunks() {
        let out: Vec<u64> = par_chunks_indexed(4, &[] as &[u32], 8, |_, _, c| c.len() as u64);
        assert!(out.is_empty());
    }

    #[test]
    fn chunk_boundaries_are_fixed() {
        let items: Vec<u32> = (0..25).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_chunks_indexed(threads, &items, 8, |ci, off, c| (ci, off, c.to_vec()));
            assert_eq!(out.len(), 4, "threads={threads}");
            assert_eq!(out[0], (0, 0, (0..8).collect::<Vec<u32>>()));
            assert_eq!(out[3], (3, 24, vec![24]));
        }
    }

    #[test]
    fn float_sums_are_thread_count_invariant() {
        // Merge per-chunk partial sums in chunk order: bit-identical across
        // worker counts (the pool's core contract).
        let items: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.731).sin()).collect();
        let run = |threads: usize| -> f64 {
            par_chunks_indexed(threads, &items, 97, |_, _, c| c.iter().sum::<f64>())
                .into_iter()
                .fold(0.0, |a, b| a + b)
        };
        let s1 = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(s1.to_bits(), run(threads).to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn results_are_in_chunk_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_chunks_indexed(8, &items, 10, |ci, _, _| ci);
        assert_eq!(out, (0..100).collect::<Vec<usize>>());
    }

    #[test]
    fn resolve_threads_prefers_explicit() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(MAX_WORKERS + 10), MAX_WORKERS);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn worker_stats_accumulate() {
        let items: Vec<u32> = (0..64).collect();
        let _ = par_chunks_indexed(2, &items, 4, |_, _, c| c.len());
        let stats = worker_stats_snapshot();
        assert!(!stats.is_empty());
        assert!(stats.iter().map(|s| s.chunks).sum::<u64>() >= 16);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_panics() {
        let _ = par_chunks_indexed(1, &[1u8], 0, |_, _, _| ());
    }

    /// Serializes the tests that toggle the process-global trace gate.
    static TRACE_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn trace_events_capture_worker_activity_when_enabled() {
        let _serial = TRACE_TEST_LOCK.lock().unwrap();
        let items: Vec<u32> = (0..512).collect();

        // Disabled (the default): no events appear.
        let before = trace_cursor();
        let _ = par_chunks_indexed(2, &items, 16, |_, _, c| c.len());
        // Another test may have enabled tracing concurrently; only assert
        // the enabled direction below, which this test controls end-to-end.

        trace_enable(true);
        let cursor = trace_cursor();
        let _ = par_chunks_indexed(2, &items, 16, |_, _, c| c.len());
        let events = trace_events_since(cursor);
        trace_enable(false);

        assert!(!events.is_empty(), "tracing enabled but no events");
        let chunks: u64 = events.iter().map(|e| e.chunks).sum();
        assert!(chunks >= 32, "expected >=32 chunks, got {chunks}");
        for e in &events {
            assert!(e.worker < MAX_WORKERS);
        }
        let _ = before;
    }

    #[test]
    fn trace_events_carry_the_callers_run_id() {
        let _serial = TRACE_TEST_LOCK.lock().unwrap();
        let items: Vec<u32> = (0..256).collect();
        trace_enable(true);
        let cursor = trace_cursor();
        {
            let _scope = timebase::run_scope(7701);
            let _ = par_chunks_indexed(2, &items, 16, |_, _, c| c.len());
        }
        {
            let _scope = timebase::run_scope(7702);
            let _ = par_chunks_indexed(2, &items, 16, |_, _, c| c.len());
        }
        let only_a = trace_events_since_for_run(cursor, 7701);
        let only_b = trace_events_since_for_run(cursor, 7702);
        trace_enable(false);

        assert!(!only_a.is_empty() && !only_b.is_empty());
        assert!(only_a.iter().all(|e| e.run == 7701));
        assert!(only_b.iter().all(|e| e.run == 7702));
        // Each scoped drain sees its own chunks in full.
        assert_eq!(only_a.iter().map(|e| e.chunks).sum::<u64>(), 16);
        assert_eq!(only_b.iter().map(|e| e.chunks).sum::<u64>(), 16);
    }
}
