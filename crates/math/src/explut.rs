//! Lookup-table approximation of `exp(-x)` for the α-filter units.
//!
//! Paper Sec. V-C: *"to mitigate the computational cost of exponentiation, we
//! approximate the exponential function with a lookup table (LUT). Our
//! empirical evaluation shows that a LUT with a size of 64 entries is
//! sufficient to maintain the same accuracy."*
//!
//! The LUT covers `x ∈ [0, range]` with linear interpolation between entries;
//! inputs beyond the range return 0 (the Gaussian has no visible
//! contribution there — by x = 8, `exp(-8) ≈ 3.4e-4` is already below the
//! α-threshold for any opacity).

/// Lookup table for `exp(-x)`, `x ≥ 0`.
///
/// # Examples
///
/// ```
/// use splatonic_math::ExpLut;
/// let lut = ExpLut::with_entries(64);
/// let err = (lut.eval(1.0) - (-1.0f64).exp()).abs();
/// assert!(err < 1e-2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExpLut {
    entries: Vec<f64>,
    range: f64,
    inv_step: f64,
}

impl ExpLut {
    /// The paper's accelerator configuration: 64 entries.
    pub const PAPER_ENTRIES: usize = 64;
    /// Default input range; beyond it `exp(-x)` is treated as 0.
    pub const DEFAULT_RANGE: f64 = 8.0;

    /// Builds a LUT with `entries` sample points over the default range.
    ///
    /// # Panics
    ///
    /// Panics if `entries < 2`.
    pub fn with_entries(entries: usize) -> Self {
        Self::with_entries_and_range(entries, Self::DEFAULT_RANGE)
    }

    /// Builds a LUT with `entries` sample points over `[0, range]`.
    ///
    /// # Panics
    ///
    /// Panics if `entries < 2` or `range <= 0`.
    pub fn with_entries_and_range(entries: usize, range: f64) -> Self {
        assert!(entries >= 2, "LUT needs at least 2 entries");
        assert!(range > 0.0, "LUT range must be positive");
        let step = range / (entries - 1) as f64;
        let table: Vec<f64> = (0..entries).map(|i| (-(i as f64) * step).exp()).collect();
        ExpLut {
            entries: table,
            range,
            inv_step: 1.0 / step,
        }
    }

    /// Number of entries in the table.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table is empty (never true for a constructed LUT).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Input range `[0, range]` covered by the table.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Approximates `exp(-x)` with linear interpolation.
    ///
    /// Negative inputs are clamped to 0 (returning 1.0); inputs beyond the
    /// range return 0.0.
    pub fn eval(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        if x >= self.range {
            return 0.0;
        }
        let pos = x * self.inv_step;
        let idx = pos as usize;
        let frac = pos - idx as f64;
        let lo = self.entries[idx];
        let hi = self.entries[(idx + 1).min(self.entries.len() - 1)];
        lo + (hi - lo) * frac
    }

    /// Maximum absolute error against the true `exp(-x)` over a dense probe.
    pub fn max_abs_error(&self) -> f64 {
        let probes = self.entries.len() * 16;
        (0..=probes)
            .map(|i| {
                let x = self.range * i as f64 / probes as f64;
                (self.eval(x) - (-x).exp()).abs()
            })
            .fold(0.0, f64::max)
    }
}

impl Default for ExpLut {
    fn default() -> Self {
        ExpLut::with_entries(Self::PAPER_ENTRIES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_exact() {
        let lut = ExpLut::with_entries(64);
        assert_eq!(lut.eval(0.0), 1.0);
        assert_eq!(lut.eval(100.0), 0.0);
        assert_eq!(lut.eval(-5.0), 1.0);
    }

    #[test]
    fn paper_size_is_accurate_enough() {
        let lut = ExpLut::default();
        assert_eq!(lut.len(), ExpLut::PAPER_ENTRIES);
        // α-checking compares against a threshold ~1/255; the LUT error must
        // be well below the visually meaningful quantum.
        assert!(
            lut.max_abs_error() < 2.5e-3,
            "max error {} too large",
            lut.max_abs_error()
        );
    }

    #[test]
    fn monotone_decreasing() {
        let lut = ExpLut::with_entries(64);
        let mut prev = lut.eval(0.0);
        for i in 1..200 {
            let v = lut.eval(8.0 * i as f64 / 200.0);
            assert!(v <= prev + 1e-15);
            prev = v;
        }
    }

    #[test]
    fn more_entries_reduce_error() {
        let coarse = ExpLut::with_entries(8).max_abs_error();
        let fine = ExpLut::with_entries(256).max_abs_error();
        assert!(fine < coarse);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn too_few_entries_panics() {
        let _ = ExpLut::with_entries(1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_range_panics() {
        let _ = ExpLut::with_entries_and_range(64, 0.0);
    }

    #[test]
    fn interpolation_between_samples() {
        let lut = ExpLut::with_entries_and_range(2, 1.0);
        // Only two entries: exp(0)=1 and exp(-1).
        let mid = lut.eval(0.5);
        let expect = 0.5 * (1.0 + (-1.0f64).exp());
        assert!((mid - expect).abs() < 1e-12);
    }
}
