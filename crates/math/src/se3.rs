//! The SE(3) Lie group and algebra used for camera-pose optimization.
//!
//! Tracking in 3DGS-SLAM optimizes a single camera pose per frame (paper
//! Sec. II-A). We represent poses as rotation + translation ([`Pose`]) and
//! optimize in the tangent space ([`Se3`], a 6-vector `[ρ, φ]` of
//! translational and rotational components) via the exponential map.

use crate::mat::{Mat3, Mat4};
use crate::vec::Vec3;
use std::fmt;

/// An element of the Lie algebra se(3): `[rho, phi]` with `rho` the
/// translational part and `phi` the rotational part (axis-angle).
///
/// # Examples
///
/// ```
/// use splatonic_math::{Se3, Vec3};
/// let xi = Se3::new(Vec3::new(0.1, 0.0, 0.0), Vec3::ZERO);
/// let pose = xi.exp();
/// assert!((pose.translation.x - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Se3 {
    /// Translational component ρ.
    pub rho: Vec3,
    /// Rotational component φ (axis-angle).
    pub phi: Vec3,
}

/// A rigid-body pose: rotation matrix plus translation vector.
///
/// By convention throughout SPLATONIC a camera pose is **world-to-camera**:
/// `p_cam = R p_world + t`.
///
/// # Examples
///
/// ```
/// use splatonic_math::{Pose, Vec3};
/// let p = Pose::identity();
/// assert_eq!(p.transform(Vec3::new(1.0, 2.0, 3.0)), Vec3::new(1.0, 2.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    /// Rotation matrix (orthonormal).
    pub rotation: Mat3,
    /// Translation vector.
    pub translation: Vec3,
}

impl Se3 {
    /// The zero element (identity pose under `exp`).
    pub const ZERO: Se3 = Se3 {
        rho: Vec3::ZERO,
        phi: Vec3::ZERO,
    };

    /// Creates an se(3) element from its translational and rotational parts.
    #[inline]
    pub const fn new(rho: Vec3, phi: Vec3) -> Self {
        Se3 { rho, phi }
    }

    /// Creates an se(3) element from a flat `[ρx, ρy, ρz, φx, φy, φz]` array.
    #[inline]
    pub fn from_array(a: [f64; 6]) -> Self {
        Se3::new(Vec3::new(a[0], a[1], a[2]), Vec3::new(a[3], a[4], a[5]))
    }

    /// Components as `[ρx, ρy, ρz, φx, φy, φz]`.
    #[inline]
    pub fn to_array(self) -> [f64; 6] {
        [
            self.rho.x, self.rho.y, self.rho.z, self.phi.x, self.phi.y, self.phi.z,
        ]
    }

    /// Euclidean norm of the 6-vector.
    pub fn norm(self) -> f64 {
        (self.rho.norm_sq() + self.phi.norm_sq()).sqrt()
    }

    /// Exponential map se(3) → SE(3) (Rodrigues plus the V matrix).
    pub fn exp(self) -> Pose {
        let theta = self.phi.norm();
        let k = Mat3::skew(self.phi);
        let kk = k * k;
        let (rot, v) = if theta < 1e-9 {
            // Second-order Taylor expansion near zero avoids 0/0.
            let rot = Mat3::identity() + k + kk.scale(0.5);
            let v = Mat3::identity() + k.scale(0.5) + kk.scale(1.0 / 6.0);
            (rot, v)
        } else {
            let a = theta.sin() / theta;
            let b = (1.0 - theta.cos()) / (theta * theta);
            let c = (theta - theta.sin()) / (theta * theta * theta);
            let rot = Mat3::identity() + k.scale(a) + kk.scale(b);
            let v = Mat3::identity() + k.scale(b) + kk.scale(c);
            (rot, v)
        };
        Pose {
            rotation: rot,
            translation: v * self.rho,
        }
    }
}

impl std::ops::Add for Se3 {
    type Output = Se3;
    fn add(self, rhs: Se3) -> Se3 {
        Se3::new(self.rho + rhs.rho, self.phi + rhs.phi)
    }
}

impl std::ops::Mul<f64> for Se3 {
    type Output = Se3;
    fn mul(self, s: f64) -> Se3 {
        Se3::new(self.rho * s, self.phi * s)
    }
}

impl std::ops::Neg for Se3 {
    type Output = Se3;
    fn neg(self) -> Se3 {
        Se3::new(-self.rho, -self.phi)
    }
}

impl Default for Pose {
    fn default() -> Self {
        Pose::identity()
    }
}

impl Pose {
    /// The identity pose.
    pub fn identity() -> Self {
        Pose {
            rotation: Mat3::identity(),
            translation: Vec3::ZERO,
        }
    }

    /// Creates a pose from a rotation matrix and translation vector.
    ///
    /// The rotation is trusted to be orthonormal; use
    /// [`Pose::orthonormalized`] after accumulating numeric drift.
    pub fn new(rotation: Mat3, translation: Vec3) -> Self {
        Pose {
            rotation,
            translation,
        }
    }

    /// Applies the pose to a point: `R p + t`.
    #[inline]
    pub fn transform(&self, p: Vec3) -> Vec3 {
        self.rotation * p + self.translation
    }

    /// Applies only the rotation (for directions).
    #[inline]
    pub fn rotate(&self, d: Vec3) -> Vec3 {
        self.rotation * d
    }

    /// The inverse pose.
    pub fn inverse(&self) -> Pose {
        let rt = self.rotation.transpose();
        Pose {
            rotation: rt,
            translation: -(rt * self.translation),
        }
    }

    /// Composition: `(self ∘ rhs)(p) = self(rhs(p))`.
    pub fn compose(&self, rhs: &Pose) -> Pose {
        Pose {
            rotation: self.rotation * rhs.rotation,
            translation: self.rotation * rhs.translation + self.translation,
        }
    }

    /// Left-multiplicative update: `exp(ξ) ∘ self`.
    ///
    /// This is the update used by the tracking optimizer, whose gradients are
    /// expressed in the left tangent space at the current pose.
    pub fn retract(&self, xi: Se3) -> Pose {
        xi.exp().compose(self).orthonormalized()
    }

    /// Logarithm map SE(3) → se(3) (inverse of [`Se3::exp`]).
    pub fn log(&self) -> Se3 {
        let r = &self.rotation;
        let cos_theta = ((r.trace() - 1.0) * 0.5).clamp(-1.0, 1.0);
        let theta = cos_theta.acos();
        let phi = if theta < 1e-9 {
            Vec3::new(
                0.5 * (r.at(2, 1) - r.at(1, 2)),
                0.5 * (r.at(0, 2) - r.at(2, 0)),
                0.5 * (r.at(1, 0) - r.at(0, 1)),
            )
        } else if (std::f64::consts::PI - theta).abs() < 1e-6 {
            // Near θ = π, extract the axis from the diagonal.
            let xx = ((r.at(0, 0) + 1.0) * 0.5).max(0.0).sqrt();
            let yy = ((r.at(1, 1) + 1.0) * 0.5).max(0.0).sqrt();
            let zz = ((r.at(2, 2) + 1.0) * 0.5).max(0.0).sqrt();
            let mut axis = Vec3::new(xx, yy, zz);
            // Fix signs using off-diagonals.
            if r.at(2, 1) - r.at(1, 2) < 0.0 {
                axis.x = -axis.x;
            }
            if r.at(0, 2) - r.at(2, 0) < 0.0 {
                axis.y = -axis.y;
            }
            if r.at(1, 0) - r.at(0, 1) < 0.0 {
                axis.z = -axis.z;
            }
            axis.normalized() * theta
        } else {
            let scale = theta / (2.0 * theta.sin());
            Vec3::new(
                r.at(2, 1) - r.at(1, 2),
                r.at(0, 2) - r.at(2, 0),
                r.at(1, 0) - r.at(0, 1),
            ) * scale
        };
        // Invert the V matrix to recover rho.
        let k = Mat3::skew(phi);
        let kk = k * k;
        let v_inv = if theta < 1e-9 {
            Mat3::identity() - k.scale(0.5) + kk.scale(1.0 / 12.0)
        } else {
            let half = 0.5 * theta;
            let cot = half.cos() / half.sin();
            let coeff = (1.0 - half * cot) / (theta * theta);
            Mat3::identity() - k.scale(0.5) + kk.scale(coeff)
        };
        Se3::new(v_inv * self.translation, phi)
    }

    /// Re-orthonormalizes the rotation matrix via Gram–Schmidt.
    ///
    /// Pose updates accumulate tiny numeric drift; this projects back onto
    /// SO(3) without changing the pose beyond floating-point noise.
    pub fn orthonormalized(&self) -> Pose {
        let c0 = self.rotation.col(0).normalized();
        let mut c1 = self.rotation.col(1);
        c1 = (c1 - c0 * c1.dot(c0)).normalized();
        let c2 = c0.cross(c1);
        Pose {
            rotation: Mat3::from_cols(c0, c1, c2),
            translation: self.translation,
        }
    }

    /// Converts to a homogeneous 4×4 matrix.
    pub fn to_mat4(&self) -> Mat4 {
        Mat4::from_rt(self.rotation, self.translation)
    }

    /// Camera center in world coordinates (for a world-to-camera pose).
    pub fn camera_center(&self) -> Vec3 {
        self.inverse().translation
    }

    /// Geodesic rotation distance to `other` in radians.
    pub fn rotation_angle_to(&self, other: &Pose) -> f64 {
        let rel = self.rotation.transpose() * other.rotation;
        ((rel.trace() - 1.0) * 0.5).clamp(-1.0, 1.0).acos()
    }

    /// Euclidean distance between translation components.
    pub fn translation_distance_to(&self, other: &Pose) -> f64 {
        (self.translation - other.translation).norm()
    }
}

impl fmt::Display for Pose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Pose(t = {}, R = {:?})",
            self.translation, self.rotation.m
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_pose() -> Pose {
        Se3::new(Vec3::new(0.3, -0.2, 0.9), Vec3::new(0.1, 0.5, -0.3)).exp()
    }

    #[test]
    fn exp_of_zero_is_identity() {
        let p = Se3::ZERO.exp();
        assert!((p.rotation.trace() - 3.0).abs() < 1e-12);
        assert!(p.translation.norm() < 1e-12);
    }

    #[test]
    fn exp_log_round_trip() {
        let xi = Se3::new(Vec3::new(0.5, -1.0, 0.25), Vec3::new(0.4, -0.2, 0.7));
        let back = xi.exp().log();
        assert!((back.rho - xi.rho).norm() < 1e-9, "rho: {:?}", back.rho);
        assert!((back.phi - xi.phi).norm() < 1e-9, "phi: {:?}", back.phi);
    }

    #[test]
    fn log_exp_round_trip() {
        let p = sample_pose();
        let p2 = p.log().exp();
        assert!((p2.translation - p.translation).norm() < 1e-9);
        for i in 0..9 {
            assert!((p2.rotation.m[i] - p.rotation.m[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn exp_small_angle_stable() {
        let xi = Se3::new(Vec3::new(1e-12, 0.0, 0.0), Vec3::new(0.0, 1e-12, 0.0));
        let p = xi.exp();
        assert!(p.translation.is_finite());
        assert!(p.rotation.det().is_finite());
    }

    #[test]
    fn log_near_pi_rotation() {
        let xi = Se3::new(Vec3::ZERO, Vec3::new(0.0, 0.0, std::f64::consts::PI - 1e-8));
        let back = xi.exp().log();
        assert!((back.phi.norm() - xi.phi.norm()).abs() < 1e-5);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = sample_pose();
        let id = p.compose(&p.inverse());
        assert!(id.translation.norm() < 1e-12);
        assert!((id.rotation.trace() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn compose_matches_sequential_transform() {
        let a = sample_pose();
        let b = Se3::new(Vec3::new(-0.1, 0.2, 0.0), Vec3::new(0.0, 0.3, 0.1)).exp();
        let p = Vec3::new(1.0, 2.0, 3.0);
        let lhs = a.compose(&b).transform(p);
        let rhs = a.transform(b.transform(p));
        assert!((lhs - rhs).norm() < 1e-12);
    }

    #[test]
    fn retract_zero_is_noop() {
        let p = sample_pose();
        let q = p.retract(Se3::ZERO);
        assert!((q.translation - p.translation).norm() < 1e-12);
    }

    #[test]
    fn retract_moves_in_tangent_direction() {
        let p = Pose::identity();
        let xi = Se3::new(Vec3::new(0.01, 0.0, 0.0), Vec3::ZERO);
        let q = p.retract(xi);
        assert!((q.translation.x - 0.01).abs() < 1e-12);
    }

    #[test]
    fn orthonormalized_restores_so3() {
        let mut p = sample_pose();
        // Inject drift.
        p.rotation.m[0] += 1e-3;
        let q = p.orthonormalized();
        let should_be_id = q.rotation * q.rotation.transpose();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((should_be_id.at(i, j) - expect).abs() < 1e-12);
            }
        }
        assert!((q.rotation.det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn camera_center_round_trip() {
        let p = sample_pose();
        let c = p.camera_center();
        // The camera center maps to the origin of the camera frame.
        assert!(p.transform(c).norm() < 1e-12);
    }

    #[test]
    fn pose_distances() {
        let a = Pose::identity();
        let b = Se3::new(Vec3::new(3.0, 4.0, 0.0), Vec3::new(0.0, 0.0, 0.5)).exp();
        assert!((a.translation_distance_to(&b) - b.translation.norm()).abs() < 1e-12);
        assert!((a.rotation_angle_to(&b) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn to_mat4_matches_transform() {
        let p = sample_pose();
        let v = Vec3::new(0.2, 0.4, -0.8);
        let m = p.to_mat4();
        assert!((m.transform_point(v) - p.transform(v)).norm() < 1e-12);
    }
}
