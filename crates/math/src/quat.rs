//! Unit quaternions for Gaussian orientations.
//!
//! The mapping optimizer treats quaternions as free 4-vectors and normalizes
//! them on use, matching the reference 3DGS implementation. The analytic
//! gradient of the rotation matrix with respect to the *unnormalized*
//! quaternion components is provided by [`Quat::rotation_jacobian`].

use crate::mat::Mat3;
use crate::vec::Vec3;
use std::fmt;

/// A quaternion `w + xi + yj + zk`.
///
/// Most constructors produce unit quaternions; [`Quat::normalized`] is cheap
/// and should be applied before converting to a rotation matrix when the
/// source is an optimizer state.
///
/// # Examples
///
/// ```
/// use splatonic_math::{Quat, Vec3};
/// let q = Quat::from_axis_angle(Vec3::Y, std::f64::consts::PI);
/// let v = q.rotate(Vec3::X);
/// assert!((v.x + 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quat {
    /// Scalar part.
    pub w: f64,
    /// i component.
    pub x: f64,
    /// j component.
    pub y: f64,
    /// k component.
    pub z: f64,
}

impl Default for Quat {
    fn default() -> Self {
        Quat::IDENTITY
    }
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a quaternion from components (scalar first).
    #[inline]
    pub const fn new(w: f64, x: f64, y: f64, z: f64) -> Self {
        Quat { w, x, y, z }
    }

    /// Creates a unit quaternion rotating by `angle` radians about `axis`.
    ///
    /// The axis is normalized internally; a zero axis yields the identity.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Self {
        let a = axis.normalized();
        if a == Vec3::ZERO {
            return Quat::IDENTITY;
        }
        let half = 0.5 * angle;
        let s = half.sin();
        Quat::new(half.cos(), a.x * s, a.y * s, a.z * s)
    }

    /// Squared norm of the 4-vector.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Norm of the 4-vector.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Returns the unit quaternion; degenerate inputs yield the identity.
    pub fn normalized(self) -> Quat {
        let n = self.norm();
        if n <= f64::EPSILON {
            Quat::IDENTITY
        } else {
            Quat::new(self.w / n, self.x / n, self.y / n, self.z / n)
        }
    }

    /// Quaternion conjugate (inverse for unit quaternions).
    #[inline]
    pub fn conjugate(self) -> Quat {
        Quat::new(self.w, -self.x, -self.y, -self.z)
    }

    /// Hamilton product `self * rhs`.
    #[allow(clippy::should_implement_trait)] // also provided as `std::ops::Mul` below
    pub fn mul(self, r: Quat) -> Quat {
        Quat::new(
            self.w * r.w - self.x * r.x - self.y * r.y - self.z * r.z,
            self.w * r.x + self.x * r.w + self.y * r.z - self.z * r.y,
            self.w * r.y - self.x * r.z + self.y * r.w + self.z * r.x,
            self.w * r.z + self.x * r.y - self.y * r.x + self.z * r.w,
        )
    }

    /// Rotates a vector by this (unit) quaternion.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        self.to_rotation_matrix() * v
    }

    /// Converts to a rotation matrix. The quaternion is normalized first.
    pub fn to_rotation_matrix(self) -> Mat3 {
        let q = self.normalized();
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        Mat3::new(
            1.0 - 2.0 * (y * y + z * z),
            2.0 * (x * y - w * z),
            2.0 * (x * z + w * y),
            2.0 * (x * y + w * z),
            1.0 - 2.0 * (x * x + z * z),
            2.0 * (y * z - w * x),
            2.0 * (x * z - w * y),
            2.0 * (y * z + w * x),
            1.0 - 2.0 * (x * x + y * y),
        )
    }

    /// Jacobians `∂R/∂w, ∂R/∂x, ∂R/∂y, ∂R/∂z` of the rotation matrix with
    /// respect to the **normalized** quaternion components.
    ///
    /// Callers optimizing an unnormalized quaternion should additionally
    /// project the returned gradient through the normalization Jacobian (see
    /// [`Quat::backprop_normalization`]).
    pub fn rotation_jacobian(self) -> [Mat3; 4] {
        let q = self.normalized();
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        let dw = Mat3::new(
            0.0,
            -2.0 * z,
            2.0 * y,
            2.0 * z,
            0.0,
            -2.0 * x,
            -2.0 * y,
            2.0 * x,
            0.0,
        );
        let dx = Mat3::new(
            0.0,
            2.0 * y,
            2.0 * z,
            2.0 * y,
            -4.0 * x,
            -2.0 * w,
            2.0 * z,
            2.0 * w,
            -4.0 * x,
        );
        let dy = Mat3::new(
            -4.0 * y,
            2.0 * x,
            2.0 * w,
            2.0 * x,
            0.0,
            2.0 * z,
            -2.0 * w,
            2.0 * z,
            -4.0 * y,
        );
        let dz = Mat3::new(
            -4.0 * z,
            -2.0 * w,
            2.0 * x,
            2.0 * w,
            -4.0 * z,
            2.0 * y,
            2.0 * x,
            2.0 * y,
            0.0,
        );
        [dw, dx, dy, dz]
    }

    /// Propagates a gradient w.r.t. the normalized quaternion back to the
    /// unnormalized storage: `g_raw = (I − q̂ q̂ᵀ) g / ‖q‖`.
    pub fn backprop_normalization(self, grad_unit: [f64; 4]) -> [f64; 4] {
        let n = self.norm();
        if n <= f64::EPSILON {
            return [0.0; 4];
        }
        let q = [self.w / n, self.x / n, self.y / n, self.z / n];
        let dot =
            q[0] * grad_unit[0] + q[1] * grad_unit[1] + q[2] * grad_unit[2] + q[3] * grad_unit[3];
        let mut out = [0.0; 4];
        for i in 0..4 {
            out[i] = (grad_unit[i] - q[i] * dot) / n;
        }
        out
    }

    /// Components as `[w, x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 4] {
        [self.w, self.x, self.y, self.z]
    }

    /// Builds a quaternion from `[w, x, y, z]`.
    #[inline]
    pub fn from_array(a: [f64; 4]) -> Self {
        Quat::new(a[0], a[1], a[2], a[3])
    }
}

impl std::ops::Mul for Quat {
    type Output = Quat;
    fn mul(self, rhs: Quat) -> Quat {
        Quat::mul(self, rhs)
    }
}

impl fmt::Display for Quat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} + {}i + {}j + {}k)", self.w, self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rotation_is_orthonormal(r: &Mat3) -> bool {
        let rt = r.transpose();
        let id = *r * rt;
        (0..3).all(|i| {
            (0..3).all(|j| {
                let expect = if i == j { 1.0 } else { 0.0 };
                (id.at(i, j) - expect).abs() < 1e-10
            })
        }) && (r.det() - 1.0).abs() < 1e-10
    }

    #[test]
    fn identity_rotation() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Quat::IDENTITY.rotate(v), v);
    }

    #[test]
    fn axis_angle_matches_matrix() {
        let q = Quat::from_axis_angle(Vec3::Z, std::f64::consts::FRAC_PI_2);
        let v = q.rotate(Vec3::X);
        assert!((v - Vec3::Y).norm() < 1e-12);
    }

    #[test]
    fn rotation_matrices_are_orthonormal() {
        for (axis, angle) in [
            (Vec3::new(1.0, 2.0, 3.0), 0.7),
            (Vec3::new(-1.0, 0.1, 0.0), 2.9),
            (Vec3::new(0.0, 0.0, 1.0), -1.1),
        ] {
            let r = Quat::from_axis_angle(axis, angle).to_rotation_matrix();
            assert!(rotation_is_orthonormal(&r));
        }
    }

    #[test]
    fn hamilton_product_composes_rotations() {
        let a = Quat::from_axis_angle(Vec3::X, 0.4);
        let b = Quat::from_axis_angle(Vec3::Y, 0.9);
        let v = Vec3::new(0.3, -1.0, 2.0);
        let composed = a.mul(b).rotate(v);
        let sequential = a.rotate(b.rotate(v));
        assert!((composed - sequential).norm() < 1e-12);
    }

    #[test]
    fn conjugate_inverts() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 1.0, 0.0), 1.3);
        let v = Vec3::new(5.0, -2.0, 0.5);
        let back = q.conjugate().rotate(q.rotate(v));
        assert!((back - v).norm() < 1e-12);
    }

    #[test]
    fn zero_axis_yields_identity() {
        assert_eq!(Quat::from_axis_angle(Vec3::ZERO, 1.0), Quat::IDENTITY);
    }

    #[test]
    fn rotation_jacobian_matches_finite_differences() {
        let q = Quat::new(0.9, 0.1, -0.2, 0.3).normalized();
        let jac = q.rotation_jacobian();
        let eps = 1e-6;
        for (k, dk) in jac.iter().enumerate() {
            let mut qp = q.to_array();
            qp[k] += eps;
            // Finite difference of the *normalized* map: renormalize and
            // project the analytic tangent the same way.
            let rp = Quat::from_array(qp).to_rotation_matrix();
            let rm = q.to_rotation_matrix();
            // The finite difference includes the normalization Jacobian, so
            // compare against the projected analytic Jacobian.
            let mut grad_unit = [0.0; 4];
            grad_unit[k] = 1.0;
            let proj = q.backprop_normalization(grad_unit);
            let mut analytic = Mat3::zero();
            for (g, dj) in proj.iter().zip(jac.iter()) {
                analytic = analytic + dj.scale(*g);
            }
            for i in 0..9 {
                let fd = (rp.m[i] - rm.m[i]) / eps;
                assert!(
                    (fd - analytic.m[i]).abs() < 1e-4,
                    "component {k}, entry {i}: fd={fd}, analytic={}, dk={:?}",
                    analytic.m[i],
                    dk
                );
            }
        }
    }

    #[test]
    fn backprop_normalization_is_tangent() {
        let q = Quat::new(2.0, 0.4, -0.6, 1.0);
        let g = q.backprop_normalization([0.3, -0.1, 0.9, 0.2]);
        let qn = q.normalized();
        let dot = qn.w * g[0] + qn.x * g[1] + qn.y * g[2] + qn.z * g[3];
        assert!(dot.abs() < 1e-12, "gradient must be tangent to the sphere");
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Quat::IDENTITY).is_empty());
    }
}
