//! Fixed-size square matrices (`f64`, row-major).
//!
//! [`Mat2`] carries projected 2D Gaussian covariances, [`Mat3`] carries 3D
//! covariances and rotations, and [`Mat4`] carries homogeneous rigid-body
//! transforms.

use crate::vec::{Vec2, Vec3, Vec4};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A 2×2 matrix, row-major.
///
/// # Examples
///
/// ```
/// use splatonic_math::{Mat2, Vec2};
/// let m = Mat2::new(2.0, 0.0, 0.0, 4.0);
/// assert_eq!(m * Vec2::new(1.0, 1.0), Vec2::new(2.0, 4.0));
/// assert_eq!(m.det(), 8.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Mat2 {
    /// Row-major entries `[[m00, m01], [m10, m11]]` flattened.
    pub m: [f64; 4],
}

/// A 3×3 matrix, row-major.
///
/// # Examples
///
/// ```
/// use splatonic_math::{Mat3, Vec3};
/// let r = Mat3::identity();
/// assert_eq!(r * Vec3::new(1.0, 2.0, 3.0), Vec3::new(1.0, 2.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Mat3 {
    /// Row-major entries.
    pub m: [f64; 9],
}

/// A 4×4 matrix, row-major.
///
/// # Examples
///
/// ```
/// use splatonic_math::{Mat4, Vec4};
/// let id = Mat4::identity();
/// let v = Vec4::new(1.0, 2.0, 3.0, 1.0);
/// assert_eq!(id * v, v);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// Row-major entries.
    pub m: [f64; 16],
}

impl Mat2 {
    /// Creates a matrix from row-major entries.
    #[inline]
    pub const fn new(m00: f64, m01: f64, m10: f64, m11: f64) -> Self {
        Mat2 {
            m: [m00, m01, m10, m11],
        }
    }

    /// The identity matrix.
    #[inline]
    pub const fn identity() -> Self {
        Mat2::new(1.0, 0.0, 0.0, 1.0)
    }

    /// Diagonal matrix with entries `a`, `b`.
    #[inline]
    pub const fn diag(a: f64, b: f64) -> Self {
        Mat2::new(a, 0.0, 0.0, b)
    }

    /// Entry accessor: row `r`, column `c`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.m[r * 2 + c]
    }

    /// Determinant.
    #[inline]
    pub fn det(&self) -> f64 {
        self.m[0] * self.m[3] - self.m[1] * self.m[2]
    }

    /// Trace (sum of diagonal entries).
    #[inline]
    pub fn trace(&self) -> f64 {
        self.m[0] + self.m[3]
    }

    /// Inverse, or `None` when the determinant is (near) zero.
    pub fn inverse(&self) -> Option<Mat2> {
        let d = self.det();
        if d.abs() < 1e-300 {
            return None;
        }
        let inv = 1.0 / d;
        Some(Mat2::new(
            self.m[3] * inv,
            -self.m[1] * inv,
            -self.m[2] * inv,
            self.m[0] * inv,
        ))
    }

    /// Transpose.
    #[inline]
    pub fn transpose(&self) -> Mat2 {
        Mat2::new(self.m[0], self.m[2], self.m[1], self.m[3])
    }

    /// Eigenvalues of a *symmetric* 2×2 matrix, largest first.
    ///
    /// Used to bound the extent of projected Gaussians.
    pub fn symmetric_eigenvalues(&self) -> (f64, f64) {
        let mid = 0.5 * self.trace();
        let det = self.det();
        let disc = (mid * mid - det).max(0.0).sqrt();
        (mid + disc, mid - disc)
    }
}

impl Mat3 {
    /// Creates a matrix from row-major entries.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub const fn new(
        m00: f64,
        m01: f64,
        m02: f64,
        m10: f64,
        m11: f64,
        m12: f64,
        m20: f64,
        m21: f64,
        m22: f64,
    ) -> Self {
        Mat3 {
            m: [m00, m01, m02, m10, m11, m12, m20, m21, m22],
        }
    }

    /// The identity matrix.
    #[inline]
    pub const fn identity() -> Self {
        Mat3::new(1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0)
    }

    /// The zero matrix.
    #[inline]
    pub const fn zero() -> Self {
        Mat3 { m: [0.0; 9] }
    }

    /// Diagonal matrix.
    #[inline]
    pub const fn diag(a: f64, b: f64, c: f64) -> Self {
        Mat3::new(a, 0.0, 0.0, 0.0, b, 0.0, 0.0, 0.0, c)
    }

    /// Builds a matrix from three row vectors.
    #[inline]
    pub fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Self {
        Mat3::new(r0.x, r0.y, r0.z, r1.x, r1.y, r1.z, r2.x, r2.y, r2.z)
    }

    /// Builds a matrix from three column vectors.
    #[inline]
    pub fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Self {
        Mat3::new(c0.x, c1.x, c2.x, c0.y, c1.y, c2.y, c0.z, c1.z, c2.z)
    }

    /// Entry accessor: row `r`, column `c`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.m[r * 3 + c]
    }

    /// Mutable entry accessor: row `r`, column `c`.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.m[r * 3 + c]
    }

    /// Row `r` as a vector.
    #[inline]
    pub fn row(&self, r: usize) -> Vec3 {
        Vec3::new(self.at(r, 0), self.at(r, 1), self.at(r, 2))
    }

    /// Column `c` as a vector.
    #[inline]
    pub fn col(&self, c: usize) -> Vec3 {
        Vec3::new(self.at(0, c), self.at(1, c), self.at(2, c))
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat3 {
        Mat3::new(
            self.m[0], self.m[3], self.m[6], self.m[1], self.m[4], self.m[7], self.m[2], self.m[5],
            self.m[8],
        )
    }

    /// Determinant.
    pub fn det(&self) -> f64 {
        let m = &self.m;
        m[0] * (m[4] * m[8] - m[5] * m[7]) - m[1] * (m[3] * m[8] - m[5] * m[6])
            + m[2] * (m[3] * m[7] - m[4] * m[6])
    }

    /// Trace.
    #[inline]
    pub fn trace(&self) -> f64 {
        self.m[0] + self.m[4] + self.m[8]
    }

    /// Inverse, or `None` when the determinant is (near) zero.
    pub fn inverse(&self) -> Option<Mat3> {
        let d = self.det();
        if d.abs() < 1e-300 {
            return None;
        }
        let m = &self.m;
        let inv = 1.0 / d;
        Some(Mat3::new(
            (m[4] * m[8] - m[5] * m[7]) * inv,
            (m[2] * m[7] - m[1] * m[8]) * inv,
            (m[1] * m[5] - m[2] * m[4]) * inv,
            (m[5] * m[6] - m[3] * m[8]) * inv,
            (m[0] * m[8] - m[2] * m[6]) * inv,
            (m[2] * m[3] - m[0] * m[5]) * inv,
            (m[3] * m[7] - m[4] * m[6]) * inv,
            (m[1] * m[6] - m[0] * m[7]) * inv,
            (m[0] * m[4] - m[1] * m[3]) * inv,
        ))
    }

    /// Skew-symmetric matrix `[v]×` such that `[v]× w = v × w`.
    ///
    /// # Examples
    ///
    /// ```
    /// use splatonic_math::{Mat3, Vec3};
    /// let v = Vec3::new(1.0, 2.0, 3.0);
    /// let w = Vec3::new(-1.0, 0.5, 2.0);
    /// let lhs = Mat3::skew(v) * w;
    /// let rhs = v.cross(w);
    /// assert!((lhs - rhs).norm() < 1e-12);
    /// ```
    #[inline]
    pub fn skew(v: Vec3) -> Mat3 {
        Mat3::new(0.0, -v.z, v.y, v.z, 0.0, -v.x, -v.y, v.x, 0.0)
    }

    /// Outer product `a bᵀ`.
    #[inline]
    pub fn outer(a: Vec3, b: Vec3) -> Mat3 {
        Mat3::new(
            a.x * b.x,
            a.x * b.y,
            a.x * b.z,
            a.y * b.x,
            a.y * b.y,
            a.y * b.z,
            a.z * b.x,
            a.z * b.y,
            a.z * b.z,
        )
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: f64) -> Mat3 {
        let mut out = *self;
        for v in &mut out.m {
            *v *= s;
        }
        out
    }
}

impl Mat4 {
    /// Creates a matrix from row-major entries.
    #[inline]
    pub const fn from_rows_array(m: [f64; 16]) -> Self {
        Mat4 { m }
    }

    /// The identity matrix.
    pub const fn identity() -> Self {
        Mat4 {
            m: [
                1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0,
            ],
        }
    }

    /// Builds a rigid transform from rotation `r` and translation `t`.
    pub fn from_rt(r: Mat3, t: Vec3) -> Self {
        Mat4 {
            m: [
                r.m[0], r.m[1], r.m[2], t.x, r.m[3], r.m[4], r.m[5], t.y, r.m[6], r.m[7], r.m[8],
                t.z, 0.0, 0.0, 0.0, 1.0,
            ],
        }
    }

    /// Entry accessor: row `r`, column `c`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.m[r * 4 + c]
    }

    /// Extracts the upper-left 3×3 block.
    pub fn rotation(&self) -> Mat3 {
        Mat3::new(
            self.m[0], self.m[1], self.m[2], self.m[4], self.m[5], self.m[6], self.m[8], self.m[9],
            self.m[10],
        )
    }

    /// Extracts the translation column.
    pub fn translation(&self) -> Vec3 {
        Vec3::new(self.m[3], self.m[7], self.m[11])
    }

    /// Transforms a 3D point (applies rotation then translation).
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.rotation() * p + self.translation()
    }
}

impl Default for Mat4 {
    fn default() -> Self {
        Mat4::identity()
    }
}

impl Add for Mat2 {
    type Output = Mat2;
    fn add(self, rhs: Mat2) -> Mat2 {
        let mut m = self.m;
        for (a, b) in m.iter_mut().zip(rhs.m.iter()) {
            *a += b;
        }
        Mat2 { m }
    }
}

impl Sub for Mat2 {
    type Output = Mat2;
    fn sub(self, rhs: Mat2) -> Mat2 {
        let mut m = self.m;
        for (a, b) in m.iter_mut().zip(rhs.m.iter()) {
            *a -= b;
        }
        Mat2 { m }
    }
}

impl Mul<f64> for Mat2 {
    type Output = Mat2;
    fn mul(self, s: f64) -> Mat2 {
        let mut m = self.m;
        for a in &mut m {
            *a *= s;
        }
        Mat2 { m }
    }
}

impl Mul for Mat2 {
    type Output = Mat2;
    fn mul(self, r: Mat2) -> Mat2 {
        Mat2::new(
            self.m[0] * r.m[0] + self.m[1] * r.m[2],
            self.m[0] * r.m[1] + self.m[1] * r.m[3],
            self.m[2] * r.m[0] + self.m[3] * r.m[2],
            self.m[2] * r.m[1] + self.m[3] * r.m[3],
        )
    }
}

impl Mul<Vec2> for Mat2 {
    type Output = Vec2;
    fn mul(self, v: Vec2) -> Vec2 {
        Vec2::new(
            self.m[0] * v.x + self.m[1] * v.y,
            self.m[2] * v.x + self.m[3] * v.y,
        )
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, rhs: Mat3) -> Mat3 {
        let mut m = self.m;
        for (a, b) in m.iter_mut().zip(rhs.m.iter()) {
            *a += b;
        }
        Mat3 { m }
    }
}

impl Sub for Mat3 {
    type Output = Mat3;
    fn sub(self, rhs: Mat3) -> Mat3 {
        let mut m = self.m;
        for (a, b) in m.iter_mut().zip(rhs.m.iter()) {
            *a -= b;
        }
        Mat3 { m }
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, r: Mat3) -> Mat3 {
        let mut out = [0.0; 9];
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += self.m[i * 3 + k] * r.m[k * 3 + j];
                }
                out[i * 3 + j] = s;
            }
        }
        Mat3 { m: out }
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0] * v.x + self.m[1] * v.y + self.m[2] * v.z,
            self.m[3] * v.x + self.m[4] * v.y + self.m[5] * v.z,
            self.m[6] * v.x + self.m[7] * v.y + self.m[8] * v.z,
        )
    }
}

impl Mul<f64> for Mat3 {
    type Output = Mat3;
    fn mul(self, s: f64) -> Mat3 {
        self.scale(s)
    }
}

impl Mul for Mat4 {
    type Output = Mat4;
    fn mul(self, r: Mat4) -> Mat4 {
        let mut out = [0.0; 16];
        for i in 0..4 {
            for j in 0..4 {
                let mut s = 0.0;
                for k in 0..4 {
                    s += self.m[i * 4 + k] * r.m[k * 4 + j];
                }
                out[i * 4 + j] = s;
            }
        }
        Mat4 { m: out }
    }
}

impl Mul<Vec4> for Mat4 {
    type Output = Vec4;
    fn mul(self, v: Vec4) -> Vec4 {
        Vec4::new(
            self.m[0] * v.x + self.m[1] * v.y + self.m[2] * v.z + self.m[3] * v.w,
            self.m[4] * v.x + self.m[5] * v.y + self.m[6] * v.z + self.m[7] * v.w,
            self.m[8] * v.x + self.m[9] * v.y + self.m[10] * v.z + self.m[11] * v.w,
            self.m[12] * v.x + self.m[13] * v.y + self.m[14] * v.z + self.m[15] * v.w,
        )
    }
}

impl fmt::Display for Mat3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..3 {
            writeln!(
                f,
                "[{:10.4} {:10.4} {:10.4}]",
                self.at(r, 0),
                self.at(r, 1),
                self.at(r, 2)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mat2_inverse_round_trip() {
        let m = Mat2::new(2.0, 1.0, 0.5, 3.0);
        let inv = m.inverse().unwrap();
        let id = m * inv;
        assert!((id.m[0] - 1.0).abs() < 1e-12);
        assert!(id.m[1].abs() < 1e-12);
        assert!((id.m[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mat2_singular_has_no_inverse() {
        let m = Mat2::new(1.0, 2.0, 2.0, 4.0);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn mat2_symmetric_eigenvalues() {
        let m = Mat2::new(3.0, 1.0, 1.0, 3.0);
        let (l1, l2) = m.symmetric_eigenvalues();
        assert!((l1 - 4.0).abs() < 1e-12);
        assert!((l2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mat3_inverse_round_trip() {
        let m = Mat3::new(2.0, 1.0, 0.0, 0.5, 3.0, 0.2, 0.1, -1.0, 1.5);
        let inv = m.inverse().unwrap();
        let id = m * inv;
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((id.at(i, j) - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn mat3_transpose_involution() {
        let m = Mat3::new(1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn mat3_det_of_identity() {
        assert_eq!(Mat3::identity().det(), 1.0);
        assert_eq!(Mat3::identity().trace(), 3.0);
    }

    #[test]
    fn skew_antisymmetric() {
        let s = Mat3::skew(Vec3::new(1.0, -2.0, 0.5));
        let st = s.transpose();
        for i in 0..9 {
            assert!((s.m[i] + st.m[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn outer_product_rank_one() {
        let m = Mat3::outer(Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0));
        assert!(m.det().abs() < 1e-12);
        assert_eq!(m.at(1, 2), 12.0);
    }

    #[test]
    fn mat4_rigid_transform() {
        let r = Mat3::identity();
        let t = Vec3::new(1.0, 2.0, 3.0);
        let m = Mat4::from_rt(r, t);
        assert_eq!(m.transform_point(Vec3::ZERO), t);
        assert_eq!(m.rotation(), r);
        assert_eq!(m.translation(), t);
    }

    #[test]
    fn mat4_mul_identity() {
        let m = Mat4::from_rt(Mat3::diag(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0));
        let out = Mat4::identity() * m;
        assert_eq!(out, m);
    }

    #[test]
    fn rows_cols_round_trip() {
        let m = Mat3::new(1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0);
        assert_eq!(m.row(1), Vec3::new(4.0, 5.0, 6.0));
        assert_eq!(m.col(2), Vec3::new(3.0, 6.0, 9.0));
        let m2 = Mat3::from_rows(m.row(0), m.row(1), m.row(2));
        assert_eq!(m2, m);
        let m3 = Mat3::from_cols(m.col(0), m.col(1), m.col(2));
        assert_eq!(m3, m);
    }
}
