//! Tiny statistics helpers shared by the hardware models.
//!
//! The GPU and accelerator models reason about *distributions* recorded from
//! real workloads (per-pixel Gaussian-list lengths, atomic-collision counts);
//! [`Summary`] and [`Histogram`] are the carriers of those distributions.

/// Summary statistics of a sample.
///
/// # Examples
///
/// ```
/// use splatonic_math::stats::Summary;
/// let s = Summary::from_iter([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: usize,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    // Must match `new()`: a derived Default would seed min/max with 0.0,
    // corrupting the extrema of every summary built via `..Default::default()`.
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Rebuilds a summary from its raw accumulator fields, the inverse of
    /// the (`count`, `sum`, `sum_sq`, raw `min`/`max`) accessors. Intended
    /// for serialization round-trips: the fields are stored verbatim (an
    /// empty summary keeps `min = +∞`, `max = −∞`), so
    /// `Summary::from_parts(s.count(), s.sum(), s.sum_sq(), s.raw_min(),
    /// s.raw_max()) == s` bitwise.
    pub fn from_parts(count: usize, sum: f64, sum_sq: f64, min: f64, max: f64) -> Self {
        Summary {
            count,
            sum,
            sum_sq,
            min,
            max,
        }
    }

    /// Builds a summary from an iterator of samples (also available via
    /// the [`FromIterator`] impl / `collect()`).
    #[allow(clippy::should_implement_trait)] // FromIterator is implemented below
    pub fn from_iter(values: impl IntoIterator<Item = f64>) -> Self {
        values.into_iter().collect()
    }

    /// Adds a sample.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sum of samples (0 for an empty summary).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sum of squared samples (0 for an empty summary). Exposed, together
    /// with [`Summary::raw_min`] / [`Summary::raw_max`], so a summary can be
    /// serialized and rebuilt bitwise via [`Summary::from_parts`].
    pub fn sum_sq(&self) -> f64 {
        self.sum_sq
    }

    /// The raw minimum accumulator: `+∞` for an empty summary (unlike
    /// [`Summary::min`], which reports 0 there).
    pub fn raw_min(&self) -> f64 {
        self.min
    }

    /// The raw maximum accumulator: `−∞` for an empty summary (unlike
    /// [`Summary::max`], which reports 0 there).
    pub fn raw_max(&self) -> f64 {
        self.max
    }

    /// Mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance (0 for fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.sum_sq / self.count as f64 - m * m).max(0.0)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample (0 for an empty summary).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum sample (0 for an empty summary).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let mut s = Summary::new();
        for v in values {
            s.push(v);
        }
        s
    }
}

/// A fixed-bin histogram over `[0, max)` with one overflow bin.
///
/// # Examples
///
/// ```
/// use splatonic_math::stats::Histogram;
/// let mut h = Histogram::new(4, 8.0);
/// h.record(1.0);
/// h.record(9.0); // overflow
/// assert_eq!(h.total(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bins: Vec<u64>,
    overflow: u64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[0, max)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `max <= 0`.
    pub fn new(bins: usize, max: f64) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(max > 0.0, "histogram max must be positive");
        Histogram {
            bins: vec![0; bins],
            overflow: 0,
            max,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, v: f64) {
        if v < 0.0 {
            return;
        }
        let idx = (v / self.max * self.bins.len() as f64) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Bin counts (excluding overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Overflow count.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.overflow
    }

    /// Fraction of samples at or above `threshold`.
    pub fn fraction_at_least(&self, threshold: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let start = ((threshold / self.max) * self.bins.len() as f64).ceil() as usize;
        let tail: u64 = self.bins[start.min(self.bins.len())..].iter().sum::<u64>() + self.overflow;
        tail as f64 / total as f64
    }
}

/// Percentile of a sample (nearest-rank), `p ∈ [0, 100]`.
///
/// Returns 0 for an empty slice.
///
/// # Examples
///
/// ```
/// use splatonic_math::stats::percentile;
/// let mut v = vec![5.0, 1.0, 3.0];
/// assert_eq!(percentile(&mut v, 50.0), 3.0);
/// ```
pub fn percentile(values: &mut [f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * (values.len() as f64 - 1.0)).round() as usize;
    values[rank.min(values.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::from_iter([2.0, 4.0, 6.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 6.0);
        assert!((s.variance() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_zero() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn summary_merge_equals_combined() {
        let mut a = Summary::from_iter([1.0, 2.0]);
        let b = Summary::from_iter([3.0, 4.0]);
        a.merge(&b);
        let c = Summary::from_iter([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.count(), c.count());
        assert!((a.mean() - c.mean()).abs() < 1e-12);
        assert!((a.variance() - c.variance()).abs() < 1e-12);
    }

    #[test]
    fn summary_from_parts_round_trips_bitwise() {
        for s in [
            Summary::new(),
            Summary::from_iter([1.5, -2.25, 7.0]),
            Summary::from_iter([0.0]),
        ] {
            let r = Summary::from_parts(s.count(), s.sum(), s.sum_sq(), s.raw_min(), s.raw_max());
            assert_eq!(r.count(), s.count());
            assert_eq!(r.sum().to_bits(), s.sum().to_bits());
            assert_eq!(r.sum_sq().to_bits(), s.sum_sq().to_bits());
            assert_eq!(r.raw_min().to_bits(), s.raw_min().to_bits());
            assert_eq!(r.raw_max().to_bits(), s.raw_max().to_bits());
        }
        // Empty summaries keep the infinite sentinels through the trip.
        let e = Summary::new();
        assert!(e.raw_min().is_infinite() && e.raw_max().is_infinite());
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(4, 8.0);
        for v in [0.5, 2.5, 4.5, 6.5, 10.0] {
            h.record(v);
        }
        assert_eq!(h.bins(), &[1, 1, 1, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_fraction_at_least() {
        let mut h = Histogram::new(8, 8.0);
        for v in 0..8 {
            h.record(v as f64 + 0.5);
        }
        assert!((h.fraction_at_least(4.0) - 0.5).abs() < 1e-12);
        assert_eq!(h.fraction_at_least(0.0), 1.0);
    }

    #[test]
    fn histogram_ignores_negatives() {
        let mut h = Histogram::new(2, 1.0);
        h.record(-1.0);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut v = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&mut v, 0.0), 10.0);
        assert_eq!(percentile(&mut v, 100.0), 50.0);
        assert_eq!(percentile(&mut v, 50.0), 30.0);
        assert_eq!(percentile(&mut [], 50.0), 0.0);
    }
}
