//! Small, dependency-free linear-algebra and image-processing toolkit used by
//! every other SPLATONIC crate.
//!
//! The crate provides exactly what the differentiable 3D-Gaussian-splatting
//! pipeline and the SLAM optimizers need:
//!
//! * fixed-size vectors ([`Vec2`], [`Vec3`], [`Vec4`]) and matrices
//!   ([`Mat2`], [`Mat3`], [`Mat4`]),
//! * unit quaternions ([`Quat`]) for Gaussian orientations,
//! * the SE(3) Lie group ([`se3::Se3`], [`se3::Pose`]) with `exp`/`log`
//!   maps for camera-pose optimization,
//! * scalar image containers ([`image::Image`]) with Sobel gradients and the
//!   Harris corner response used by the sampling baselines,
//! * the 64-entry exponential lookup table ([`explut::ExpLut`]) used by the
//!   accelerator's α-filter units (paper Sec. V-C),
//! * small statistics helpers ([`stats`]) used by the hardware models,
//! * the deterministic scoped worker pool ([`pool`]) that parallelizes the
//!   render and backward hot paths with bit-identical results on any
//!   thread count,
//! * the shared tracing timebase ([`timebase`]) stamping every trace event
//!   in the suite against one monotonic clock and stable lane ids.
//!
//! # Examples
//!
//! ```
//! use splatonic_math::{Vec3, Mat3, Quat};
//!
//! let axis = Vec3::new(0.0, 0.0, 1.0);
//! let q = Quat::from_axis_angle(axis, std::f64::consts::FRAC_PI_2);
//! let r: Mat3 = q.to_rotation_matrix();
//! let v = r * Vec3::new(1.0, 0.0, 0.0);
//! assert!((v.y - 1.0).abs() < 1e-12);
//! ```

// Every public item must carry a doc comment; config knobs additionally
// document their default and bit-exactness contract (DESIGN.md §13).
#![warn(missing_docs)]

pub mod explut;
pub mod image;
pub mod mat;
pub mod pool;
pub mod quat;
pub mod rng;
pub mod se3;
pub mod stats;
pub mod timebase;
pub mod vec;

pub use explut::ExpLut;
pub use image::Image;
pub use mat::{Mat2, Mat3, Mat4};
pub use quat::Quat;
pub use rng::Rng64;
pub use se3::{Pose, Se3};
pub use vec::{Vec2, Vec3, Vec4};

/// Clamps `x` into `[lo, hi]`.
///
/// # Examples
///
/// ```
/// assert_eq!(splatonic_math::clamp(5.0, 0.0, 1.0), 1.0);
/// ```
#[inline]
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    x.max(lo).min(hi)
}

/// Returns `true` when `a` and `b` differ by at most `eps`.
///
/// # Examples
///
/// ```
/// assert!(splatonic_math::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// ```
#[inline]
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}
