//! Fixed-size vector types (`f64` components).
//!
//! These are plain `Copy` value types with component-wise arithmetic
//! operators, dot/cross products, and norms. They intentionally stay tiny:
//! the renderer and simulators only need 2-, 3-, and 4-component vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 2-component column vector.
///
/// # Examples
///
/// ```
/// use splatonic_math::Vec2;
/// let v = Vec2::new(3.0, 4.0);
/// assert_eq!(v.norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Vec2 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
}

/// A 3-component column vector.
///
/// # Examples
///
/// ```
/// use splatonic_math::Vec3;
/// let v = Vec3::new(1.0, 0.0, 0.0).cross(Vec3::new(0.0, 1.0, 0.0));
/// assert_eq!(v, Vec3::new(0.0, 0.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

/// A 4-component column vector (homogeneous coordinates / RGBA).
///
/// # Examples
///
/// ```
/// use splatonic_math::{Vec3, Vec4};
/// let h = Vec4::from_point(Vec3::new(1.0, 2.0, 3.0));
/// assert_eq!(h.w, 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Vec4 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
    /// w component.
    pub w: f64,
}

macro_rules! impl_common {
    ($t:ident, $($f:ident),+) => {
        impl $t {
            /// Vector with all components zero.
            pub const ZERO: $t = $t { $($f: 0.0),+ };

            /// Creates a vector from its components.
            #[inline]
            pub const fn new($($f: f64),+) -> Self {
                Self { $($f),+ }
            }

            /// Creates a vector with every component equal to `v`.
            #[inline]
            pub const fn splat(v: f64) -> Self {
                Self { $($f: v),+ }
            }

            /// Dot product with `rhs`.
            #[inline]
            pub fn dot(self, rhs: Self) -> f64 {
                0.0 $(+ self.$f * rhs.$f)+
            }

            /// Squared Euclidean norm.
            #[inline]
            pub fn norm_sq(self) -> f64 {
                self.dot(self)
            }

            /// Euclidean norm.
            #[inline]
            pub fn norm(self) -> f64 {
                self.norm_sq().sqrt()
            }

            /// Returns the unit vector pointing in the same direction.
            ///
            /// Returns the zero vector when the norm is (near) zero, so this
            /// never produces NaNs for degenerate inputs.
            #[inline]
            pub fn normalized(self) -> Self {
                let n = self.norm();
                if n <= f64::EPSILON {
                    Self::ZERO
                } else {
                    self / n
                }
            }

            /// Component-wise product (Hadamard product).
            #[inline]
            pub fn hadamard(self, rhs: Self) -> Self {
                Self { $($f: self.$f * rhs.$f),+ }
            }

            /// Component-wise minimum.
            #[inline]
            pub fn min(self, rhs: Self) -> Self {
                Self { $($f: self.$f.min(rhs.$f)),+ }
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max(self, rhs: Self) -> Self {
                Self { $($f: self.$f.max(rhs.$f)),+ }
            }

            /// Largest component value.
            #[inline]
            pub fn max_component(self) -> f64 {
                let mut m = f64::NEG_INFINITY;
                $( m = m.max(self.$f); )+
                m
            }

            /// Component-wise absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self { $($f: self.$f.abs()),+ }
            }

            /// Sum of components.
            #[inline]
            pub fn sum(self) -> f64 {
                0.0 $(+ self.$f)+
            }

            /// Clamps every component into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: f64, hi: f64) -> Self {
                Self { $($f: self.$f.max(lo).min(hi)),+ }
            }

            /// Returns `true` when every component is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                true $(&& self.$f.is_finite())+
            }

            /// Linear interpolation: `self * (1 - t) + rhs * t`.
            #[inline]
            pub fn lerp(self, rhs: Self, t: f64) -> Self {
                self * (1.0 - t) + rhs * t
            }
        }

        impl Add for $t {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self { $($f: self.$f + rhs.$f),+ }
            }
        }

        impl AddAssign for $t {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                $( self.$f += rhs.$f; )+
            }
        }

        impl Sub for $t {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self { $($f: self.$f - rhs.$f),+ }
            }
        }

        impl SubAssign for $t {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                $( self.$f -= rhs.$f; )+
            }
        }

        impl Mul<f64> for $t {
            type Output = Self;
            #[inline]
            fn mul(self, s: f64) -> Self {
                Self { $($f: self.$f * s),+ }
            }
        }

        impl Mul<$t> for f64 {
            type Output = $t;
            #[inline]
            fn mul(self, v: $t) -> $t {
                v * self
            }
        }

        impl MulAssign<f64> for $t {
            #[inline]
            fn mul_assign(&mut self, s: f64) {
                $( self.$f *= s; )+
            }
        }

        impl Div<f64> for $t {
            type Output = Self;
            #[inline]
            fn div(self, s: f64) -> Self {
                Self { $($f: self.$f / s),+ }
            }
        }

        impl Neg for $t {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self { $($f: -self.$f),+ }
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "(")?;
                let mut first = true;
                $(
                    if !first { write!(f, ", ")?; }
                    write!(f, "{}", self.$f)?;
                    first = false;
                )+
                let _ = first;
                write!(f, ")")
            }
        }
    };
}

impl_common!(Vec2, x, y);
impl_common!(Vec3, x, y, z);
impl_common!(Vec4, x, y, z, w);

impl Vec2 {
    /// The 2D "cross product" (z component of the 3D cross product).
    ///
    /// # Examples
    ///
    /// ```
    /// use splatonic_math::Vec2;
    /// assert_eq!(Vec2::new(1.0, 0.0).perp_dot(Vec2::new(0.0, 1.0)), 1.0);
    /// ```
    #[inline]
    pub fn perp_dot(self, rhs: Self) -> f64 {
        self.x * rhs.y - self.y * rhs.x
    }
}

impl Vec3 {
    /// Unit vector along +x.
    pub const X: Vec3 = Vec3::new(1.0, 0.0, 0.0);
    /// Unit vector along +y.
    pub const Y: Vec3 = Vec3::new(0.0, 1.0, 0.0);
    /// Unit vector along +z.
    pub const Z: Vec3 = Vec3::new(0.0, 0.0, 1.0);

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Self) -> Self {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Returns the `(x, y)` components.
    #[inline]
    pub fn xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }
}

impl Vec4 {
    /// Lifts a 3D point to homogeneous coordinates (`w = 1`).
    #[inline]
    pub fn from_point(p: Vec3) -> Self {
        Vec4::new(p.x, p.y, p.z, 1.0)
    }

    /// Lifts a 3D direction to homogeneous coordinates (`w = 0`).
    #[inline]
    pub fn from_direction(d: Vec3) -> Self {
        Vec4::new(d.x, d.y, d.z, 0.0)
    }

    /// Returns the `(x, y, z)` components.
    #[inline]
    pub fn xyz(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }
}

impl From<[f64; 2]> for Vec2 {
    fn from(a: [f64; 2]) -> Self {
        Vec2::new(a[0], a[1])
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<[f64; 4]> for Vec4 {
    fn from(a: [f64; 4]) -> Self {
        Vec4::new(a[0], a[1], a[2], a[3])
    }
}

impl From<Vec2> for [f64; 2] {
    fn from(v: Vec2) -> Self {
        [v.x, v.y]
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

impl From<Vec4> for [f64; 4] {
    fn from(v: Vec4) -> Self {
        [v.x, v.y, v.z, v.w]
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl Index<usize> for Vec2 {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            _ => panic!("Vec2 index {i} out of range"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec2_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, Vec2::new(2.0, 4.0));
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert_eq!(a.dot(b), 1.0);
    }

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn normalization_handles_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
        let v = Vec3::new(0.0, 3.0, 4.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(2.0, 0.0, -1.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.5, 0.5, 0.0));
    }

    #[test]
    fn clamp_and_abs() {
        let v = Vec3::new(-2.0, 0.5, 7.0);
        assert_eq!(v.clamp(0.0, 1.0), Vec3::new(0.0, 0.5, 1.0));
        assert_eq!(v.abs(), Vec3::new(2.0, 0.5, 7.0));
        assert_eq!(v.max_component(), 7.0);
    }

    #[test]
    fn homogeneous_round_trip() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Vec4::from_point(p).xyz(), p);
        assert_eq!(Vec4::from_direction(p).w, 0.0);
    }

    #[test]
    fn array_conversions() {
        let v: Vec3 = [1.0, 2.0, 3.0].into();
        let a: [f64; 3] = v.into();
        assert_eq!(a, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn indexing() {
        let v = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(v[0], 4.0);
        assert_eq!(v[2], 6.0);
        let mut m = v;
        m[1] = 9.0;
        assert_eq!(m.y, 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", Vec2::new(1.0, 2.0)), "(1, 2)");
    }

    #[test]
    fn hadamard_and_sum() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(2.0, 3.0, 4.0);
        assert_eq!(a.hadamard(b), Vec3::new(2.0, 6.0, 12.0));
        assert_eq!(a.sum(), 6.0);
    }

    #[test]
    fn min_max() {
        let a = Vec2::new(1.0, 5.0);
        let b = Vec2::new(2.0, 3.0);
        assert_eq!(a.min(b), Vec2::new(1.0, 3.0));
        assert_eq!(a.max(b), Vec2::new(2.0, 5.0));
    }
}
