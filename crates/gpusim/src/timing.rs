//! Per-stage GPU timing model.

use splatonic_render::{Pipeline, RenderTrace};

/// GPU hardware parameters (defaults model a Jetson-Orin-class mobile
/// Ampere GPU).
///
/// Rates are *effective sustained* throughputs, folding issue limits and
/// typical occupancy into one constant per operation class; they are
/// calibration values, not datasheet numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Streaming multiprocessor count.
    pub sm_count: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Warp-instructions issued per SM per cycle (sustained).
    pub warp_issue_per_sm: f64,
    /// Cycles of issued work per rasterization warp-step (α-check
    /// address math + blend, excluding the exp itself).
    pub raster_cpi: f64,
    /// Cycles per reverse-rasterization warp-step (gradient math is
    /// heavier than blending).
    pub reverse_cpi: f64,
    /// `exp` evaluations per SM per cycle (SFU throughput).
    pub sfu_exp_per_sm_cycle: f64,
    /// Warp-cycles to project one Gaussian (mean/covariance/conic).
    pub projection_cycles: f64,
    /// Warp-cycles to set up one tile–Gaussian pair entry.
    pub pair_setup_cycles: f64,
    /// Cycles per element·log₂(n) of sorting work.
    pub sort_cycles_per_elem: f64,
    /// Scalar atomic adds retired per cycle (whole GPU, conflict-free).
    pub atomic_throughput: f64,
    /// Extra serialization per unit of mean per-Gaussian collision depth:
    /// effective atomic cost multiplier is `1 + weight · mean_touches`.
    pub atomic_contention_weight: f64,
    /// Cycles per re-projection (per touched Gaussian).
    pub reprojection_cycles: f64,
    /// Kernel-launch overhead per stage launch, in microseconds (the paper
    /// measures "execution time as well as the kernel launch").
    pub launch_overhead_us: f64,
    /// Number of kernel launches per forward pass.
    pub forward_launches: f64,
    /// Number of kernel launches per backward pass.
    pub backward_launches: f64,
    /// Sustained DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Per-stage minimum time in microseconds (kernel tail / sync floor —
    /// tiny sparse kernels cannot go faster than this).
    pub stage_floor_us: f64,
}

impl GpuConfig {
    /// Jetson-Orin-like mobile Ampere configuration.
    pub fn orin_like() -> Self {
        GpuConfig {
            sm_count: 8,
            clock_ghz: 0.918,
            warp_issue_per_sm: 1.0,
            raster_cpi: 24.0,
            reverse_cpi: 40.0,
            sfu_exp_per_sm_cycle: 4.0,
            projection_cycles: 48.0,
            pair_setup_cycles: 4.0,
            sort_cycles_per_elem: 1.2,
            atomic_throughput: 16.0,
            atomic_contention_weight: 0.03,
            reprojection_cycles: 96.0,
            launch_overhead_us: 6.0,
            forward_launches: 3.0,
            backward_launches: 2.0,
            dram_gbps: 51.2,
            stage_floor_us: 3.0,
        }
    }

    /// Total warp-instruction issue slots per second.
    fn issue_rate(&self) -> f64 {
        self.sm_count as f64 * self.warp_issue_per_sm * self.clock_ghz * 1e9
    }

    /// Total `exp` evaluations per second.
    fn sfu_rate(&self) -> f64 {
        self.sm_count as f64 * self.sfu_exp_per_sm_cycle * self.clock_ghz * 1e9
    }

    /// Seconds for `cycles` of warp-issue work.
    fn issue_seconds(&self, cycles: f64) -> f64 {
        cycles / self.issue_rate()
    }

    /// Seconds the SFUs need for `evals` exponential evaluations (used by
    /// the α-checking-share characterization, paper Fig. 9).
    pub fn sfu_seconds(&self, evals: u64) -> f64 {
        evals as f64 / self.sfu_rate()
    }

    /// Prices one forward+backward trace.
    pub fn price(&self, trace: &RenderTrace, pipeline: Pipeline) -> GpuReport {
        let f = &trace.forward;
        let b = &trace.backward;
        let clock_hz = self.clock_ghz * 1e9;

        // --- Forward ---------------------------------------------------
        // Projection: per-Gaussian transform work plus pipeline-specific
        // extras (tile pairs vs. preemptive α-checking).
        let mut projection = self.issue_seconds(
            f.gaussians_input as f64 / 32.0 * self.projection_cycles
                + f.tile_pairs as f64 * self.pair_setup_cycles / 32.0,
        );
        if pipeline == Pipeline::PixelBased {
            // Pixel-level projection on the GPU lacks the accelerator's
            // direct indexing (a hardware technique, paper Sec. V-C): every
            // projected Gaussian scans the whole sampled-pixel list and
            // α-checks each candidate. This is what shifts the forward
            // bottleneck into projection (paper Fig. 14a).
            let sw_checks = (f.gaussians_projected as f64) * (f.pixels_shaded as f64);
            let setup = self.issue_seconds(sw_checks * self.pair_setup_cycles / 8.0);
            let sfu = sw_checks / self.sfu_rate();
            projection += setup.max(sfu)
                + self.issue_seconds(f.proj_pairs_kept as f64 * self.pair_setup_cycles / 32.0);
        }

        // Sorting: n·log n compare/exchange work over the recorded lists.
        let mean_len = if f.sort_lists > 0 {
            (f.sort_elems as f64 / f.sort_lists as f64).max(2.0)
        } else {
            2.0
        };
        let sorting = self.issue_seconds(
            f.sort_elems as f64 * mean_len.log2() * self.sort_cycles_per_elem / 32.0,
        );

        // Rasterization: warp-steps are the issued work regardless of how
        // many lanes were useful (divergence); α-check exps bound via SFU.
        let raster_issue = self.issue_seconds(f.warp_steps as f64 * self.raster_cpi);
        let raster_sfu = f.raster_alpha_checks as f64 / self.sfu_rate();
        let rasterization = raster_issue.max(raster_sfu);

        // DRAM floor for the whole forward pass.
        let fwd_dram = (f.bytes_read + f.bytes_written) as f64 / (self.dram_gbps * 1e9);
        let fwd_launch = self.forward_launches * self.launch_overhead_us * 1e-6;

        // --- Backward --------------------------------------------------
        let floor = self.stage_floor_us * 1e-6;
        let projection = projection.max(floor);
        let sorting = sorting.max(floor);
        let rasterization = rasterization.max(floor);

        let rev_issue = self.issue_seconds(b.warp_steps as f64 * self.reverse_cpi);
        let rev_sfu = (b.alpha_checks + b.exp_evals) as f64 / self.sfu_rate();
        let rev_reduction = self.issue_seconds(b.reduction_ops as f64 * 2.0 / 32.0);
        let reverse_raster = (rev_issue.max(rev_sfu) + rev_reduction).max(floor);

        // Aggregation: atomic throughput degraded by measured collision
        // depth (paper Fig. 8: ≥63.5% of reverse-raster time).
        let contention = 1.0 + self.atomic_contention_weight * b.gaussian_touches.mean();
        let aggregation =
            (b.atomic_adds as f64 * contention / (self.atomic_throughput * clock_hz)).max(floor);

        let reprojection =
            self.issue_seconds(b.reprojections as f64 / 32.0 * self.reprojection_cycles);
        let bwd_dram = (b.bytes_read + b.bytes_written) as f64 / (self.dram_gbps * 1e9);
        let bwd_launch = self.backward_launches * self.launch_overhead_us * 1e-6;

        GpuReport {
            forward: StageTimes {
                projection,
                sorting,
                rasterization,
                dram_floor: fwd_dram,
                launch: fwd_launch,
            },
            backward: BackwardTimes {
                reverse_raster,
                aggregation,
                reprojection,
                dram_floor: bwd_dram,
                launch: bwd_launch,
            },
        }
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::orin_like()
    }
}

/// Forward-pass stage times (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageTimes {
    /// Projection stage.
    pub projection: f64,
    /// Sorting stage.
    pub sorting: f64,
    /// Rasterization stage.
    pub rasterization: f64,
    /// Memory-bandwidth floor across the pass.
    pub dram_floor: f64,
    /// Kernel-launch overhead.
    pub launch: f64,
}

impl StageTimes {
    /// Total forward time: compute stages serialize; the DRAM floor applies
    /// if it exceeds the summed compute time.
    pub fn total(&self) -> f64 {
        (self.projection + self.sorting + self.rasterization).max(self.dram_floor) + self.launch
    }
}

/// Backward-pass stage times (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BackwardTimes {
    /// Reverse rasterization (per-pair gradients, including Γ reductions).
    pub reverse_raster: f64,
    /// Aggregation (atomic accumulation of partial gradients).
    pub aggregation: f64,
    /// Re-projection of accumulated gradients.
    pub reprojection: f64,
    /// Memory-bandwidth floor across the pass.
    pub dram_floor: f64,
    /// Kernel-launch overhead.
    pub launch: f64,
}

impl BackwardTimes {
    /// Total backward time.
    pub fn total(&self) -> f64 {
        (self.reverse_raster + self.aggregation + self.reprojection).max(self.dram_floor)
            + self.launch
    }
}

/// Priced forward + backward pass.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GpuReport {
    /// Forward-pass stage times.
    pub forward: StageTimes,
    /// Backward-pass stage times.
    pub backward: BackwardTimes,
}

impl GpuReport {
    /// End-to-end seconds (forward + backward).
    pub fn total_seconds(&self) -> f64 {
        self.forward.total() + self.backward.total()
    }

    /// Fraction of total time spent in rasterization + reverse
    /// rasterization (paper Fig. 5 reports ≈ 94.7% for the dense baseline).
    pub fn raster_fraction(&self) -> f64 {
        let t = self.total_seconds();
        if t == 0.0 {
            return 0.0;
        }
        (self.forward.rasterization + self.backward.reverse_raster + self.backward.aggregation) / t
    }

    /// Fraction of forward time in projection (paper Fig. 14a).
    pub fn projection_fraction(&self) -> f64 {
        let t = self.forward.total();
        if t == 0.0 {
            return 0.0;
        }
        self.forward.projection / t
    }

    /// Fraction of backward time in aggregation (paper Fig. 8).
    pub fn aggregation_fraction(&self) -> f64 {
        let t = self.backward.total();
        if t == 0.0 {
            return 0.0;
        }
        self.backward.aggregation / t
    }

    /// Exports the stage breakdown as telemetry gauges under `prefix` (e.g.
    /// `hw/gpu`), one gauge per stage plus pass totals.
    ///
    /// Destructuring is exhaustive: a new stage field fails compilation here
    /// until it is exported.
    pub fn export_telemetry(&self, telemetry: &splatonic_telemetry::Telemetry, prefix: &str) {
        let GpuReport { forward, backward } = self;
        let StageTimes {
            projection,
            sorting,
            rasterization,
            dram_floor,
            launch,
        } = forward;
        let fwd = [
            ("projection_s", *projection),
            ("sorting_s", *sorting),
            ("rasterization_s", *rasterization),
            ("dram_floor_s", *dram_floor),
            ("launch_s", *launch),
            ("total_s", forward.total()),
        ];
        for (name, value) in fwd {
            telemetry.gauge_set(&format!("{prefix}/forward/{name}"), value);
        }
        let BackwardTimes {
            reverse_raster,
            aggregation,
            reprojection,
            dram_floor,
            launch,
        } = backward;
        let bwd = [
            ("reverse_raster_s", *reverse_raster),
            ("aggregation_s", *aggregation),
            ("reprojection_s", *reprojection),
            ("dram_floor_s", *dram_floor),
            ("launch_s", *launch),
            ("total_s", backward.total()),
        ];
        for (name, value) in bwd {
            telemetry.gauge_set(&format!("{prefix}/backward/{name}"), value);
        }
        telemetry.gauge_set(&format!("{prefix}/total_s"), self.total_seconds());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatonic_render::RenderTrace;

    fn dense_tile_trace() -> RenderTrace {
        // Synthetic counts shaped like a dense 3DGS frame: raster dominates.
        let mut t = RenderTrace::new();
        let f = &mut t.forward;
        f.gaussians_input = 100_000;
        f.gaussians_projected = 60_000;
        f.tile_pairs = 500_000;
        f.sort_elems = 500_000;
        f.sort_lists = 4_800;
        f.warp_steps = 4_000_000;
        f.warp_active = 36_000_000;
        f.raster_alpha_checks = 100_000_000;
        f.exp_evals = 100_000_000;
        f.pairs_integrated = 30_000_000;
        f.pixels_shaded = 1_200_000;
        f.bytes_read = 200_000_000;
        f.bytes_written = 50_000_000;
        let b = &mut t.backward;
        b.warp_steps = 4_000_000;
        b.alpha_checks = 100_000_000;
        b.exp_evals = 30_000_000;
        b.pairs_grad = 30_000_000;
        b.atomic_adds = 300_000_000;
        for _ in 0..100 {
            b.gaussian_touches.push(500.0);
        }
        b.gaussians_touched = 60_000;
        b.reprojections = 60_000;
        b.bytes_read = 300_000_000;
        b.bytes_written = 100_000_000;
        t
    }

    #[test]
    fn dense_raster_dominates() {
        let r = price_default(&dense_tile_trace());
        assert!(
            r.raster_fraction() > 0.85,
            "raster fraction {} should dominate like paper Fig. 5",
            r.raster_fraction()
        );
    }

    fn price_default(t: &RenderTrace) -> GpuReport {
        GpuConfig::orin_like().price(t, Pipeline::TileBased)
    }

    #[test]
    fn aggregation_significant_in_backward() {
        let r = price_default(&dense_tile_trace());
        assert!(
            r.aggregation_fraction() > 0.4,
            "aggregation fraction {} (paper Fig. 8: ≈63.5%)",
            r.aggregation_fraction()
        );
    }

    #[test]
    fn sparse_tile_trace_is_barely_faster() {
        // Sparse sampling on the tile schedule: warp_steps shrink only ~8×
        // (warps still walk whole tile lists), α-checks shrink ~256×.
        let dense = dense_tile_trace();
        let mut sparse = dense_tile_trace();
        sparse.forward.warp_steps /= 8;
        sparse.forward.raster_alpha_checks /= 256;
        sparse.forward.exp_evals /= 256;
        sparse.backward.warp_steps /= 8;
        sparse.backward.alpha_checks /= 256;
        sparse.backward.atomic_adds /= 256;
        let rd = price_default(&dense);
        let rs = price_default(&sparse);
        let speedup = rd.total_seconds() / rs.total_seconds();
        assert!(
            speedup > 2.0 && speedup < 40.0,
            "tile-based sparse speedup {speedup} should be far below 256× (paper: ~4×)"
        );
    }

    #[test]
    fn sfu_bounds_alpha_heavy_stages() {
        let mut t = dense_tile_trace();
        // Make the α-check count extreme: rasterization must become
        // SFU-bound and scale with it.
        t.forward.raster_alpha_checks *= 30;
        let r = price_default(&t);
        let base = price_default(&dense_tile_trace());
        assert!(r.forward.rasterization > base.forward.rasterization * 5.0);
    }

    #[test]
    fn contention_scales_aggregation() {
        let mut low = dense_tile_trace();
        low.backward.gaussian_touches = splatonic_math::stats::Summary::from_iter([2.0; 16]);
        let mut high = dense_tile_trace();
        high.backward.gaussian_touches = splatonic_math::stats::Summary::from_iter([2000.0; 16]);
        let rl = price_default(&low);
        let rh = price_default(&high);
        assert!(rh.backward.aggregation > rl.backward.aggregation * 5.0);
    }

    #[test]
    fn empty_trace_is_pure_overhead() {
        // No work: only launch overhead plus the per-stage kernel-tail
        // floor remains (three forward stages, reverse raster, aggregation;
        // reprojection has no floor).
        let r = price_default(&RenderTrace::new());
        let cfg = GpuConfig::orin_like();
        let launches =
            (cfg.forward_launches + cfg.backward_launches) * cfg.launch_overhead_us * 1e-6;
        let floors = 5.0 * cfg.stage_floor_us * 1e-6;
        assert!((r.total_seconds() - (launches + floors)).abs() < 1e-12);
    }

    #[test]
    fn pixel_pipeline_prices_projection_alpha_checks() {
        // The SW pixel-based projection term scans every sampled pixel per
        // projected Gaussian, so the trace must carry both counts.
        let mut t = RenderTrace::new();
        t.forward.gaussians_input = 10_000;
        t.forward.gaussians_projected = 8_000;
        t.forward.pixels_shaded = 1_000;
        t.forward.proj_alpha_checks = 5_000_000;
        t.forward.proj_pairs_kept = 100_000;
        let tile = GpuConfig::orin_like().price(&t, Pipeline::TileBased);
        let pixel = GpuConfig::orin_like().price(&t, Pipeline::PixelBased);
        assert!(pixel.forward.projection > tile.forward.projection * 2.0);
    }
}
