//! Analytic timing and energy model of a mobile Ampere-class GPU.
//!
//! Stands in for the paper's Jetson Orin measurements (DESIGN.md §2). The
//! model does not re-run the renderer: it prices a [`RenderTrace`] — the
//! per-stage operation counts recorded on the *real* workload — so the three
//! GPU effects the paper characterizes fall out of measured distributions:
//!
//! * **Warp divergence** (Sec. III-B, Fig. 6/7): rasterization time scales
//!   with *warp-steps*, not useful pairs; the trace's `warp_steps` already
//!   count the steps a one-thread-per-pixel schedule issues, so a sparse
//!   pixel set on the tile-based schedule pays almost the dense cost.
//! * **SFU-bound α-checking** (Fig. 9): every α-check evaluates `exp` on
//!   the special-function units, which are far scarcer than FMA lanes.
//! * **Atomic serialization in aggregation** (Fig. 8): `atomicAdd`
//!   throughput degrades with the measured per-Gaussian collision depth.
//!
//! All constants are calibration values for a Jetson-Orin-class part and are
//! documented on [`GpuConfig`].

pub mod energy;
pub mod timing;

pub use energy::{EnergyBreakdown, GpuEnergyModel};
pub use timing::{GpuConfig, GpuReport, StageTimes};

use splatonic_render::{Pipeline, RenderTrace};

/// Prices a workload trace on the default Orin-like GPU configuration.
///
/// # Examples
///
/// ```
/// use splatonic_render::{Pipeline, RenderTrace};
/// let mut trace = RenderTrace::new();
/// trace.forward.warp_steps = 1_000;
/// trace.forward.warp_active = 8_000;
/// let report = splatonic_gpusim::price(&trace, Pipeline::TileBased);
/// assert!(report.total_seconds() > 0.0);
/// ```
pub fn price(trace: &RenderTrace, pipeline: Pipeline) -> GpuReport {
    GpuConfig::orin_like().price(trace, pipeline)
}
