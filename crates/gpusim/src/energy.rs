//! GPU energy model.
//!
//! Energy is priced as static power × runtime plus per-operation dynamic
//! energy plus DRAM traffic energy — mirroring how the paper obtains GPU
//! power from Orin's built-in sensing and DRAM energy from the Micron power
//! calculators (Sec. VI). Constants are calibration values for a mobile
//! Ampere-class SoC.

use crate::timing::GpuReport;
use splatonic_render::RenderTrace;

/// Per-operation and static energy constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuEnergyModel {
    /// Static (leakage + idle rail) power in watts.
    pub static_watts: f64,
    /// Energy per warp-step of issued work, in picojoules.
    pub pj_per_warp_step: f64,
    /// Energy per SFU `exp`, in picojoules.
    pub pj_per_exp: f64,
    /// Energy per scalar atomic add, in picojoules.
    pub pj_per_atomic: f64,
    /// Energy per Gaussian projection, in picojoules.
    pub pj_per_projection: f64,
    /// Energy per sorted element, in picojoules.
    pub pj_per_sort_elem: f64,
    /// DRAM energy per byte moved, in picojoules.
    pub pj_per_dram_byte: f64,
}

impl GpuEnergyModel {
    /// Orin-like calibration.
    pub fn orin_like() -> Self {
        GpuEnergyModel {
            static_watts: 3.0,
            pj_per_warp_step: 600.0,
            pj_per_exp: 30.0,
            pj_per_atomic: 80.0,
            pj_per_projection: 900.0,
            pj_per_sort_elem: 25.0,
            pj_per_dram_byte: 80.0,
        }
    }

    /// Prices the energy of a traced pass given its timing report.
    pub fn price(&self, trace: &RenderTrace, report: &GpuReport) -> EnergyBreakdown {
        let f = &trace.forward;
        let b = &trace.backward;
        let pj = |v: f64| v * 1e-12;
        let compute = pj((f.warp_steps + b.warp_steps) as f64 * self.pj_per_warp_step
            + (f.exp_evals + b.exp_evals + b.alpha_checks) as f64 * self.pj_per_exp
            + f.gaussians_input as f64 * self.pj_per_projection
            + f.sort_elems as f64 * self.pj_per_sort_elem
            + (f.proj_alpha_checks + f.proj_pairs_kept + f.tile_pairs) as f64
                * self.pj_per_sort_elem);
        let atomic = pj(b.atomic_adds as f64 * self.pj_per_atomic);
        let dram = pj(
            (f.bytes_read + f.bytes_written + b.bytes_read + b.bytes_written) as f64
                * self.pj_per_dram_byte,
        );
        let static_energy = self.static_watts * report.total_seconds();
        EnergyBreakdown {
            compute_j: compute,
            atomic_j: atomic,
            dram_j: dram,
            static_j: static_energy,
        }
    }
}

impl Default for GpuEnergyModel {
    fn default() -> Self {
        GpuEnergyModel::orin_like()
    }
}

/// Energy components of one pass, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Dynamic compute energy.
    pub compute_j: f64,
    /// Atomic-operation energy.
    pub atomic_j: f64,
    /// DRAM traffic energy.
    pub dram_j: f64,
    /// Static power × runtime.
    pub static_j: f64,
}

impl EnergyBreakdown {
    /// Total joules.
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.atomic_j + self.dram_j + self.static_j
    }

    /// Exports the energy components as telemetry gauges under `prefix`
    /// (exhaustively destructured: new components must be exported here).
    pub fn export_telemetry(&self, telemetry: &splatonic_telemetry::Telemetry, prefix: &str) {
        let EnergyBreakdown {
            compute_j,
            atomic_j,
            dram_j,
            static_j,
        } = self;
        let parts = [
            ("compute_j", *compute_j),
            ("atomic_j", *atomic_j),
            ("dram_j", *dram_j),
            ("static_j", *static_j),
            ("total_j", self.total_j()),
        ];
        for (name, value) in parts {
            telemetry.gauge_set(&format!("{prefix}/{name}"), value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::GpuConfig;
    use splatonic_render::Pipeline;

    #[test]
    fn more_work_costs_more_energy() {
        let cfg = GpuConfig::orin_like();
        let em = GpuEnergyModel::orin_like();
        let mut small = RenderTrace::new();
        small.forward.warp_steps = 1_000;
        small.forward.exp_evals = 10_000;
        let mut big = RenderTrace::new();
        big.forward.warp_steps = 1_000_000;
        big.forward.exp_evals = 10_000_000;
        big.backward.atomic_adds = 1_000_000;
        let es = em.price(&small, &cfg.price(&small, Pipeline::TileBased));
        let eb = em.price(&big, &cfg.price(&big, Pipeline::TileBased));
        assert!(eb.total_j() > es.total_j() * 10.0);
    }

    #[test]
    fn static_term_scales_with_time() {
        let em = GpuEnergyModel::orin_like();
        let trace = RenderTrace::new();
        let mut report = GpuReport::default();
        report.forward.rasterization = 1.0;
        let e = em.price(&trace, &report);
        assert!((e.static_j - em.static_watts).abs() < 1e-9);
    }

    #[test]
    fn breakdown_sums() {
        let e = EnergyBreakdown {
            compute_j: 1.0,
            atomic_j: 2.0,
            dram_j: 3.0,
            static_j: 4.0,
        };
        assert_eq!(e.total_j(), 10.0);
    }
}
