//! Criterion micro-benchmarks for the hot kernels: both rendering
//! schedules (dense and sparse), the backward pass, the sampling
//! strategies, and the aggregation-unit simulation.
//!
//! These complement the `figures` binary (which regenerates the paper's
//! modelled results) by measuring the *host* implementation itself.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use splatonic_accel::{AggregationConfig, DramModel, FrameWorkload, SplatonicAccel};
use splatonic_render::prelude::*;
use splatonic_render::{loss, LossConfig, MappingSampler};
use splatonic_render::sampling::{tracking_plan, MappingStrategy, SamplingPlan};
use splatonic_scene::{Camera, Intrinsics, WorldBuilder};
use splatonic_slam::dataset::{Dataset, DatasetConfig};

const W: usize = 96;
const H: usize = 72;

fn bench_scene() -> (splatonic_scene::GaussianScene, Camera) {
    let world = WorldBuilder::new(5).gaussian_spacing(0.25).furniture(3).build();
    let cam = Camera::look_at(
        Intrinsics::with_fov(W, H, 1.25),
        splatonic_math::Vec3::new(0.6, -0.1, -0.4),
        splatonic_math::Vec3::new(0.0, 0.0, 2.2),
        splatonic_math::Vec3::Y,
    );
    (world.scene, cam)
}

fn sparse_set() -> PixelSet {
    PixelSet::from_tile_chooser(W, H, 16, |_, _, x0, y0, tw, th| {
        Some(splatonic_render::pixelset::PixelCoord::new(
            (x0 + tw / 2) as u16,
            (y0 + th / 2) as u16,
        ))
    })
}

fn forward_benches(c: &mut Criterion) {
    let (scene, cam) = bench_scene();
    let cfg = RenderConfig::default();
    let dense = PixelSet::dense(W, H);
    let sparse = sparse_set();
    let mut g = c.benchmark_group("forward");
    g.bench_function("tile_dense", |b| {
        b.iter(|| render_forward(&scene, &cam, &dense, Pipeline::TileBased, &cfg))
    });
    g.bench_function("pixel_dense", |b| {
        b.iter(|| render_forward(&scene, &cam, &dense, Pipeline::PixelBased, &cfg))
    });
    g.bench_function("tile_sparse16", |b| {
        b.iter(|| render_forward(&scene, &cam, &sparse, Pipeline::TileBased, &cfg))
    });
    g.bench_function("pixel_sparse16", |b| {
        b.iter(|| render_forward(&scene, &cam, &sparse, Pipeline::PixelBased, &cfg))
    });
    g.finish();
}

fn backward_benches(c: &mut Criterion) {
    let (scene, cam) = bench_scene();
    let cfg = RenderConfig::default();
    let sparse = sparse_set();
    let out = render_forward(&scene, &cam, &sparse, Pipeline::PixelBased, &cfg);
    let grads = vec![
        loss::LossGrad {
            d_color: splatonic_math::Vec3::splat(0.1),
            d_depth: 0.05,
        };
        sparse.len()
    ];
    c.bench_function("backward/pixel_sparse16", |b| {
        b.iter(|| {
            render_backward(
                &scene,
                &cam,
                &sparse,
                &out,
                &grads,
                Pipeline::PixelBased,
                &cfg,
            )
        })
    });
}

fn sampling_benches(c: &mut Criterion) {
    let d = Dataset::replica_like(
        "bench",
        9,
        DatasetConfig {
            width: W,
            height: H,
            frames: 2,
            spacing: 0.3,
            fov: 1.25,
            furniture: 2,
        },
    );
    let frame = &d.frames[0];
    let mut g = c.benchmark_group("sampling");
    g.bench_function("random_per_tile16", |b| {
        b.iter(|| tracking_plan(SamplingStrategy::RandomPerTile { tile: 16 }, frame, 1, None))
    });
    g.bench_function("harris_per_tile16", |b| {
        b.iter(|| tracking_plan(SamplingStrategy::HarrisPerTile { tile: 16 }, frame, 1, None))
    });
    let transmittance = splatonic_math::Image::filled(W, H, 0.2);
    let sampler = MappingSampler::new(4, MappingStrategy::Combined);
    g.bench_function("mapping_combined_w4", |b| {
        b.iter(|| sampler.build(frame, &transmittance, 1))
    });
    g.finish();
}

fn loss_benches(c: &mut Criterion) {
    let (scene, cam) = bench_scene();
    let cfg = RenderConfig::default();
    let dense = PixelSet::dense(W, H);
    let out = render_forward(&scene, &cam, &dense, Pipeline::TileBased, &cfg);
    let d = Dataset::replica_like(
        "bench-loss",
        9,
        DatasetConfig {
            width: W,
            height: H,
            frames: 1,
            spacing: 0.3,
            fov: 1.25,
            furniture: 2,
        },
    );
    c.bench_function("loss/dense", |b| {
        b.iter(|| loss::evaluate_loss(&out, &d.frames[0], &dense, &LossConfig::default()))
    });
}

fn aggregation_benches(c: &mut Criterion) {
    // A mapping-scale gradient stream with realistic locality.
    let stream: Vec<Vec<u32>> = (0..2000u32)
        .map(|p| (0..16u32).map(|k| (p / 4) * 8 + k * 37 % 4000).collect())
        .collect();
    let dram = DramModel::lpddr3_1600_x4();
    c.bench_function("accel/aggregation_unit", |b| {
        b.iter_batched(
            || stream.clone(),
            |s| splatonic_accel::aggregation::simulate(&s, &AggregationConfig::paper(), &dram, 500e6),
            BatchSize::SmallInput,
        )
    });
    // Full accelerator pricing of a sparse workload.
    let workload = FrameWorkload {
        gaussians: 4000,
        projected: 3000,
        proj_candidates: vec![4; 3000],
        pairs_kept: 960,
        pixel_lists: vec![20; 48],
        grad_stream: (0..48u32)
            .map(|p| (0..20u32).map(|k| (p * 37 + k * 113) % 4000).collect())
            .collect(),
        fwd_bytes: 300_000,
        bwd_bytes: 50_000,
        pixels: 48,
        ..FrameWorkload::default()
    };
    c.bench_function("accel/price_sparse_iteration", |b| {
        b.iter(|| SplatonicAccel::paper().price(&workload))
    });
}

criterion_group!(
    benches,
    forward_benches,
    backward_benches,
    sampling_benches,
    loss_benches,
    aggregation_benches
);
criterion_main!(benches);
