//! Report-to-baseline comparison (`report_diff REPORT BASELINE`).
//!
//! Rust twin of the gating rules in `scripts/check_bench.py`, so CI can
//! shell out to one binary instead of re-implementing the policy per
//! consumer (check_bench.py delegates its span comparison here when the
//! binary is built). The split of strict-vs-loose follows determinism:
//!
//! * workload counters: exact — the renderer is deterministic, any delta is
//!   a real workload change;
//! * per-frame integer/bool fields: exact; per-frame floats and accuracy:
//!   absolute tolerance [`FLOAT_ABS_TOL`];
//! * span invocation *counts*: exact; span *wall time*: upper bound only
//!   ([`TIMING_MULT`]× baseline, floored at [`TIMING_FLOOR_MS`]);
//! * latency histograms: sample counts exact, percentiles bounded like span
//!   time (they are wall-clock, quantized to log2 bucket upper edges);
//! * anything under a [`SKIP_PREFIXES`] prefix: machine-dependent, skipped.
//!
//! Every violation is collected (not just the first) and rendered one per
//! line; [`diff_reports`] returning an empty list is a pass.

use splatonic::telemetry::json::Json;

/// Absolute tolerance for accuracy metrics and per-frame floats (dB for
/// PSNR, cm for ATE).
pub const FLOAT_ABS_TOL: f64 = 0.05;
/// Relative tolerance for gauges (deterministic hardware-model outputs).
pub const GAUGE_REL_TOL: f64 = 1e-6;
/// A span's (or latency percentile's) report value may be up to this many
/// times the baseline — CI runners are slow and noisy.
pub const TIMING_MULT: f64 = 25.0;
/// ...with a floor so micro-spans cannot flake.
pub const TIMING_FLOOR_MS: f64 = 5.0;
/// Machine-dependent metric prefixes, value-skipped on both sides.
pub const SKIP_PREFIXES: &[&str] = &["pool/", "render/simd_lanes"];
/// Counters the report must carry regardless of what the baseline holds —
/// a dropped checkpoint subsystem (or a silently disabled sorted-tile-list
/// cache) must fail the gate even if both sides lost the keys together.
pub const REQUIRED_COUNTERS: &[&str] = &[
    "slam/checkpoints_written",
    "render/sort_hits",
    "render/sort_misses",
    "render/sort_merges",
    "render/sort_cold_elems",
    "render/sort_merged_elems",
    "assets/ply_gaussians_written",
    "assets/ply_gaussians_read",
    "lod/pruned",
    "mapping/densify_capped",
];
/// The [`REQUIRED_COUNTERS`] subset that must additionally be nonzero: any
/// instrumented run checkpoints, performs at least one cold tile-sort
/// build (the per-frame PSNR evaluation renders the tile schedule), and
/// roundtrips the scene through the `.ply` codec. Exact hits/merges depend
/// on the run shape — and `lod/pruned` / `mapping/densify_capped` are zero
/// whenever their knobs are off — so those are presence-only.
pub const REQUIRED_NONZERO: &[&str] = &[
    "slam/checkpoints_written",
    "render/sort_misses",
    "render/sort_cold_elems",
    "assets/ply_gaussians_written",
    "assets/ply_gaussians_read",
];
/// Gauges that must be present on both sides (values may be skipped).
pub const REQUIRED_GAUGES: &[&str] = &["slam/snapshot_bytes", "render/simd_lanes"];

/// Which report sections to compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffScope {
    /// Everything: accuracy, frames, counters, spans, gauges, latency.
    Full,
    /// Spans and latency histograms only (`--spans-only`; what
    /// `check_bench.py` delegates).
    SpansOnly,
}

fn machine_dependent(name: &str) -> bool {
    SKIP_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Object fields as `(key, value)` pairs, machine-dependent keys removed.
fn object_entries<'a>(doc: &'a Json, section: &str) -> Vec<(&'a str, &'a Json)> {
    match doc.get(section) {
        Some(Json::Obj(fields)) => fields
            .iter()
            .filter(|(k, _)| !machine_dependent(k))
            .map(|(k, v)| (k.as_str(), v))
            .collect(),
        _ => Vec::new(),
    }
}

fn lookup<'a>(entries: &[(&'a str, &'a Json)], key: &str) -> Option<&'a Json> {
    entries.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

/// Sorted union of keys missing from one side, as errors.
fn key_set_errors(
    errors: &mut Vec<String>,
    section: &str,
    report: &[(&str, &Json)],
    baseline: &[(&str, &Json)],
    extra_hint: &str,
) {
    for (k, _) in baseline {
        if lookup(report, k).is_none() {
            errors.push(format!("{section}.{k}: missing from report"));
        }
    }
    for (k, _) in report {
        if lookup(baseline, k).is_none() {
            errors.push(format!("{section}.{k}: not in baseline{extra_hint}"));
        }
    }
}

fn f64_field(v: &Json, key: &str) -> Option<f64> {
    v.get(key).and_then(Json::as_f64)
}

fn diff_accuracy(errors: &mut Vec<String>, report: &Json, baseline: &Json) {
    let empty = Json::obj();
    let acc_r = report.get("accuracy").unwrap_or(&empty);
    let acc_b = baseline.get("accuracy").unwrap_or(&empty);
    for field in ["frames", "scene_size"] {
        if acc_r.get(field) != acc_b.get(field) {
            errors.push(format!(
                "accuracy.{field}: report {:?} != baseline {:?}",
                acc_r.get(field),
                acc_b.get(field)
            ));
        }
    }
    for field in ["psnr_db", "ate_cm"] {
        match (f64_field(acc_r, field), f64_field(acc_b, field)) {
            (Some(r), Some(b)) => {
                if (r - b).abs() > FLOAT_ABS_TOL {
                    errors.push(format!(
                        "accuracy.{field}: report {r} vs baseline {b} \
                         (|delta| {:.4} > {FLOAT_ABS_TOL})",
                        (r - b).abs()
                    ));
                }
            }
            (r, b) => errors.push(format!(
                "accuracy.{field}: missing (report {r:?}, baseline {b:?})"
            )),
        }
    }
}

fn diff_frames(errors: &mut Vec<String>, report: &Json, baseline: &Json) {
    const EXACT: &[&str] = &[
        "frame_idx",
        "track_iters",
        "map_invoked",
        "sampled_pixels",
        "map_sampled_pixels",
        "gaussian_count",
        "cache_hits",
        "cache_invalidations",
    ];
    const FLOATS: &[&str] = &["psnr_db", "ate_so_far_cm"];
    let frames_r = report.get("frames").and_then(Json::as_arr).unwrap_or(&[]);
    let frames_b = baseline.get("frames").and_then(Json::as_arr).unwrap_or(&[]);
    if frames_r.len() != frames_b.len() {
        errors.push(format!(
            "frames: report has {}, baseline has {}",
            frames_r.len(),
            frames_b.len()
        ));
    }
    for (i, (fr, fb)) in frames_r.iter().zip(frames_b.iter()).enumerate() {
        for field in EXACT {
            if fr.get(field) != fb.get(field) {
                errors.push(format!(
                    "frames[{i}].{field}: report {:?} != baseline {:?}",
                    fr.get(field),
                    fb.get(field)
                ));
            }
        }
        for field in FLOATS {
            let r = f64_field(fr, field).unwrap_or(0.0);
            let b = f64_field(fb, field).unwrap_or(0.0);
            if (r - b).abs() > FLOAT_ABS_TOL {
                errors.push(format!(
                    "frames[{i}].{field}: report {r} vs baseline {b} \
                     (|delta| {:.4} > {FLOAT_ABS_TOL})",
                    (r - b).abs()
                ));
            }
        }
    }
}

fn diff_counters(errors: &mut Vec<String>, report: &Json, baseline: &Json) {
    let counters_r = object_entries(report, "counters");
    let counters_b = object_entries(baseline, "counters");
    key_set_errors(
        errors,
        "counters",
        &counters_r,
        &counters_b,
        "; regenerate scripts/bench_baseline.json",
    );
    for (name, r) in &counters_r {
        if let Some(b) = lookup(&counters_b, name) {
            if *r != b {
                errors.push(format!("counters.{name}: report {r:?} != baseline {b:?}"));
            }
        }
    }
    for name in REQUIRED_COUNTERS {
        if lookup(&counters_r, name).is_none() {
            errors.push(format!("counters.{name}: required, missing from report"));
        }
        if lookup(&counters_b, name).is_none() {
            errors.push(format!("counters.{name}: required, missing from baseline"));
        }
    }
    for name in REQUIRED_NONZERO {
        if let Some(0.0) = lookup(&counters_r, name).and_then(Json::as_f64) {
            errors.push(format!(
                "counters.{name}: required to be nonzero (its subsystem must have run)"
            ));
        }
    }
}

fn diff_spans(errors: &mut Vec<String>, report: &Json, baseline: &Json) {
    let spans_r = object_entries(report, "spans");
    let spans_b = object_entries(baseline, "spans");
    key_set_errors(
        errors,
        "spans",
        &spans_r,
        &spans_b,
        "; regenerate scripts/bench_baseline.json",
    );
    for (name, r) in &spans_r {
        let Some(b) = lookup(&spans_b, name) else {
            continue;
        };
        if r.get("count") != b.get("count") {
            errors.push(format!(
                "spans.{name}.count: report {:?} != baseline {:?}",
                r.get("count"),
                b.get("count")
            ));
        }
        let (rt, bt) = (f64_field(r, "total_ms"), f64_field(b, "total_ms"));
        for (side, v) in [("report", rt), ("baseline", bt)] {
            if v.is_none() {
                errors.push(format!("spans.{name}.total_ms: missing from {side}"));
            }
        }
        if let (Some(rt), Some(bt)) = (rt, bt) {
            let limit = (bt * TIMING_MULT).max(TIMING_FLOOR_MS);
            if rt > limit {
                errors.push(format!(
                    "spans.{name}.total_ms: report {rt:.2} ms exceeds \
                     {TIMING_MULT}x baseline ({bt:.2} ms, limit {limit:.2} ms)"
                ));
            }
        }
    }
}

fn diff_latency(errors: &mut Vec<String>, report: &Json, baseline: &Json) {
    let lat_r = object_entries(report, "latency");
    let lat_b = object_entries(baseline, "latency");
    key_set_errors(
        errors,
        "latency",
        &lat_r,
        &lat_b,
        "; regenerate scripts/bench_baseline.json",
    );
    for (name, r) in &lat_r {
        let Some(b) = lookup(&lat_b, name) else {
            continue;
        };
        // Sample counts are deterministic (one per frame / map invocation).
        if r.get("count") != b.get("count") {
            errors.push(format!(
                "latency.{name}.count: report {:?} != baseline {:?}",
                r.get("count"),
                b.get("count")
            ));
        }
        // Percentiles are wall-clock, quantized to log2 bucket upper edges;
        // bound them like span time.
        for p in ["p50_ms", "p95_ms", "p99_ms"] {
            let (Some(rp), Some(bp)) = (f64_field(r, p), f64_field(b, p)) else {
                errors.push(format!("latency.{name}.{p}: missing"));
                continue;
            };
            let limit = (bp * TIMING_MULT).max(TIMING_FLOOR_MS);
            if rp > limit {
                errors.push(format!(
                    "latency.{name}.{p}: report {rp:.3} ms exceeds \
                     {TIMING_MULT}x baseline ({bp:.3} ms, limit {limit:.3} ms)"
                ));
            }
        }
    }
}

fn diff_gauges(errors: &mut Vec<String>, report: &Json, baseline: &Json) {
    let gauges_r = object_entries(report, "gauges");
    let gauges_b = object_entries(baseline, "gauges");
    for (name, _) in &gauges_b {
        if lookup(&gauges_r, name).is_none() {
            errors.push(format!("gauges.{name}: missing from report"));
        }
    }
    for (name, r) in &gauges_r {
        let Some(b) = lookup(&gauges_b, name) else {
            continue;
        };
        let (Some(r), Some(b)) = (r.as_f64(), b.as_f64()) else {
            continue;
        };
        let tol = GAUGE_REL_TOL * r.abs().max(b.abs()).max(1.0);
        if (r - b).abs() > tol {
            errors.push(format!(
                "gauges.{name}: report {r} vs baseline {b} (tol {tol:.3e})"
            ));
        }
    }
    // Required gauges may be machine-dependent (value-skipped above), so
    // presence is checked against the unfiltered sections.
    for name in REQUIRED_GAUGES {
        for (side, doc) in [("report", report), ("baseline", baseline)] {
            let present = doc.get("gauges").is_some_and(|g| g.get(name).is_some());
            if !present {
                errors.push(format!("gauges.{name}: required, missing from {side}"));
            }
        }
    }
}

/// Compares two parsed `RunReport` JSON documents and returns every
/// violation (empty = pass). `scope` selects the full gate or the
/// span/latency subset.
pub fn diff_reports(report: &Json, baseline: &Json, scope: DiffScope) -> Vec<String> {
    let mut errors = Vec::new();
    if scope == DiffScope::Full {
        diff_accuracy(&mut errors, report, baseline);
        diff_frames(&mut errors, report, baseline);
        diff_counters(&mut errors, report, baseline);
        diff_gauges(&mut errors, report, baseline);
    }
    diff_spans(&mut errors, report, baseline);
    diff_latency(&mut errors, report, baseline);
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatonic::telemetry::json::parse;

    fn report_fixture() -> Json {
        parse(
            r#"{
              "name": "fixture", "date": "2026-08-08", "unix_time": 0,
              "frames": [
                {"frame_idx": 0, "track_iters": 0, "map_invoked": true,
                 "sampled_pixels": 0, "map_sampled_pixels": 100,
                 "gaussian_count": 50, "cache_hits": 0,
                 "cache_invalidations": 0, "psnr_db": 20.0,
                 "ate_so_far_cm": 0.0, "track_ms": 0.0, "map_ms": 3.0}
              ],
              "spans": {
                "tracking": {"count": 4, "total_ms": 12.0},
                "pool/worker0": {"count": 9, "total_ms": 1.0}
              },
              "counters": {"slam/checkpoints_written": 2,
                           "tracking/forward/pixels_shaded": 400,
                           "render/sort_hits": 0,
                           "render/sort_misses": 3,
                           "render/sort_merges": 12,
                           "render/sort_cold_elems": 28025,
                           "render/sort_merged_elems": 111349,
                           "assets/ply_gaussians_written": 50,
                           "assets/ply_gaussians_read": 50,
                           "lod/pruned": 0,
                           "mapping/densify_capped": 0},
              "gauges": {"slam/snapshot_bytes": 1000.0,
                         "render/simd_lanes": 4.0},
              "latency": {
                "frame/track_ms": {"count": 4, "p50_ms": 8.192,
                                    "p95_ms": 16.384, "p99_ms": 16.384,
                                    "buckets": [[14, 4]]}
              },
              "accuracy": {"ate_cm": 0.5, "psnr_db": 21.0,
                           "frames": 2, "scene_size": 50}
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn self_compare_passes() {
        let doc = report_fixture();
        assert_eq!(
            diff_reports(&doc, &doc, DiffScope::Full),
            Vec::<String>::new()
        );
        assert!(diff_reports(&doc, &doc, DiffScope::SpansOnly).is_empty());
    }

    #[test]
    fn counter_delta_fails_exactly() {
        let report = report_fixture();
        let mut baseline = report_fixture();
        if let Json::Obj(fields) = &mut baseline {
            let counters = fields
                .iter_mut()
                .find(|(k, _)| k == "counters")
                .map(|(_, v)| v)
                .unwrap();
            *counters = parse(
                r#"{"slam/checkpoints_written": 2,
                     "tracking/forward/pixels_shaded": 399}"#,
            )
            .unwrap();
        }
        let errors = diff_reports(&report, &baseline, DiffScope::Full);
        assert!(
            errors.iter().any(|e| e.contains("pixels_shaded")),
            "counter delta must be reported: {errors:?}"
        );
        // But not in spans-only scope.
        assert!(diff_reports(&report, &baseline, DiffScope::SpansOnly).is_empty());
    }

    #[test]
    fn span_count_and_timing_violations() {
        let report = report_fixture();
        let mut slow = report_fixture();
        if let Json::Obj(fields) = &mut slow {
            let spans = fields
                .iter_mut()
                .find(|(k, _)| k == "spans")
                .map(|(_, v)| v)
                .unwrap();
            // Baseline 25x smaller than the floor still passes; make the
            // report exceed max(25x baseline, 5ms) by baselining tiny.
            *spans = parse(
                r#"{"tracking": {"count": 5, "total_ms": 0.01},
                     "pool/worker0": {"count": 1, "total_ms": 1.0}}"#,
            )
            .unwrap();
        }
        let errors = diff_reports(&report, &slow, DiffScope::SpansOnly);
        assert!(errors.iter().any(|e| e.contains("spans.tracking.count")));
        assert!(
            errors.iter().any(|e| e.contains("spans.tracking.total_ms")),
            "12ms vs limit max(0.25, 5) must fail: {errors:?}"
        );
        // pool/ spans are machine-dependent and skipped entirely.
        assert!(!errors.iter().any(|e| e.contains("pool/")));
    }

    #[test]
    fn missing_latency_histogram_fails() {
        let report = report_fixture();
        let mut baseline = report_fixture();
        if let Json::Obj(fields) = &mut baseline {
            let lat = fields
                .iter_mut()
                .find(|(k, _)| k == "latency")
                .map(|(_, v)| v)
                .unwrap();
            lat.set(
                "frame/map_ms",
                parse(r#"{"count": 1, "p50_ms": 4.0, "p95_ms": 4.0, "p99_ms": 4.0}"#).unwrap(),
            );
        }
        let errors = diff_reports(&report, &baseline, DiffScope::SpansOnly);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("latency.frame/map_ms") && e.contains("missing from report")),
            "{errors:?}"
        );
    }

    #[test]
    fn required_counter_must_be_nonzero() {
        let mut report = report_fixture();
        if let Json::Obj(fields) = &mut report {
            let counters = fields
                .iter_mut()
                .find(|(k, _)| k == "counters")
                .map(|(_, v)| v)
                .unwrap();
            *counters = parse(
                r#"{"slam/checkpoints_written": 0,
                     "tracking/forward/pixels_shaded": 400,
                     "render/sort_hits": 0,
                     "render/sort_misses": 3,
                     "render/sort_merges": 12,
                     "render/sort_cold_elems": 28025,
                     "render/sort_merged_elems": 111349}"#,
            )
            .unwrap();
        }
        let errors = diff_reports(&report, &report_fixture(), DiffScope::Full);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("slam/checkpoints_written") && e.contains("nonzero")),
            "{errors:?}"
        );
    }

    #[test]
    fn asset_counter_regression_fails() {
        // A silently broken `.ply` path: the instrumented roundtrip stops
        // counting. Zero values must trip the required-nonzero gate even
        // when both sides agree.
        let mut report = report_fixture();
        if let Json::Obj(fields) = &mut report {
            let counters = fields
                .iter_mut()
                .find(|(k, _)| k == "counters")
                .map(|(_, v)| v)
                .unwrap();
            *counters = parse(
                r#"{"slam/checkpoints_written": 2,
                     "tracking/forward/pixels_shaded": 400,
                     "render/sort_hits": 0,
                     "render/sort_misses": 3,
                     "render/sort_merges": 12,
                     "render/sort_cold_elems": 28025,
                     "render/sort_merged_elems": 111349,
                     "assets/ply_gaussians_written": 0,
                     "assets/ply_gaussians_read": 0,
                     "lod/pruned": 0,
                     "mapping/densify_capped": 0}"#,
            )
            .unwrap();
        }
        let errors = diff_reports(&report, &report, DiffScope::Full);
        for name in ["assets/ply_gaussians_written", "assets/ply_gaussians_read"] {
            assert!(
                errors
                    .iter()
                    .any(|e| e.contains(name) && e.contains("nonzero")),
                "{name} must be required nonzero: {errors:?}"
            );
        }
    }

    #[test]
    fn sort_counter_regression_fails() {
        // The 6th injected regression class: the sorted-tile-list cache
        // silently disabled. Its realized stats go to zero (and the keys
        // would vanish from a run that never exports them) — both the
        // exact-value diff and the required-nonzero check must fire.
        let mut report = report_fixture();
        if let Json::Obj(fields) = &mut report {
            let counters = fields
                .iter_mut()
                .find(|(k, _)| k == "counters")
                .map(|(_, v)| v)
                .unwrap();
            *counters = parse(
                r#"{"slam/checkpoints_written": 2,
                     "tracking/forward/pixels_shaded": 400,
                     "render/sort_hits": 0,
                     "render/sort_misses": 0,
                     "render/sort_merges": 0,
                     "render/sort_cold_elems": 0,
                     "render/sort_merged_elems": 0}"#,
            )
            .unwrap();
        }
        let errors = diff_reports(&report, &report_fixture(), DiffScope::Full);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("render/sort_cold_elems") && e.contains("nonzero")),
            "{errors:?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.contains("counters.render/sort_misses: report")),
            "exact-value diff must also flag the regression: {errors:?}"
        );

        // Keys dropped entirely must fail even if the baseline dropped
        // them too (the required-presence check, not the key-set diff).
        let mut stripped = report_fixture();
        if let Json::Obj(fields) = &mut stripped {
            let counters = fields
                .iter_mut()
                .find(|(k, _)| k == "counters")
                .map(|(_, v)| v)
                .unwrap();
            *counters = parse(r#"{"slam/checkpoints_written": 2}"#).unwrap();
        }
        let errors = diff_reports(&stripped, &stripped, DiffScope::Full);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("render/sort_hits") && e.contains("required")),
            "{errors:?}"
        );
    }
}
