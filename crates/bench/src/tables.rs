//! Plain-text table rendering for the figure harness.

use std::fmt;

/// A titled table of string cells.
///
/// # Examples
///
/// ```
/// use splatonic_bench::Table;
/// let mut t = Table::new("Demo", &["a", "b"]);
/// t.row(["1", "2"]);
/// let s = t.to_string();
/// assert!(s.contains("Demo"));
/// assert!(s.contains('1'));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(row);
    }

    /// Column widths for alignment.
    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.columns.iter().map(|c| c.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = w[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.columns))?;
        writeln!(
            f,
            "{}",
            "-".repeat(w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1)))
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a float with the given precision.
pub fn fmt_f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Formats a multiplicative factor like `12.3x`.
pub fn fmt_x(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}x")
    } else {
        format!("{v:.1}x")
    }
}

/// Formats seconds with an adaptive unit.
pub fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.2} s")
    } else if seconds >= 1e-3 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.1} us", seconds * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_alignment() {
        let mut t = Table::new("T", &["name", "value"]);
        t.row(["longer-name", "1"]);
        t.row(["x", "22"]);
        let s = t.to_string();
        assert!(s.contains("== T =="));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("T", &["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_x(12.34), "12.3x");
        assert_eq!(fmt_x(250.0), "250x");
        assert_eq!(fmt_time(2.0), "2.00 s");
        assert_eq!(fmt_time(0.002), "2.00 ms");
        assert_eq!(fmt_time(2e-6), "2.0 us");
    }
}
