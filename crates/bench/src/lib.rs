//! Benchmark harness regenerating every table and figure of the SPLATONIC
//! paper's evaluation (see DESIGN.md §4 for the experiment index).
//!
//! Run `cargo run --release -p splatonic-bench --bin figures -- all` to
//! print every figure's rows; pass individual ids (`fig04`, `fig10`, …,
//! `area`) to regenerate one, and `--quick` for a scaled-down pass.

#![warn(missing_docs)]

pub mod diff;
pub mod experiments;
pub mod plan;
pub mod report;
pub mod tables;

pub use tables::Table;

/// Harness-wide settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Settings {
    /// Scaled-down mode: fewer/shorter sequences at lower resolution.
    pub quick: bool,
}

impl Settings {
    /// Full-evaluation settings.
    pub fn full() -> Self {
        Settings { quick: false }
    }

    /// Quick settings for smoke runs.
    pub fn quick() -> Self {
        Settings { quick: true }
    }

    /// Dataset configuration for accuracy experiments.
    pub fn dataset_config(&self) -> splatonic_slam::DatasetConfig {
        if self.quick {
            splatonic_slam::DatasetConfig {
                width: 96,
                height: 72,
                frames: 12,
                spacing: 0.24,
                fov: 1.25,
                furniture: 3,
                depth_dropout_coverage: 0.9,
            }
        } else {
            splatonic_slam::DatasetConfig {
                width: 128,
                height: 96,
                frames: 20,
                spacing: 0.2,
                fov: 1.25,
                furniture: 4,
                depth_dropout_coverage: 0.9,
            }
        }
    }

    /// Replica-like sequences to evaluate.
    pub fn replica_sequences(&self) -> Vec<(&'static str, u64)> {
        let all = splatonic_scene::world::replica_sequences();
        if self.quick {
            all.into_iter().take(2).collect()
        } else {
            all
        }
    }

    /// TUM-like sequences to evaluate.
    pub fn tum_sequences(&self) -> Vec<(&'static str, u64)> {
        let all = splatonic_scene::world::tum_sequences();
        if self.quick {
            all.into_iter().take(1).collect()
        } else {
            all
        }
    }
}

impl Default for Settings {
    fn default() -> Self {
        Settings::full()
    }
}

/// All experiment ids, in paper order.
pub const EXPERIMENTS: &[&str] = &[
    "fig04",
    "fig05",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig14",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "fig23",
    "fig24",
    "fig25",
    "fig26",
    "fig27",
    "area",
    "sortgroup",
];

/// Runs one experiment by id, returning its tables.
///
/// # Panics
///
/// Panics on an unknown experiment id.
pub fn run_experiment(id: &str, settings: &Settings) -> Vec<Table> {
    match id {
        "fig04" => experiments::characterization::fig04(settings),
        "fig05" => experiments::characterization::fig05(settings),
        "fig07" => experiments::characterization::fig07(settings),
        "fig08" => experiments::characterization::fig08(settings),
        "fig09" => experiments::characterization::fig09(settings),
        "fig10" => experiments::accuracy::fig10(settings),
        "fig11" => experiments::performance::fig11(settings),
        "fig14" => experiments::performance::fig14(settings),
        "fig17" => experiments::accuracy::fig17(settings),
        "fig18" => experiments::accuracy::fig18(settings),
        "fig19" => experiments::performance::fig19(settings),
        "fig20" => experiments::performance::fig20(settings),
        "fig21" => experiments::performance::fig21(settings),
        "fig22" => experiments::hardware::fig22(settings),
        "fig23" => experiments::hardware::fig23(settings),
        "fig24" => experiments::accuracy::fig24(settings),
        "fig25" => experiments::hardware::fig25(settings),
        "fig26" => experiments::accuracy::fig26(settings),
        "fig27" => experiments::hardware::fig27(settings),
        "area" => experiments::hardware::area(settings),
        "sortgroup" => experiments::ablations::tile_grouping(settings),
        "ablations" => experiments::ablations::all(settings),
        other => panic!("unknown experiment id: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_dispatch() {
        // `area` is cheap enough to actually run here.
        let t = run_experiment("area", &Settings::quick());
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        let _ = run_experiment("fig99", &Settings::quick());
    }

    #[test]
    fn quick_settings_are_smaller() {
        let q = Settings::quick().dataset_config();
        let f = Settings::full().dataset_config();
        assert!(q.width < f.width);
        assert!(q.frames < f.frames);
        assert!(Settings::quick().replica_sequences().len() < 8);
    }
}
