//! Experiment implementations, grouped as in the paper:
//!
//! * [`characterization`] — the motivation figures (Fig. 4–9),
//! * [`accuracy`] — sampling-accuracy figures (Fig. 10, 17, 18, 24, 26),
//! * [`performance`] — GPU performance figures (Fig. 11, 14, 19–21),
//! * [`hardware`] — accelerator figures (Fig. 22, 23, 25, 27, area),
//! * [`ablations`] — design-choice ablations (DESIGN.md §7).

pub mod ablations;
pub mod accuracy;
pub mod characterization;
pub mod hardware;
pub mod performance;

use crate::Settings;
use splatonic::harness::{
    measure_dense_iteration, measure_mapping_iteration, measure_tracking_iteration,
    IterationMeasurement, TrackingScenario,
};
use splatonic::prelude::*;
use splatonic_slam::Dataset;

/// Canonical measurement scenario: mid-sequence state on `room0`.
pub fn canonical_scenario(settings: &Settings) -> TrackingScenario {
    let cfg = settings.dataset_config();
    let d = Dataset::replica_like("room0", 101, cfg);
    TrackingScenario::prepare(&d, cfg.frames / 2)
}

/// The standard measurement set every performance experiment draws from.
pub struct MeasurementSet {
    /// Dense frame on the tile schedule ("Org.").
    pub dense_tile: IterationMeasurement,
    /// Sparse (one per 16×16) frame on the tile schedule ("Org.+S").
    pub sparse_tile: IterationMeasurement,
    /// Sparse frame on the pixel schedule ("Ours" / SPLATONIC).
    pub sparse_pixel: IterationMeasurement,
    /// Mapping-sampled frame (w_m = 4 + unseen) on the tile schedule.
    pub mapping_tile: IterationMeasurement,
    /// Mapping-sampled frame on the pixel schedule.
    pub mapping_pixel: IterationMeasurement,
}

/// Builds the standard measurement set from a scenario.
pub fn measurements(scenario: &TrackingScenario) -> MeasurementSet {
    let sampling = SamplingStrategy::RandomPerTile { tile: 16 };
    MeasurementSet {
        dense_tile: measure_dense_iteration(scenario, Pipeline::TileBased),
        sparse_tile: measure_tracking_iteration(scenario, Pipeline::TileBased, sampling, 11),
        sparse_pixel: measure_tracking_iteration(scenario, Pipeline::PixelBased, sampling, 11),
        mapping_tile: measure_mapping_iteration(scenario, Pipeline::TileBased, 4, 13),
        mapping_pixel: measure_mapping_iteration(scenario, Pipeline::PixelBased, 4, 13),
    }
}

/// Mean of a slice (0 for empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}
