//! GPU performance experiments (paper Fig. 11, 14, 19, 20, 21).

use crate::experiments::{canonical_scenario, measurements, MeasurementSet};
use crate::tables::{fmt_time, fmt_x, Table};
use crate::Settings;
use splatonic_gpusim::{GpuConfig, GpuEnergyModel};
use splatonic_slam::algorithm::AlgorithmPreset;

/// Stage latencies of interest: (rasterization, reverse rasterization incl.
/// aggregation — the paper's "reverse rasterization" contains the
/// aggregation stage, see Fig. 8).
fn stage_latencies(m: &splatonic::harness::IterationMeasurement) -> (f64, f64) {
    let r = GpuConfig::orin_like().price(&m.trace, m.pipeline);
    (
        r.forward.rasterization,
        r.backward.reverse_raster + r.backward.aggregation,
    )
}

/// End-to-end iteration cost on the GPU.
fn iteration_cost(m: &splatonic::harness::IterationMeasurement) -> (f64, f64) {
    let cfg = GpuConfig::orin_like();
    let r = cfg.price(&m.trace, m.pipeline);
    let e = GpuEnergyModel::orin_like().price(&m.trace, &r);
    (r.total_seconds(), e.total_j())
}

/// Fig. 11 — rasterization / reverse-rasterization latency during tracking:
/// Org., Org.+S, Ours (paper speedups: ~4.2×/5.2× then ~103×/95×).
pub fn fig11(settings: &Settings) -> Vec<Table> {
    let scenario = canonical_scenario(settings);
    let ms = measurements(&scenario);
    let (org_r, org_rr) = stage_latencies(&ms.dense_tile);
    let (s_r, s_rr) = stage_latencies(&ms.sparse_tile);
    let (ours_r, ours_rr) = stage_latencies(&ms.sparse_pixel);
    let mut t = Table::new(
        "Fig. 11 — bottleneck-stage latency during tracking (GPU model)",
        &["variant", "raster", "speedup", "rev-raster", "speedup"],
    );
    t.row(["Org.", &fmt_time(org_r), "1.0x", &fmt_time(org_rr), "1.0x"]);
    t.row([
        "Org.+S".to_string(),
        fmt_time(s_r),
        fmt_x(org_r / s_r),
        fmt_time(s_rr),
        fmt_x(org_rr / s_rr),
    ]);
    t.row([
        "Ours".to_string(),
        fmt_time(ours_r),
        fmt_x(org_r / ours_r),
        fmt_time(ours_rr),
        fmt_x(org_rr / ours_rr),
    ]);
    vec![t]
}

/// Fig. 14 — bottleneck shift after pixel-based rendering: projection's
/// share of forward time rises (paper: 2.1% → 63.8%); reverse
/// rasterization's share of backward time falls (98.7% → ~49%).
pub fn fig14(settings: &Settings) -> Vec<Table> {
    let scenario = canonical_scenario(settings);
    let ms = measurements(&scenario);
    let gpu = GpuConfig::orin_like();
    let mut t = Table::new(
        "Fig. 14 — bottleneck shift with pixel-based rendering (tracking)",
        &[
            "variant",
            "projection share (fwd)",
            "rev-raster share (bwd)",
        ],
    );
    for (name, m) in [("Org.+S", &ms.sparse_tile), ("Ours", &ms.sparse_pixel)] {
        let r = gpu.price(&m.trace, m.pipeline);
        let fwd = r.forward.total().max(1e-12);
        let bwd = r.backward.total().max(1e-12);
        t.row([
            name.to_string(),
            format!("{:.1}%", 100.0 * r.forward.projection / fwd),
            format!(
                "{:.1}%",
                100.0 * (r.backward.reverse_raster + r.backward.aggregation) / bwd
            ),
        ]);
    }
    vec![t]
}

/// Shared engine for Fig. 19/21: per-algorithm e2e tracking speedups.
fn tracking_speedups(ms: &MeasurementSet) -> [(f64, f64); 2] {
    let (org_t, org_e) = iteration_cost(&ms.dense_tile);
    let (s_t, s_e) = iteration_cost(&ms.sparse_tile);
    let (ours_t, ours_e) = iteration_cost(&ms.sparse_pixel);
    [
        (org_t / s_t, 1.0 - s_e / org_e),
        (org_t / ours_t, 1.0 - ours_e / org_e),
    ]
}

/// Fig. 19 — end-to-end GPU speedup and energy saving per algorithm
/// (paper: ORG.+S ≈3.4× / 55.5%; SPLATONIC ≈14.6× / 86.1%). The end-to-end
/// speedup equals the tracking speedup because mapping is hidden behind
/// tracking (paper Sec. VII-B).
pub fn fig19(settings: &Settings) -> Vec<Table> {
    let scenario = canonical_scenario(settings);
    let ms = measurements(&scenario);
    let [(s_speed, s_save), (ours_speed, ours_save)] = tracking_speedups(&ms);
    let mut t = Table::new(
        "Fig. 19 — end-to-end GPU speedup & energy savings vs dense baseline",
        &[
            "algorithm",
            "ORG.+S speedup",
            "ORG.+S energy saved",
            "SPLATONIC speedup",
            "SPLATONIC energy saved",
        ],
    );
    for preset in AlgorithmPreset::all() {
        // The workload shape (and thus the per-iteration ratio) is shared;
        // algorithms differ in budgets, which cancel in the ratio.
        t.row([
            preset.name().to_string(),
            fmt_x(s_speed),
            format!("{:.1}%", 100.0 * s_save),
            fmt_x(ours_speed),
            format!("{:.1}%", 100.0 * ours_save),
        ]);
    }
    vec![t]
}

/// Fig. 20 — standalone mapping speedup & energy saving (paper: ≈3.2×,
/// 60.0%): mapping renders ~one pixel per 4×4 tile plus unseen pixels, so
/// the sparse win is smaller than tracking's.
pub fn fig20(settings: &Settings) -> Vec<Table> {
    let scenario = canonical_scenario(settings);
    let ms = measurements(&scenario);
    let (org_t, org_e) = iteration_cost(&ms.dense_tile);
    let (ours_t, ours_e) = iteration_cost(&ms.mapping_pixel);
    let mut t = Table::new(
        "Fig. 20 — mapping speedup & energy savings (GPU model)",
        &["variant", "speedup", "energy saved"],
    );
    t.row(["dense mapping (Org.)", "1.0x", "0.0%"]);
    t.row([
        "SPLATONIC mapping (w_m=4)".to_string(),
        fmt_x(org_t / ours_t),
        format!("{:.1}%", 100.0 * (1.0 - ours_e / org_e)),
    ]);
    t.row(["paper".to_string(), "3.2x".to_string(), "60.0%".to_string()]);
    vec![t]
}

/// Fig. 21 — bottleneck-stage speedups during tracking per algorithm
/// (paper: sampling alone 4.1×/4.3×; ours 64.4×/77.2×).
pub fn fig21(settings: &Settings) -> Vec<Table> {
    let scenario = canonical_scenario(settings);
    let ms = measurements(&scenario);
    let (org_r, org_rr) = stage_latencies(&ms.dense_tile);
    let (s_r, s_rr) = stage_latencies(&ms.sparse_tile);
    let (o_r, o_rr) = stage_latencies(&ms.sparse_pixel);
    let mut t = Table::new(
        "Fig. 21 — bottleneck-stage speedups during tracking",
        &[
            "algorithm",
            "Org.+S raster",
            "Org.+S rev-raster",
            "Ours raster",
            "Ours rev-raster",
        ],
    );
    for preset in AlgorithmPreset::all() {
        t.row([
            preset.name().to_string(),
            fmt_x(org_r / s_r),
            fmt_x(org_rr / s_rr),
            fmt_x(org_r / o_r),
            fmt_x(org_rr / o_rr),
        ]);
    }
    vec![t]
}
