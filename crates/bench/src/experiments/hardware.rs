//! Accelerator experiments (paper Fig. 22, 23, 25, 27, and the area table).

use crate::experiments::{canonical_scenario, measurements};
use crate::tables::{fmt_f, fmt_x, Table};
use crate::Settings;
use splatonic::harness::{
    measure_mapping_iteration, measure_tracking_iteration, IterationMeasurement,
};
use splatonic::prelude::*;
use splatonic_accel::{AreaBudget, DramModel, SplatonicAccel, SplatonicConfig};

/// (seconds, joules) for one iteration on a target.
fn cost(target: HardwareTarget, m: &IterationMeasurement) -> (f64, f64) {
    let c = target.price(m);
    (c.seconds, c.joules)
}

/// Shared engine for Fig. 22/23: all variants priced against the GPU dense
/// baseline. `tile_dense`/`tile_sparse`/`pixel_sparse` supply the
/// measurements matching each variant's schedule and sampling.
fn variant_table(
    title_perf: &str,
    title_energy: &str,
    tile_dense: &IterationMeasurement,
    tile_sparse: &IterationMeasurement,
    pixel_sparse: &IterationMeasurement,
) -> Vec<Table> {
    let (gpu_t, gpu_e) = cost(HardwareTarget::GpuTile, tile_dense);
    let rows: Vec<(&str, f64, f64)> = vec![
        ("GPU", gpu_t, gpu_e),
        (
            "GauSPU",
            cost(HardwareTarget::GauSpu, tile_dense).0,
            cost(HardwareTarget::GauSpu, tile_dense).1,
        ),
        (
            "GauSPU+S",
            cost(HardwareTarget::GauSpu, tile_sparse).0,
            cost(HardwareTarget::GauSpu, tile_sparse).1,
        ),
        (
            "GSArch",
            cost(HardwareTarget::GsArch, tile_dense).0,
            cost(HardwareTarget::GsArch, tile_dense).1,
        ),
        (
            "GSArch+S",
            cost(HardwareTarget::GsArch, tile_sparse).0,
            cost(HardwareTarget::GsArch, tile_sparse).1,
        ),
        (
            "SPLATONIC-SW",
            cost(HardwareTarget::GpuPixel, pixel_sparse).0,
            cost(HardwareTarget::GpuPixel, pixel_sparse).1,
        ),
        (
            "SPLATONIC-HW",
            cost(HardwareTarget::SplatonicHw, pixel_sparse).0,
            cost(HardwareTarget::SplatonicHw, pixel_sparse).1,
        ),
    ];
    let mut perf = Table::new(title_perf, &["variant", "speedup vs GPU"]);
    let mut energy = Table::new(title_energy, &["variant", "energy savings vs GPU"]);
    for (name, t, e) in rows {
        perf.row([name.to_string(), fmt_x(gpu_t / t)]);
        energy.row([name.to_string(), fmt_x(gpu_e / e)]);
    }
    vec![perf, energy]
}

/// Fig. 22 — tracking performance (a) and energy savings (b) across
/// architectures (paper: SPLATONIC-HW up to 274.9× / 4738.5× vs GPU;
/// SPLATONIC-SW already beats dense GauSPU/GSArch).
pub fn fig22(settings: &Settings) -> Vec<Table> {
    let scenario = canonical_scenario(settings);
    let ms = measurements(&scenario);
    variant_table(
        "Fig. 22a — tracking speedup vs GPU",
        "Fig. 22b — tracking energy savings vs GPU",
        &ms.dense_tile,
        &ms.sparse_tile,
        &ms.sparse_pixel,
    )
}

/// Fig. 23 — mapping speedup across architectures (same trend as tracking,
/// smaller magnitudes: mapping renders ~16× more pixels).
pub fn fig23(settings: &Settings) -> Vec<Table> {
    let scenario = canonical_scenario(settings);
    let ms = measurements(&scenario);
    variant_table(
        "Fig. 23a — mapping speedup vs GPU",
        "Fig. 23b — mapping energy savings vs GPU",
        &ms.dense_tile,
        &ms.mapping_tile,
        &ms.mapping_pixel,
    )
}

/// Fig. 25 — sensitivity of tracking performance to the sampling tile size
/// (paper: at 1×1 — dense — tile-based GSArch wins; sparse tiles flip the
/// ordering decisively toward SPLATONIC-HW).
pub fn fig25(settings: &Settings) -> Vec<Table> {
    let scenario = canonical_scenario(settings);
    let dense_tile = splatonic::harness::measure_dense_iteration(&scenario, Pipeline::TileBased);
    let (gpu_t, _) = cost(HardwareTarget::GpuTile, &dense_tile);
    let tiles: &[usize] = if settings.quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let mut t = Table::new(
        "Fig. 25 — tracking speedup vs GPU across sampling tile sizes",
        &["tile", "GSArch(+S)", "SPLATONIC-HW"],
    );
    for &tile in tiles {
        let (tile_m, pixel_m) = if tile == 1 {
            (
                splatonic::harness::measure_dense_iteration(&scenario, Pipeline::TileBased),
                splatonic::harness::measure_dense_iteration(&scenario, Pipeline::PixelBased),
            )
        } else {
            let sampling = SamplingStrategy::RandomPerTile { tile };
            (
                measure_tracking_iteration(&scenario, Pipeline::TileBased, sampling, 3),
                measure_tracking_iteration(&scenario, Pipeline::PixelBased, sampling, 3),
            )
        };
        let (gs_t, _) = cost(HardwareTarget::GsArch, &tile_m);
        let (hw_t, _) = cost(HardwareTarget::SplatonicHw, &pixel_m);
        t.row([
            format!("{tile}x{tile}"),
            fmt_x(gpu_t / gs_t),
            fmt_x(gpu_t / hw_t),
        ]);
    }
    vec![t]
}

/// Fig. 27 — sensitivity to projection-unit and render-unit counts
/// (paper: projection units dominate until projection stops being the
/// bottleneck, then render units take over). Normalized to the default
/// 8 projection / 4 render configuration.
pub fn fig27(settings: &Settings) -> Vec<Table> {
    let scenario = canonical_scenario(settings);
    let sampling = SamplingStrategy::RandomPerTile { tile: 16 };
    let track = measure_tracking_iteration(&scenario, Pipeline::PixelBased, sampling, 3);
    let map_sparse = measure_mapping_iteration(&scenario, Pipeline::PixelBased, 4, 3);
    // Mapping includes one full-frame iteration per invocation (paper
    // Sec. VII-A), which is where the render units see real load.
    let map_dense = splatonic::harness::measure_dense_iteration(&scenario, Pipeline::PixelBased);
    let algo = splatonic_slam::algorithm::AlgorithmPreset::SplaTam.config();
    let price = |proj: usize, render: usize| -> f64 {
        let accel = SplatonicAccel {
            config: SplatonicConfig::paper().with_units(proj, render),
            dram: DramModel::lpddr3_1600_x4(),
        };
        let one = |m: &IterationMeasurement| accel.price(&m.workload).total_seconds();
        // Per-frame cost at the SplaTAM budgets.
        one(&track) * algo.tracking_iters as f64
            + (one(&map_dense) + one(&map_sparse) * (algo.mapping_iters - 1) as f64)
                / algo.mapping_every as f64
    };
    let base = price(8, 4);
    let mut t = Table::new(
        "Fig. 27 — performance vs #projection units x #render units (normalized to 8p4r)",
        &["config", "normalized perf"],
    );
    for &proj in &[2usize, 4, 8, 16] {
        for &render in &[2usize, 4, 8] {
            t.row([
                format!("{proj}p{render}r"),
                fmt_f(base / price(proj, render), 2),
            ]);
        }
    }
    vec![t]
}

/// Area table (paper Sec. VI): SPLATONIC 1.07 mm² vs GSCore 1.77 mm² and
/// GSArch 3.42 mm² at 16 nm.
pub fn area(_settings: &Settings) -> Vec<Table> {
    let a = AreaBudget::splatonic();
    let (r, o, s) = a.fractions();
    let mut t = Table::new(
        "Area — SPLATONIC budget at 16 nm (paper Sec. VI)",
        &["component", "mm^2", "share"],
    );
    t.row([
        "rasterization engine".to_string(),
        fmt_f(a.raster_engine_mm2, 3),
        format!("{:.0}%", r * 100.0),
    ]);
    t.row([
        "other stages".to_string(),
        fmt_f(a.other_stages_mm2, 3),
        format!("{:.0}%", o * 100.0),
    ]);
    t.row([
        "SRAM".to_string(),
        fmt_f(a.sram_mm2, 3),
        format!("{:.0}%", s * 100.0),
    ]);
    t.row([
        "total".to_string(),
        fmt_f(a.total_mm2(), 2),
        "100%".to_string(),
    ]);
    let mut cmp = Table::new("Area — comparison", &["accelerator", "mm^2"]);
    cmp.row(["SPLATONIC", &fmt_f(a.total_mm2(), 2)]);
    cmp.row(["GSCore", &fmt_f(AreaBudget::GSCORE_MM2, 2)]);
    cmp.row(["GSArch", &fmt_f(AreaBudget::GSARCH_MM2, 2)]);
    vec![t, cmp]
}

#[cfg(test)]
mod tests {
    use super::*;

    // One integrated smoke test at quick settings exercises the full
    // hardware-pricing path; the heavy accuracy experiments are covered by
    // the figures binary itself.
    #[test]
    fn fig22_speedups_are_ordered() {
        let tables = fig22(&Settings::quick());
        assert_eq!(tables.len(), 2);
        let perf = &tables[0];
        // Find SPLATONIC-HW and GSArch+S rows; HW must be the fastest.
        let parse = |s: &str| -> f64 { s.trim_end_matches('x').parse().unwrap() };
        let get = |name: &str| -> f64 {
            perf.rows
                .iter()
                .find(|r| r[0] == name)
                .map(|r| parse(&r[1]))
                .unwrap()
        };
        assert!(get("SPLATONIC-HW") > get("GSArch+S"));
        assert!(get("SPLATONIC-HW") > get("GauSPU+S"));
        assert!(get("SPLATONIC-SW") > 1.0);
    }
}
