//! Accuracy experiments (paper Fig. 10, 17, 18, 24, 26): full SLAM runs on
//! synthetic sequences, evaluated by ATE and PSNR.

use crate::experiments::mean;
use crate::tables::{fmt_f, Table};
use crate::Settings;
use splatonic::prelude::*;
use splatonic_render::sampling::MappingStrategy;
use splatonic_scene::WorldStyle;
use splatonic_slam::algorithm::AlgorithmPreset;
use splatonic_slam::Dataset;

fn run(dataset: &Dataset, config: SlamConfig) -> SlamResult {
    SlamSystem::new(config, dataset.intrinsics).run(dataset)
}

/// Fig. 10 — tracking ATE under different sampling strategies × tile sizes
/// (paper: random per-tile sampling is best and robust; Low-Res. and
/// loss-guided tile selection lack global coverage and degrade).
pub fn fig10(settings: &Settings) -> Vec<Table> {
    let cfg = settings.dataset_config();
    let seqs: Vec<Dataset> = fig_sequences(settings)
        .iter()
        .map(|(n, s)| Dataset::replica_like(n, *s, cfg))
        .collect();
    let tiles: &[usize] = if settings.quick {
        &[8, 16]
    } else {
        &[4, 8, 16, 32]
    };
    let mut t = Table::new(
        "Fig. 10 — tracking ATE (cm) by sampling strategy and tile size (SplaTAM)",
        &["strategy", "tile", "ATE (cm)"],
    );
    // Dense reference line (the red line of the paper's figure).
    let dense: Vec<f64> = seqs
        .iter()
        .map(|d| {
            run(
                d,
                SlamConfig::dense_baseline(AlgorithmPreset::SplaTam.config()),
            )
            .ate_cm
        })
        .collect();
    t.row(["Dense (reference)", "-", &fmt_f(mean(&dense), 2)]);
    for &tile in tiles {
        let strategies: [(&str, SamplingStrategy); 4] = [
            ("Low-Res.", SamplingStrategy::LowRes { factor: tile }),
            ("Loss (GauSPU)", SamplingStrategy::LossGuidedTiles { tile }),
            ("Random", SamplingStrategy::RandomPerTile { tile }),
            ("Harris", SamplingStrategy::HarrisPerTile { tile }),
        ];
        for (name, strategy) in strategies {
            let ates: Vec<f64> = seqs
                .iter()
                .map(|d| {
                    let mut sc = SlamConfig::splatonic(AlgorithmPreset::SplaTam.config());
                    sc.tracking_sampling = strategy;
                    run(d, sc).ate_cm
                })
                .collect();
            t.row([name.to_string(), tile.to_string(), fmt_f(mean(&ates), 2)]);
        }
    }
    vec![t]
}

/// Sequences used by the single-algorithm figures (averaged to damp the
/// run-to-run variance of short synthetic sequences).
fn fig_sequences(settings: &Settings) -> Vec<(&'static str, u64)> {
    if settings.quick {
        vec![("room0", 101)]
    } else {
        vec![("room0", 101), ("room1", 102), ("office0", 104)]
    }
}

/// Shared engine for Fig. 17/18: per-algorithm mean ATE and PSNR over a
/// sequence set, baseline vs SPLATONIC sampling.
fn accuracy_tables(
    title_ate: &str,
    title_psnr: &str,
    style: WorldStyle,
    sequences: &[(&'static str, u64)],
    settings: &Settings,
) -> Vec<Table> {
    let cfg = settings.dataset_config();
    let mut t_ate = Table::new(title_ate, &["algorithm", "baseline", "SPLATONIC"]);
    let mut t_psnr = Table::new(title_psnr, &["algorithm", "baseline", "SPLATONIC"]);
    for preset in AlgorithmPreset::all() {
        let mut base_ate = Vec::new();
        let mut base_psnr = Vec::new();
        let mut ours_ate = Vec::new();
        let mut ours_psnr = Vec::new();
        for (name, seed) in sequences {
            let d = Dataset::generate(name, *seed, style, cfg);
            let rb = run(&d, SlamConfig::dense_baseline(preset.config()));
            let ro = run(&d, SlamConfig::splatonic(preset.config()));
            base_ate.push(rb.ate_cm);
            base_psnr.push(rb.psnr_db);
            ours_ate.push(ro.ate_cm);
            ours_psnr.push(ro.psnr_db);
        }
        t_ate.row([
            preset.name().to_string(),
            fmt_f(mean(&base_ate), 2),
            fmt_f(mean(&ours_ate), 2),
        ]);
        t_psnr.row([
            preset.name().to_string(),
            fmt_f(mean(&base_psnr), 2),
            fmt_f(mean(&ours_psnr), 2),
        ]);
    }
    vec![t_ate, t_psnr]
}

/// Fig. 17 — Replica: tracking ATE (a) and reconstruction PSNR (b),
/// baseline vs SPLATONIC sampling, per algorithm (paper: SPLATONIC matches
/// or slightly beats the baselines).
pub fn fig17(settings: &Settings) -> Vec<Table> {
    accuracy_tables(
        "Fig. 17a — Replica-like mean ATE (cm)",
        "Fig. 17b — Replica-like mean PSNR (dB)",
        WorldStyle::ReplicaLike,
        &settings.replica_sequences(),
        settings,
    )
}

/// Fig. 18 — TUM RGB-D: tracking ATE and PSNR (fast-motion sequences).
pub fn fig18(settings: &Settings) -> Vec<Table> {
    accuracy_tables(
        "Fig. 18a — TUM-like mean ATE (cm)",
        "Fig. 18b — TUM-like mean PSNR (dB)",
        WorldStyle::TumLike,
        &settings.tum_sequences(),
        settings,
    )
}

/// Fig. 24 — ablation of the mapping sampler (paper: combined weighted +
/// unseen sampling is the most accurate, beating even the dense baseline).
pub fn fig24(settings: &Settings) -> Vec<Table> {
    let cfg = settings.dataset_config();
    let seqs: Vec<Dataset> = fig_sequences(settings)
        .iter()
        .map(|(n, s)| Dataset::replica_like(n, *s, cfg))
        .collect();
    let mut t = Table::new(
        "Fig. 24 — mapping-sampling ablation (SplaTAM)",
        &["variant", "ATE (cm)", "PSNR (dB)"],
    );
    let (base_ate, base_psnr): (Vec<f64>, Vec<f64>) = seqs
        .iter()
        .map(|d| {
            let r = run(
                d,
                SlamConfig::dense_baseline(AlgorithmPreset::SplaTam.config()),
            );
            (r.ate_cm, r.psnr_db)
        })
        .unzip();
    t.row([
        "Baseline (dense)".to_string(),
        fmt_f(mean(&base_ate), 2),
        fmt_f(mean(&base_psnr), 2),
    ]);
    for (name, strategy) in [
        ("Random", MappingStrategy::RandomOnly),
        ("Unseen", MappingStrategy::UnseenOnly),
        ("Weighted", MappingStrategy::WeightedOnly),
        ("Comb", MappingStrategy::Combined),
    ] {
        let (ate, psnr): (Vec<f64>, Vec<f64>) = seqs
            .iter()
            .map(|d| {
                let mut sc = SlamConfig::splatonic(AlgorithmPreset::SplaTam.config());
                sc.mapping_strategy = strategy;
                let r = run(d, sc);
                (r.ate_cm, r.psnr_db)
            })
            .unzip();
        t.row([
            name.to_string(),
            fmt_f(mean(&ate), 2),
            fmt_f(mean(&psnr), 2),
        ]);
    }
    vec![t]
}

/// Fig. 26 — sensitivity of accuracy to the mapping tile size `w_m`
/// (paper: 4×4 is the best performance/quality trade-off; evaluated on
/// Office 2).
pub fn fig26(settings: &Settings) -> Vec<Table> {
    let cfg = settings.dataset_config();
    let d = Dataset::replica_like("office2", 106, cfg);
    let tiles: &[usize] = if settings.quick {
        &[2, 4, 8]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let mut t = Table::new(
        "Fig. 26 — accuracy vs mapping tile size (SplaTAM, office2)",
        &["w_m", "ATE (cm)", "PSNR (dB)"],
    );
    for &tile in tiles {
        let mut sc = SlamConfig::splatonic(AlgorithmPreset::SplaTam.config());
        sc.mapping_tile = tile;
        let r = run(&d, sc);
        t.row([
            format!("{tile}x{tile}"),
            fmt_f(r.ate_cm, 2),
            fmt_f(r.psnr_db, 2),
        ]);
    }
    vec![t]
}
