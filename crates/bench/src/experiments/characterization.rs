//! Motivation / characterization experiments (paper Fig. 4, 5, 7, 8, 9).
//!
//! These profile the *dense, tile-based* baseline — the state of practice
//! the paper starts from — on the GPU model.

use crate::experiments::{canonical_scenario, measurements};
use crate::tables::{fmt_f, fmt_time, Table};
use crate::Settings;
use splatonic::harness::{measure_dense_iteration, TrackingScenario};
use splatonic::prelude::*;
use splatonic_gpusim::GpuConfig;
use splatonic_slam::algorithm::AlgorithmPreset;
use splatonic_slam::Dataset;

/// Fig. 4 — amortized per-frame latency of tracking vs mapping across the
/// four algorithms (dense baseline). Tracking dominates (paper: mapping is
/// ~1/4 of tracking).
pub fn fig04(settings: &Settings) -> Vec<Table> {
    let scenario = canonical_scenario(settings);
    let ms = measurements(&scenario);
    let gpu = GpuConfig::orin_like();
    let track_iter = gpu
        .price(&ms.dense_tile.trace, Pipeline::TileBased)
        .total_seconds();
    let map_iter = track_iter; // dense mapping iteration has the same shape
    let mut t = Table::new(
        "Fig. 4 — amortized per-frame latency: tracking vs mapping (dense baseline, GPU model)",
        &[
            "algorithm",
            "tracking/frame",
            "mapping/frame (amortized)",
            "ratio",
        ],
    );
    for preset in AlgorithmPreset::all() {
        let c = preset.config();
        let tracking = track_iter * c.tracking_iters as f64;
        let mapping = map_iter * c.mapping_iters as f64 / c.mapping_every as f64;
        t.row([
            preset.name().to_string(),
            fmt_time(tracking),
            fmt_time(mapping),
            fmt_f(tracking / mapping, 1),
        ]);
    }
    vec![t]
}

/// Fig. 5 — execution-time breakdown of the dense baseline across stages.
/// Rasterization + reverse rasterization dominate (paper: 94.7%).
pub fn fig05(settings: &Settings) -> Vec<Table> {
    let scenario = canonical_scenario(settings);
    let ms = measurements(&scenario);
    let gpu = GpuConfig::orin_like();
    let r = gpu.price(&ms.dense_tile.trace, Pipeline::TileBased);
    let total = r.total_seconds();
    let mut t = Table::new(
        "Fig. 5 — stage breakdown, dense tile-based baseline (GPU model)",
        &["stage", "time", "share"],
    );
    let rows: [(&str, f64); 6] = [
        ("projection", r.forward.projection),
        ("sorting", r.forward.sorting),
        ("rasterization", r.forward.rasterization),
        ("reverse rasterization", r.backward.reverse_raster),
        ("aggregation", r.backward.aggregation),
        ("re-projection", r.backward.reprojection),
    ];
    for (name, v) in rows {
        t.row([
            name.to_string(),
            fmt_time(v),
            format!("{:.1}%", 100.0 * v / total),
        ]);
    }
    let raster_share = 100.0 * r.raster_fraction();
    t.row([
        "raster + reverse (paper: 94.7%)".to_string(),
        String::new(),
        format!("{raster_share:.1}%"),
    ]);
    vec![t]
}

/// Fig. 7 — GPU thread utilization during rasterization per scene
/// (paper: 28.3% average).
pub fn fig07(settings: &Settings) -> Vec<Table> {
    let cfg = settings.dataset_config();
    let mut t = Table::new(
        "Fig. 7 — thread utilization in tile-based rasterization (dense)",
        &["scene", "utilization"],
    );
    let mut total = 0.0;
    let seqs = settings.replica_sequences();
    for (name, seed) in &seqs {
        let d = Dataset::replica_like(name, *seed, cfg);
        let scenario = TrackingScenario::prepare(&d, cfg.frames / 2);
        let m = measure_dense_iteration(&scenario, Pipeline::TileBased);
        let u = m.trace.forward.warp_utilization();
        total += u;
        t.row([name.to_string(), format!("{:.1}%", u * 100.0)]);
    }
    t.row([
        "mean (paper: 28.3%)".to_string(),
        format!("{:.1}%", 100.0 * total / seqs.len() as f64),
    ]);
    vec![t]
}

/// Fig. 8 — aggregation's share of reverse-rasterization time
/// (paper: ≥63.5%).
pub fn fig08(settings: &Settings) -> Vec<Table> {
    let cfg = settings.dataset_config();
    let gpu = GpuConfig::orin_like();
    let mut t = Table::new(
        "Fig. 8 — aggregation share of reverse rasterization (dense baseline)",
        &["scene", "aggregation share"],
    );
    let seqs = settings.replica_sequences();
    let mut total = 0.0;
    for (name, seed) in &seqs {
        let d = Dataset::replica_like(name, *seed, cfg);
        let scenario = TrackingScenario::prepare(&d, cfg.frames / 2);
        let m = measure_dense_iteration(&scenario, Pipeline::TileBased);
        let r = gpu.price(&m.trace, Pipeline::TileBased);
        let share = r.backward.aggregation
            / (r.backward.aggregation + r.backward.reverse_raster).max(1e-12);
        total += share;
        t.row([name.to_string(), format!("{:.1}%", share * 100.0)]);
    }
    t.row([
        "mean (paper: 63.5%)".to_string(),
        format!("{:.1}%", 100.0 * total / seqs.len() as f64),
    ]);
    vec![t]
}

/// Fig. 9 — α-checking's share of rasterization and reverse rasterization
/// (paper: 43.4% / 33.6%).
pub fn fig09(settings: &Settings) -> Vec<Table> {
    let scenario = canonical_scenario(settings);
    let ms = measurements(&scenario);
    let gpu = GpuConfig::orin_like();
    let r = gpu.price(&ms.dense_tile.trace, Pipeline::TileBased);
    let fwd_sfu = gpu.sfu_seconds(ms.dense_tile.trace.forward.raster_alpha_checks);
    let bwd_sfu = gpu.sfu_seconds(ms.dense_tile.trace.backward.alpha_checks);
    let mut t = Table::new(
        "Fig. 9 — α-checking share of (reverse) rasterization time",
        &["stage", "alpha-check share", "paper"],
    );
    t.row([
        "rasterization".to_string(),
        format!(
            "{:.1}%",
            100.0 * fwd_sfu / r.forward.rasterization.max(1e-12)
        ),
        "43.4%".to_string(),
    ]);
    t.row([
        "reverse rasterization".to_string(),
        format!(
            "{:.1}%",
            100.0 * bwd_sfu / (r.backward.reverse_raster + r.backward.aggregation).max(1e-12)
        ),
        "33.6%".to_string(),
    ]);
    vec![t]
}
