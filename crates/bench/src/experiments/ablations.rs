//! Ablations of SPLATONIC's design choices (DESIGN.md §7): items the paper
//! motivates in prose (LUT size, preemptive α-checking, the Γ/C cache, the
//! aggregation unit's channel count) quantified on measured workloads.

use crate::experiments::{canonical_scenario, measurements};
use crate::tables::{fmt_f, fmt_x, Table};
use crate::Settings;
use splatonic::harness::{measure_dense_iteration_with_config, reference_render_config};
use splatonic_accel::aggregation::{simulate, AggregationConfig};
use splatonic_accel::{DramModel, SplatonicAccel, SplatonicConfig};
use splatonic_math::ExpLut;
use splatonic_render::{Pipeline, RenderConfig};

/// LUT-size sweep (paper Sec. V-C: "a LUT with a size of 64 entries is
/// sufficient"): maximum α error versus the 1/255 α-check quantum.
pub fn lut_sweep(_settings: &Settings) -> Vec<Table> {
    let mut t = Table::new(
        "Ablation — exp-LUT size vs alpha error (threshold quantum = 1/255 = 3.9e-3)",
        &["entries", "max |exp error|", "below quantum"],
    );
    for entries in [8usize, 16, 32, 64, 128, 256] {
        let err = ExpLut::with_entries(entries).max_abs_error();
        t.row([
            entries.to_string(),
            format!("{err:.2e}"),
            if err < 1.0 / 255.0 { "yes" } else { "no" }.to_string(),
        ]);
    }
    vec![t]
}

/// Aggregation-channel sweep on the real mapping gradient stream: cycles
/// and stall fraction per channel count.
pub fn aggregation_sweep(settings: &Settings) -> Vec<Table> {
    let scenario = canonical_scenario(settings);
    let ms = measurements(&scenario);
    let stream = &ms.mapping_pixel.workload.grad_stream;
    let dram = DramModel::lpddr3_1600_x4();
    let mut t = Table::new(
        "Ablation — aggregation-unit channels (mapping gradient stream)",
        &["channels", "cycles", "stall fraction", "speedup vs 1ch"],
    );
    let base = simulate(
        stream,
        &AggregationConfig {
            channels: 1,
            retire_per_cycle: 1,
            ..AggregationConfig::paper()
        },
        &dram,
        500e6,
    );
    for channels in [1usize, 2, 4, 8] {
        let cfg = AggregationConfig {
            channels,
            retire_per_cycle: channels,
            ..AggregationConfig::paper()
        };
        let r = simulate(stream, &cfg, &dram, 500e6);
        t.row([
            channels.to_string(),
            r.cycles.to_string(),
            fmt_f(r.stall_fraction(), 3),
            fmt_x(base.cycles as f64 / r.cycles as f64),
        ]);
    }
    vec![t]
}

/// Preemptive α-checking ablation: without it, the render units must
/// α-check every candidate pair in the rasterization stage (paper Sec. V-B:
/// the simplified render unit exists because preemption guarantees every
/// list entry contributes).
pub fn preemptive_alpha(settings: &Settings) -> Vec<Table> {
    let scenario = canonical_scenario(settings);
    let ms = measurements(&scenario);
    let accel = SplatonicAccel::paper();
    let w = &ms.sparse_pixel.workload;
    let with = accel.price(w);
    // Without preemption: every candidate flows into rasterization, where
    // it is α-checked (1 extra unit-cycle each) and mostly discarded.
    let candidates: f64 = w.proj_candidates.iter().map(|&c| c as f64).sum();
    let without_raster = candidates * 2.0 / accel.config.blend_rate() + w.pixels as f64;
    let mut t = Table::new(
        "Ablation — preemptive alpha-checking (forward rasterization cycles)",
        &["variant", "raster cycles", "note"],
    );
    t.row([
        "with preemption (paper)".to_string(),
        format!("{:.0}", with.raster_cycles),
        "render units blend contributing pairs only".to_string(),
    ]);
    t.row([
        "without preemption".to_string(),
        format!("{without_raster:.0}"),
        "render units alpha-check every candidate".to_string(),
    ]);
    t.row([
        "saving".to_string(),
        fmt_x(without_raster / with.raster_cycles.max(1.0)),
        String::new(),
    ]);
    vec![t]
}

/// Γ/C caching ablation: without the per-pixel forward cache, the reverse
/// render units need the first cross-thread reduction (a serial prefix
/// product over each pixel's list) before any gradient can be computed
/// (paper Sec. V-B).
pub fn gamma_cache(settings: &Settings) -> Vec<Table> {
    let scenario = canonical_scenario(settings);
    let ms = measurements(&scenario);
    let accel = SplatonicAccel::paper();
    let w = &ms.sparse_pixel.workload;
    let with = accel.price(w);
    // Without the cache: per pixel, recompute α for every pair (LUT unit)
    // and run a serial prefix product (1 cycle per element, not
    // parallelizable across lanes) before the gradient pass.
    let prefix: f64 = w.pixel_lists.iter().map(|&l| l as f64).sum();
    let alpha_recompute = prefix / accel.config.alpha_check_rate();
    let without =
        with.reverse_cycles + prefix / accel.config.raster_engines as f64 + alpha_recompute;
    let mut t = Table::new(
        "Ablation — forward Gamma/C caching (reverse-render cycles)",
        &["variant", "reverse cycles", "note"],
    );
    t.row([
        "with Gamma/C buffer (paper)".to_string(),
        format!("{:.0}", with.reverse_cycles),
        "gradients computed directly from cached prefixes".to_string(),
    ]);
    t.row([
        "without buffer".to_string(),
        format!("{without:.0}"),
        "serial prefix reduction + alpha recompute first".to_string(),
    ]);
    t.row([
        "saving".to_string(),
        fmt_x(without / with.reverse_cycles.max(1.0)),
        String::new(),
    ]);
    vec![t]
}

/// Tile-grouping ablation (DESIGN.md §16): the same dense tile frame priced
/// on SPLATONIC's hierarchical sorters with the conventional per-tile sort
/// schedule versus the GS-TG-style grouped schedule (one shared sort per
/// tile group, per-tile lists derived by masking). The grouped row uses the
/// grouping-aware hardware config, which additionally charges the
/// mask/scatter stream pass — the win reported is net of that cost.
pub fn tile_grouping(settings: &Settings) -> Vec<Table> {
    let scenario = canonical_scenario(settings);
    // Reference schedule: per-tile sorts, no sorted-list cache.
    let per_tile = measure_dense_iteration_with_config(
        &scenario,
        Pipeline::TileBased,
        &reference_render_config(),
    );
    // Grouped schedule: the runtime default (grouping on).
    let grouped = measure_dense_iteration_with_config(
        &scenario,
        Pipeline::TileBased,
        &RenderConfig::default(),
    );
    let base = SplatonicAccel::paper();
    let base_report = base.price(&per_tile.workload);
    let mut grouped_accel = SplatonicAccel::paper();
    grouped_accel.config = SplatonicConfig::paper().with_tile_grouping(true);
    let grouped_report = grouped_accel.price(&grouped.workload);

    let mut t = Table::new(
        "Ablation — tile grouping in the hierarchical sorters (dense tile frame)",
        &[
            "variant",
            "sort elems",
            "sort lists",
            "sorting cycles",
            "total (s)",
        ],
    );
    t.row([
        "SPLATONIC".to_string(),
        per_tile.trace.forward.sort_elems.to_string(),
        per_tile.trace.forward.sort_lists.to_string(),
        format!("{:.0}", base_report.sorting_cycles),
        format!("{:.2e}", base_report.total_seconds()),
    ]);
    t.row([
        "SPLATONIC+tile-grouping".to_string(),
        grouped.trace.forward.sort_elems.to_string(),
        grouped.trace.forward.sort_lists.to_string(),
        format!("{:.0}", grouped_report.sorting_cycles),
        format!("{:.2e}", grouped_report.total_seconds()),
    ]);
    t.row([
        "sorting-cycle saving".to_string(),
        fmt_x(
            per_tile.trace.forward.sort_elems as f64
                / grouped.trace.forward.sort_elems.max(1) as f64,
        ),
        format!("group reuse: {}", grouped.trace.forward.sort_group_reuse),
        fmt_x(base_report.sorting_cycles / grouped_report.sorting_cycles.max(1.0)),
        String::new(),
    ]);
    vec![t]
}

/// All ablations.
pub fn all(settings: &Settings) -> Vec<Table> {
    let mut out = lut_sweep(settings);
    out.extend(aggregation_sweep(settings));
    out.extend(preemptive_alpha(settings));
    out.extend(gamma_cache(settings));
    out.extend(tile_grouping(settings));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_grouping_row_shows_sorting_win() {
        let t = &tile_grouping(&Settings::quick())[0];
        let parse = |s: &str| -> u64 { s.parse().unwrap() };
        let base = t.rows.iter().find(|r| r[0] == "SPLATONIC").unwrap();
        let grouped = t
            .rows
            .iter()
            .find(|r| r[0] == "SPLATONIC+tile-grouping")
            .unwrap();
        // The grouped schedule must compare fewer elements and run fewer,
        // larger shared sorts. (The ≥2× acceptance bar is on sort_elems
        // with the frame-coherent cache included — measured by the kernels
        // A/B run into BENCH_sort.json, not by this single cold frame.)
        assert!(parse(&base[1]) > parse(&grouped[1]));
        assert!(parse(&base[2]) > parse(&grouped[2]));
    }

    #[test]
    fn lut_table_has_paper_row() {
        let t = &lut_sweep(&Settings::quick())[0];
        let row64 = t.rows.iter().find(|r| r[0] == "64").unwrap();
        assert_eq!(row64[2], "yes", "64 entries must be below the quantum");
        let row8 = t.rows.iter().find(|r| r[0] == "8").unwrap();
        assert_eq!(row8[2], "no", "8 entries must be insufficient");
    }
}
