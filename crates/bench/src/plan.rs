//! Headless multi-step bench plans (`figures --plan <file>`).
//!
//! A plan is a small JSON script that chains a SLAM run with asset and
//! snapshot operations — run → checkpoint → export `.ply` → decimate →
//! re-import → re-evaluate PSNR — so CI pipelines are one committed file
//! plus one binary invocation instead of shell glue (DESIGN.md §17). The
//! committed `plans/roundtrip.json` is the reference example and the CI
//! smoke gate.
//!
//! # Schema
//!
//! ```json
//! {
//!   "name": "roundtrip",
//!   "steps": [
//!     {"op": "run"},
//!     {"op": "export_ply", "path": "scene.ply"},
//!     {"op": "assert_ply_roundtrip", "path": "scene.ply"},
//!     {"op": "eval_psnr"},
//!     {"op": "decimate", "keep_fraction": 0.5},
//!     {"op": "eval_psnr", "max_drop_db": 2.0},
//!     {"op": "decode_snapshot", "path": "fixtures/snapshot_v1.snap"}
//!   ]
//! }
//! ```
//!
//! Every step takes an optional `"note"` string (logged verbatim). The
//! ops, in the order a typical plan uses them:
//!
//! * `run` (optional `seed`, `checkpoint_every`) — the SLAM pass; must
//!   precede every op that needs a scene or trajectory.
//! * `checkpoint {path}` — writes the run's last snapshot cut to `path`.
//! * `export_ply {path}` / `import_ply {path}` — scene ↔ 3DGS `.ply`,
//!   via [`splatonic_slam::assets`] so the `assets/*` counters accrue.
//!   Import *replaces* the working scene; estimated poses are kept.
//! * `assert_ply_roundtrip {path}` — decodes the file and re-encodes it,
//!   failing unless the bytes match exactly (the codec's f32-projection
//!   guarantee: an exported file re-encodes bit-identically).
//! * `decimate {budget | keep_fraction}` — LOD pass on the working scene
//!   ([`splatonic_scene::lod`]).
//! * `eval_psnr {min_db?, max_drop_db?}` — re-renders the working scene
//!   along the estimated trajectory and compares: `min_db` is an absolute
//!   floor; `max_drop_db` bounds the drop against the *first* `eval_psnr`
//!   of the plan (the reference). A bare `eval_psnr` just records.
//! * `decode_snapshot {path}` — decodes a snapshot file (any supported
//!   format version), failing the plan on a decode error. This is how CI
//!   keeps the committed v1 fixture decodable forever.
//!
//! # Path resolution
//!
//! Relative paths are tried against the plan file's directory first (for
//! committed fixtures riding next to the plan); if nothing exists there
//! they resolve into the artifact directory (`--plan-dir`, where writes
//! always land). Absolute paths are used verbatim.

use crate::Settings;
use splatonic::telemetry::json::{self, Json};
use splatonic_scene::{lod, ply, GaussianScene};
use splatonic_slam::prelude::*;
use splatonic_slam::{assets, Snapshot};
use splatonic_telemetry::Telemetry;
use std::fmt;
use std::path::{Path, PathBuf};

/// Everything that can go wrong loading or executing a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A file could not be read or written.
    Io(String),
    /// The plan file is not valid JSON.
    Parse(String),
    /// The JSON is valid but violates the plan schema.
    Schema(String),
    /// A step ran before the state it needs existed (e.g. `export_ply`
    /// before `run`).
    State(String),
    /// An explicit plan assertion failed (roundtrip mismatch, PSNR below
    /// floor).
    Assertion(String),
    /// A `.ply` or snapshot codec error while executing a step.
    Codec(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Io(m) => write!(f, "plan I/O error: {m}"),
            PlanError::Parse(m) => write!(f, "plan parse error: {m}"),
            PlanError::Schema(m) => write!(f, "plan schema error: {m}"),
            PlanError::State(m) => write!(f, "plan state error: {m}"),
            PlanError::Assertion(m) => write!(f, "plan assertion failed: {m}"),
            PlanError::Codec(m) => write!(f, "plan codec error: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// One parsed plan step. Parsing is eager and strict (unknown ops and
/// unknown fields are schema errors) so a typo fails before the expensive
/// SLAM run, not after it.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Execute the SLAM pass that later steps operate on.
    Run {
        /// Master seed (default 7, the instrumented-report seed).
        seed: u64,
        /// Checkpoint cadence in frames (default 4).
        checkpoint_every: usize,
    },
    /// Write the run's last snapshot cut to a file.
    Checkpoint {
        /// Destination path (resolved into the artifact directory).
        path: String,
    },
    /// Export the working scene as 3DGS `.ply`.
    ExportPly {
        /// Destination path (resolved into the artifact directory).
        path: String,
    },
    /// Replace the working scene with a `.ply` file's contents.
    ImportPly {
        /// Source path.
        path: String,
    },
    /// Decode + re-encode a `.ply` file and require bit-identical bytes.
    AssertPlyRoundtrip {
        /// File to check.
        path: String,
    },
    /// Decimate the working scene to a budget or a kept fraction.
    Decimate {
        /// Absolute Gaussian budget (exclusive with `keep_fraction`).
        budget: Option<usize>,
        /// Fraction of the scene to keep (exclusive with `budget`).
        keep_fraction: Option<f64>,
    },
    /// Re-render the working scene along the estimated trajectory and
    /// check the PSNR against the given bounds.
    EvalPsnr {
        /// Absolute floor in dB.
        min_db: Option<f64>,
        /// Maximum allowed drop versus the plan's first `eval_psnr`.
        max_drop_db: Option<f64>,
    },
    /// Decode a snapshot file (any supported format version).
    DecodeSnapshot {
        /// File to decode.
        path: String,
    },
}

/// A loaded plan: name, steps, and the directory the plan file lives in
/// (used for fixture-relative path resolution).
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Plan name (from the file, falling back to the file stem).
    pub name: String,
    /// Directory of the plan file; committed fixtures resolve against it.
    pub base_dir: PathBuf,
    /// The steps, with their optional notes, in execution order.
    pub steps: Vec<(Step, Option<String>)>,
}

/// What a completed plan reports back.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanOutcome {
    /// Plan name.
    pub name: String,
    /// One human-readable line per executed step.
    pub log: Vec<String>,
    /// PSNR of the SLAM run itself (set by `run`).
    pub run_psnr_db: Option<f64>,
    /// The last `eval_psnr` result.
    pub final_psnr_db: Option<f64>,
}

fn str_field(obj: &Json, key: &str, op: &str, idx: usize) -> Result<String, PlanError> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(String::from)
        .ok_or_else(|| {
            PlanError::Schema(format!("step {idx} ({op}): missing string field \"{key}\""))
        })
}

fn opt_f64_field(obj: &Json, key: &str, op: &str, idx: usize) -> Result<Option<f64>, PlanError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v.as_f64().map(Some).ok_or_else(|| {
            PlanError::Schema(format!(
                "step {idx} ({op}): field \"{key}\" must be a number"
            ))
        }),
    }
}

fn opt_usize_field(
    obj: &Json,
    key: &str,
    op: &str,
    idx: usize,
) -> Result<Option<usize>, PlanError> {
    match opt_f64_field(obj, key, op, idx)? {
        None => Ok(None),
        Some(v) if v >= 0.0 && v.fract() == 0.0 && v <= u32::MAX as f64 => Ok(Some(v as usize)),
        Some(v) => Err(PlanError::Schema(format!(
            "step {idx} ({op}): field \"{key}\" must be a non-negative integer, got {v}"
        ))),
    }
}

/// Rejects fields outside `allowed` (plus `op`/`note`) so plan typos fail
/// loudly instead of silently no-opting.
fn check_keys(obj: &Json, allowed: &[&str], op: &str, idx: usize) -> Result<(), PlanError> {
    let Json::Obj(fields) = obj else {
        return Err(PlanError::Schema(format!("step {idx}: not an object")));
    };
    for (k, _) in fields {
        if k != "op" && k != "note" && !allowed.contains(&k.as_str()) {
            return Err(PlanError::Schema(format!(
                "step {idx} ({op}): unknown field \"{k}\""
            )));
        }
    }
    Ok(())
}

fn parse_step(obj: &Json, idx: usize) -> Result<(Step, Option<String>), PlanError> {
    let op = obj
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| PlanError::Schema(format!("step {idx}: missing \"op\"")))?
        .to_string();
    let note = obj.get("note").and_then(Json::as_str).map(String::from);
    let step = match op.as_str() {
        "run" => {
            check_keys(obj, &["seed", "checkpoint_every"], &op, idx)?;
            Step::Run {
                seed: opt_usize_field(obj, "seed", &op, idx)?.unwrap_or(7) as u64,
                checkpoint_every: opt_usize_field(obj, "checkpoint_every", &op, idx)?.unwrap_or(4),
            }
        }
        "checkpoint" => {
            check_keys(obj, &["path"], &op, idx)?;
            Step::Checkpoint {
                path: str_field(obj, "path", &op, idx)?,
            }
        }
        "export_ply" => {
            check_keys(obj, &["path"], &op, idx)?;
            Step::ExportPly {
                path: str_field(obj, "path", &op, idx)?,
            }
        }
        "import_ply" => {
            check_keys(obj, &["path"], &op, idx)?;
            Step::ImportPly {
                path: str_field(obj, "path", &op, idx)?,
            }
        }
        "assert_ply_roundtrip" => {
            check_keys(obj, &["path"], &op, idx)?;
            Step::AssertPlyRoundtrip {
                path: str_field(obj, "path", &op, idx)?,
            }
        }
        "decimate" => {
            check_keys(obj, &["budget", "keep_fraction"], &op, idx)?;
            let budget = opt_usize_field(obj, "budget", &op, idx)?;
            let keep_fraction = opt_f64_field(obj, "keep_fraction", &op, idx)?;
            if budget.is_some() == keep_fraction.is_some() {
                return Err(PlanError::Schema(format!(
                    "step {idx} (decimate): exactly one of \"budget\" or \
                     \"keep_fraction\" is required"
                )));
            }
            if let Some(f) = keep_fraction {
                if !(0.0..=1.0).contains(&f) {
                    return Err(PlanError::Schema(format!(
                        "step {idx} (decimate): keep_fraction {f} outside [0, 1]"
                    )));
                }
            }
            Step::Decimate {
                budget,
                keep_fraction,
            }
        }
        "eval_psnr" => {
            check_keys(obj, &["min_db", "max_drop_db"], &op, idx)?;
            Step::EvalPsnr {
                min_db: opt_f64_field(obj, "min_db", &op, idx)?,
                max_drop_db: opt_f64_field(obj, "max_drop_db", &op, idx)?,
            }
        }
        "decode_snapshot" => {
            check_keys(obj, &["path"], &op, idx)?;
            Step::DecodeSnapshot {
                path: str_field(obj, "path", &op, idx)?,
            }
        }
        other => {
            return Err(PlanError::Schema(format!(
                "step {idx}: unknown op \"{other}\""
            )))
        }
    };
    Ok((step, note))
}

/// Parses a plan document. `base_dir` is the plan file's directory and
/// `fallback_name` the file stem (used when the document has no `name`).
pub fn parse_plan(input: &str, base_dir: &Path, fallback_name: &str) -> Result<Plan, PlanError> {
    let doc = json::parse(input).map_err(|e| PlanError::Parse(format!("{e:?}")))?;
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or(fallback_name)
        .to_string();
    let steps_json = doc
        .get("steps")
        .and_then(Json::as_arr)
        .ok_or_else(|| PlanError::Schema("plan must carry a \"steps\" array".into()))?;
    if steps_json.is_empty() {
        return Err(PlanError::Schema("plan has no steps".into()));
    }
    let steps = steps_json
        .iter()
        .enumerate()
        .map(|(i, s)| parse_step(s, i))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Plan {
        name,
        base_dir: base_dir.to_path_buf(),
        steps,
    })
}

/// Loads and parses a plan file.
pub fn load_plan(path: &Path) -> Result<Plan, PlanError> {
    let input = std::fs::read_to_string(path)
        .map_err(|e| PlanError::Io(format!("read {}: {e}", path.display())))?;
    let base_dir = path.parent().unwrap_or(Path::new(".")).to_path_buf();
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("plan");
    parse_plan(&input, &base_dir, stem)
}

/// State threaded between steps of one plan execution.
struct PlanContext {
    dataset: Option<Dataset>,
    result: Option<SlamResult>,
    scene: Option<GaussianScene>,
    render_cfg: splatonic_render::RenderConfig,
    last_snapshot: Option<Vec<u8>>,
    reference_psnr: Option<f64>,
    last_eval_psnr: Option<f64>,
}

impl PlanContext {
    fn dataset(&self, op: &str) -> Result<&Dataset, PlanError> {
        self.dataset
            .as_ref()
            .ok_or_else(|| PlanError::State(format!("{op} requires a completed \"run\" step")))
    }

    fn scene_mut(&mut self, op: &str) -> Result<&mut GaussianScene, PlanError> {
        self.scene
            .as_mut()
            .ok_or_else(|| PlanError::State(format!("{op} requires a completed \"run\" step")))
    }
}

/// Resolves a step path: absolute verbatim; otherwise plan-file-relative
/// when that file exists (committed fixtures), else into the artifact dir.
fn resolve_read(plan: &Plan, plan_dir: &Path, rel: &str) -> PathBuf {
    let p = Path::new(rel);
    if p.is_absolute() {
        return p.to_path_buf();
    }
    let fixture = plan.base_dir.join(p);
    if fixture.exists() {
        fixture
    } else {
        plan_dir.join(p)
    }
}

/// Resolves a write path: absolute verbatim, otherwise into the artifact
/// directory (writes never land next to the committed plan).
fn resolve_write(plan_dir: &Path, rel: &str) -> Result<PathBuf, PlanError> {
    let p = Path::new(rel);
    let full = if p.is_absolute() {
        p.to_path_buf()
    } else {
        plan_dir.join(p)
    };
    if let Some(parent) = full.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| PlanError::Io(format!("create {}: {e}", parent.display())))?;
    }
    Ok(full)
}

/// Executes a loaded plan. Artifacts (exports, checkpoints) land in
/// `plan_dir`; the SLAM pass uses `settings` (so `--quick` scales the plan
/// run the same way it scales experiments). The returned outcome carries a
/// per-step log; the first failing step aborts the plan with its error.
pub fn run_plan(
    plan: &Plan,
    settings: &Settings,
    plan_dir: &Path,
) -> Result<PlanOutcome, PlanError> {
    let telemetry = Telemetry::enabled();
    let mut ctx = PlanContext {
        dataset: None,
        result: None,
        scene: None,
        render_cfg: splatonic_render::RenderConfig::default(),
        last_snapshot: None,
        reference_psnr: None,
        last_eval_psnr: None,
    };
    let mut outcome = PlanOutcome {
        name: plan.name.clone(),
        log: Vec::new(),
        run_psnr_db: None,
        final_psnr_db: None,
    };
    for (idx, (step, note)) in plan.steps.iter().enumerate() {
        let line = execute_step(step, idx, plan, plan_dir, settings, &telemetry, &mut ctx)?;
        let line = match note {
            Some(n) => format!("{line} ({n})"),
            None => line,
        };
        outcome.log.push(line);
        if let Step::Run { .. } = step {
            outcome.run_psnr_db = ctx.result.as_ref().map(|r| r.psnr_db);
        }
        if let Step::EvalPsnr { .. } = step {
            outcome.final_psnr_db = ctx.last_eval_psnr;
        }
    }
    Ok(outcome)
}

fn execute_step(
    step: &Step,
    idx: usize,
    plan: &Plan,
    plan_dir: &Path,
    settings: &Settings,
    telemetry: &Telemetry,
    ctx: &mut PlanContext,
) -> Result<String, PlanError> {
    match step {
        Step::Run {
            seed,
            checkpoint_every,
        } => {
            let dataset = Dataset::replica_like("plan-room", *seed, settings.dataset_config());
            let mut cfg = SlamConfig::splatonic(AlgorithmConfig::default());
            cfg.seed = *seed;
            cfg.checkpoint_every = *checkpoint_every;
            ctx.render_cfg = cfg.render;
            let mut system = SlamSystem::new(cfg, dataset.intrinsics);
            let mut last_snapshot = None;
            let result = system
                .run_with_checkpoints(&dataset, telemetry, &mut |_, bytes| {
                    last_snapshot = Some(bytes.to_vec());
                    Ok(())
                })
                .map_err(|e| PlanError::Codec(format!("step {idx} (run): {e}")))?;
            let line = format!(
                "run: {} frames, PSNR {:.2} dB, ATE {:.2} cm, {} gaussians",
                result.frames,
                result.psnr_db,
                result.ate_cm,
                system.scene().len()
            );
            ctx.scene = Some(system.scene().clone());
            ctx.dataset = Some(dataset);
            ctx.result = Some(result);
            ctx.last_snapshot = last_snapshot;
            Ok(line)
        }
        Step::Checkpoint { path } => {
            let bytes = ctx.last_snapshot.as_ref().ok_or_else(|| {
                PlanError::State(format!(
                    "step {idx} (checkpoint): the run cut no snapshot \
                     (checkpoint_every 0?)"
                ))
            })?;
            let full = resolve_write(plan_dir, path)?;
            std::fs::write(&full, bytes)
                .map_err(|e| PlanError::Io(format!("write {}: {e}", full.display())))?;
            Ok(format!(
                "checkpoint: {} bytes -> {}",
                bytes.len(),
                full.display()
            ))
        }
        Step::ExportPly { path } => {
            let full = resolve_write(plan_dir, path)?;
            let scene = ctx.scene_mut(&format!("step {idx} (export_ply)"))?;
            let n = scene.len();
            assets::write_scene_ply(scene, &full, telemetry)
                .map_err(|e| PlanError::Codec(format!("step {idx} (export_ply): {e}")))?;
            Ok(format!("export_ply: {n} gaussians -> {}", full.display()))
        }
        Step::ImportPly { path } => {
            let full = resolve_read(plan, plan_dir, path);
            let scene = assets::read_scene_ply(&full, telemetry)
                .map_err(|e| PlanError::Codec(format!("step {idx} (import_ply): {e}")))?;
            let n = scene.len();
            ctx.scene = Some(scene);
            Ok(format!("import_ply: {n} gaussians <- {}", full.display()))
        }
        Step::AssertPlyRoundtrip { path } => {
            let full = resolve_read(plan, plan_dir, path);
            let bytes = std::fs::read(&full)
                .map_err(|e| PlanError::Io(format!("read {}: {e}", full.display())))?;
            let scene = ply::decode_ply(&bytes)
                .map_err(|e| PlanError::Codec(format!("step {idx} (assert_ply_roundtrip): {e}")))?;
            let reencoded = ply::encode_ply(&scene);
            if reencoded != bytes {
                return Err(PlanError::Assertion(format!(
                    "step {idx} (assert_ply_roundtrip): {} re-encodes to {} \
                     bytes != original {} bytes (or content differs)",
                    full.display(),
                    reencoded.len(),
                    bytes.len()
                )));
            }
            Ok(format!(
                "assert_ply_roundtrip: {} is bit-stable ({} gaussians, {} bytes)",
                full.display(),
                scene.len(),
                bytes.len()
            ))
        }
        Step::Decimate {
            budget,
            keep_fraction,
        } => {
            let scene = ctx.scene_mut(&format!("step {idx} (decimate)"))?;
            let stats = match (budget, keep_fraction) {
                (Some(b), None) => lod::decimate(scene, *b),
                (None, Some(f)) => lod::decimate_fraction(scene, *f),
                _ => unreachable!("parser enforces exactly one"),
            };
            telemetry.counter_add("lod/pruned", stats.pruned as u64);
            Ok(format!(
                "decimate: kept {} / pruned {}",
                stats.kept, stats.pruned
            ))
        }
        Step::EvalPsnr {
            min_db,
            max_drop_db,
        } => {
            let op = format!("step {idx} (eval_psnr)");
            let dataset = ctx.dataset(&op)?;
            let result = ctx.result.as_ref().ok_or_else(|| {
                PlanError::State(format!("{op} requires a completed \"run\" step"))
            })?;
            let scene = ctx.scene.as_ref().ok_or_else(|| {
                PlanError::State(format!("{op} requires a completed \"run\" step"))
            })?;
            let psnr = evaluate_scene_psnr(
                scene,
                dataset.intrinsics,
                &ctx.render_cfg,
                dataset,
                &result.est_poses,
                1,
            );
            if let Some(floor) = min_db {
                if psnr < *floor {
                    return Err(PlanError::Assertion(format!(
                        "{op}: PSNR {psnr:.2} dB below floor {floor:.2} dB"
                    )));
                }
            }
            if let Some(max_drop) = max_drop_db {
                let reference = ctx.reference_psnr.ok_or_else(|| {
                    PlanError::State(format!(
                        "{op}: max_drop_db needs an earlier bare eval_psnr as reference"
                    ))
                })?;
                let drop = reference - psnr;
                if drop > *max_drop {
                    return Err(PlanError::Assertion(format!(
                        "{op}: PSNR dropped {drop:.2} dB (from {reference:.2} to \
                         {psnr:.2}), allowed {max_drop:.2}"
                    )));
                }
            }
            if ctx.reference_psnr.is_none() {
                ctx.reference_psnr = Some(psnr);
            }
            ctx.last_eval_psnr = Some(psnr);
            Ok(format!(
                "eval_psnr: {psnr:.2} dB over {} gaussians",
                scene.len()
            ))
        }
        Step::DecodeSnapshot { path } => {
            let full = resolve_read(plan, plan_dir, path);
            let bytes = std::fs::read(&full)
                .map_err(|e| PlanError::Io(format!("read {}: {e}", full.display())))?;
            let snap = Snapshot::from_bytes(&bytes)
                .map_err(|e| PlanError::Codec(format!("step {idx} (decode_snapshot): {e:?}")))?;
            Ok(format!(
                "decode_snapshot: {} ok ({} gaussians, next_frame {})",
                full.display(),
                snap.gaussians.len(),
                snap.next_frame
            ))
        }
    }
}

/// [`load_plan`] + [`run_plan`] in one call (what `figures --plan` does).
pub fn run_plan_file(
    path: &Path,
    settings: &Settings,
    plan_dir: &Path,
) -> Result<PlanOutcome, PlanError> {
    let plan = load_plan(path)?;
    run_plan(&plan, settings, plan_dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(body: &str) -> Result<Plan, PlanError> {
        parse_plan(
            &format!(r#"{{"name": "t", "steps": [{body}]}}"#),
            Path::new("/plans"),
            "t",
        )
    }

    #[test]
    fn roundtrip_plan_parses() {
        let plan = parse_one(
            r#"{"op": "run", "seed": 3},
               {"op": "export_ply", "path": "s.ply", "note": "full map"},
               {"op": "decimate", "keep_fraction": 0.5},
               {"op": "eval_psnr", "min_db": 10.0, "max_drop_db": 2.0},
               {"op": "decode_snapshot", "path": "fixtures/v1.snap"}"#,
        )
        .unwrap();
        assert_eq!(plan.steps.len(), 5);
        assert_eq!(
            plan.steps[0].0,
            Step::Run {
                seed: 3,
                checkpoint_every: 4
            }
        );
        assert_eq!(plan.steps[1].1.as_deref(), Some("full map"));
    }

    #[test]
    fn unknown_op_and_field_are_schema_errors() {
        assert!(matches!(
            parse_one(r#"{"op": "frobnicate"}"#),
            Err(PlanError::Schema(_))
        ));
        assert!(matches!(
            parse_one(r#"{"op": "run", "sede": 3}"#),
            Err(PlanError::Schema(_))
        ));
        assert!(matches!(
            parse_one(r#"{"op": "export_ply"}"#),
            Err(PlanError::Schema(_))
        ));
    }

    #[test]
    fn decimate_needs_exactly_one_knob() {
        for body in [
            r#"{"op": "decimate"}"#,
            r#"{"op": "decimate", "budget": 10, "keep_fraction": 0.5}"#,
            r#"{"op": "decimate", "keep_fraction": 1.5}"#,
            r#"{"op": "decimate", "budget": -3}"#,
        ] {
            assert!(
                matches!(parse_one(body), Err(PlanError::Schema(_))),
                "{body} must be rejected"
            );
        }
        assert!(parse_one(r#"{"op": "decimate", "budget": 10}"#).is_ok());
    }

    #[test]
    fn empty_and_invalid_documents_are_rejected() {
        assert!(matches!(
            parse_plan("{", Path::new("."), "x"),
            Err(PlanError::Parse(_))
        ));
        assert!(matches!(
            parse_plan(r#"{"steps": []}"#, Path::new("."), "x"),
            Err(PlanError::Schema(_))
        ));
        assert!(matches!(
            parse_plan(r#"{"name": "n"}"#, Path::new("."), "x"),
            Err(PlanError::Schema(_))
        ));
    }

    #[test]
    fn steps_before_run_are_state_errors() {
        let plan = parse_one(r#"{"op": "export_ply", "path": "s.ply"}"#).unwrap();
        let dir = std::env::temp_dir().join(format!("splatonic-plan-state-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let err = run_plan(&plan, &Settings::quick(), &dir).unwrap_err();
        assert!(matches!(err, PlanError::State(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_paths_prefer_plan_file_relative_fixtures() {
        let base = std::env::temp_dir().join(format!("splatonic-plan-res-{}", std::process::id()));
        let plans = base.join("plans");
        let artifacts = base.join("artifacts");
        std::fs::create_dir_all(&plans).unwrap();
        std::fs::create_dir_all(&artifacts).unwrap();
        std::fs::write(plans.join("fixture.bin"), b"x").unwrap();
        let plan = Plan {
            name: "t".into(),
            base_dir: plans.clone(),
            steps: Vec::new(),
        };
        // Exists next to the plan: resolved there.
        assert_eq!(
            resolve_read(&plan, &artifacts, "fixture.bin"),
            plans.join("fixture.bin")
        );
        // Does not: resolved into the artifact dir.
        assert_eq!(
            resolve_read(&plan, &artifacts, "out.ply"),
            artifacts.join("out.ply")
        );
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn full_roundtrip_plan_executes() {
        // The committed plan's shape end to end on the quick dataset:
        // run -> checkpoint -> export -> stability assert -> reference
        // eval -> import -> decimate -> bounded eval -> v1 fixture decode.
        let dir = std::env::temp_dir().join(format!("splatonic-plan-e2e-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let plan = parse_plan(
            r#"{"name": "e2e", "steps": [
                 {"op": "run"},
                 {"op": "checkpoint", "path": "last.snap"},
                 {"op": "export_ply", "path": "full.ply"},
                 {"op": "assert_ply_roundtrip", "path": "full.ply"},
                 {"op": "import_ply", "path": "full.ply"},
                 {"op": "eval_psnr"},
                 {"op": "decimate", "keep_fraction": 0.5},
                 {"op": "eval_psnr", "min_db": 8.0, "max_drop_db": 28.0},
                 {"op": "decode_snapshot", "path": "last.snap"}
               ]}"#,
            &dir,
            "e2e",
        )
        .unwrap();
        let outcome = run_plan(&plan, &Settings::quick(), &dir).unwrap();
        assert_eq!(outcome.log.len(), 9);
        assert!(outcome.run_psnr_db.unwrap() > 10.0);
        assert!(outcome.final_psnr_db.is_some());
        assert!(dir.join("full.ply").exists());
        assert!(dir.join("last.snap").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn psnr_floor_violation_fails_the_plan() {
        let dir = std::env::temp_dir().join(format!("splatonic-plan-floor-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let plan = parse_plan(
            r#"{"name": "floor", "steps": [
                 {"op": "run"},
                 {"op": "eval_psnr", "min_db": 99.0}
               ]}"#,
            &dir,
            "floor",
        )
        .unwrap();
        let err = run_plan(&plan, &Settings::quick(), &dir).unwrap_err();
        assert!(matches!(err, PlanError::Assertion(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
