//! Instrumented benchmark runs producing machine-readable `BENCH_*.json`
//! reports (`figures --report out.json`).
//!
//! One instrumented run executes the full SLAM loop with telemetry enabled
//! (spans, per-frame accuracy trajectory, merged workload counters), then
//! prices a representative tracking iteration on every hardware target and
//! exports the stage/energy breakdowns as gauges. The resulting
//! [`RunReport`] serializes as `{name, date, frames, spans, counters,
//! accuracy}`.

use crate::Settings;
use splatonic::harness::{measure_tracking_iteration, TrackingScenario};
use splatonic::prelude::*;
use splatonic::telemetry::{AccuracySummary, RunReport, Telemetry, TraceSession};
use splatonic_slam::dataset::Dataset;
use std::path::PathBuf;

/// Output options for an instrumented pass (`figures --report/--trace-out/
/// --events-out`). `Default` keeps the historical behavior: checkpoint
/// cadence 4, everything in memory, no trace or event exports.
#[derive(Debug, Clone, Default)]
pub struct InstrumentOptions {
    /// Checkpoint cadence in frames; `0` falls back to the default of 4.
    pub checkpoint_every: usize,
    /// When set, every snapshot is also written here as `ckpt_<frame>.snap`.
    pub checkpoint_dir: Option<PathBuf>,
    /// When set, a Chrome trace-event JSON (Perfetto-loadable) covering the
    /// whole pass is written here (`--trace-out`).
    pub trace_out: Option<PathBuf>,
    /// When set, a JSONL event stream (run/span/frame/counter records,
    /// flushed per line for live tailing) is written here (`--events-out`).
    pub events_out: Option<PathBuf>,
}

/// Telemetry gauge prefix for a hardware target: `hw/` + a lowercase slug
/// of the display name (`hw/splatonic-hw`, `hw/gpu-tile-based`).
fn target_slug(target: HardwareTarget) -> String {
    let slug: String = target
        .name()
        .to_ascii_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let parts: Vec<&str> = slug.split('-').filter(|s| !s.is_empty()).collect();
    format!("hw/{}", parts.join("-"))
}

/// Runs one fully-instrumented SLAM pass plus hardware pricing and returns
/// the run report.
///
/// Checkpointing runs on a fixed default cadence (in-memory sink) so the
/// report carries the checkpoint span, `slam/checkpoints_written`, and
/// `slam/snapshot_bytes` — `scripts/check_bench.py` gates on them.
pub fn instrumented_run(name: &str, settings: &Settings) -> RunReport {
    instrumented_run_with_checkpoints(name, settings, 4, None)
}

/// [`instrumented_run`] with an explicit checkpoint cadence; when `dir` is
/// given every snapshot is also written there as `ckpt_<frame>.snap`
/// (`figures --checkpoint-every N --checkpoint-dir D`).
pub fn instrumented_run_with_checkpoints(
    name: &str,
    settings: &Settings,
    checkpoint_every: usize,
    dir: Option<&std::path::Path>,
) -> RunReport {
    instrumented_run_with_options(
        name,
        settings,
        &InstrumentOptions {
            checkpoint_every,
            checkpoint_dir: dir.map(PathBuf::from),
            ..InstrumentOptions::default()
        },
    )
}

/// [`instrumented_run`] with full output control; see [`InstrumentOptions`].
///
/// # Panics
///
/// Panics if the checkpoint directory or an export file cannot be created.
pub fn instrumented_run_with_options(
    name: &str,
    settings: &Settings,
    options: &InstrumentOptions,
) -> RunReport {
    let checkpoint_every = if options.checkpoint_every == 0 {
        4
    } else {
        options.checkpoint_every
    };
    let dir = options.checkpoint_dir.as_deref();
    let dataset = Dataset::replica_like("report-room", 7, settings.dataset_config());
    let telemetry = Telemetry::enabled();
    if let Some(path) = &options.events_out {
        let file = std::fs::File::create(path)
            .unwrap_or_else(|e| panic!("create events file {}: {e}", path.display()));
        telemetry.stream_events_to(Box::new(std::io::BufWriter::new(file)));
    }
    // Begin the trace session *before* any render so the pool/phase capture
    // gates are on for the whole pass.
    let trace_session = options.trace_out.as_deref().map(|_| TraceSession::begin());
    // Host vector width in use (DESIGN.md §13). check_bench.py requires the
    // gauge to be present but skips its value (machine-dependent).
    telemetry.gauge_set("render/simd_lanes", splatonic_render::simd::lanes() as f64);

    // End-to-end SLAM with spans and per-frame records.
    let mut slam_cfg = SlamConfig::splatonic(AlgorithmConfig::default());
    slam_cfg.checkpoint_every = checkpoint_every;
    let mut system = SlamSystem::new(slam_cfg, dataset.intrinsics);
    if let Some(d) = dir {
        std::fs::create_dir_all(d).expect("create checkpoint dir");
    }
    let result = system
        .run_with_checkpoints(&dataset, &telemetry, &mut |snap, bytes| {
            if let Some(d) = dir {
                let path = d.join(format!("ckpt_{:04}.snap", snap.next_frame));
                std::fs::write(&path, bytes)
                    .map_err(|e| splatonic_slam::SnapshotError::Io(e.to_string()))?;
            }
            Ok(())
        })
        .expect("checkpoint sink failed");

    // Asset-path accounting: exercise the `.ply` export/import roundtrip
    // in memory so every report carries the `assets/ply_gaussians_written`
    // and `assets/ply_gaussians_read` counters (check_bench.py and
    // report_diff require them nonzero — a silently broken splat codec
    // must fail the gate, not vanish from the report).
    {
        let _span = telemetry.span("assets_roundtrip");
        let ply = splatonic_slam::assets::encode_scene_ply(system.scene(), &telemetry);
        let reimported = splatonic_slam::assets::decode_scene_ply(&ply, &telemetry)
            .expect("freshly exported scene must re-import");
        assert_eq!(reimported.len(), system.scene().len());
    }

    // Price one representative tracking iteration on every target and
    // export the stage/energy breakdowns.
    let scenario = TrackingScenario::prepare(&dataset, 1);
    for target in HardwareTarget::all() {
        let m = measure_tracking_iteration(
            &scenario,
            target.expected_pipeline(),
            slam_cfg.tracking_sampling,
            1,
        );
        let cost = {
            let _span = telemetry.span("pricing");
            target.price(&m)
        };
        cost.export_telemetry(&telemetry, &target_slug(target));
    }

    let report = telemetry.finish(
        name,
        AccuracySummary {
            ate_cm: result.ate_cm,
            psnr_db: result.psnr_db,
            frames: result.frames,
            scene_size: result.scene_size,
        },
    );
    if let (Some(path), Some(session)) = (options.trace_out.as_deref(), &trace_session) {
        telemetry
            .write_chrome_trace(session, path)
            .unwrap_or_else(|e| panic!("write trace {}: {e}", path.display()));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatonic::telemetry::json;

    #[test]
    fn target_slugs_are_clean() {
        assert_eq!(target_slug(HardwareTarget::SplatonicHw), "hw/splatonic-hw");
        assert_eq!(target_slug(HardwareTarget::GpuTile), "hw/gpu-tile-based");
    }

    #[test]
    fn instrumented_run_meets_report_contract() {
        let report = instrumented_run("bench-unit", &Settings::quick());
        let doc = json::parse(&report.to_json_string()).expect("report must be valid JSON");

        // Per-span timing for tracking and mapping.
        let spans = doc.get("spans").expect("spans section");
        for path in [
            "tracking",
            "tracking/forward",
            "mapping",
            "mapping/backward",
        ] {
            assert!(spans.get(path).is_some(), "missing span {path}");
        }
        // Merged forward/backward workload counters.
        let counters = doc.get("counters").expect("counters section");
        for name in [
            "tracking/forward/pairs_integrated",
            "tracking/backward/atomic_adds",
            "mapping/forward/pixels_shaded",
            "slam/checkpoints_written",
            "assets/ply_gaussians_written",
            "assets/ply_gaussians_read",
            "lod/pruned",
        ] {
            assert!(counters.get(name).is_some(), "missing counter {name}");
        }
        assert!(spans.get("checkpoint").is_some(), "missing checkpoint span");
        assert!(
            doc.get("gauges")
                .unwrap()
                .get("slam/snapshot_bytes")
                .and_then(|v| v.as_f64())
                .is_some_and(|v| v > 0.0),
            "missing slam/snapshot_bytes gauge"
        );
        // Per-frame array with accuracy trajectory.
        let frames = doc.get("frames").expect("frames section").as_arr().unwrap();
        assert!(!frames.is_empty());
        for f in frames {
            assert!(f.get("psnr_db").is_some());
            assert!(f.get("ate_so_far_cm").is_some());
        }
        // Hardware gauges for every target.
        let gauges = doc.get("gauges").expect("gauges section");
        for target in HardwareTarget::all() {
            let key = format!("{}/seconds", target_slug(target));
            assert!(gauges.get(&key).is_some(), "missing gauge {key}");
        }
        assert!(doc
            .get("accuracy")
            .unwrap()
            .get("ate_cm")
            .unwrap()
            .as_f64()
            .is_some());
        // Latency histograms with deterministic-width buckets.
        let latency = doc.get("latency").expect("latency section");
        for name in ["frame/track_ms", "frame/map_ms"] {
            let h = latency
                .get(name)
                .unwrap_or_else(|| panic!("missing {name}"));
            assert!(h.get("count").unwrap().as_f64().unwrap() > 0.0);
            for key in ["p50_ms", "p95_ms", "p99_ms"] {
                assert!(h.get(key).is_some(), "{name} missing {key}");
            }
        }
    }

    #[test]
    fn instrumented_options_emit_trace_events_and_clean_names() {
        let dir = std::env::temp_dir().join(format!("splatonic-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.json");
        let events_path = dir.join("events.jsonl");
        let report = instrumented_run_with_options(
            "bench-options",
            &Settings::quick(),
            &InstrumentOptions {
                trace_out: Some(trace_path.clone()),
                events_out: Some(events_path.clone()),
                ..InstrumentOptions::default()
            },
        );

        // Chrome trace: valid JSON with metadata and complete events from
        // all three producers (telemetry spans, render phases, pool lanes).
        let trace = json::parse(&std::fs::read_to_string(&trace_path).unwrap())
            .expect("trace must be valid JSON");
        let events = trace.get("traceEvents").unwrap().as_arr().unwrap();
        let name_of = |e: &json::Json| e.get("name").and_then(|n| n.as_str().map(String::from));
        let cat_of = |e: &json::Json| e.get("cat").and_then(|c| c.as_str().map(String::from));
        assert!(events
            .iter()
            .any(|e| name_of(e).as_deref() == Some("frame")));
        for cat in ["span", "render"] {
            assert!(
                events.iter().any(|e| cat_of(e).as_deref() == Some(cat)),
                "no {cat} events in trace"
            );
        }

        // JSONL stream: one JSON object per line, bracketed run_start →
        // run_end, with span and frame records in between.
        let stream = std::fs::read_to_string(&events_path).unwrap();
        let lines: Vec<&str> = stream.lines().collect();
        assert!(lines.len() > 10, "stream too short: {} lines", lines.len());
        let types: Vec<String> = lines
            .iter()
            .map(|l| {
                json::parse(l)
                    .expect("every stream line must be valid JSON")
                    .get("type")
                    .and_then(|t| t.as_str().map(String::from))
                    .expect("every record carries a type")
            })
            .collect();
        assert_eq!(types.first().map(String::as_str), Some("run_start"));
        assert_eq!(types.last().map(String::as_str), Some("run_end"));
        for t in ["span", "frame", "counter", "gauge"] {
            assert!(types.iter().any(|x| x == t), "no {t} records in stream");
        }

        // Naming audit: every counter and gauge from an end-to-end run obeys
        // the `subsystem/name` convention, with no duplicates or collisions.
        let mut seen = std::collections::BTreeSet::new();
        let counter_names: Vec<&String> = report.counters.iter().map(|(n, _)| n).collect();
        let gauge_names: Vec<&String> = report.gauges.iter().map(|(n, _)| n).collect();
        for (kind, names) in [("counter", counter_names), ("gauge", gauge_names)] {
            for name in names {
                splatonic::telemetry::validate_metric_name(name)
                    .unwrap_or_else(|e| panic!("{kind} {name}: {e}"));
                assert!(seen.insert(name.clone()), "duplicate metric name {name}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
