//! Instrumented benchmark runs producing machine-readable `BENCH_*.json`
//! reports (`figures --report out.json`).
//!
//! One instrumented run executes the full SLAM loop with telemetry enabled
//! (spans, per-frame accuracy trajectory, merged workload counters), then
//! prices a representative tracking iteration on every hardware target and
//! exports the stage/energy breakdowns as gauges. The resulting
//! [`RunReport`] serializes as `{name, date, frames, spans, counters,
//! accuracy}`.

use crate::Settings;
use splatonic::harness::{measure_tracking_iteration, TrackingScenario};
use splatonic::prelude::*;
use splatonic::telemetry::{AccuracySummary, RunReport, Telemetry};
use splatonic_slam::dataset::Dataset;

/// Telemetry gauge prefix for a hardware target: `hw/` + a lowercase slug
/// of the display name (`hw/splatonic-hw`, `hw/gpu-tile-based`).
fn target_slug(target: HardwareTarget) -> String {
    let slug: String = target
        .name()
        .to_ascii_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let parts: Vec<&str> = slug.split('-').filter(|s| !s.is_empty()).collect();
    format!("hw/{}", parts.join("-"))
}

/// Runs one fully-instrumented SLAM pass plus hardware pricing and returns
/// the run report.
///
/// Checkpointing runs on a fixed default cadence (in-memory sink) so the
/// report carries the checkpoint span, `slam/checkpoints_written`, and
/// `slam/snapshot_bytes` — `scripts/check_bench.py` gates on them.
pub fn instrumented_run(name: &str, settings: &Settings) -> RunReport {
    instrumented_run_with_checkpoints(name, settings, 4, None)
}

/// [`instrumented_run`] with an explicit checkpoint cadence; when `dir` is
/// given every snapshot is also written there as `ckpt_<frame>.snap`
/// (`figures --checkpoint-every N --checkpoint-dir D`).
pub fn instrumented_run_with_checkpoints(
    name: &str,
    settings: &Settings,
    checkpoint_every: usize,
    dir: Option<&std::path::Path>,
) -> RunReport {
    let dataset = Dataset::replica_like("report-room", 7, settings.dataset_config());
    let telemetry = Telemetry::enabled();
    // Host vector width in use (DESIGN.md §13). check_bench.py requires the
    // gauge to be present but skips its value (machine-dependent).
    telemetry.gauge_set("render/simd_lanes", splatonic_render::simd::lanes() as f64);

    // End-to-end SLAM with spans and per-frame records.
    let mut slam_cfg = SlamConfig::splatonic(AlgorithmConfig::default());
    slam_cfg.checkpoint_every = checkpoint_every;
    let mut system = SlamSystem::new(slam_cfg, dataset.intrinsics);
    if let Some(d) = dir {
        std::fs::create_dir_all(d).expect("create checkpoint dir");
    }
    let result = system
        .run_with_checkpoints(&dataset, &telemetry, &mut |snap, bytes| {
            if let Some(d) = dir {
                let path = d.join(format!("ckpt_{:04}.snap", snap.next_frame));
                std::fs::write(&path, bytes)
                    .map_err(|e| splatonic_slam::SnapshotError::Io(e.to_string()))?;
            }
            Ok(())
        })
        .expect("checkpoint sink failed");

    // Price one representative tracking iteration on every target and
    // export the stage/energy breakdowns.
    let scenario = TrackingScenario::prepare(&dataset, 1);
    for target in HardwareTarget::all() {
        let m = measure_tracking_iteration(
            &scenario,
            target.expected_pipeline(),
            slam_cfg.tracking_sampling,
            1,
        );
        let cost = {
            let _span = telemetry.span("pricing");
            target.price(&m)
        };
        cost.export_telemetry(&telemetry, &target_slug(target));
    }

    telemetry.finish(
        name,
        AccuracySummary {
            ate_cm: result.ate_cm,
            psnr_db: result.psnr_db,
            frames: result.frames,
            scene_size: result.scene_size,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatonic::telemetry::json;

    #[test]
    fn target_slugs_are_clean() {
        assert_eq!(target_slug(HardwareTarget::SplatonicHw), "hw/splatonic-hw");
        assert_eq!(target_slug(HardwareTarget::GpuTile), "hw/gpu-tile-based");
    }

    #[test]
    fn instrumented_run_meets_report_contract() {
        let report = instrumented_run("bench-unit", &Settings::quick());
        let doc = json::parse(&report.to_json_string()).expect("report must be valid JSON");

        // Per-span timing for tracking and mapping.
        let spans = doc.get("spans").expect("spans section");
        for path in [
            "tracking",
            "tracking/forward",
            "mapping",
            "mapping/backward",
        ] {
            assert!(spans.get(path).is_some(), "missing span {path}");
        }
        // Merged forward/backward workload counters.
        let counters = doc.get("counters").expect("counters section");
        for name in [
            "tracking/forward/pairs_integrated",
            "tracking/backward/atomic_adds",
            "mapping/forward/pixels_shaded",
            "slam/checkpoints_written",
        ] {
            assert!(counters.get(name).is_some(), "missing counter {name}");
        }
        assert!(spans.get("checkpoint").is_some(), "missing checkpoint span");
        assert!(
            doc.get("gauges")
                .unwrap()
                .get("slam/snapshot_bytes")
                .and_then(|v| v.as_f64())
                .is_some_and(|v| v > 0.0),
            "missing slam/snapshot_bytes gauge"
        );
        // Per-frame array with accuracy trajectory.
        let frames = doc.get("frames").expect("frames section").as_arr().unwrap();
        assert!(!frames.is_empty());
        for f in frames {
            assert!(f.get("psnr_db").is_some());
            assert!(f.get("ate_so_far_cm").is_some());
        }
        // Hardware gauges for every target.
        let gauges = doc.get("gauges").expect("gauges section");
        for target in HardwareTarget::all() {
            let key = format!("{}/seconds", target_slug(target));
            assert!(gauges.get(&key).is_some(), "missing gauge {key}");
        }
        assert!(doc
            .get("accuracy")
            .unwrap()
            .get("ate_cm")
            .unwrap()
            .as_f64()
            .is_some());
    }
}
