//! Fault-injection harness for the checkpoint/resume subsystem
//! (DESIGN.md §12; driven by `scripts/fault_inject.sh`).
//!
//! Usage:
//!   fault_inject run     --dir D --kill-at K [--checkpoint-every C]
//!   fault_inject resume  --dir D
//!   fault_inject corrupt --dir D
//!
//! `run` and `resume` additionally accept `--trace-out <path>` (Chrome
//! trace-event JSON; in `run` mode it is written just before the simulated
//! crash) and `--events-out <path>` (JSONL event stream, flushed per line —
//! so the stream written up to the kill point survives the crash, which is
//! the whole point of a live-tailing format).
//!
//! `run` executes SLAM frame by frame, writing a snapshot to `--dir` on the
//! checkpoint cadence, then simulates a crash by exiting with code 21
//! immediately after frame `K` — no finalize, no cleanup. `resume` loads the
//! newest snapshot from `--dir`, continues to completion, replays an
//! uninterrupted run in-process, and fails (exit 1) unless the estimated
//! poses, ATE, PSNR, and both workload traces are **bitwise** identical.
//! `corrupt` mutates the newest snapshot four ways (payload flip, truncation,
//! magic, version) and checks each is rejected with the right typed error.
//!
//! All modes build the same fixed quick-settings dataset, so the comparison
//! in `resume` is self-contained; thread width comes from the standard
//! `SPLATONIC_THREADS` resolution and must not affect any compared value.

use splatonic_bench::Settings;
use splatonic_math::Pose;
use splatonic_slam::prelude::*;
use splatonic_slam::snapshot::HEADER_LEN;
use splatonic_telemetry::{Telemetry, TraceSession};
use std::path::{Path, PathBuf};
use std::process::exit;

/// Trace/event export options shared by the `run` and `resume` modes.
#[derive(Default)]
struct TraceFlags {
    trace_out: Option<PathBuf>,
    events_out: Option<PathBuf>,
}

impl TraceFlags {
    fn parse(args: &[String]) -> TraceFlags {
        TraceFlags {
            trace_out: arg_value(args, "--trace-out").map(PathBuf::from),
            events_out: arg_value(args, "--events-out").map(PathBuf::from),
        }
    }

    fn any(&self) -> bool {
        self.trace_out.is_some() || self.events_out.is_some()
    }

    /// Enabled telemetry (with the event stream attached) plus a trace
    /// session when exports were requested; disabled telemetry otherwise.
    fn telemetry(&self) -> (Telemetry, Option<TraceSession>) {
        if !self.any() {
            return (Telemetry::disabled(), None);
        }
        let telemetry = Telemetry::enabled();
        if let Some(path) = &self.events_out {
            let file = std::fs::File::create(path).unwrap_or_else(|e| {
                eprintln!("[fault_inject] failed to create {}: {e}", path.display());
                exit(1);
            });
            telemetry.stream_events_to(Box::new(std::io::BufWriter::new(file)));
        }
        let session = self.trace_out.as_ref().map(|_| TraceSession::begin());
        (telemetry, session)
    }

    fn write_trace(&self, telemetry: &Telemetry, session: &Option<TraceSession>) {
        if let (Some(path), Some(session)) = (&self.trace_out, session) {
            if let Err(e) = telemetry.write_chrome_trace(session, path) {
                eprintln!("[fault_inject] failed to write {}: {e}", path.display());
                exit(1);
            }
            eprintln!("[fault_inject] trace written to {}", path.display());
        }
    }
}

/// Exit code the `run` mode uses for the simulated crash; the shell harness
/// asserts it to distinguish the planned kill from a real failure.
const KILL_EXIT_CODE: u8 = 21;

fn dataset() -> Dataset {
    Dataset::replica_like("fault-room", 7, Settings::quick().dataset_config())
}

fn config(checkpoint_every: usize) -> SlamConfig {
    let mut cfg = SlamConfig::splatonic(AlgorithmConfig::default());
    cfg.checkpoint_every = checkpoint_every;
    cfg
}

fn snapshot_path(dir: &Path, next_frame: usize) -> PathBuf {
    dir.join(format!("ckpt_{next_frame:04}.snap"))
}

/// Newest snapshot in `dir` (highest frame number in the file name).
fn latest_snapshot(dir: &Path) -> Option<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "snap"))
        .collect();
    paths.sort();
    paths.pop()
}

fn pose_bits(p: &Pose) -> Vec<u64> {
    let mut v: Vec<u64> = p.rotation.m.iter().map(|x| x.to_bits()).collect();
    v.extend([
        p.translation.x.to_bits(),
        p.translation.y.to_bits(),
        p.translation.z.to_bits(),
    ]);
    v
}

fn run_mode(dir: &Path, kill_at: usize, checkpoint_every: usize, flags: &TraceFlags) {
    std::fs::create_dir_all(dir).expect("create snapshot dir");
    let d = dataset();
    assert!(
        kill_at < d.len(),
        "--kill-at {kill_at} out of range (dataset has {} frames)",
        d.len()
    );
    let mut sys = SlamSystem::new(config(checkpoint_every), d.intrinsics);
    let (telemetry, trace_session) = flags.telemetry();
    while let Some(t) = sys.step_frame(&d, &telemetry) {
        if t.is_multiple_of(checkpoint_every) {
            let snap = sys.checkpoint();
            let path = snapshot_path(dir, snap.next_frame);
            snap.write_file(&path).expect("write snapshot");
            eprintln!(
                "[fault_inject] checkpoint after frame {t} -> {}",
                path.display()
            );
        }
        if t == kill_at {
            eprintln!("[fault_inject] simulated crash after frame {t} (exit {KILL_EXIT_CODE})");
            // The trace must be serialized before the kill — a crash runs no
            // destructors. The JSONL stream needs nothing: it is flushed per
            // line, so everything up to this frame is already on disk.
            flags.write_trace(&telemetry, &trace_session);
            exit(KILL_EXIT_CODE as i32);
        }
    }
    unreachable!("kill-at frame must be reached before the dataset ends");
}

fn resume_mode(dir: &Path, flags: &TraceFlags) {
    let path = latest_snapshot(dir).unwrap_or_else(|| {
        eprintln!("[fault_inject] no snapshot found in {}", dir.display());
        exit(1);
    });
    let snap = Snapshot::read_file(&path).expect("snapshot must decode");
    let d = dataset();
    eprintln!(
        "[fault_inject] resuming from {} (next frame {})",
        path.display(),
        snap.next_frame
    );
    let mut resumed = SlamSystem::resume(config(0), d.intrinsics, &d, &snap)
        .expect("snapshot must resume under the original config");
    let (telemetry, trace_session) = flags.telemetry();
    let r = resumed.run_with_telemetry(&d, &telemetry);

    let mut uninterrupted = SlamSystem::new(config(0), d.intrinsics);
    let full = uninterrupted.run(&d);

    let mut failures = 0u32;
    let mut check = |what: &str, ok: bool| {
        if ok {
            eprintln!("[fault_inject] OK  {what}");
        } else {
            eprintln!("[fault_inject] FAIL {what}");
            failures += 1;
        }
    };
    let poses_match = full.est_poses.len() == r.est_poses.len()
        && full
            .est_poses
            .iter()
            .zip(r.est_poses.iter())
            .all(|(a, b)| pose_bits(a) == pose_bits(b));
    check("est_poses bitwise", poses_match);
    check(
        "ate_cm bitwise",
        full.ate_cm.to_bits() == r.ate_cm.to_bits(),
    );
    check(
        "psnr_db bitwise",
        full.psnr_db.to_bits() == r.psnr_db.to_bits(),
    );
    check("tracking_trace", full.tracking_trace == r.tracking_trace);
    check("mapping_trace", full.mapping_trace == r.mapping_trace);
    check("scene_size", full.scene_size == r.scene_size);
    check(
        "iteration counts",
        full.tracking_iters == r.tracking_iters && full.mapping_iters == r.mapping_iters,
    );
    if failures > 0 {
        eprintln!("[fault_inject] resumed run diverged ({failures} mismatches)");
        exit(1);
    }
    flags.write_trace(&telemetry, &trace_session);
    println!(
        "fault_inject resume: bitwise identical (ate {:.4} cm, psnr {:.2} dB, {} frames)",
        r.ate_cm, r.psnr_db, r.frames
    );
}

fn corrupt_mode(dir: &Path) {
    let path = latest_snapshot(dir).unwrap_or_else(|| {
        eprintln!("[fault_inject] no snapshot found in {}", dir.display());
        exit(1);
    });
    let bytes = std::fs::read(&path).expect("read snapshot");
    Snapshot::from_bytes(&bytes).expect("pristine snapshot must decode");

    let mut failures = 0u32;
    let mut expect = |what: &str, mutated: Vec<u8>, matches: &dyn Fn(&SnapshotError) -> bool| {
        match Snapshot::from_bytes(&mutated) {
            Err(ref e) if matches(e) => eprintln!("[fault_inject] OK  {what}: {e}"),
            Err(e) => {
                eprintln!("[fault_inject] FAIL {what}: wrong error {e}");
                failures += 1;
            }
            Ok(_) => {
                eprintln!("[fault_inject] FAIL {what}: corrupted snapshot accepted");
                failures += 1;
            }
        }
    };

    // Flip one byte in the middle of the payload: checksum must catch it.
    let mut flipped = bytes.clone();
    let mid = HEADER_LEN + (flipped.len() - HEADER_LEN) / 2;
    flipped[mid] ^= 0xFF;
    expect("payload byte flip", flipped, &|e| {
        matches!(e, SnapshotError::ChecksumMismatch { .. })
    });

    // Drop the tail: truncation must be reported before any decode.
    expect(
        "truncated payload",
        bytes[..bytes.len() - 7].to_vec(),
        &|e| matches!(e, SnapshotError::Truncated { .. }),
    );

    // Clobber the magic.
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0x55;
    expect("bad magic", bad_magic, &|e| {
        matches!(e, SnapshotError::BadMagic)
    });

    // Bump the format version (little-endian u32 right after the magic).
    let mut future = bytes.clone();
    future[8] = future[8].wrapping_add(1);
    expect("unsupported version", future, &|e| {
        matches!(e, SnapshotError::UnsupportedVersion(_))
    });

    if failures > 0 {
        exit(1);
    }
    println!("fault_inject corrupt: all 4 corruptions rejected with typed errors");
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires an argument");
            exit(2);
        })
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("");
    let dir = arg_value(&args, "--dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            eprintln!("--dir is required");
            exit(2);
        });
    match mode {
        "run" => {
            let kill_at: usize = arg_value(&args, "--kill-at")
                .unwrap_or_else(|| {
                    eprintln!("run mode requires --kill-at");
                    exit(2);
                })
                .parse()
                .expect("--kill-at must be an integer");
            let every: usize = arg_value(&args, "--checkpoint-every")
                .unwrap_or_else(|| "2".to_string())
                .parse()
                .expect("--checkpoint-every must be an integer");
            assert!(every > 0, "--checkpoint-every must be positive");
            run_mode(&dir, kill_at, every, &TraceFlags::parse(&args));
        }
        "resume" => resume_mode(&dir, &TraceFlags::parse(&args)),
        "corrupt" => corrupt_mode(&dir),
        other => {
            eprintln!("unknown mode {other:?}; expected run | resume | corrupt");
            exit(2);
        }
    }
}
