//! Regenerates the SPLATONIC paper's tables and figures.
//!
//! Usage:
//!   figures all [--quick]
//!   figures fig10 fig22 [--quick]
//!   figures --list
//!   figures --report BENCH_smoke.json [--quick]
//!   figures --report out.json --checkpoint-every 4 --checkpoint-dir snaps/
//!
//! `--report <path>` runs a fully-instrumented SLAM pass plus hardware
//! pricing and writes a machine-readable run report (spans, workload
//! counters, per-frame accuracy trajectory) to `<path>`. Experiment ids may
//! be combined with it; with `--report` alone, only the report is produced.
//!
//! `--checkpoint-every N` overrides the report run's checkpoint cadence and
//! `--checkpoint-dir D` additionally writes each snapshot to `D` (one
//! `ckpt_<frame>.snap` per cut) instead of keeping them in memory.

use splatonic_bench::{report, run_experiment, Settings, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let settings = if quick {
        Settings::quick()
    } else {
        Settings::full()
    };
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{flag} requires an argument");
                std::process::exit(2);
            })
        })
    };
    let report_path = flag_value("--report");
    let checkpoint_every: usize = flag_value("--checkpoint-every")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--checkpoint-every requires an integer");
                std::process::exit(2);
            })
        })
        .unwrap_or(4);
    let checkpoint_dir = flag_value("--checkpoint-dir").map(std::path::PathBuf::from);
    let mut ids: Vec<&str> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if ["--report", "--checkpoint-every", "--checkpoint-dir"].contains(&a.as_str()) {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .map(String::as_str)
            .collect()
    };
    if ids.contains(&"all") || (ids.is_empty() && report_path.is_none()) {
        ids = EXPERIMENTS.to_vec();
    }
    for id in ids {
        let start = std::time::Instant::now();
        eprintln!("[figures] running {id}...");
        for table in run_experiment(id, &settings) {
            println!("{table}");
        }
        eprintln!(
            "[figures] {id} done in {:.1}s",
            start.elapsed().as_secs_f64()
        );
    }
    if let Some(path) = report_path {
        let start = std::time::Instant::now();
        eprintln!("[figures] running instrumented report pass...");
        let name = std::path::Path::new(&path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("bench")
            .to_string();
        let run = report::instrumented_run_with_checkpoints(
            &name,
            &settings,
            checkpoint_every,
            checkpoint_dir.as_deref(),
        );
        print!("{}", run.to_text());
        if let Err(e) = run.write_json_file(std::path::Path::new(&path)) {
            eprintln!("[figures] failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "[figures] report written to {path} in {:.1}s",
            start.elapsed().as_secs_f64()
        );
    }
}
