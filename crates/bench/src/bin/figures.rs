//! Regenerates the SPLATONIC paper's tables and figures.
//!
//! Usage:
//!   figures all [--quick]
//!   figures fig10 fig22 [--quick]
//!   figures --list
//!   figures --report BENCH_smoke.json [--quick]
//!
//! `--report <path>` runs a fully-instrumented SLAM pass plus hardware
//! pricing and writes a machine-readable run report (spans, workload
//! counters, per-frame accuracy trajectory) to `<path>`. Experiment ids may
//! be combined with it; with `--report` alone, only the report is produced.

use splatonic_bench::{report, run_experiment, Settings, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let settings = if quick {
        Settings::quick()
    } else {
        Settings::full()
    };
    let report_path = args.iter().position(|a| a == "--report").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--report requires a path argument");
            std::process::exit(2);
        })
    });
    let mut ids: Vec<&str> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if *a == "--report" {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .map(String::as_str)
            .collect()
    };
    if ids.contains(&"all") || (ids.is_empty() && report_path.is_none()) {
        ids = EXPERIMENTS.to_vec();
    }
    for id in ids {
        let start = std::time::Instant::now();
        eprintln!("[figures] running {id}...");
        for table in run_experiment(id, &settings) {
            println!("{table}");
        }
        eprintln!(
            "[figures] {id} done in {:.1}s",
            start.elapsed().as_secs_f64()
        );
    }
    if let Some(path) = report_path {
        let start = std::time::Instant::now();
        eprintln!("[figures] running instrumented report pass...");
        let name = std::path::Path::new(&path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("bench")
            .to_string();
        let run = report::instrumented_run(&name, &settings);
        print!("{}", run.to_text());
        if let Err(e) = run.write_json_file(std::path::Path::new(&path)) {
            eprintln!("[figures] failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "[figures] report written to {path} in {:.1}s",
            start.elapsed().as_secs_f64()
        );
    }
}
