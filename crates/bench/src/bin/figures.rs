//! Regenerates the SPLATONIC paper's tables and figures.
//!
//! Usage:
//!   figures all [--quick]
//!   figures fig10 fig22 [--quick]
//!   figures --list
//!   figures --report BENCH_smoke.json [--quick]
//!   figures --report out.json --checkpoint-every 4 --checkpoint-dir snaps/
//!   figures --trace-out trace.json --events-out events.jsonl [--quick]
//!
//! `--report <path>` runs a fully-instrumented SLAM pass plus hardware
//! pricing and writes a machine-readable run report (spans, workload
//! counters, per-frame accuracy trajectory) to `<path>`. Experiment ids may
//! be combined with it; with `--report` alone, only the report is produced.
//!
//! `--checkpoint-every N` overrides the report run's checkpoint cadence and
//! `--checkpoint-dir D` additionally writes each snapshot to `D` (one
//! `ckpt_<frame>.snap` per cut) instead of keeping them in memory.
//!
//! `--trace-out <path>` writes a Chrome trace-event JSON of the
//! instrumented pass (open in Perfetto or `chrome://tracing`) and
//! `--events-out <path>` streams a JSONL event log (one record per span,
//! frame, counter — flushed per line, so `tail -f` follows the run live).
//! Either flag triggers the instrumented pass even without `--report`.
//!
//! `--plan <file>` executes a headless multi-step plan (run → checkpoint →
//! export `.ply` → decimate → re-import → re-evaluate PSNR; see
//! `crates/bench/src/plan.rs` for the schema and `plans/roundtrip.json`
//! for the committed CI smoke plan). Artifacts land in `--plan-dir <dir>`
//! (default: a per-process temp directory). Any failed plan assertion
//! exits nonzero.

use splatonic_bench::{plan, report, run_experiment, Settings, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let settings = if quick {
        Settings::quick()
    } else {
        Settings::full()
    };
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{flag} requires an argument");
                std::process::exit(2);
            })
        })
    };
    let report_path = flag_value("--report");
    let checkpoint_every: usize = flag_value("--checkpoint-every")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--checkpoint-every requires an integer");
                std::process::exit(2);
            })
        })
        .unwrap_or(4);
    let checkpoint_dir = flag_value("--checkpoint-dir").map(std::path::PathBuf::from);
    let trace_out = flag_value("--trace-out").map(std::path::PathBuf::from);
    let events_out = flag_value("--events-out").map(std::path::PathBuf::from);
    let plan_path = flag_value("--plan").map(std::path::PathBuf::from);
    let plan_dir = flag_value("--plan-dir").map(std::path::PathBuf::from);
    let instrument = report_path.is_some() || trace_out.is_some() || events_out.is_some();
    let mut ids: Vec<&str> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if [
                    "--report",
                    "--checkpoint-every",
                    "--checkpoint-dir",
                    "--trace-out",
                    "--events-out",
                    "--plan",
                    "--plan-dir",
                ]
                .contains(&a.as_str())
                {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .map(String::as_str)
            .collect()
    };
    if ids.contains(&"all") || (ids.is_empty() && !instrument && plan_path.is_none()) {
        ids = EXPERIMENTS.to_vec();
    }
    for id in ids {
        let start = std::time::Instant::now();
        eprintln!("[figures] running {id}...");
        for table in run_experiment(id, &settings) {
            println!("{table}");
        }
        eprintln!(
            "[figures] {id} done in {:.1}s",
            start.elapsed().as_secs_f64()
        );
    }
    if instrument {
        let start = std::time::Instant::now();
        eprintln!("[figures] running instrumented report pass...");
        let name = report_path
            .as_deref()
            .and_then(|p| std::path::Path::new(p).file_stem())
            .and_then(|s| s.to_str())
            .unwrap_or("bench")
            .to_string();
        let run = report::instrumented_run_with_options(
            &name,
            &settings,
            &report::InstrumentOptions {
                checkpoint_every,
                checkpoint_dir,
                trace_out: trace_out.clone(),
                events_out: events_out.clone(),
            },
        );
        print!("{}", run.to_text());
        if let Some(path) = &report_path {
            if let Err(e) = run.write_json_file(std::path::Path::new(path)) {
                eprintln!("[figures] failed to write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("[figures] report written to {path}");
        }
        if let Some(path) = &trace_out {
            eprintln!("[figures] trace written to {}", path.display());
        }
        if let Some(path) = &events_out {
            eprintln!("[figures] events written to {}", path.display());
        }
        eprintln!(
            "[figures] instrumented pass done in {:.1}s",
            start.elapsed().as_secs_f64()
        );
    }
    if let Some(path) = &plan_path {
        let start = std::time::Instant::now();
        let dir = plan_dir.unwrap_or_else(|| {
            std::env::temp_dir().join(format!("splatonic-plan-{}", std::process::id()))
        });
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("[figures] cannot create plan dir {}: {e}", dir.display());
            std::process::exit(1);
        }
        eprintln!(
            "[figures] running plan {} (artifacts in {})...",
            path.display(),
            dir.display()
        );
        match plan::run_plan_file(path, &settings, &dir) {
            Ok(outcome) => {
                for line in &outcome.log {
                    println!("[plan {}] {line}", outcome.name);
                }
                eprintln!(
                    "[figures] plan {} done in {:.1}s",
                    outcome.name,
                    start.elapsed().as_secs_f64()
                );
            }
            Err(e) => {
                eprintln!("[figures] plan failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
