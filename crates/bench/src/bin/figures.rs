//! Regenerates the SPLATONIC paper's tables and figures.
//!
//! Usage:
//!   figures all [--quick]
//!   figures fig10 fig22 [--quick]
//!   figures --list

use splatonic_bench::{run_experiment, Settings, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let settings = if quick { Settings::quick() } else { Settings::full() };
    let mut ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if ids.is_empty() || ids.contains(&"all") {
        ids = EXPERIMENTS.to_vec();
    }
    for id in ids {
        let start = std::time::Instant::now();
        eprintln!("[figures] running {id}...");
        for table in run_experiment(id, &settings) {
            println!("{table}");
        }
        eprintln!("[figures] {id} done in {:.1}s", start.elapsed().as_secs_f64());
    }
}
