//! Plain timing micro-benchmarks for the hot kernels: both rendering
//! schedules (dense and sparse), the backward pass, the sampling
//! strategies, the loss, and the aggregation-unit simulation.
//!
//! These complement the `figures` binary (which regenerates the paper's
//! modelled results) by measuring the *host* implementation itself. Timing
//! uses telemetry spans (count/mean/p50/p95 per kernel), so the harness has
//! no external dependencies and builds offline.
//!
//! Usage:
//!   kernels [--iters N] [--threads N] [--report out.json]
//!           [--no-binning] [--no-cache] [--scalar | --simd]
//!           [--tile-grouping | --no-tile-grouping] [--no-sort-cache]
//!           [--trace-out trace.json] [--events-out events.jsonl]
//!
//! `--trace-out` writes a Chrome trace-event JSON (Perfetto-loadable) of
//! the whole run; `--events-out` streams the span/counter records as JSONL
//! (one object per line, flushed per line).
//!
//! `--threads` sets the render worker-pool width (0 = auto: the
//! `SPLATONIC_THREADS` environment variable, then host parallelism).
//! Results are bit-identical for every value; only wall-clock changes.
//!
//! `--no-binning` / `--no-cache` disable the screen-space bin index and
//! the cross-iteration projection cache for A/B comparison — rendered
//! output is bit-identical either way, so only the timing spans and the
//! `binning/` / `cache/` gauges move.
//!
//! `--no-tile-grouping` / `--no-sort-cache` disable the tile pipeline's
//! GS-TG-style grouped depth sort and the frame-coherent sorted-list cache
//! (`--tile-grouping` re-enables grouping explicitly, for symmetric CI
//! invocations). Output is again bit-identical; the run's `sort/*` gauges
//! record the compared-element counts of a short tracking burst under the
//! selected schedule against the per-tile uncached baseline, so an A/B pair
//! of runs (or a single default run) quantifies the sort-work reduction.
//!
//! `--scalar` / `--simd` select the kernel mode (DESIGN.md §13). The SIMD
//! kernels are bit-identical to the scalar oracles, so this is a pure A/B
//! timing switch: the `kernel/*` micro-spans and the end-to-end
//! forward/backward spans move, nothing else. The active lane width is
//! reported as the `render/simd_lanes` gauge (1 in scalar mode or on hosts
//! without a vector unit). `scripts/bench_record.sh` runs both modes and
//! appends the pair to `BENCH_kernels.json`.

use splatonic::telemetry::{AccuracySummary, Telemetry, TraceSession};
use splatonic_accel::{AggregationConfig, DramModel, FrameWorkload, SplatonicAccel};
use splatonic_render::prelude::*;
use splatonic_render::sampling::{tracking_plan, MappingStrategy};
use splatonic_render::{loss, LossConfig, MappingSampler};
use splatonic_scene::{Camera, Intrinsics, WorldBuilder};
use splatonic_slam::dataset::{Dataset, DatasetConfig};

const W: usize = 96;
const H: usize = 72;

fn bench_scene() -> (splatonic_scene::GaussianScene, Camera) {
    let world = WorldBuilder::new(5)
        .gaussian_spacing(0.25)
        .furniture(3)
        .build();
    let cam = Camera::look_at(
        Intrinsics::with_fov(W, H, 1.25),
        splatonic_math::Vec3::new(0.6, -0.1, -0.4),
        splatonic_math::Vec3::new(0.0, 0.0, 2.2),
        splatonic_math::Vec3::Y,
    );
    (world.scene, cam)
}

fn sparse_set() -> PixelSet {
    PixelSet::from_tile_chooser(W, H, 16, |_, _, x0, y0, tw, th| {
        Some(splatonic_render::pixelset::PixelCoord::new(
            (x0 + tw / 2) as u16,
            (y0 + th / 2) as u16,
        ))
    })
}

fn bench_dataset(name: &str, frames: usize) -> Dataset {
    Dataset::replica_like(
        name,
        9,
        DatasetConfig {
            width: W,
            height: H,
            frames,
            spacing: 0.3,
            fov: 1.25,
            furniture: 2,
            depth_dropout_coverage: 0.9,
        },
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let iters: usize = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let report_path = args
        .iter()
        .position(|a| a == "--report")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let binning = !args.iter().any(|a| a == "--no-binning");
    let cache = !args.iter().any(|a| a == "--no-cache");
    let tile_grouping = !args.iter().any(|a| a == "--no-tile-grouping");
    let sort_cache = !args.iter().any(|a| a == "--no-sort-cache");
    let mode = if args.iter().any(|a| a == "--scalar") {
        splatonic_render::KernelMode::Scalar
    } else {
        splatonic_render::KernelMode::Simd
    };
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let events_out = args
        .iter()
        .position(|a| a == "--events-out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let t = Telemetry::enabled();
    if let Some(path) = &events_out {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("[kernels] failed to create {}: {e}", path.display());
            std::process::exit(1);
        });
        t.stream_events_to(Box::new(std::io::BufWriter::new(file)));
    }
    let trace_session = trace_out.as_ref().map(|_| TraceSession::begin());
    let pool_stats_before = splatonic::pool::worker_stats_snapshot();

    // Forward kernels: schedule × density.
    let (scene, cam) = bench_scene();
    let cfg = RenderConfig {
        threads,
        binning,
        cache,
        tile_grouping,
        sort_cache,
        kernels: mode,
        ..RenderConfig::default()
    };
    let lanes = if mode.simd_active() {
        splatonic_render::simd::lanes()
    } else {
        1
    };
    t.gauge_set("render/simd_lanes", lanes as f64);
    eprintln!("[kernels] kernel mode: {} ({lanes} lane(s))", mode.label());
    let dense = PixelSet::dense(W, H);
    let sparse = sparse_set();
    let forward_cases: [(&str, Pipeline, &PixelSet); 4] = [
        ("tile_dense", Pipeline::TileBased, &dense),
        ("pixel_dense", Pipeline::PixelBased, &dense),
        ("tile_sparse16", Pipeline::TileBased, &sparse),
        ("pixel_sparse16", Pipeline::PixelBased, &sparse),
    ];
    for (name, pipeline, pixels) in forward_cases {
        let _outer = t.span("forward");
        for _ in 0..iters {
            let _span = t.span(name);
            std::hint::black_box(render_forward(&scene, &cam, pixels, pipeline, &cfg));
        }
    }

    // A/B candidate-evaluation accounting on the sparse pixel schedule:
    // with binning every sampled pixel walks only its bin's candidate list
    // (`bin_candidates`), without it every pixel considers every projected
    // Gaussian (`gaussians_input × pixels`). Output is bit-identical.
    {
        let out = render_forward(&scene, &cam, &sparse, Pipeline::PixelBased, &cfg);
        let naive = out.trace.forward.gaussians_input * sparse.len() as u64;
        let binned = out.trace.forward.bin_candidates;
        t.gauge_set("binning/naive_candidates", naive as f64);
        t.gauge_set("binning/bin_candidates", binned as f64);
        if binned > 0 {
            let reduction = naive as f64 / binned as f64;
            t.gauge_set("binning/candidate_reduction", reduction);
            eprintln!(
                "[kernels] pixel_sparse16 candidate evaluations: \
                 exhaustive {naive} vs binned {binned} ({reduction:.1}x reduction)"
            );
        } else {
            eprintln!(
                "[kernels] pixel_sparse16 candidate evaluations: \
                 exhaustive {naive} (binning disabled)"
            );
        }
        let cache_stats = splatonic_render::projcache::stats();
        t.gauge_set("cache/hits", cache_stats.hits as f64);
        t.gauge_set("cache/misses", cache_stats.misses as f64);
        t.gauge_set("cache/invalidations", cache_stats.invalidations as f64);
    }

    // A/B sorted-tile-list accounting on the tile schedule: a short
    // tracking burst (4 nearby poses × 2 Adam iterations, forward +
    // backward) under the selected grouping/sort-cache knobs, against the
    // per-tile uncached baseline. The backward pass rebuilds the identical
    // sorted lists, so every uncached pass is charged twice (fwd + bwd);
    // with the frame-coherent cache the backward (and repeat iterations)
    // replay the forward result, so `sort/realized_elems` counts only the
    // elements actually scattered cold or adaptively re-merged. Output is
    // bit-identical across all four knob combinations.
    {
        const POSES: usize = 4;
        const ITERS_PER_POSE: usize = 2;
        let pose_cam = |i: usize| {
            Camera::look_at(
                Intrinsics::with_fov(W, H, 1.25),
                splatonic_math::Vec3::new(0.6 + 0.01 * i as f64, -0.1, -0.4),
                splatonic_math::Vec3::new(0.0, 0.0, 2.2),
                splatonic_math::Vec3::Y,
            )
        };
        let grads = vec![
            loss::LossGrad {
                d_color: splatonic_math::Vec3::splat(0.1),
                d_depth: 0.05,
            };
            sparse.len()
        ];

        // Baseline schedule: per-tile sorts, no reuse — each of the
        // 2 × POSES × ITERS_PER_POSE passes sorts every tile list cold.
        let naive_cfg = RenderConfig {
            tile_grouping: false,
            sort_cache: false,
            ..cfg
        };
        let mut naive_elems = 0u64;
        for p in 0..POSES {
            let camp = pose_cam(p);
            let out = render_forward(&scene, &camp, &sparse, Pipeline::TileBased, &naive_cfg);
            naive_elems += out.trace.forward.sort_elems * 2 * ITERS_PER_POSE as u64;
        }

        // Selected schedule, realized: run the full burst and read the
        // side-band cache stats.
        splatonic_render::tilesort::clear();
        let sort_before = splatonic_render::tilesort::stats();
        let mut sched_elems = 0u64;
        let mut group_reuse = 0u64;
        let _outer = t.span("sort_ab");
        for p in 0..POSES {
            let camp = pose_cam(p);
            for _ in 0..ITERS_PER_POSE {
                let _span = t.span("tile_sparse16_iter");
                let out = render_forward(&scene, &camp, &sparse, Pipeline::TileBased, &cfg);
                sched_elems += out.trace.forward.sort_elems * 2;
                group_reuse += out.trace.forward.sort_group_reuse;
                std::hint::black_box(render_backward(
                    &scene,
                    &camp,
                    &sparse,
                    &out,
                    &grads,
                    Pipeline::TileBased,
                    &cfg,
                ));
            }
        }
        let s = splatonic_render::tilesort::stats().since(&sort_before);
        let realized = if sort_cache {
            s.cold_elems + s.merged_elems
        } else {
            sched_elems
        };
        t.gauge_set("sort/naive_elems", naive_elems as f64);
        t.gauge_set("sort/sched_elems", sched_elems as f64);
        t.gauge_set("sort/realized_elems", realized as f64);
        t.gauge_set("sort/group_reuse", group_reuse as f64);
        t.gauge_set("sort/hits", s.hits as f64);
        t.gauge_set("sort/misses", s.misses as f64);
        t.gauge_set("sort/merges", s.merges as f64);
        let reduction = naive_elems as f64 / realized.max(1) as f64;
        t.gauge_set("sort/elems_reduction", reduction);
        eprintln!(
            "[kernels] tile sort burst: per-tile uncached {naive_elems} elems \
             vs realized {realized} ({reduction:.1}x reduction; grouping {}, cache {})",
            if tile_grouping { "on" } else { "off" },
            if sort_cache { "on" } else { "off" },
        );
    }

    // Backward kernel on the sparse pixel-based schedule.
    {
        let out = render_forward(&scene, &cam, &sparse, Pipeline::PixelBased, &cfg);
        let grads = vec![
            loss::LossGrad {
                d_color: splatonic_math::Vec3::splat(0.1),
                d_depth: 0.05,
            };
            sparse.len()
        ];
        let _outer = t.span("backward");
        for _ in 0..iters {
            let _span = t.span("pixel_sparse16");
            std::hint::black_box(render_backward(
                &scene,
                &cam,
                &sparse,
                &out,
                &grads,
                Pipeline::PixelBased,
                &cfg,
            ));
        }
    }

    // Per-kernel microbenches in the selected kernel mode. Each span times
    // ONE hot kernel in isolation so `BENCH_kernels.json` records where the
    // scalar-vs-SIMD speedup comes from, not just the end-to-end delta.
    // Both modes run identical workloads (the SIMD kernels are bit-exact
    // replicas of the scalar oracles), so the span ratio IS the speedup.
    {
        use splatonic_math::{Vec2, Vec3};
        use splatonic_render::grad::{pixel_backward, CamGradAccumulator};
        use splatonic_render::kernel::{alpha_at, project_scene, sort_by_depth};
        use splatonic_render::simd::{self, ProjectedSoA};
        use splatonic_render::Contribution;

        let simd_on = cfg.kernels.simd_active();
        let (mut projected, _) = project_scene(&scene, &cam, &cfg);
        sort_by_depth(&mut projected);
        let soa = ProjectedSoA::build(&projected);
        let centers: Vec<Vec2> = dense.iter_all().map(|p| p.center()).collect();
        let px: Vec<f64> = centers.iter().map(|c| c.x).collect();
        let py: Vec<f64> = centers.iter().map(|c| c.y).collect();
        let _outer = t.span("kernel");

        // Projection: full scene → screen space.
        for _ in 0..iters {
            let _span = t.span("project");
            std::hint::black_box(project_scene(&scene, &cam, &cfg));
        }

        // α-check: one Gaussian against every dense pixel center (the
        // exhaustive-discovery shape of the pixel pipeline).
        let mut alphas: Vec<f64> = Vec::with_capacity(px.len());
        for _ in 0..iters {
            let _span = t.span("alpha_check");
            for pg in projected.iter().take(64) {
                alphas.clear();
                if simd_on {
                    simd::alpha_batch_gaussian(pg, &px, &py, &cfg, &mut alphas);
                } else {
                    for c in &centers {
                        alphas.push(alpha_at(pg, *c, &cfg).0);
                    }
                }
                std::hint::black_box(alphas.as_slice());
            }
        }

        // Compositing: one long depth-sorted list (all projected splats
        // α-evaluated at the image center), front-to-back.
        let mid = Vec2::new(W as f64 / 2.0, H as f64 / 2.0);
        let cands: Vec<u32> = (0..projected.len() as u32).collect();
        let cand_alphas: Vec<f64> = projected
            .iter()
            .map(|pg| alpha_at(pg, mid, &cfg).0)
            .collect();
        let mut contribs: Vec<Contribution> = Vec::new();
        for _ in 0..iters {
            let _span = t.span("composite");
            contribs.clear();
            let out = if simd_on {
                let (acc, tr, used) = simd::composite_pixel(
                    &cands,
                    &cand_alphas,
                    &soa,
                    cfg.transmittance_min,
                    &mut contribs,
                );
                (Vec3::new(acc[0], acc[1], acc[2]), acc[3], tr, used)
            } else {
                let mut tr = 1.0;
                let mut c = Vec3::ZERO;
                let mut d = 0.0;
                let mut used = 0usize;
                for (&pi, &alpha) in cands.iter().zip(&cand_alphas) {
                    if tr < cfg.transmittance_min {
                        break;
                    }
                    let pg = &projected[pi as usize];
                    let w = tr * alpha;
                    c += pg.color * w;
                    d += pg.depth * w;
                    contribs.push(Contribution {
                        gaussian: pg.id,
                        alpha,
                        transmittance: tr,
                    });
                    tr *= 1.0 - alpha;
                    used += 1;
                }
                (c, d, tr, used)
            };
            std::hint::black_box(out);
        }

        // Gradient: reverse color integration over every sparse pixel's
        // real contribution list from a forward pass.
        let fwd = render_forward(&scene, &cam, &sparse, Pipeline::PixelBased, &cfg);
        let mut proj_of_id: Vec<u32> = vec![u32::MAX; scene.len()];
        for (pi, pg) in projected.iter().enumerate() {
            proj_of_id[pg.id as usize] = pi as u32;
        }
        let lookup = |id: u32| projected[proj_of_id[id as usize] as usize];
        let mut accum = CamGradAccumulator::new(scene.len());
        let pixels: Vec<Vec2> = sparse.iter_all().map(|p| p.center()).collect();
        for _ in 0..iters {
            let _span = t.span("gradient");
            accum.reset(scene.len());
            for (pi, pixel) in pixels.iter().enumerate() {
                let counts = if simd_on {
                    simd::pixel_backward_simd(
                        *pixel,
                        &fwd.contributions[pi],
                        &soa,
                        &proj_of_id,
                        Vec3::splat(0.1),
                        0.05,
                        &cfg,
                        cfg.background,
                        &mut accum,
                    )
                } else {
                    pixel_backward(
                        *pixel,
                        &fwd.contributions[pi],
                        &lookup,
                        Vec3::splat(0.1),
                        0.05,
                        &cfg,
                        cfg.background,
                        &mut accum,
                    )
                };
                std::hint::black_box(counts);
            }
        }
    }

    // Sampling strategies.
    {
        let d = bench_dataset("bench", 2);
        let frame = &d.frames[0];
        let transmittance = splatonic_math::Image::filled(W, H, 0.2);
        let sampler = MappingSampler::new(4, MappingStrategy::Combined);
        let _outer = t.span("sampling");
        for _ in 0..iters {
            {
                let _span = t.span("random_per_tile16");
                std::hint::black_box(tracking_plan(
                    SamplingStrategy::RandomPerTile { tile: 16 },
                    frame,
                    1,
                    None,
                ));
            }
            {
                let _span = t.span("harris_per_tile16");
                std::hint::black_box(tracking_plan(
                    SamplingStrategy::HarrisPerTile { tile: 16 },
                    frame,
                    1,
                    None,
                ));
            }
            {
                let _span = t.span("mapping_combined_w4");
                std::hint::black_box(sampler.build(frame, &transmittance, 1));
            }
        }
    }

    // Dense loss evaluation.
    {
        let out = render_forward(&scene, &cam, &dense, Pipeline::TileBased, &cfg);
        let d = bench_dataset("bench-loss", 1);
        let _outer = t.span("loss");
        for _ in 0..iters {
            let _span = t.span("dense");
            std::hint::black_box(loss::evaluate_loss(
                &out,
                &d.frames[0],
                &dense,
                &LossConfig::default(),
            ));
        }
    }

    // Snapshot wire format: encode + decode of a mid-run checkpoint
    // (DESIGN.md §12). The scene dominates the payload, so this measures
    // the serializer against a realistically sized run state.
    {
        let d = bench_dataset("bench-snap", 4);
        let mut sys =
            splatonic_slam::SlamSystem::new(splatonic_slam::SlamConfig::default(), d.intrinsics);
        let quiet = Telemetry::disabled();
        for _ in 0..3 {
            sys.step_frame(&d, &quiet);
        }
        let snapshot = sys.checkpoint();
        let bytes = snapshot.to_bytes();
        t.gauge_set("snapshot/bytes", bytes.len() as f64);
        t.gauge_set("snapshot/gaussians", snapshot.gaussians.len() as f64);
        let _outer = t.span("snapshot");
        for _ in 0..iters {
            {
                let _span = t.span("encode");
                std::hint::black_box(snapshot.to_bytes());
            }
            {
                let _span = t.span("decode");
                std::hint::black_box(
                    splatonic_slam::Snapshot::from_bytes(&bytes).expect("snapshot decodes"),
                );
            }
        }
    }

    // Aggregation-unit simulation and full accelerator pricing.
    {
        let stream: Vec<Vec<u32>> = (0..2000u32)
            .map(|p| (0..16u32).map(|k| (p / 4) * 8 + k * 37 % 4000).collect())
            .collect();
        let dram = DramModel::lpddr3_1600_x4();
        let workload = FrameWorkload {
            gaussians: 4000,
            projected: 3000,
            proj_candidates: vec![4; 3000],
            pairs_kept: 960,
            pixel_lists: vec![20; 48],
            grad_stream: (0..48u32)
                .map(|p| (0..20u32).map(|k| (p * 37 + k * 113) % 4000).collect())
                .collect(),
            fwd_bytes: 300_000,
            bwd_bytes: 50_000,
            pixels: 48,
            ..FrameWorkload::default()
        };
        let _outer = t.span("accel");
        for _ in 0..iters {
            {
                let _span = t.span("aggregation_unit");
                std::hint::black_box(splatonic_accel::aggregation::simulate(
                    &stream,
                    &AggregationConfig::paper(),
                    &dram,
                    500e6,
                ));
            }
            {
                let _span = t.span("price_sparse_iteration");
                std::hint::black_box(SplatonicAccel::paper().price(&workload));
            }
        }
    }

    t.gauge_set(
        "pool/threads",
        splatonic::pool::resolve_threads(threads) as f64,
    );
    t.record_pool_workers(&pool_stats_before);
    let report = t.finish("kernels", AccuracySummary::default());
    print!("{}", report.to_text());
    if let Some(path) = report_path {
        if let Err(e) = report.write_json_file(std::path::Path::new(&path)) {
            eprintln!("[kernels] failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[kernels] report written to {path}");
    }
    if let (Some(path), Some(session)) = (&trace_out, &trace_session) {
        if let Err(e) = t.write_chrome_trace(session, path) {
            eprintln!("[kernels] failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("[kernels] trace written to {}", path.display());
    }
}
