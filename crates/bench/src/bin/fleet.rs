//! Multi-session SLAM serving driver (DESIGN.md §15; the fleet smoke in
//! `scripts/verify.sh` and CI).
//!
//! Usage:
//!   fleet [--sessions K] [--frames N] [--queue-cap Q] [--max-resident M]
//!         [--threads N] [--quick] [--report out.json] [--trace-out out.json]
//!         [--no-verify]
//!
//! Builds K synthetic RGB-D sequences, serves them through one
//! [`SessionManager`] — producers ingest round-robin through the bounded
//! per-session queues, the manager schedules one frame per step fairly —
//! and finalizes every session. `--max-resident` defaults to K−1 so the
//! run always exercises at least one snapshot eviction/resume cycle.
//!
//! Unless `--no-verify` is given, every served session is then replayed as
//! a plain sequential [`SlamSystem::run`] and compared **bitwise**
//! (poses, ATE, PSNR, iteration traces, scene size); any divergence exits 1.
//! This is the serving layer's core promise: interleaving K sessions over
//! the shared worker pool, with eviction in the middle, is invisible in
//! the results.
//!
//! `--report` writes a fleet-level JSON report: aggregate `serve/*`
//! counters, per-session frame counts and cache hits, aggregate
//! frames/sec, and each session's p95 track/map latency (from its own
//! telemetry — per-session accounting stays exact under concurrency).
//! `--trace-out` writes one merged Chrome trace with a process group per
//! session (`scripts/check_trace.py` validates it).

use splatonic_bench::Settings;
use splatonic_math::Pose;
use splatonic_slam::prelude::*;
use splatonic_slam::serve::{ServeConfig, ServeError, SessionManager, SessionOutcome};
use splatonic_telemetry::{AccuracySummary, Telemetry, TraceSession};
use std::path::PathBuf;
use std::process::exit;
use std::time::Instant;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires an argument");
            exit(2);
        })
    })
}

fn arg_usize(args: &[String], flag: &str) -> Option<usize> {
    arg_value(args, flag).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{flag} expects an unsigned integer, got {v}");
            exit(2);
        })
    })
}

fn pose_bits(p: &Pose) -> Vec<u64> {
    let mut v: Vec<u64> = p.rotation.m.iter().map(|x| x.to_bits()).collect();
    v.extend([
        p.translation.x.to_bits(),
        p.translation.y.to_bits(),
        p.translation.z.to_bits(),
    ]);
    v
}

/// Bitwise comparison of a served session against its sequential replay;
/// returns the number of mismatched facets (0 = identical).
fn compare(name: &str, served: &SlamResult, sequential: &SlamResult) -> u32 {
    let mut failures = 0;
    let mut check = |what: &str, ok: bool| {
        if ok {
            eprintln!("[fleet] OK  {name}: {what}");
        } else {
            eprintln!("[fleet] FAIL {name}: {what}");
            failures += 1;
        }
    };
    let poses_match = sequential.est_poses.len() == served.est_poses.len()
        && sequential
            .est_poses
            .iter()
            .zip(served.est_poses.iter())
            .all(|(a, b)| pose_bits(a) == pose_bits(b));
    check("est_poses bitwise", poses_match);
    check(
        "ate_cm bitwise",
        sequential.ate_cm.to_bits() == served.ate_cm.to_bits(),
    );
    check(
        "psnr_db bitwise",
        sequential.psnr_db.to_bits() == served.psnr_db.to_bits(),
    );
    check(
        "tracking_trace",
        sequential.tracking_trace == served.tracking_trace,
    );
    check(
        "mapping_trace",
        sequential.mapping_trace == served.mapping_trace,
    );
    check("scene_size", sequential.scene_size == served.scene_size);
    check(
        "iteration counts",
        sequential.tracking_iters == served.tracking_iters
            && sequential.mapping_iters == served.mapping_iters,
    );
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sessions = arg_usize(&args, "--sessions").unwrap_or(4);
    let queue_cap = arg_usize(&args, "--queue-cap").unwrap_or(4);
    // K−1 resident by default: the fleet always exercises eviction/resume.
    let max_resident = arg_usize(&args, "--max-resident").unwrap_or(sessions.saturating_sub(1));
    let threads = arg_usize(&args, "--threads").unwrap_or(0);
    let verify = !args.iter().any(|a| a == "--no-verify");
    let settings = if args.iter().any(|a| a == "--quick") {
        Settings::quick()
    } else {
        Settings::full()
    };
    let report_out = arg_value(&args, "--report").map(PathBuf::from);
    let trace_out = arg_value(&args, "--trace-out").map(PathBuf::from);
    assert!(sessions > 0, "--sessions must be >= 1");

    let mut dataset_config = settings.dataset_config();
    if let Some(frames) = arg_usize(&args, "--frames") {
        dataset_config.frames = frames;
    }
    let mut config = SlamConfig::splatonic(AlgorithmConfig::default());
    config.render.threads = threads;

    // K distinct worlds: different seeds, same schedule — the adversarial
    // case for shared state, since sessions look alike but diverge in data.
    let datasets: Vec<Dataset> = (0..sessions)
        .map(|i| Dataset::replica_like(&format!("fleet-{i}"), 100 + i as u64, dataset_config))
        .collect();

    let evict_dir = std::env::temp_dir().join(format!("splatonic-fleet-{}", std::process::id()));
    let trace_session = trace_out.as_ref().map(|_| TraceSession::begin());
    let mut manager = SessionManager::new(ServeConfig {
        queue_capacity: queue_cap,
        max_resident,
        evict_dir: Some(evict_dir.clone()),
        telemetry: true,
    });
    let ids: Vec<u32> = datasets
        .iter()
        .map(|d| manager.create_session(&d.name, config, d.intrinsics))
        .collect();

    // Interleaved serve loop: each round offers every session up to two
    // frames (stopping at backpressure), then steps K times. This keeps all
    // queues non-empty so the round-robin scheduler genuinely interleaves.
    let mut cursor = vec![0usize; sessions];
    let mut backpressure = 0u64;
    let started = Instant::now();
    loop {
        let ingested_all = cursor.iter().zip(&datasets).all(|(c, d)| *c >= d.len());
        if ingested_all {
            break;
        }
        for i in 0..sessions {
            for _ in 0..2 {
                if cursor[i] >= datasets[i].len() {
                    break;
                }
                let frame = datasets[i].frames[cursor[i]].clone();
                let pose = datasets[i].gt_poses[cursor[i]];
                match manager.ingest(ids[i], frame, pose) {
                    Ok(()) => cursor[i] += 1,
                    Err(ServeError::Backpressure { .. }) => {
                        backpressure += 1;
                        break;
                    }
                    Err(e) => {
                        eprintln!("[fleet] ingest failed: {e}");
                        exit(1);
                    }
                }
            }
        }
        for _ in 0..sessions {
            if let Err(e) = manager.step() {
                eprintln!("[fleet] step failed: {e}");
                exit(1);
            }
        }
    }
    if let Err(e) = manager.run_until_blocked() {
        eprintln!("[fleet] drain failed: {e}");
        exit(1);
    }
    let evictions = manager.evictions();
    let resumes = manager.resumes();
    let frames_total = manager.frames_processed();

    let outcomes: Vec<SessionOutcome> = ids
        .iter()
        .map(|&id| {
            manager.close(id).expect("session exists");
            manager.finish(id).unwrap_or_else(|e| {
                eprintln!("[fleet] finish failed: {e}");
                exit(1);
            })
        })
        .collect();
    let elapsed = started.elapsed().as_secs_f64();
    let fps = frames_total as f64 / elapsed.max(1e-9);
    let _ = std::fs::remove_dir_all(&evict_dir);

    if max_resident > 0 && sessions > 1 && (evictions == 0 || resumes == 0) {
        eprintln!(
            "[fleet] FAIL: expected at least one eviction/resume cycle \
             (evictions {evictions}, resumes {resumes})"
        );
        exit(1);
    }

    if verify {
        let mut failures = 0;
        for (outcome, dataset) in outcomes.iter().zip(&datasets) {
            let sequential = SlamSystem::new(config, dataset.intrinsics).run(dataset);
            failures += compare(&outcome.name, &outcome.result, &sequential);
        }
        if failures > 0 {
            eprintln!("[fleet] served sessions diverged from sequential ({failures} mismatches)");
            exit(1);
        }
        eprintln!("[fleet] all {sessions} sessions bitwise-identical to sequential runs");
    }

    // Fleet-level report: aggregate serve counters + per-session accounting
    // pulled from each session's own telemetry.
    let fleet = Telemetry::enabled();
    fleet.counter_add("serve/sessions", sessions as u64);
    fleet.counter_add("serve/frames_total", frames_total);
    fleet.counter_add("serve/evictions", evictions);
    fleet.counter_add("serve/resumes", resumes);
    fleet.counter_add("serve/backpressure", backpressure);
    fleet.gauge_set("serve/frames_per_sec", fps);
    let mut ate_sum = 0.0;
    let mut psnr_sum = 0.0;
    let mut scene_total = 0;
    for o in &outcomes {
        ate_sum += o.result.ate_cm;
        psnr_sum += o.result.psnr_db;
        scene_total += o.result.scene_size;
        let pfx = format!("session/{}", o.id);
        fleet.counter_add(&format!("{pfx}/frames"), o.result.frames as u64);
        for key in [
            "render/cache_hits",
            "render/cache_misses",
            "render/cache_invalidations",
        ] {
            if let Some((_, v)) = o.report.counters.iter().find(|(n, _)| n == key) {
                fleet.counter_add(&format!("{pfx}/{}", key.rsplit('/').next().unwrap()), *v);
            }
        }
        for (name, hist) in &o.report.latency {
            let short = name.rsplit('/').next().unwrap_or(name);
            fleet.gauge_set(&format!("{pfx}/{short}_p95"), hist.p95_ms());
        }
    }
    let report = fleet.finish(
        "fleet",
        AccuracySummary {
            ate_cm: ate_sum / sessions as f64,
            psnr_db: psnr_sum / sessions as f64,
            frames: frames_total as usize,
            scene_size: scene_total,
        },
    );
    if let Some(path) = &report_out {
        report.write_json_file(path).unwrap_or_else(|e| {
            eprintln!("[fleet] failed to write {}: {e}", path.display());
            exit(1);
        });
        eprintln!("[fleet] report written to {}", path.display());
    }
    if let (Some(path), Some(session)) = (&trace_out, &trace_session) {
        // One merged trace: every session's spans land in its own process
        // group (run id == session id).
        let all_spans: Vec<_> = outcomes
            .iter()
            .flat_map(|o| o.span_events.iter().cloned())
            .collect();
        if let Err(e) = fleet.write_chrome_trace_merged(session, &all_spans, path) {
            eprintln!("[fleet] failed to write {}: {e}", path.display());
            exit(1);
        }
        eprintln!("[fleet] trace written to {}", path.display());
    }

    println!(
        "fleet: {sessions} sessions x {} frames in {elapsed:.2} s ({fps:.1} frames/s aggregate), \
         {evictions} evictions, {resumes} resumes, {backpressure} backpressure events",
        dataset_config.frames
    );
    for o in &outcomes {
        let p95 = |key: &str| {
            o.report
                .latency
                .iter()
                .find(|(n, _)| n == key)
                .map_or(0.0, |(_, h)| h.p95_ms())
        };
        println!(
            "  {:>10}: ate {:7.3} cm  psnr {:6.2} dB  track p95 {:7.2} ms  map p95 {:7.2} ms  \
             evictions {}  resumes {}",
            o.name,
            o.result.ate_cm,
            o.result.psnr_db,
            p95("frame/track_ms"),
            p95("frame/map_ms"),
            o.evictions,
            o.resumes
        );
    }
}
