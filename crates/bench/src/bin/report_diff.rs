//! Compares a fresh `RunReport` JSON against a committed baseline.
//!
//! Usage:
//!   report_diff REPORT BASELINE [--spans-only]
//!
//! Mirrors the gating policy of `scripts/check_bench.py` (which shells out
//! to this binary for its span comparison): workload counters and span
//! counts exact, accuracy and per-frame floats within a small absolute
//! tolerance, wall-clock (span totals, latency percentiles) bounded by a
//! generous multiplier of the baseline, machine-dependent metrics (`pool/`,
//! `render/simd_lanes`) skipped. `--spans-only` restricts the comparison to
//! the span and latency sections.
//!
//! Exit codes: 0 = pass, 1 = violations (one per line on stderr),
//! 2 = usage or unreadable/invalid input.

use splatonic::telemetry::json;
use splatonic_bench::diff::{diff_reports, DiffScope};

fn load(path: &str) -> json::Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("report_diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    json::parse(&text).unwrap_or_else(|e| {
        eprintln!("report_diff: {path} is not valid JSON: {e:?}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let spans_only = args.iter().any(|a| a == "--spans-only");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [report_path, baseline_path] = paths.as_slice() else {
        eprintln!("usage: report_diff REPORT BASELINE [--spans-only]");
        std::process::exit(2);
    };
    let report = load(report_path);
    let baseline = load(baseline_path);
    let scope = if spans_only {
        DiffScope::SpansOnly
    } else {
        DiffScope::Full
    };
    let errors = diff_reports(&report, &baseline, scope);
    if !errors.is_empty() {
        eprintln!("report_diff: FAIL ({} violation(s))", errors.len());
        for e in &errors {
            eprintln!("  - {e}");
        }
        std::process::exit(1);
    }
    let what = if spans_only {
        "spans/latency"
    } else {
        "report"
    };
    println!("report_diff: OK ({what} match {baseline_path})");
}
