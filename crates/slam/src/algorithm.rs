//! Behavioral presets for the four evaluated 3DGS-SLAM algorithms.
//!
//! The paper evaluates SplaTAM \[36], MonoGS \[56], GS-SLAM \[81], and
//! FlashSLAM \[61]. All four share the differentiable-rendering training loop
//! of Fig. 1 and differ in iteration budgets, keyframe policy, learning
//! rates, and loss weighting — which is what these presets encode (scaled to
//! laptop-size sequences; the *ratios* that drive the paper's
//! characterization, e.g. amortized tracking:mapping latency ≈ 4:1 in
//! Fig. 4, are preserved).

use splatonic_render::LossConfig;

/// The four 3DGS-SLAM algorithms of the evaluation (paper Sec. VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmPreset {
    /// SplaTAM \[36]: RGB-D, heavy per-frame tracking.
    SplaTam,
    /// MonoGS \[56]: Gaussian-splatting SLAM with moderate budgets.
    MonoGs,
    /// GS-SLAM \[81]: less frequent mapping with a larger budget.
    GsSlam,
    /// FlashSLAM \[61]: fast, low-iteration tracking.
    FlashSlam,
}

impl AlgorithmPreset {
    /// All four presets, in the paper's presentation order.
    pub fn all() -> [AlgorithmPreset; 4] {
        [
            AlgorithmPreset::SplaTam,
            AlgorithmPreset::MonoGs,
            AlgorithmPreset::GsSlam,
            AlgorithmPreset::FlashSlam,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmPreset::SplaTam => "SplaTAM",
            AlgorithmPreset::MonoGs => "MonoGS",
            AlgorithmPreset::GsSlam => "GS-SLAM",
            AlgorithmPreset::FlashSlam => "FlashSLAM",
        }
    }

    /// The full configuration for this preset.
    pub fn config(&self) -> AlgorithmConfig {
        let base = AlgorithmConfig::default();
        match self {
            AlgorithmPreset::SplaTam => AlgorithmConfig {
                preset: *self,
                tracking_iters: 14,
                mapping_iters: 12,
                mapping_every: 4,
                ..base
            },
            AlgorithmPreset::MonoGs => AlgorithmConfig {
                preset: *self,
                tracking_iters: 11,
                mapping_iters: 10,
                mapping_every: 4,
                pose_lr: 2.2e-3,
                ..base
            },
            AlgorithmPreset::GsSlam => AlgorithmConfig {
                preset: *self,
                tracking_iters: 9,
                mapping_iters: 16,
                mapping_every: 8,
                pose_lr: 2.5e-3,
                ..base
            },
            AlgorithmPreset::FlashSlam => AlgorithmConfig {
                preset: *self,
                tracking_iters: 7,
                mapping_iters: 8,
                mapping_every: 4,
                pose_lr: 3e-3,
                ..base
            },
        }
    }
}

/// Full algorithm configuration (iteration budgets, learning rates, loss).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgorithmConfig {
    /// Which preset this derives from.
    pub preset: AlgorithmPreset,
    /// Tracking iterations per frame (`S_t`).
    pub tracking_iters: usize,
    /// Mapping iterations per invocation (`S_m`).
    pub mapping_iters: usize,
    /// Mapping is invoked every this many frames (paper: 4–8).
    pub mapping_every: usize,
    /// Keyframes kept in the mapping window (`w`).
    pub keyframe_window: usize,
    /// Pose learning rate (Adam on se(3)).
    pub pose_lr: f64,
    /// Gaussian-mean learning rate.
    pub mean_lr: f64,
    /// Log-scale learning rate.
    pub scale_lr: f64,
    /// Quaternion learning rate.
    pub rot_lr: f64,
    /// Opacity-logit learning rate.
    pub opacity_lr: f64,
    /// Color learning rate.
    pub color_lr: f64,
    /// Loss weighting.
    pub loss: LossConfig,
    /// Per-mapping-invocation cap on Gaussians added by densification.
    /// A pathological frame (e.g. a fully unseen viewpoint over a dense
    /// depth image) would otherwise add one Gaussian per sampled pixel,
    /// blowing up scene size and serve-layer latency. Candidates are
    /// admitted in deterministic scan order (row-major, strided) until the
    /// cap; the overflow is reported via the `mapping/densify_capped`
    /// counter. Default `usize::MAX` (uncapped) preserves bit-exact
    /// pre-cap behavior. Result-affecting when finite, so it is part of
    /// the config fingerprint.
    pub densify_max_per_frame: usize,
}

impl Default for AlgorithmConfig {
    fn default() -> Self {
        AlgorithmConfig {
            preset: AlgorithmPreset::SplaTam,
            tracking_iters: 14,
            mapping_iters: 12,
            mapping_every: 4,
            keyframe_window: 5,
            pose_lr: 2e-3,
            mean_lr: 3e-3,
            scale_lr: 2e-3,
            rot_lr: 2e-3,
            opacity_lr: 2e-2,
            color_lr: 1e-2,
            loss: LossConfig::default(),
            densify_max_per_frame: usize::MAX,
        }
    }
}

impl AlgorithmConfig {
    /// Amortized per-frame tracking:mapping work ratio implied by the
    /// iteration budgets (paper Fig. 4 reports ≈ 4:1).
    pub fn amortized_tracking_ratio(&self) -> f64 {
        let mapping_per_frame = self.mapping_iters as f64 / self.mapping_every as f64;
        self.tracking_iters as f64 / mapping_per_frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_distinct_presets() {
        let names: std::collections::HashSet<_> =
            AlgorithmPreset::all().iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn tracking_dominates_amortized_work() {
        // Paper Fig. 4: tracking's amortized latency is well above
        // mapping's across all four algorithms.
        for p in AlgorithmPreset::all() {
            let r = p.config().amortized_tracking_ratio();
            assert!(r > 2.0, "{}: ratio {r}", p.name());
        }
    }

    #[test]
    fn splatam_mean_ratio_near_paper() {
        // The paper reports mapping amortized latency ≈ 1/4 of tracking.
        let r = AlgorithmPreset::SplaTam.config().amortized_tracking_ratio();
        assert!((3.0..7.0).contains(&r), "ratio {r}");
    }

    #[test]
    fn configs_are_positive() {
        for p in AlgorithmPreset::all() {
            let c = p.config();
            assert!(c.tracking_iters > 0);
            assert!(c.mapping_iters > 0);
            assert!(c.mapping_every > 0);
            assert!(c.pose_lr > 0.0);
        }
    }
}
