//! Telemetry-aware splat asset I/O: the SLAM-side face of the scene
//! crate's `.ply` codec (DESIGN.md §17).
//!
//! Thin wrappers over [`splatonic_scene::ply`] that bump the
//! `assets/ply_gaussians_written` / `assets/ply_gaussians_read` counters,
//! so every run report accounts for scene material crossing the process
//! boundary the same way it accounts for snapshot bytes. The bytes
//! produced are exactly the scene crate's — no SLAM-specific framing.

use splatonic_scene::{ply, GaussianScene, PlyError};
use splatonic_telemetry::Telemetry;
use std::path::Path;

/// Encodes `scene` to 3DGS `.ply` bytes, counting the exported Gaussians
/// as `assets/ply_gaussians_written`.
pub fn encode_scene_ply(scene: &GaussianScene, telemetry: &Telemetry) -> Vec<u8> {
    telemetry.counter_add("assets/ply_gaussians_written", scene.len() as u64);
    ply::encode_ply(scene)
}

/// Decodes 3DGS `.ply` bytes into a scene, counting the imported Gaussians
/// as `assets/ply_gaussians_read`. Nothing is counted on a decode error.
pub fn decode_scene_ply(bytes: &[u8], telemetry: &Telemetry) -> Result<GaussianScene, PlyError> {
    let scene = ply::decode_ply(bytes)?;
    telemetry.counter_add("assets/ply_gaussians_read", scene.len() as u64);
    Ok(scene)
}

/// [`encode_scene_ply`] straight to a file (atomic temp-file + rename).
pub fn write_scene_ply(
    scene: &GaussianScene,
    path: impl AsRef<Path>,
    telemetry: &Telemetry,
) -> Result<(), PlyError> {
    telemetry.counter_add("assets/ply_gaussians_written", scene.len() as u64);
    ply::write_ply_file(scene, path)
}

/// [`decode_scene_ply`] from a file.
pub fn read_scene_ply(
    path: impl AsRef<Path>,
    telemetry: &Telemetry,
) -> Result<GaussianScene, PlyError> {
    let scene = ply::read_ply_file(path)?;
    telemetry.counter_add("assets/ply_gaussians_read", scene.len() as u64);
    Ok(scene)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatonic_math::{Quat, Vec3};
    use splatonic_scene::Gaussian;

    fn scene(n: usize) -> GaussianScene {
        let mut s = GaussianScene::new();
        for i in 0..n {
            s.push(Gaussian::new(
                Vec3::new(i as f64 * 0.25, 0.0, 2.0),
                Vec3::splat(0.0625),
                Quat::IDENTITY,
                0.75,
                Vec3::splat(0.5),
            ));
        }
        s
    }

    fn counter(report: &splatonic_telemetry::RunReport, name: &str) -> Option<u64> {
        report
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    #[test]
    fn counters_track_roundtrip_cardinality() {
        let telemetry = Telemetry::enabled();
        let s = scene(6);
        let bytes = encode_scene_ply(&s, &telemetry);
        let back = decode_scene_ply(&bytes, &telemetry).unwrap();
        assert_eq!(back.len(), 6);
        let report = telemetry.finish("assets-test", Default::default());
        assert_eq!(counter(&report, "assets/ply_gaussians_written"), Some(6));
        assert_eq!(counter(&report, "assets/ply_gaussians_read"), Some(6));
    }

    #[test]
    fn decode_error_counts_nothing() {
        let telemetry = Telemetry::enabled();
        assert!(decode_scene_ply(b"not a ply", &telemetry).is_err());
        let report = telemetry.finish("assets-err", Default::default());
        assert_eq!(counter(&report, "assets/ply_gaussians_read"), None);
    }

    #[test]
    fn file_wrappers_count_and_roundtrip() {
        let telemetry = Telemetry::enabled();
        let dir = std::env::temp_dir().join(format!("splatonic-assets-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scene.ply");
        let s = scene(4);
        write_scene_ply(&s, &path, &telemetry).unwrap();
        let back = read_scene_ply(&path, &telemetry).unwrap();
        assert_eq!(back.len(), 4);
        let report = telemetry.finish("assets-file", Default::default());
        assert_eq!(counter(&report, "assets/ply_gaussians_written"), Some(4));
        assert_eq!(counter(&report, "assets/ply_gaussians_read"), Some(4));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
